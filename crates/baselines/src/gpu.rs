//! GPU baseline: NVIDIA `GeForce` RTX 3090.
//!
//! The paper implements "FDM in CUDA C/C++ based on the open-source code
//! provided by Nvidia" (§6.4), i.e. the unfused finite-difference sample
//! kernels, launched per iteration from the host, plus the red-black
//! (checkerboard) variant of the paper's reference \[11\]. Energy comes from PCAT board
//! measurements.
//!
//! The model: per iteration, a host-side launch/sync overhead plus the
//! f64 field traffic at an *effective* sustained bandwidth far below the
//! 936.2 GB/s peak — per-iteration kernel launches, no kernel fusion, and
//! uncoalesced halo reads hold the open-source implementation to a few
//! percent of peak, which is what makes the paper's reported ~5x FDMAX
//! advantage possible despite the GPU's 7.3x raw-bandwidth edge. GPU-C
//! launches two kernels per iteration (red phase + black phase).

use crate::platform::{IterationCost, Platform, WorkloadSpec};

/// An analytic GPU model.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuModel {
    name: String,
    /// Host-side overhead per kernel launch (launch + sync), seconds.
    launch_seconds: f64,
    /// Kernel launches per iteration (1 for Jacobi, 2 for checkerboard).
    launches_per_iteration: u32,
    /// Bytes moved per interior point per iteration (f64 read + write +
    /// halo overhead).
    bytes_per_point: f64,
    /// Effective sustained bandwidth in bytes/s.
    effective_bandwidth: f64,
    /// Board power in watts while running.
    power_watts: f64,
}

impl GpuModel {
    /// The paper's RTX 3090 running the open-source Jacobi kernels.
    pub fn rtx3090_jacobi() -> Self {
        GpuModel {
            name: "GPU-J".to_string(),
            launch_seconds: 20e-6,
            launches_per_iteration: 1,
            bytes_per_point: 16.0,
            effective_bandwidth: 30e9,
            power_watts: 320.0,
        }
    }

    /// The red-black Gauss-Seidel implementation (paper reference \[11\]): two kernel
    /// launches per iteration over half the points each.
    pub fn rtx3090_checkerboard() -> Self {
        GpuModel {
            name: "GPU-C".to_string(),
            launches_per_iteration: 2,
            ..Self::rtx3090_jacobi()
        }
    }

    /// Seconds for one iteration.
    pub fn seconds_per_iteration(&self, spec: &WorkloadSpec) -> f64 {
        let traffic = spec.interior_points() as f64 * self.bytes_per_point;
        self.launch_seconds * self.launches_per_iteration as f64
            + traffic / self.effective_bandwidth
    }
}

impl Platform for GpuModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn iteration_cost(&self, spec: &WorkloadSpec) -> IterationCost {
        let seconds = self.seconds_per_iteration(spec);
        IterationCost {
            seconds,
            joules: seconds * self.power_watts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdm::pde::PdeKind;

    #[test]
    fn small_grids_are_launch_bound() {
        let gpu = GpuModel::rtx3090_jacobi();
        let spec = WorkloadSpec::new(PdeKind::Laplace, 100, 1);
        let t = gpu.seconds_per_iteration(&spec);
        // Launch overhead (20 us) dominates the ~5 us of traffic.
        assert!(t > 20e-6 && t < 40e-6, "t = {t}");
    }

    #[test]
    fn large_grids_are_traffic_bound() {
        let gpu = GpuModel::rtx3090_jacobi();
        let spec = WorkloadSpec::new(PdeKind::Laplace, 10_000, 1);
        let t = gpu.seconds_per_iteration(&spec);
        let traffic_time = spec.interior_points() as f64 * 16.0 / 30e9;
        assert!((t - traffic_time) / t < 0.01, "launch negligible at 10K");
    }

    #[test]
    fn checkerboard_pays_double_launches() {
        let j = GpuModel::rtx3090_jacobi();
        let c = GpuModel::rtx3090_checkerboard();
        let spec = WorkloadSpec::new(PdeKind::Laplace, 100, 1);
        let dj = j.seconds_per_iteration(&spec);
        let dc = c.seconds_per_iteration(&spec);
        assert!((dc - dj - 20e-6).abs() < 1e-9);
        assert_eq!(c.name(), "GPU-C");
    }

    #[test]
    fn energy_uses_board_power() {
        let gpu = GpuModel::rtx3090_jacobi();
        let m = gpu.run(&WorkloadSpec::new(PdeKind::Wave, 1_000, 50));
        assert!((m.energy_joules - m.seconds * 320.0).abs() < 1e-9);
    }

    #[test]
    fn gpu_beats_cpu_per_iteration_everywhere() {
        // Fig. 7 sanity: the GPU bars are far above the CPU bars.
        use crate::cpu::CpuModel;
        let gpu = GpuModel::rtx3090_jacobi();
        let cpu = CpuModel::xeon_python('J');
        for n in [100usize, 1_000, 10_000] {
            let spec = WorkloadSpec::new(PdeKind::Laplace, n, 1);
            assert!(
                gpu.seconds_per_iteration(&spec) * 20.0 < cpu.seconds_per_iteration(&spec),
                "GPU should be >20x faster per iteration at n={n}"
            );
        }
    }
}
