//! The common interface of all baseline platform models.
//!
//! Every platform expresses itself as a per-iteration [`IterationCost`];
//! the provided [`Platform::run`] wraps that cost in a [`CostEngine`] and
//! drives it through the same generic [`Session`] loop the software
//! solvers and the FDMAX simulator use.

use core::fmt;
use fdm::convergence::StopCondition;
use fdm::engine::{Session, SolveEngine, StepOutcome};
use fdm::pde::PdeKind;

/// One benchmark point: a PDE on an `n x n` grid, solved for a given
/// number of iterations on some platform.
///
/// Iteration counts are *per platform* (they depend on the update method
/// and the arithmetic precision), so the harness fills this in per run
/// from [`crate::iterations`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Which benchmark equation.
    pub kind: PdeKind,
    /// Grid edge length (grids are square in the evaluation).
    pub n: usize,
    /// Iterations this platform needs for this problem.
    pub iterations: u64,
}

impl WorkloadSpec {
    /// Creates a spec.
    pub fn new(kind: PdeKind, n: usize, iterations: u64) -> Self {
        WorkloadSpec {
            kind,
            n,
            iterations,
        }
    }

    /// Total grid points.
    pub fn points(&self) -> u64 {
        (self.n * self.n) as u64
    }

    /// Interior (updated) points.
    pub fn interior_points(&self) -> u64 {
        ((self.n - 2) * (self.n - 2)) as u64
    }

    /// `true` when the stencil carries an offset operand (Poisson's
    /// source, Wave's history term).
    pub fn offset_present(&self) -> bool {
        matches!(self.kind, PdeKind::Poisson | PdeKind::Wave)
    }

    /// `true` when the stencil has a nonzero self weight (Heat, Wave).
    pub fn self_term(&self) -> bool {
        matches!(self.kind, PdeKind::Heat | PdeKind::Wave)
    }

    /// Five-point-stencil nonzeros of the assembled system matrix
    /// (used by the `SpMV` accelerator models): ~5 per interior point,
    /// minus the boundary-adjacent cuts.
    pub fn nnz(&self) -> u64 {
        let m = (self.n - 2) as u64;
        5 * m * m - 4 * m
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}x{} ({} iters)",
            self.kind, self.n, self.n, self.iterations
        )
    }
}

/// What a platform run costs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunMetrics {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Energy in joules.
    pub energy_joules: f64,
    /// Iterations executed (echoed from the spec).
    pub iterations: u64,
}

impl RunMetrics {
    /// Speedup of `self` relative to `baseline` (>1 means `self` is
    /// faster).
    pub fn speedup_over(&self, baseline: &RunMetrics) -> f64 {
        baseline.seconds / self.seconds
    }

    /// Energy of `self` as a fraction of `baseline` (<1 means `self` is
    /// more efficient).
    pub fn energy_fraction_of(&self, baseline: &RunMetrics) -> f64 {
        self.energy_joules / baseline.energy_joules
    }
}

/// Per-iteration cost of a platform on a given workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterationCost {
    /// Seconds for one solver iteration.
    pub seconds: f64,
    /// Joules for one solver iteration.
    pub joules: f64,
}

/// An analytic platform model as a [`SolveEngine`].
///
/// Like the FDMAX estimator, the model has no per-iteration state, so
/// [`step`](SolveEngine::step) is one macro-step covering every requested
/// iteration; totals are exact products (`cost x iterations`), free of
/// accumulated rounding.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostEngine {
    cost: IterationCost,
    target: u64,
    done: u64,
}

impl CostEngine {
    /// Wraps a per-iteration cost for `iterations` iterations.
    pub fn new(cost: IterationCost, iterations: u64) -> Self {
        CostEngine {
            cost,
            target: iterations,
            done: 0,
        }
    }

    /// Totals for the iterations executed so far.
    pub fn metrics(&self) -> RunMetrics {
        RunMetrics {
            seconds: self.cost.seconds * self.done as f64,
            energy_joules: self.cost.joules * self.done as f64,
            iterations: self.done,
        }
    }
}

impl SolveEngine for CostEngine {
    fn step(&mut self) -> StepOutcome {
        self.done = self.target;
        StepOutcome::silent()
    }

    fn iterations(&self) -> usize {
        self.done as usize
    }
}

/// A modelled execution platform.
pub trait Platform {
    /// Short name used in plots (`CPU-J`, `GPU-C`, `Alrescha`, …).
    fn name(&self) -> &str;

    /// The time and energy of one solver iteration of `spec`.
    fn iteration_cost(&self, spec: &WorkloadSpec) -> IterationCost;

    /// Models the time and energy of solving `spec` by driving a
    /// [`CostEngine`] through the generic [`Session`] loop.
    fn run(&self, spec: &WorkloadSpec) -> RunMetrics {
        let engine = CostEngine::new(self.iteration_cost(spec), spec.iterations);
        let mut session =
            Session::new(engine, StopCondition::fixed_steps(spec.iterations as usize));
        session
            .run()
            .expect("budget-free session on a healthy problem cannot fail");
        let (engine, _history) = session.into_parts();
        engine.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_derived_quantities() {
        let s = WorkloadSpec::new(PdeKind::Poisson, 100, 500);
        assert_eq!(s.points(), 10_000);
        assert_eq!(s.interior_points(), 9_604);
        assert!(s.offset_present());
        assert!(!s.self_term());
        assert_eq!(s.nnz(), 5 * 98 * 98 - 4 * 98);
        assert!(s.to_string().contains("Poisson"));
    }

    #[test]
    fn kind_flags() {
        assert!(!WorkloadSpec::new(PdeKind::Laplace, 10, 1).offset_present());
        assert!(WorkloadSpec::new(PdeKind::Wave, 10, 1).offset_present());
        assert!(WorkloadSpec::new(PdeKind::Heat, 10, 1).self_term());
        assert!(!WorkloadSpec::new(PdeKind::Laplace, 10, 1).self_term());
    }

    #[test]
    fn run_is_an_exact_product_and_stays_object_safe() {
        struct Flat;
        impl Platform for Flat {
            fn name(&self) -> &str {
                "flat"
            }
            fn iteration_cost(&self, _spec: &WorkloadSpec) -> IterationCost {
                IterationCost {
                    seconds: 0.25,
                    joules: 1.5,
                }
            }
        }
        let platform: &dyn Platform = &Flat;
        let m = platform.run(&WorkloadSpec::new(PdeKind::Laplace, 10, 8));
        assert_eq!(m.seconds, 2.0);
        assert_eq!(m.energy_joules, 12.0);
        assert_eq!(m.iterations, 8);
    }

    #[test]
    fn metrics_ratios() {
        let fast = RunMetrics {
            seconds: 1.0,
            energy_joules: 2.0,
            iterations: 10,
        };
        let slow = RunMetrics {
            seconds: 10.0,
            energy_joules: 50.0,
            iterations: 10,
        };
        assert!((fast.speedup_over(&slow) - 10.0).abs() < 1e-12);
        assert!((fast.energy_fraction_of(&slow) - 0.04).abs() < 1e-12);
    }
}
