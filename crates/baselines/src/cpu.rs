//! CPU baseline: Intel Xeon Gold 6226R running the paper's Python FDM.
//!
//! The paper implements "FDM in python on a Linux server equipped with
//! Intel Xeon Gold 6226R CPU@2.90 GHz" (§6.4) and uses the five-point
//! stencil form (the `SpMV` form needs an impractically large matrix at
//! big grids). Energy is "the Average CPU Power (ACP) multiplied by the
//! processing time".
//!
//! The model: a per-point update cost covering the Python/NumPy sweep
//! (calibrated so the reproduced FDMAX-over-CPU speedups land in the
//! paper's ~1100-1300x band), and an ACP figure for the single core the
//! interpreter keeps busy. CPU-J and CPU-G share the per-point cost —
//! the paper's Fig. 7 CPU-G bars differ from CPU-J by the iteration
//! ratio only.

use crate::platform::{IterationCost, Platform, WorkloadSpec};

/// An analytic CPU model.
#[derive(Clone, Debug, PartialEq)]
pub struct CpuModel {
    name: String,
    /// Seconds per interior-point update.
    per_point_seconds: f64,
    /// Average CPU power in watts attributed to the run.
    power_watts: f64,
}

impl CpuModel {
    /// The paper's Xeon 6226R + Python configuration, Jacobi method.
    ///
    /// 220 ns/point models an interpreter-driven `NumPy` sweep; 15 W is
    /// the single busy core's share of the package ACP.
    pub fn xeon_python(method_letter: char) -> Self {
        CpuModel {
            name: format!("CPU-{method_letter}"),
            per_point_seconds: 220e-9,
            power_watts: 15.0,
        }
    }

    /// A custom CPU model.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite.
    pub fn new(name: &str, per_point_seconds: f64, power_watts: f64) -> Self {
        assert!(per_point_seconds > 0.0 && per_point_seconds.is_finite());
        assert!(power_watts > 0.0 && power_watts.is_finite());
        CpuModel {
            name: name.to_string(),
            per_point_seconds,
            power_watts,
        }
    }

    /// Seconds for one full-grid sweep.
    pub fn seconds_per_iteration(&self, spec: &WorkloadSpec) -> f64 {
        spec.interior_points() as f64 * self.per_point_seconds
    }
}

impl Platform for CpuModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn iteration_cost(&self, spec: &WorkloadSpec) -> IterationCost {
        let seconds = self.seconds_per_iteration(spec);
        IterationCost {
            seconds,
            joules: seconds * self.power_watts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdm::pde::PdeKind;

    #[test]
    fn time_scales_with_points_and_iterations() {
        let cpu = CpuModel::xeon_python('J');
        let small = cpu.run(&WorkloadSpec::new(PdeKind::Laplace, 100, 10));
        let big = cpu.run(&WorkloadSpec::new(PdeKind::Laplace, 1_000, 10));
        // ~100x the interior points.
        let ratio = big.seconds / small.seconds;
        assert!(ratio > 95.0 && ratio < 110.0, "ratio {ratio}");
        let more_iters = cpu.run(&WorkloadSpec::new(PdeKind::Laplace, 100, 20));
        assert!((more_iters.seconds / small.seconds - 2.0).abs() < 1e-12);
    }

    #[test]
    fn energy_is_power_times_time() {
        let cpu = CpuModel::xeon_python('J');
        let m = cpu.run(&WorkloadSpec::new(PdeKind::Heat, 500, 100));
        assert!((m.energy_joules - m.seconds * 15.0).abs() < 1e-9);
        assert_eq!(m.iterations, 100);
    }

    #[test]
    fn names_follow_paper_convention() {
        assert_eq!(CpuModel::xeon_python('J').name(), "CPU-J");
        assert_eq!(CpuModel::xeon_python('G').name(), "CPU-G");
    }

    #[test]
    #[should_panic]
    fn invalid_parameters_rejected() {
        let _ = CpuModel::new("bad", 0.0, 10.0);
    }
}
