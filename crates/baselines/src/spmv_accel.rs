//! SpMV-based scientific-computing accelerators: `MemAccel` and Alrescha.
//!
//! Per the paper's methodology (§6.4): both are normalized to FDMAX's
//! budget — the same 128 GB/s of memory bandwidth and the same clock.
//! A Krylov iteration then costs two parts:
//!
//! 1. the **parallel part**: streaming the sparse system (f64 values +
//!    indices) and the working vectors through memory at the shared
//!    bandwidth;
//! 2. the **sequential part**: the paper stresses that "BiCG-STAB and PCG
//!    introduce a large portion of sequential operations (23% on average
//!    in Alrescha) hindering performance" and that this overhead is what
//!    Krylov's faster convergence "cannot cover … when considering
//!    hardware implementation" (§7.2). Dependent scalar reductions and
//!    the `SymGS` preconditioner's loop-carried chain execute at ~1
//!    operation per cycle regardless of how many lanes the budget buys,
//!    so we charge `sequential_fraction x total flops` at one op per
//!    200 MHz cycle.
//!
//! Crucially, the `SpMV` formulation also cannot exploit the FDM matrix's
//! repeated values: every nonzero is fetched and multiplied (5 multiplies
//! per point versus FDMAX's 2-3) — the computation-reuse argument of
//! §3.2.3.
//!
//! Energy: streamed bytes at DRAM cost plus flops at Horowitz f64 cost.

use crate::platform::{IterationCost, Platform, WorkloadSpec};
use fdm::pde::PdeKind;

/// An analytic SpMV-accelerator model.
#[derive(Clone, Debug, PartialEq)]
pub struct SpmvAcceleratorModel {
    name: String,
    /// DRAM bandwidth in bytes/s (normalized to FDMAX's budget).
    bandwidth: f64,
    /// Achievable fraction of that bandwidth for sparse streams.
    bandwidth_efficiency: f64,
    /// SpMV-equivalent passes over the matrix per solver iteration
    /// (BiCG-STAB does two `SpMVs`; PCG does one `SpMV` plus the `SymGS`
    /// preconditioner application, which streams the same matrix).
    matrix_passes_per_iteration: u32,
    /// Full passes over length-N² vectors per iteration (dots, axpys).
    vector_passes_per_iteration: u32,
    /// Fraction of the iteration's operations that execute sequentially
    /// (one per clock cycle).
    sequential_fraction: f64,
    /// Accelerator clock in Hz (the shared 200 MHz budget).
    clock_hz: f64,
}

/// Bytes per stored matrix nonzero: f64 value + 32-bit column index.
const BYTES_PER_NNZ: f64 = 12.0;
/// Bytes per vector element (f64).
const BYTES_PER_VEC: f64 = 8.0;
/// DRAM energy per byte (pJ), consistent with `memmodel`'s 640 pJ per
/// 32-bit element.
const DRAM_PJ_PER_BYTE: f64 = 160.0;
/// f64 FMA energy (pJ), Horowitz-scale.
const F64_FLOP_PJ: f64 = 20.0;

impl SpmvAcceleratorModel {
    /// `MemAccel` (Feinberg et al., ISCA'18): BiCG-STAB on memristive
    /// crossbars. BiCG-STAB's two dependent inner-product/SpMV chains per
    /// iteration plus the crossbar's conversion overheads put its
    /// sequential share slightly above Alrescha's.
    pub fn memaccel() -> Self {
        SpmvAcceleratorModel {
            name: "MemAccel".to_string(),
            bandwidth: 128e9,
            bandwidth_efficiency: 0.8,
            matrix_passes_per_iteration: 2,
            vector_passes_per_iteration: 10,
            sequential_fraction: 0.28,
            clock_hz: 200e6,
        }
    }

    /// Alrescha (Asgari et al., HPCA'20): preconditioned conjugate
    /// gradient with `SpMV` + `SymGS` kernels; 23% sequential operations on
    /// average (the figure the FDMAX paper quotes).
    pub fn alrescha() -> Self {
        SpmvAcceleratorModel {
            name: "Alrescha".to_string(),
            bandwidth: 128e9,
            bandwidth_efficiency: 0.8,
            matrix_passes_per_iteration: 2,
            vector_passes_per_iteration: 6,
            sequential_fraction: 0.23,
            clock_hz: 200e6,
        }
    }

    /// Bytes streamed in one solver iteration.
    pub fn bytes_per_iteration(&self, spec: &WorkloadSpec) -> f64 {
        let matrix = spec.nnz() as f64 * BYTES_PER_NNZ * self.matrix_passes_per_iteration as f64;
        let vectors =
            spec.points() as f64 * BYTES_PER_VEC * self.vector_passes_per_iteration as f64;
        matrix + vectors
    }

    /// Seconds for one solver iteration: the streamed (parallel) part at
    /// the shared bandwidth, plus the sequential operations at one per
    /// clock cycle.
    pub fn seconds_per_iteration(&self, spec: &WorkloadSpec) -> f64 {
        let streaming =
            self.bytes_per_iteration(spec) / (self.bandwidth * self.bandwidth_efficiency);
        let sequential = self.sequential_fraction * self.flops_per_iteration(spec) / self.clock_hz;
        streaming + sequential
    }

    /// Floating-point operations per iteration: 2 per nonzero per matrix
    /// pass plus 2 per vector element per vector pass.
    pub fn flops_per_iteration(&self, spec: &WorkloadSpec) -> f64 {
        2.0 * spec.nnz() as f64 * self.matrix_passes_per_iteration as f64
            + 2.0 * spec.points() as f64 * self.vector_passes_per_iteration as f64
    }
}

impl Platform for SpmvAcceleratorModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn iteration_cost(&self, spec: &WorkloadSpec) -> IterationCost {
        // Time-stepped equations (Heat/Wave) don't run a Krylov solve:
        // each step is one explicit SpMV pass, so the per-iteration cost
        // drops to a single matrix + output-vector stream.
        let (seconds, bytes, flops) = match spec.kind {
            PdeKind::Heat | PdeKind::Wave => {
                // One explicit SpMV step: no Krylov scalar chains, so no
                // sequential tax beyond the stream itself.
                let bytes =
                    spec.nnz() as f64 * BYTES_PER_NNZ + 3.0 * spec.points() as f64 * BYTES_PER_VEC;
                let t = bytes / (self.bandwidth * self.bandwidth_efficiency);
                (t, bytes, 2.0 * spec.nnz() as f64)
            }
            PdeKind::Laplace | PdeKind::Poisson => (
                self.seconds_per_iteration(spec),
                self.bytes_per_iteration(spec),
                self.flops_per_iteration(spec),
            ),
        };
        IterationCost {
            seconds,
            joules: (bytes * DRAM_PJ_PER_BYTE + flops * F64_FLOP_PJ) * 1e-12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_operations_dominate_krylov_iterations() {
        // The §7.2 argument: the sequential scalar chains, not the
        // streaming, are the bottleneck of a Krylov iteration on a
        // budget-normalized accelerator.
        let alr = SpmvAcceleratorModel::alrescha();
        let spec = WorkloadSpec::new(PdeKind::Laplace, 1_000, 1);
        let total = alr.seconds_per_iteration(&spec);
        let streaming = alr.bytes_per_iteration(&spec) / (128e9 * 0.8);
        let sequential = 0.23 * alr.flops_per_iteration(&spec) / 200e6;
        assert!((total - streaming - sequential).abs() < 1e-12);
        assert!(
            sequential > 5.0 * streaming,
            "sequential {sequential} should dominate streaming {streaming}"
        );
    }

    #[test]
    fn memaccel_pays_more_sequential_tax_than_alrescha() {
        // The paper's ordering (FDMAX gains 3.6x over MemAccel vs 2.9x
        // over Alrescha) implies MemAccel's iterations are costlier.
        let mem = SpmvAcceleratorModel::memaccel();
        let alr = SpmvAcceleratorModel::alrescha();
        let spec = WorkloadSpec::new(PdeKind::Laplace, 500, 1);
        assert!(mem.seconds_per_iteration(&spec) > alr.seconds_per_iteration(&spec));
    }

    #[test]
    fn explicit_steps_cost_less_than_krylov_iterations() {
        let alr = SpmvAcceleratorModel::alrescha();
        let krylov = alr.run(&WorkloadSpec::new(PdeKind::Laplace, 1_000, 10));
        let explicit = alr.run(&WorkloadSpec::new(PdeKind::Heat, 1_000, 10));
        assert!(explicit.seconds < krylov.seconds);
    }

    #[test]
    fn five_multiplications_per_point_in_spmv_form() {
        // The computation-reuse argument: SpMV multiplies every nonzero.
        let spec = WorkloadSpec::new(PdeKind::Laplace, 102, 1);
        let interior = spec.interior_points() as f64;
        let per_point = spec.nnz() as f64 / interior;
        assert!(per_point > 4.7 && per_point <= 5.0, "{per_point} nnz/point");
    }

    #[test]
    fn time_scales_with_grid_area() {
        let mem = SpmvAcceleratorModel::memaccel();
        let small = mem.run(&WorkloadSpec::new(PdeKind::Laplace, 100, 1));
        let big = mem.run(&WorkloadSpec::new(PdeKind::Laplace, 1_000, 1));
        let ratio = big.seconds / small.seconds;
        assert!(ratio > 90.0 && ratio < 110.0, "ratio {ratio}");
    }

    #[test]
    fn energy_positive_and_dram_dominated() {
        let alr = SpmvAcceleratorModel::alrescha();
        let spec = WorkloadSpec::new(PdeKind::Poisson, 500, 100);
        let m = alr.run(&spec);
        assert!(m.energy_joules > 0.0);
        // DRAM share: bytes * 160 pJ/B should be most of the energy.
        let dram_j = alr.bytes_per_iteration(&spec) * 100.0 * DRAM_PJ_PER_BYTE * 1e-12;
        assert!(dram_j / m.energy_joules > 0.5);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(SpmvAcceleratorModel::memaccel().name(), "MemAccel");
        assert_eq!(SpmvAcceleratorModel::alrescha().name(), "Alrescha");
    }
}
