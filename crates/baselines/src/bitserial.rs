//! The qualitative prior-accelerator comparison (paper Table 2 and §7.5).
//!
//! `BitSerial` [Mu et al., ESSCIRC'22] "assumes an identical step size for
//! each dimension" and "only supports specific grid sizes", so the paper
//! itself declines a quantitative comparison (§7.5) and instead contrasts
//! the published characteristics. This module carries that table.

use core::fmt;

/// One row of Table 2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table2Row {
    /// Accelerator name.
    pub accelerator: &'static str,
    /// Computing precision.
    pub precision: &'static str,
    /// Technology node and flavour.
    pub technology: &'static str,
    /// Update method.
    pub update_method: &'static str,
    /// Supported applications.
    pub applications: &'static str,
    /// Supported grid / problem sizes.
    pub grid_size: &'static str,
}

impl fmt::Display for Table2Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} {:<22} {:<16} {:<22} {:<34} {}",
            self.accelerator,
            self.precision,
            self.technology,
            self.update_method,
            self.applications,
            self.grid_size
        )
    }
}

/// The full Table 2, in the paper's row order.
pub fn table2() -> Vec<Table2Row> {
    vec![
        Table2Row {
            accelerator: "Guo et al.",
            precision: "Fixed 16-bit",
            technology: "65 nm (Analog)",
            update_method: "-",
            applications: "Approximate Computing",
            grid_size: "N/A",
        },
        Table2Row {
            accelerator: "Chen et al.",
            precision: "Fixed 5-bit",
            technology: "180 nm (Analog)",
            update_method: "Hybrid method",
            applications: "2D Laplace/Poisson Eq.",
            grid_size: "Up to 128x128",
        },
        Table2Row {
            accelerator: "Mu et al. [32]",
            precision: "Dynamic 4/8/12/16-bit",
            technology: "65 nm (Digital)",
            update_method: "Checker-Board",
            applications: "2D Laplace Eq.",
            grid_size: "Fixed 21x21",
        },
        Table2Row {
            accelerator: "Mu et al. [33]",
            precision: "Fixed 16-bit",
            technology: "65 nm (Digital)",
            update_method: "Checker-Board",
            applications: "2D/3D Laplace/Poisson Eq.",
            grid_size: "Fixed 64x64 (2D), 16x16x16 (3D)",
        },
        Table2Row {
            accelerator: "MemAccel",
            precision: "Float 64-bit",
            technology: "15 nm (Digital)",
            update_method: "BiCG-STAB",
            applications: "Systems of linear equations",
            grid_size: "Arbitrary Size",
        },
        Table2Row {
            accelerator: "Alrescha",
            precision: "Float 64-bit",
            technology: "28 nm (Digital)",
            update_method: "PCG",
            applications: "Systems of linear equations",
            grid_size: "Arbitrary Size",
        },
        Table2Row {
            accelerator: "This work",
            precision: "Float 32-bit",
            technology: "32 nm (Digital)",
            update_method: "Jacobi/Hybrid method",
            applications: "2D Laplace/Poisson/Heat/Wave Eq.",
            grid_size: "Arbitrary Size",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_seven_rows_in_order() {
        let t = table2();
        assert_eq!(t.len(), 7);
        assert_eq!(t[0].accelerator, "Guo et al.");
        assert_eq!(t[6].accelerator, "This work");
    }

    #[test]
    fn this_work_supports_all_four_equations_at_arbitrary_size() {
        let t = table2();
        let us = &t[6];
        assert!(us.applications.contains("Laplace"));
        assert!(us.applications.contains("Wave"));
        assert_eq!(us.grid_size, "Arbitrary Size");
        assert_eq!(us.precision, "Float 32-bit");
    }

    #[test]
    fn only_krylov_accelerators_and_fdmax_are_size_flexible() {
        let flexible: Vec<_> = table2()
            .into_iter()
            .filter(|r| r.grid_size == "Arbitrary Size")
            .map(|r| r.accelerator)
            .collect();
        assert_eq!(flexible, vec!["MemAccel", "Alrescha", "This work"]);
    }

    #[test]
    fn rows_render_as_aligned_text() {
        let s = table2()[6].to_string();
        assert!(s.contains("This work"));
        assert!(s.contains("32 nm"));
    }
}
