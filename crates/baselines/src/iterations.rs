//! Iteration-count measurement and extrapolation.
//!
//! The paper derives the baseline accelerators' iteration counts "from
//! the CPU implementation" (§6.4). We do the same by actually running the
//! `fdm` solvers: stationary methods ([`measure_relaxation_iterations`])
//! and Krylov methods ([`measure_krylov_iterations`]) at any precision.
//!
//! Grids at the top of the paper's sweep (10K x 10K) are too large to run
//! a stationary solve point-by-point in the harness, so counts measured
//! at a feasible base size are extrapolated with the standard asymptotic
//! laws: for the five-point Laplacian, Jacobi/Gauss-Seidel-type methods
//! need `O(n²)` iterations while CG-type methods need `O(n)`
//! (condition-number square root). Time-stepped equations (Heat/Wave) use
//! a fixed step count everywhere by definition.

use fdm::convergence::StopCondition;
use fdm::pde::PdeKind;
use fdm::precision::Scalar;
use fdm::solver::krylov::{bicgstab, conjugate_gradient, preconditioned_cg};
use fdm::solver::{solve, UpdateMethod};
use fdm::sparse::StencilSystem;
use fdm::workload::benchmark_problem;

/// Arithmetic precision of a platform's solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Precision {
    /// IEEE binary32 (FDMAX's native precision).
    F32,
    /// IEEE binary64 (the CPU/GPU/Krylov baselines).
    F64,
}

/// Which Krylov method a baseline accelerator runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KrylovMethod {
    /// Plain conjugate gradient.
    Cg,
    /// Jacobi-preconditioned CG (Alrescha).
    Pcg,
    /// BiCG-STAB (`MemAccel`).
    BicgStab,
}

/// Asymptotic iteration-count scaling in the grid edge length `n`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScalingLaw {
    /// Stationary methods on the five-point Laplacian: `O(n²)`.
    Stationary,
    /// Krylov methods: `O(n)`.
    Krylov,
    /// Time stepping: independent of `n`.
    Fixed,
}

/// Extrapolates a count measured at `base_n` to `target_n` under `law`.
pub fn extrapolate(count_at_base: u64, base_n: usize, target_n: usize, law: ScalingLaw) -> u64 {
    let ratio = target_n as f64 / base_n as f64;
    let factor = match law {
        ScalingLaw::Stationary => ratio * ratio,
        ScalingLaw::Krylov => ratio,
        ScalingLaw::Fixed => 1.0,
    };
    ((count_at_base as f64 * factor).round() as u64).max(1)
}

/// Measures the iterations a stationary method needs on the paper's
/// benchmark problem of `kind` at size `n x n`, at the given precision.
///
/// Time-stepped equations return their fixed step count (`steps`).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn measure_relaxation_iterations(
    kind: PdeKind,
    n: usize,
    steps: usize,
    method: UpdateMethod,
    precision: Precision,
    tolerance: f64,
    max_iterations: usize,
) -> u64 {
    if !kind.is_steady_state() {
        return steps as u64;
    }
    match precision {
        Precision::F64 => measure_at::<f64>(kind, n, steps, method, tolerance, max_iterations),
        Precision::F32 => measure_at::<f32>(kind, n, steps, method, tolerance, max_iterations),
    }
}

fn measure_at<T: Scalar>(
    kind: PdeKind,
    n: usize,
    steps: usize,
    method: UpdateMethod,
    tolerance: f64,
    max_iterations: usize,
) -> u64 {
    let problem = benchmark_problem::<T>(kind, n, steps).expect("n >= 3");
    let result = solve(
        &problem,
        method,
        &StopCondition::tolerance(tolerance, max_iterations),
    );
    result.iterations() as u64
}

/// Measures the iterations a Krylov method needs on the assembled
/// `A·u = b` system of the same benchmark problem, with a relative
/// residual tolerance.
///
/// Time-stepped equations return their fixed step count — the `SpMV`
/// accelerators step them explicitly (one matrix pass per step) instead
/// of solving a system.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn measure_krylov_iterations(
    kind: PdeKind,
    n: usize,
    steps: usize,
    method: KrylovMethod,
    tolerance: f64,
    max_iterations: usize,
) -> u64 {
    if !kind.is_steady_state() {
        return steps as u64;
    }
    let problem = benchmark_problem::<f64>(kind, n, steps).expect("n >= 3");
    let system = StencilSystem::assemble(&problem).expect("benchmark grids have an interior");
    let result = match method {
        KrylovMethod::Cg => {
            conjugate_gradient(&system.matrix, &system.rhs, tolerance, max_iterations)
        }
        KrylovMethod::Pcg => {
            preconditioned_cg(&system.matrix, &system.rhs, tolerance, max_iterations)
        }
        KrylovMethod::BicgStab => bicgstab(&system.matrix, &system.rhs, tolerance, max_iterations),
    };
    result.iterations as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extrapolation_laws() {
        assert_eq!(extrapolate(100, 100, 1_000, ScalingLaw::Stationary), 10_000);
        assert_eq!(extrapolate(100, 100, 1_000, ScalingLaw::Krylov), 1_000);
        assert_eq!(extrapolate(100, 100, 1_000, ScalingLaw::Fixed), 100);
        assert_eq!(extrapolate(0, 100, 200, ScalingLaw::Fixed), 1, "floor of 1");
    }

    #[test]
    fn time_stepped_kinds_return_fixed_steps() {
        let n = measure_relaxation_iterations(
            PdeKind::Heat,
            32,
            123,
            UpdateMethod::Jacobi,
            Precision::F64,
            1e-4,
            10_000,
        );
        assert_eq!(n, 123);
        let k = measure_krylov_iterations(PdeKind::Wave, 32, 55, KrylovMethod::Pcg, 1e-4, 10_000);
        assert_eq!(k, 55);
    }

    #[test]
    fn krylov_needs_far_fewer_iterations_than_jacobi() {
        let jacobi = measure_relaxation_iterations(
            PdeKind::Laplace,
            48,
            0,
            UpdateMethod::Jacobi,
            Precision::F64,
            1e-5,
            200_000,
        );
        let cg = measure_krylov_iterations(PdeKind::Laplace, 48, 0, KrylovMethod::Cg, 1e-5, 10_000);
        assert!(
            cg * 5 < jacobi,
            "CG ({cg}) should need far fewer iterations than Jacobi ({jacobi})"
        );
    }

    #[test]
    fn f32_never_converges_faster_than_f64() {
        for method in [UpdateMethod::Jacobi, UpdateMethod::Hybrid] {
            let f64_iters = measure_relaxation_iterations(
                PdeKind::Laplace,
                40,
                0,
                method,
                Precision::F64,
                5e-5,
                200_000,
            );
            let f32_iters = measure_relaxation_iterations(
                PdeKind::Laplace,
                40,
                0,
                method,
                Precision::F32,
                5e-5,
                200_000,
            );
            assert!(
                f32_iters >= f64_iters,
                "{method}: f32 {f32_iters} vs f64 {f64_iters}"
            );
        }
    }

    #[test]
    fn stationary_counts_grow_roughly_quadratically() {
        let small = measure_relaxation_iterations(
            PdeKind::Laplace,
            24,
            0,
            UpdateMethod::Jacobi,
            Precision::F64,
            1e-5,
            500_000,
        );
        let big = measure_relaxation_iterations(
            PdeKind::Laplace,
            48,
            0,
            UpdateMethod::Jacobi,
            Precision::F64,
            1e-5,
            500_000,
        );
        let ratio = big as f64 / small as f64;
        assert!(
            ratio > 2.0 && ratio < 8.0,
            "doubling n should roughly quadruple Jacobi iterations, got {ratio}"
        );
    }

    #[test]
    fn methods_order_as_in_fig1b() {
        let tol = 1e-5;
        let j = measure_relaxation_iterations(
            PdeKind::Laplace,
            40,
            0,
            UpdateMethod::Jacobi,
            Precision::F64,
            tol,
            500_000,
        );
        let h = measure_relaxation_iterations(
            PdeKind::Laplace,
            40,
            0,
            UpdateMethod::Hybrid,
            Precision::F64,
            tol,
            500_000,
        );
        let g = measure_relaxation_iterations(
            PdeKind::Laplace,
            40,
            0,
            UpdateMethod::GaussSeidel,
            Precision::F64,
            tol,
            500_000,
        );
        assert!(g < h && h < j, "g={g} h={h} j={j}");
    }
}
