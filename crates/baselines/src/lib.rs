//! Performance and energy models of the platforms FDMAX is compared
//! against (paper §6.4):
//!
//! * [`cpu`] — Intel Xeon Gold 6226R running the paper's Python
//!   five-point-stencil implementation (CPU-J, CPU-G);
//! * [`gpu`] — NVIDIA RTX 3090 running the open-source CUDA kernels
//!   driven per-iteration from the host (GPU-J, GPU-C);
//! * [`spmv_accel`] — `MemAccel` (BiCG-STAB) and Alrescha (PCG): SpMV-based
//!   scientific-computing accelerators normalized to the same 128 GB/s
//!   memory budget, with their sequential-operation fractions;
//! * [`bitserial`] — the qualitative Table 2 comparison (`BitSerial` cannot
//!   be compared quantitatively: fixed grid sizes, equal-step-size
//!   restriction);
//! * [`iterations`] — measured iteration counts (running the actual `fdm`
//!   solvers, exactly the paper's "derived from the CPU implementation")
//!   plus the standard extrapolation laws for grids too large to measure.
//!
//! All models implement [`platform::Platform`] by pricing one iteration
//! ([`platform::IterationCost`]); the provided `run` drives that cost
//! through the generic [`fdm::engine::Session`] loop shared with the
//! software solvers and the FDMAX simulator. The benchmark harness
//! composes them with the FDMAX simulator/performance model to regenerate
//! Fig. 7 (speedup) and Fig. 8 (energy).

pub mod bitserial;
pub mod cpu;
pub mod gpu;
pub mod iterations;
pub mod platform;
pub mod spmv_accel;

pub use platform::{CostEngine, IterationCost, Platform, RunMetrics, WorkloadSpec};
