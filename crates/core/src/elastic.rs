//! Elastic decomposition of the PE array (paper §4.3, Fig. 5).
//!
//! The physical `R x C` array reconfigures into `s` subarray chains of
//! width `(R/s)·C`, where the granularity of reconfiguration is one
//! physical row (`1 x C`). An 8x8 array therefore offers 1x64, 2x(1x32),
//! 4x(1x16) and 8x(1x8). Short-and-fat grids prefer one long chain;
//! tall-and-thin grids prefer many short chains so the rows split across
//! subarrays instead of idling PEs. [`ElasticConfig::plan`] picks the
//! cycle-minimizing option using the exact mapping arithmetic of
//! [`crate::mapping`].

use crate::config::FdmaxConfig;
use crate::mapping::iteration_compute_cycles;
use crate::resilience::FdmaxError;
use core::fmt;

/// One decomposition of the PE array: `subarrays` chains of `width` PEs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ElasticConfig {
    /// Number of independent subarray chains.
    pub subarrays: usize,
    /// PEs per chain.
    pub width: usize,
}

impl ElasticConfig {
    /// All decompositions a physical array supports: for each divisor `k`
    /// of `pe_rows`, `pe_rows/k` chains of `k·pe_cols` PEs. Sorted by
    /// decreasing width (the monolithic chain first).
    pub fn options(config: &FdmaxConfig) -> Vec<ElasticConfig> {
        let mut opts: Vec<ElasticConfig> = (1..=config.pe_rows)
            .filter(|k| config.pe_rows.is_multiple_of(*k))
            .map(|k| ElasticConfig {
                subarrays: config.pe_rows / k,
                width: k * config.pe_cols,
            })
            .collect();
        opts.sort_by_key(|o| core::cmp::Reverse(o.width));
        opts
    }

    /// Picks the decomposition minimizing one iteration's compute cycles
    /// for a `rows x cols` grid. Ties go to the wider chain (fewer halo
    /// seams).
    ///
    /// # Panics
    ///
    /// Panics if the grid has no interior (`rows < 3` or `cols < 3`);
    /// [`ElasticConfig::try_plan`] is the non-panicking variant used by
    /// the validated construction paths.
    pub fn plan(config: &FdmaxConfig, rows: usize, cols: usize) -> ElasticConfig {
        match Self::try_plan(config, rows, cols) {
            Ok(e) => e,
            Err(_) => panic!("grid needs an interior"),
        }
    }

    /// Fallible [`ElasticConfig::plan`]: rejects degenerate configurations
    /// and interior-less grids instead of panicking, so planning routes
    /// through the same rejection points as the constructors.
    ///
    /// # Errors
    ///
    /// [`FdmaxError::Config`] for an invalid configuration,
    /// [`FdmaxError::GridTooSmall`] for a grid without an interior.
    pub fn try_plan(
        config: &FdmaxConfig,
        rows: usize,
        cols: usize,
    ) -> Result<ElasticConfig, FdmaxError> {
        config.validate()?;
        if rows < 3 || cols < 3 {
            return Err(FdmaxError::GridTooSmall { rows, cols });
        }
        Ok(Self::options(config)
            .into_iter()
            .min_by_key(|e| {
                iteration_compute_cycles(
                    rows,
                    cols,
                    e.subarrays,
                    e.width,
                    e.sub_fifo_depth(config),
                    config.buffer_banks,
                )
            })
            .expect("a physical array always has at least one decomposition"))
    }

    /// Total PEs across all chains.
    pub fn pe_count(&self) -> usize {
        self.subarrays * self.width
    }

    /// Depth of each reconfigured sub-FIFO: the physical per-row FIFOs
    /// (one per PE-array row, `fifo_depth` entries each) are chained into
    /// one sub-FIFO per subarray (Fig. 5d), so a wider chain gets a
    /// proportionally deeper FIFO.
    pub fn sub_fifo_depth(&self, config: &FdmaxConfig) -> usize {
        config.fifo_depth * config.pe_rows / self.subarrays
    }
}

impl fmt::Display for ElasticConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} x (1x{})", self.subarrays, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_for_the_default_array() {
        let opts = ElasticConfig::options(&FdmaxConfig::paper_default());
        assert_eq!(
            opts,
            vec![
                ElasticConfig {
                    subarrays: 1,
                    width: 64
                },
                ElasticConfig {
                    subarrays: 2,
                    width: 32
                },
                ElasticConfig {
                    subarrays: 4,
                    width: 16
                },
                ElasticConfig {
                    subarrays: 8,
                    width: 8
                },
            ]
        );
        for o in &opts {
            assert_eq!(o.pe_count(), 64, "every option uses all PEs");
        }
    }

    #[test]
    fn fig5_options_for_4x16_array() {
        let mut c = FdmaxConfig::paper_default();
        c.pe_rows = 4;
        c.pe_cols = 16;
        let opts = ElasticConfig::options(&c);
        // Fig. 5: 1x64, 2x(1x32), 4x(1x16).
        assert!(opts.contains(&ElasticConfig {
            subarrays: 1,
            width: 64
        }));
        assert!(opts.contains(&ElasticConfig {
            subarrays: 2,
            width: 32
        }));
        assert!(opts.contains(&ElasticConfig {
            subarrays: 4,
            width: 16
        }));
        assert_eq!(opts.len(), 3);
    }

    #[test]
    fn planner_prefers_wide_chain_for_wide_grids() {
        let cfg = FdmaxConfig::paper_default();
        let e = ElasticConfig::plan(&cfg, 50, 4_000);
        assert_eq!(
            e,
            ElasticConfig {
                subarrays: 1,
                width: 64
            }
        );
    }

    #[test]
    fn planner_splits_for_tall_thin_grids() {
        let cfg = FdmaxConfig::paper_default();
        let e = ElasticConfig::plan(&cfg, 4_000, 20);
        // A 20-column grid leaves a 1x64 chain two-thirds idle; the
        // planner must split (bank pressure caps how far: 2x(1x32) wins
        // over 8x(1x8) at 32 banks).
        assert!(
            e.subarrays >= 2,
            "tall-thin grid should split rows, got {e}"
        );
        let monolithic = iteration_compute_cycles(4_000, 20, 1, 64, 512, cfg.buffer_banks);
        let planned = iteration_compute_cycles(
            4_000,
            20,
            e.subarrays,
            e.width,
            e.sub_fifo_depth(&cfg),
            cfg.buffer_banks,
        );
        assert!(
            planned * 3 < monolithic * 2,
            "planned {planned} should clearly beat monolithic {monolithic}"
        );
    }

    #[test]
    fn planner_never_loses_to_any_option() {
        let cfg = FdmaxConfig::paper_default();
        for (rows, cols) in [(100, 100), (3, 100), (100, 3), (513, 47), (47, 513)] {
            let planned = ElasticConfig::plan(&cfg, rows, cols);
            let planned_cycles = iteration_compute_cycles(
                rows,
                cols,
                planned.subarrays,
                planned.width,
                planned.sub_fifo_depth(&cfg),
                cfg.buffer_banks,
            );
            for o in ElasticConfig::options(&cfg) {
                let c = iteration_compute_cycles(
                    rows,
                    cols,
                    o.subarrays,
                    o.width,
                    o.sub_fifo_depth(&cfg),
                    cfg.buffer_banks,
                );
                assert!(
                    planned_cycles <= c,
                    "{planned} beaten by {o} on {rows}x{cols}"
                );
            }
        }
    }

    #[test]
    fn display_shows_decomposition() {
        let e = ElasticConfig {
            subarrays: 4,
            width: 16,
        };
        assert_eq!(e.to_string(), "4 x (1x16)");
    }
}
