//! Simulation reports: cycles, events, time, energy, layout.

use crate::config::FdmaxConfig;
use crate::elastic::ElasticConfig;
use core::fmt;
use fdm::convergence::ResidualHistory;
use memmodel::energy::{EnergyBreakdown, OpEnergies};
use memmodel::layout::LayoutReport;
use memmodel::EventCounters;

/// Everything measured during one accelerator solve.
#[derive(Clone, Debug)]
pub struct SimReport {
    config: FdmaxConfig,
    elastic: ElasticConfig,
    counters: EventCounters,
    history: ResidualHistory,
    iterations: usize,
}

impl SimReport {
    /// Assembles a report from the simulator's measurements.
    pub fn new(
        config: FdmaxConfig,
        elastic: ElasticConfig,
        counters: EventCounters,
        history: ResidualHistory,
        iterations: usize,
    ) -> Self {
        SimReport {
            config,
            elastic,
            counters,
            history,
            iterations,
        }
    }

    /// The configuration the solve ran on.
    pub fn config(&self) -> &FdmaxConfig {
        &self.config
    }

    /// The elastic decomposition used.
    pub fn elastic(&self) -> ElasticConfig {
        self.elastic
    }

    /// Exact event counts.
    pub fn counters(&self) -> &EventCounters {
        &self.counters
    }

    /// Per-iteration update norms.
    pub fn history(&self) -> &ResidualHistory {
        &self.history
    }

    /// Completed iterations.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Total cycles.
    pub fn cycles(&self) -> u64 {
        self.counters.cycles
    }

    /// Wall-clock seconds at the configured clock.
    pub fn seconds(&self) -> f64 {
        self.counters.cycles as f64 / self.config.clock_hz
    }

    /// Event-based energy at the FDMAX 32 nm per-op table.
    pub fn energy(&self) -> EnergyBreakdown {
        EnergyBreakdown::from_counters(&self.counters, &OpEnergies::fdmax_32nm())
    }

    /// Event (dynamic) energy in joules.
    pub fn energy_joules(&self) -> f64 {
        self.energy().total_joules()
    }

    /// Background energy: the synthesized design's power (Table 3 layout
    /// model) integrated over the run — clock tree, leakage and idle
    /// switching that per-event accounting misses.
    pub fn background_energy_joules(&self) -> f64 {
        self.layout().total_power_mw() * 1e-3 * self.seconds()
    }

    /// Total energy: events plus background.
    pub fn total_energy_joules(&self) -> f64 {
        self.energy_joules() + self.background_energy_joules()
    }

    /// The Table 3 layout report for this configuration.
    pub fn layout(&self) -> LayoutReport {
        LayoutReport::new(&self.config.layout_params())
    }

    /// Effective throughput in grid-point updates per second.
    pub fn updates_per_second(&self, interior_points: u64) -> f64 {
        if self.seconds() == 0.0 {
            return 0.0;
        }
        interior_points as f64 * self.iterations as f64 / self.seconds()
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "FDMAX solve: {} iterations on {} ({})",
            self.iterations, self.elastic, self.config
        )?;
        writeln!(
            f,
            "  {} cycles = {:.6} ms, energy {:.6} mJ",
            self.cycles(),
            self.seconds() * 1e3,
            self.energy_joules() * 1e3
        )?;
        write!(f, "{}", self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> SimReport {
        let mut counters = EventCounters::new();
        counters.cycles = 2_000_000; // 10 ms at 200 MHz
        counters.fp_mul = 1_000;
        counters.dram_read = 500;
        let mut history = ResidualHistory::new();
        history.push(1.0);
        history.push(0.5);
        SimReport::new(
            FdmaxConfig::paper_default(),
            ElasticConfig {
                subarrays: 1,
                width: 64,
            },
            counters,
            history,
            2,
        )
    }

    #[test]
    fn seconds_follow_clock() {
        let r = sample_report();
        assert!((r.seconds() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn energy_positive_and_dram_dominated() {
        let r = sample_report();
        let e = r.energy();
        assert!(e.total_joules() > 0.0);
        assert!(e.dram_pj > e.compute_pj);
    }

    #[test]
    fn throughput_math() {
        let r = sample_report();
        // 2 iterations x 100 points / 0.01 s.
        assert!((r.updates_per_second(100) - 20_000.0).abs() < 1e-6);
    }

    #[test]
    fn accessors_round_trip() {
        let r = sample_report();
        assert_eq!(r.iterations(), 2);
        assert_eq!(r.cycles(), 2_000_000);
        assert_eq!(r.history().len(), 2);
        assert_eq!(r.elastic().width, 64);
        assert_eq!(r.config().pe_count(), 64);
        assert!((r.layout().total_power_mw() - 1711.27).abs() < 0.5);
    }

    #[test]
    fn display_mentions_cycles_and_energy() {
        let s = sample_report().to_string();
        assert!(s.contains("cycles"));
        assert!(s.contains("mJ"));
    }
}
