//! The reconfigurable FDMAX processing element (paper §4.2, Fig. 2).
//!
//! Each PE owns one grid column of the current column batch and streams
//! down its rows, one input element per cycle. Microarchitectural state:
//!
//! * `R_z-1`, `R_z-2` — the sliding-window registers holding the past two
//!   input elements (the 1-D 3-tap convolution window);
//! * weight registers `W_v`, `W_h`, `W_s`, written once per solve;
//! * a two-stage pipeline: stage 1 produces the column-wise product
//!   `w_v·(in + R_z-2) + w_s·R_z-1 + b` and the row-wise partial product
//!   `w_h·R_z-1` (shared with both horizontal neighbours); stage 2
//!   assembles the final product from the neighbours' partials and runs
//!   the DIFF logic;
//! * the Jacobi/Hybrid mux (§4.2.3): in hybrid mode the freshly assembled
//!   output of the row above is forwarded in place of `R_z-2`.
//!
//! Computation reuse: a full five-point output costs exactly **three**
//! multiplications (`w_v` pair, `w_s` self, `w_h` partial — the partial
//! serves both neighbours), versus five for the `SpMV` formulation; the
//! `w_s` multiplier and the offset port are power-gated away when the
//! equation doesn't need them (Laplace/Poisson have `w_s = 0`, Laplace
//! and Heat have no offset). Functionally the datapath always evaluates
//! the full canonical order of [`fdm::stencil`], so results are bit-exact
//! against the software solvers regardless of gating; only the *event
//! counts* reflect the gated configuration.

use fdm::stencil::FivePointStencil;
use memmodel::EventCounters;

/// Static per-solve configuration of a PE's datapath.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeConfig {
    /// The stencil weights loaded into `W_v`, `W_h`, `W_s`.
    pub stencil: FivePointStencil<f32>,
    /// `true` when the equation has a nonzero self term (`w_s != 0`);
    /// gates the `w_s` multiplier and its adder.
    pub self_term: bool,
    /// `true` when the equation has an offset operand (Poisson's folded
    /// source, Wave's `-U^{k-1}`); gates the `OffsetBuffer` port and adder.
    pub offset_term: bool,
    /// `true` for the Hybrid update method: stage 2's freshly assembled
    /// output replaces `R_z-2` for the next window.
    pub hybrid: bool,
}

impl PeConfig {
    /// Builds the PE configuration for a stencil, deriving the gating
    /// flags from the weights/offset presence.
    pub fn new(stencil: FivePointStencil<f32>, offset_term: bool, hybrid: bool) -> Self {
        PeConfig {
            stencil,
            self_term: stencil.w_s != 0.0,
            offset_term,
            hybrid,
        }
    }

    /// Multiplications the configured datapath performs per stage-1 cycle
    /// (the computation-reuse count of §3.2.3): `w_v` pair + `w_h`
    /// partial, plus `w_s` when gated on.
    pub fn muls_per_cycle(&self) -> u64 {
        2 + u64::from(self.self_term)
    }

    /// Additions per stage-1 cycle: the window pair, plus the self-term
    /// and offset adders when gated on.
    pub fn adds_per_stage1(&self) -> u64 {
        1 + u64::from(self.self_term) + u64::from(self.offset_term)
    }
}

/// The stage-1 → stage-2 pipeline latch.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Stage1Latch {
    /// Column-wise product `R_cur` (pair + self + offset).
    pub col_product: f32,
    /// Row-wise partial product `w_h · R_z-1`, broadcast to neighbours.
    pub partial: f32,
    /// The old centre value `U^k[center]` feeding the DIFF logic.
    pub old_center: f32,
    /// The centre row this latch belongs to.
    pub center_row: usize,
    /// `true` when the latch holds a real window (not warm-up garbage).
    pub valid: bool,
}

/// One processing element.
#[derive(Clone, Debug)]
pub struct Pe {
    config: PeConfig,
    r_z1: f32,
    r_z2: f32,
    latch: Stage1Latch,
    diff_acc: f64,
}

impl Pe {
    /// Creates a PE with the given datapath configuration and cleared
    /// registers.
    pub fn new(config: PeConfig) -> Self {
        Pe {
            config,
            r_z1: 0.0,
            r_z2: 0.0,
            latch: Stage1Latch::default(),
            diff_acc: 0.0,
        }
    }

    /// The datapath configuration.
    pub fn config(&self) -> &PeConfig {
        &self.config
    }

    /// Clears the window registers and pipeline latch (start of a column
    /// batch). The DIFF accumulator persists across batches — it is
    /// drained once per iteration by the ECU.
    pub fn reset_window(&mut self) {
        self.r_z1 = 0.0;
        self.r_z2 = 0.0;
        self.latch = Stage1Latch::default();
    }

    /// Current pipeline latch (what stage 2 consumes this cycle).
    pub fn latch(&self) -> &Stage1Latch {
        &self.latch
    }

    /// Stage 1: consume one input element.
    ///
    /// `offset` is the `OffsetBuffer` operand for the window's centre row
    /// (zero when gated off); `fresh_top` carries the hybrid-forwarded
    /// stage-2 output of the row above (`Some` only in hybrid mode when
    /// that output was completely assembled this cycle).
    ///
    /// `center_row` identifies the window centre (the row `R_z-1`
    /// currently holds); `valid` marks whether the window is a real one.
    /// Event counts for the configured datapath go to `counters`.
    pub fn stage1(
        &mut self,
        input: f32,
        offset: f32,
        fresh_top: Option<f32>,
        center_row: usize,
        valid: bool,
        counters: &mut EventCounters,
    ) {
        let s = &self.config.stencil;
        let top = match fresh_top {
            Some(v) if self.config.hybrid => v,
            _ => self.r_z2,
        };
        // Canonical order (fdm::stencil::column_product): w_v*(top+bottom)
        // + w_s*center + b. The gated-off terms still execute functionally
        // (they are exact no-ops: w_s == 0.0 or b == 0.0) so the result is
        // bit-identical to the software solvers; the counters only charge
        // for the configured datapath.
        let pair = top + input;
        let col = s.w_v * pair + s.w_s * self.r_z1 + offset;
        let partial = s.w_h * self.r_z1;

        self.latch = Stage1Latch {
            col_product: col,
            partial,
            old_center: self.r_z1,
            center_row,
            valid,
        };
        self.r_z2 = self.r_z1;
        self.r_z1 = input;

        counters.fp_mul += self.config.muls_per_cycle();
        counters.fp_add += self.config.adds_per_stage1();
        // RF traffic: read R_z-1 (x2), R_z-2 (or forward), W_v, W_h
        // [, W_s]; write R_z-1, R_z-2, R_cur, R_next/R_prev latch.
        counters.rf_read += 5 + u64::from(self.config.self_term);
        counters.rf_write += 4;
    }

    /// Stage 2: assemble the final product from this PE's latched column
    /// product and the two neighbouring partials, in the canonical order
    /// `(col + p_left) + p_right`, and — when `keep` is set (the output
    /// lands on an interior grid point) — run the DIFF logic.
    ///
    /// Returns the assembled output.
    pub fn stage2_complete(
        &mut self,
        p_left: f32,
        p_right: f32,
        keep: bool,
        counters: &mut EventCounters,
    ) -> f32 {
        let out = (self.latch.col_product + p_left) + p_right;
        counters.fp_add += 2;
        counters.rf_read += 1; // R_cur latch
        counters.rf_write += 1; // R_out
        if keep {
            self.accumulate_diff(out, counters);
        }
        out
    }

    /// Stage 2 for the **last** PE of a chain: only the left partial is
    /// available; the incomplete product `col + p_left` goes to pFIFO.
    /// No DIFF is performed on incomplete products (§4.1).
    pub fn stage2_incomplete(&mut self, p_left: f32, counters: &mut EventCounters) -> f32 {
        counters.fp_add += 1;
        counters.rf_read += 1;
        counters.rf_write += 1;
        self.latch.col_product + p_left
    }

    /// DIFF logic: accumulate the squared update `(out - U^k[center])²`.
    ///
    /// The accumulator is modelled in f64 (a wide accumulator register),
    /// so iteration counts under the stop condition match the software
    /// solvers exactly.
    fn accumulate_diff(&mut self, out: f32, counters: &mut EventCounters) {
        let d = out as f64 - self.latch.old_center as f64;
        self.diff_acc += d * d;
        counters.fp_add += 2; // subtract + accumulate
        counters.fp_mul += 1; // square
        counters.rf_read += 1; // R_diff
        counters.rf_write += 1; // R_diff
    }

    /// Drains the DIFF accumulator (the ECU collects this once per
    /// iteration).
    pub fn take_diff(&mut self) -> f64 {
        core::mem::take(&mut self.diff_acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdm::stencil::{column_product, row_partial, stencil_point};

    fn laplace_config() -> PeConfig {
        PeConfig::new(FivePointStencil::new(0.25f32, 0.25, 0.0), false, false)
    }

    fn heat_config() -> PeConfig {
        PeConfig::new(FivePointStencil::new(0.2f32, 0.2, 0.2), false, false)
    }

    #[test]
    fn gating_flags_derive_from_stencil() {
        assert!(!laplace_config().self_term);
        assert!(heat_config().self_term);
        assert_eq!(laplace_config().muls_per_cycle(), 2);
        assert_eq!(heat_config().muls_per_cycle(), 3);
        assert_eq!(laplace_config().adds_per_stage1(), 1);
        let poisson = PeConfig::new(FivePointStencil::new(0.25f32, 0.25, 0.0), true, false);
        assert_eq!(poisson.adds_per_stage1(), 2);
    }

    #[test]
    fn three_cycle_window_matches_column_product() {
        // Stream u[0], u[1], u[2]; after the third stage1 the latch holds
        // the column product for centre row 1.
        let mut pe = Pe::new(heat_config());
        let mut c = EventCounters::new();
        let s = heat_config().stencil;
        let (u0, u1, u2, b) = (1.5f32, -2.25, 0.75, 0.5);
        pe.stage1(u0, 0.0, None, 0, false, &mut c);
        pe.stage1(u1, 0.0, None, 0, false, &mut c);
        pe.stage1(u2, b, None, 1, true, &mut c);
        let latch = *pe.latch();
        assert!(latch.valid);
        assert_eq!(latch.center_row, 1);
        let expect = column_product(&s, u0, u2, u1, b);
        assert_eq!(latch.col_product.to_bits(), expect.to_bits());
        assert_eq!(latch.partial.to_bits(), row_partial(&s, u1).to_bits());
        assert_eq!(latch.old_center, u1);
    }

    #[test]
    fn stage2_matches_stencil_point_bitwise() {
        let cfg = heat_config();
        let s = cfg.stencil;
        let mut pe = Pe::new(cfg);
        let mut c = EventCounters::new();
        let (top, center, bottom, left, right, b) = (0.3f32, -1.7, 2.9, 0.11, -0.23, 0.05);
        pe.stage1(top, 0.0, None, 0, false, &mut c);
        pe.stage1(center, 0.0, None, 0, false, &mut c);
        pe.stage1(bottom, b, None, 1, true, &mut c);
        let p_l = row_partial(&s, left);
        let p_r = row_partial(&s, right);
        let out = pe.stage2_complete(p_l, p_r, true, &mut c);
        let expect = stencil_point(&s, top, bottom, left, right, center, b);
        assert_eq!(out.to_bits(), expect.to_bits());
    }

    #[test]
    fn hybrid_forwarding_replaces_top() {
        let cfg = PeConfig::new(FivePointStencil::new(0.25f32, 0.25, 0.0), false, true);
        let mut pe = Pe::new(cfg);
        let mut c = EventCounters::new();
        pe.stage1(1.0, 0.0, None, 0, false, &mut c);
        pe.stage1(2.0, 0.0, None, 0, false, &mut c);
        // Forward a fresh top value 10.0 in place of R_z-2 (= 1.0).
        pe.stage1(3.0, 0.0, Some(10.0), 1, true, &mut c);
        // pair = 10 + 3 = 13 -> col = 0.25 * 13 = 3.25.
        assert_eq!(pe.latch().col_product, 3.25);
    }

    #[test]
    fn jacobi_mode_ignores_forwarded_top() {
        let mut pe = Pe::new(laplace_config());
        let mut c = EventCounters::new();
        pe.stage1(1.0, 0.0, None, 0, false, &mut c);
        pe.stage1(2.0, 0.0, None, 0, false, &mut c);
        pe.stage1(3.0, 0.0, Some(10.0), 1, true, &mut c);
        // pair = 1 + 3 = 4 -> col = 1.0.
        assert_eq!(pe.latch().col_product, 1.0);
    }

    #[test]
    fn diff_accumulates_squared_updates() {
        let mut pe = Pe::new(laplace_config());
        let mut c = EventCounters::new();
        pe.stage1(0.0, 0.0, None, 0, false, &mut c);
        pe.stage1(4.0, 0.0, None, 0, false, &mut c); // centre = 4.0
        pe.stage1(0.0, 0.0, None, 1, true, &mut c);
        let out = pe.stage2_complete(0.0, 0.0, true, &mut c); // out = 0.0
        assert_eq!(out, 0.0);
        assert_eq!(pe.take_diff(), 16.0, "(0 - 4)^2");
        assert_eq!(pe.take_diff(), 0.0, "drained");
    }

    #[test]
    fn incomplete_product_skips_diff() {
        let mut pe = Pe::new(laplace_config());
        let mut c = EventCounters::new();
        pe.stage1(0.0, 0.0, None, 0, false, &mut c);
        pe.stage1(4.0, 0.0, None, 0, false, &mut c);
        pe.stage1(8.0, 0.0, None, 1, true, &mut c);
        let incomplete = pe.stage2_incomplete(0.5, &mut c);
        assert_eq!(incomplete, 0.25 * 8.0 + 0.5);
        assert_eq!(pe.take_diff(), 0.0, "incomplete products do not DIFF");
    }

    #[test]
    fn counters_reflect_gated_datapath() {
        let mut c_lap = EventCounters::new();
        let mut pe = Pe::new(laplace_config());
        pe.stage1(1.0, 0.0, None, 0, false, &mut c_lap);
        assert_eq!(c_lap.fp_mul, 2, "Laplace: w_v pair + w_h partial");
        assert_eq!(c_lap.fp_add, 1);

        let mut c_heat = EventCounters::new();
        let mut pe = Pe::new(heat_config());
        pe.stage1(1.0, 0.0, None, 0, false, &mut c_heat);
        assert_eq!(c_heat.fp_mul, 3, "Heat adds the w_s multiplier");
        assert_eq!(c_heat.fp_add, 2);
    }

    #[test]
    fn reset_window_clears_pipeline_but_not_diff() {
        let mut pe = Pe::new(laplace_config());
        let mut c = EventCounters::new();
        pe.stage1(0.0, 0.0, None, 0, false, &mut c);
        pe.stage1(1.0, 0.0, None, 0, false, &mut c);
        pe.stage1(0.0, 0.0, None, 1, true, &mut c);
        pe.stage2_complete(0.0, 0.0, true, &mut c);
        pe.reset_window();
        assert!(!pe.latch().valid);
        assert!(pe.take_diff() > 0.0, "diff survives the batch switch");
    }
}
