//! A PE subarray chain executing `(row block, column batch)` tiles.
//!
//! The chain wires each PE to its neighbours for row-wise partial-product
//! exchange (paper Fig. 4). The border PEs take special roles:
//!
//! * the **last** PE cannot reach its right neighbour: it pushes its
//!   incomplete final product to **pFIFO** and its row-wise partial (the
//!   one the *next column batch* will need) to **nFIFO**;
//! * the **first** PE pops its missing left partial from nFIFO (written
//!   during the previous batch) and hands its own leftward partial to the
//!   **`HaloAdder`**, which completes the incomplete product popped from
//!   pFIFO — resolving the halo between column batches (§4.2.2, §5);
//! * the `HaloAdder`'s outputs bypass the PE DIFF logic; their squared
//!   update is accumulated by the ECU instead (§4.1).
//!
//! Boundary rows/columns of the grid are streamed (their values feed
//! neighbouring partials) but their outputs are discarded — the Dirichlet
//! ring is never rewritten.

use crate::mapping::{ColBatch, RowRange};
use crate::pe::{Pe, PeConfig};
use crate::trace::{Trace, TraceEvent};
use fdm::grid::Grid2D;
use memmodel::fifo::Fifo;
use memmodel::EventCounters;

/// Where stage-1 offset operands come from.
#[derive(Clone, Copy, Debug)]
pub enum OffsetSource<'a> {
    /// No offset: the `OffsetBuffer` port is gated off.
    None,
    /// A static field (Poisson's folded source term).
    Static(&'a Grid2D<f32>),
    /// `scale * U^{k-1}` (the wave equation): the controller loads the
    /// `OffsetBuffer` with the sign-flipped previous field.
    ScaledPrev {
        /// The `U^{k-1}` field.
        field: &'a Grid2D<f32>,
        /// Multiplier applied on load (−1 for the wave equation).
        scale: f32,
    },
}

impl OffsetSource<'_> {
    /// `true` when PEs read an offset operand.
    pub fn is_present(&self) -> bool {
        !matches!(self, OffsetSource::None)
    }

    #[inline]
    fn value(&self, i: usize, j: usize) -> f32 {
        match self {
            OffsetSource::None => 0.0,
            OffsetSource::Static(g) => g[(i, j)],
            OffsetSource::ScaledPrev { field, scale } => *scale * field[(i, j)],
        }
    }
}

/// One subarray chain with its sub-FIFOs and `HaloAdder`.
#[derive(Clone, Debug)]
pub struct Subarray {
    pes: Vec<Pe>,
    fifo_depth: usize,
    nfifo: Fifo<f32>,
    pfifo: Fifo<f32>,
    ecu_diff: f64,
    /// Reused per-cycle buffer of stage-2 completions (indexed by PE);
    /// hoisted out of the cycle loop so a block simulation allocates
    /// nothing per cycle.
    stage2_out: Vec<Option<f32>>,
    /// Reused per-cycle snapshot of every PE's latched partial.
    partials: Vec<f32>,
}

impl Subarray {
    /// Creates a chain of `width` PEs with `fifo_depth`-entry sub-FIFOs.
    ///
    /// The backing queues get one extra slot beyond `fifo_depth`: the
    /// simulator orders each cycle's stage-2 pop after the previous
    /// cycle's stage-1 push, so a full-depth row block transiently holds
    /// `fifo_depth + 1` in-flight entries (hardware overlaps the read and
    /// write within the cycle).
    ///
    /// # Panics
    ///
    /// Panics if `width` or `fifo_depth` is zero.
    pub fn new(width: usize, pe_config: PeConfig, fifo_depth: usize) -> Self {
        assert!(width > 0, "subarray needs at least one PE");
        assert!(fifo_depth > 0, "fifo depth must be nonzero");
        Subarray {
            pes: vec![Pe::new(pe_config); width],
            fifo_depth,
            nfifo: Fifo::new(fifo_depth + 1),
            pfifo: Fifo::new(fifo_depth + 1),
            ecu_diff: 0.0,
            stage2_out: vec![None; width],
            partials: Vec::with_capacity(width),
        }
    }

    /// Number of PEs in the chain.
    pub fn width(&self) -> usize {
        self.pes.len()
    }

    /// Drains the accumulated squared updates of one iteration: every
    /// PE's DIFF register plus the ECU's halo contribution.
    pub fn take_diff(&mut self) -> f64 {
        let mut total: f64 = self.pes.iter_mut().map(Pe::take_diff).sum();
        total += core::mem::take(&mut self.ecu_diff);
        total
    }

    /// Executes one row block over a sequence of column batches, reading
    /// `cur` and writing the interior outputs of rows
    /// `[block.out_lo, block.out_hi)` into `next`.
    ///
    /// Returns the number of simulated (unstalled) cycles; squared updates
    /// accumulate internally (drain with [`take_diff`](Self::take_diff)),
    /// events go to `counters`.
    ///
    /// # Panics
    ///
    /// Panics if a batch is wider than the chain, the block is taller than
    /// the sub-FIFOs, or the block exceeds the grid interior.
    pub fn run_block(
        &mut self,
        block: RowRange,
        batches: &[ColBatch],
        cur: &Grid2D<f32>,
        next: &mut Grid2D<f32>,
        offset: OffsetSource<'_>,
        counters: &mut EventCounters,
    ) -> u64 {
        self.run_block_traced(block, batches, cur, next, offset, counters, None)
    }

    /// [`run_block`](Self::run_block) with an optional cycle-level
    /// [`Trace`] recording every microarchitectural action (used by the
    /// Fig. 6 walkthrough and for protocol debugging). Tracing never
    /// changes results or counters.
    ///
    /// # Panics
    ///
    /// Same conditions as [`run_block`](Self::run_block).
    #[allow(clippy::too_many_arguments)]
    pub fn run_block_traced(
        &mut self,
        block: RowRange,
        batches: &[ColBatch],
        cur: &Grid2D<f32>,
        next: &mut Grid2D<f32>,
        offset: OffsetSource<'_>,
        counters: &mut EventCounters,
        mut trace: Option<&mut Trace>,
    ) -> u64 {
        let rows = cur.rows();
        let cols = cur.cols();
        assert!(
            block.out_lo >= 1 && block.out_hi < rows,
            "block outside interior"
        );
        assert!(
            block.height() <= self.fifo_depth,
            "row block of {} exceeds FIFO depth {}",
            block.height(),
            self.fifo_depth
        );
        self.nfifo.clear();
        self.pfifo.clear();

        let streamed = block.streamed_rows();
        let mut simulated_cycles = 0u64;
        for batch in batches {
            let active = batch.active();
            assert!(active <= self.pes.len(), "batch wider than the chain");
            for pe in &mut self.pes[..active] {
                pe.reset_window();
            }
            if let Some(t) = trace.as_deref_mut() {
                t.begin_cycle();
                t.record(TraceEvent::BatchStart {
                    c0: batch.c0,
                    c1: batch.c1,
                });
            }

            // Cycle t = streamed is the NULL flush cycle (stage 2 only).
            simulated_cycles += streamed as u64 + 1;
            for t in 0..=streamed {
                if t > 0 {
                    if let Some(tr) = trace.as_deref_mut() {
                        tr.begin_cycle();
                    }
                }
                // ---- stage 2: consume last cycle's stage-1 latches ----
                for slot in &mut self.stage2_out[..active] {
                    *slot = None;
                }
                let latch0 = *self.pes[0].latch();
                if latch0.valid {
                    let center = latch0.center_row;

                    // HaloAdder: complete the previous batch's last column.
                    if batch.c0 > 0 {
                        if let Some(incomplete) = self.pfifo.pop() {
                            counters.fifo_pop += 1;
                            let p_right = latch0.partial;
                            let out = incomplete + p_right;
                            counters.fp_add += 1;
                            let col = batch.c0 - 1;
                            if col >= 1 && col < cols - 1 {
                                next[(center, col)] = out;
                                counters.sram_write += 1;
                                let d = out as f64 - cur[(center, col)] as f64;
                                self.ecu_diff += d * d;
                                counters.fp_add += 2;
                                counters.fp_mul += 1;
                                if let Some(tr) = trace.as_deref_mut() {
                                    tr.record(TraceEvent::HaloComplete {
                                        col,
                                        row: center,
                                        value: out,
                                    });
                                }
                            }
                        }
                    }

                    self.partials.clear();
                    self.partials
                        .extend(self.pes[..active].iter().map(|pe| pe.latch().partial));
                    for p in 0..active {
                        let col = batch.c0 + p;
                        let p_left = if p == 0 {
                            // The left partial crossed the batch seam via
                            // nFIFO. The first batch of a block has no
                            // predecessor: its first column is either the
                            // grid boundary (output discarded) or fed by a
                            // zero operand.
                            if batch.c0 > 0 {
                                counters.fifo_pop += 1;
                                let v = self
                                    .nfifo
                                    .pop()
                                    .expect("nFIFO filled by the previous batch");
                                if let Some(tr) = trace.as_deref_mut() {
                                    tr.record(TraceEvent::NfifoPop {
                                        col,
                                        row: center,
                                        value: v,
                                    });
                                }
                                v
                            } else {
                                0.0
                            }
                        } else {
                            self.partials[p - 1]
                        };
                        if p + 1 == active {
                            // Last PE: incomplete product to pFIFO. The
                            // mapping sizes the FIFOs so this never
                            // overflows; if a degraded configuration ever
                            // violates that, the producer stalls
                            // (backpressure) instead of losing the entry.
                            let inc = self.pes[p].stage2_incomplete(p_left, counters);
                            counters.fifo_backpressure_stalls += self.pfifo.push_backpressure(inc);
                            counters.fifo_push += 1;
                            if let Some(tr) = trace.as_deref_mut() {
                                tr.record(TraceEvent::PfifoPush {
                                    col,
                                    row: center,
                                    value: inc,
                                });
                            }
                        } else {
                            let keep = col >= 1 && col < cols - 1;
                            let out = self.pes[p].stage2_complete(
                                p_left,
                                self.partials[p + 1],
                                keep,
                                counters,
                            );
                            self.stage2_out[p] = Some(out);
                            if keep {
                                next[(center, col)] = out;
                                counters.sram_write += 1;
                            }
                            if let Some(tr) = trace.as_deref_mut() {
                                tr.record(TraceEvent::Stage2Complete {
                                    pe: p,
                                    col,
                                    row: center,
                                    value: out,
                                    kept: keep,
                                });
                            }
                        }
                    }
                }

                // ---- stage 1: stream the next input row ----
                if t < streamed {
                    let in_row = block.out_lo - 1 + t;
                    let valid = t >= 2;
                    let center = in_row.saturating_sub(1);
                    #[allow(clippy::needless_range_loop)]
                    for p in 0..active {
                        let col = batch.c0 + p;
                        let input = cur[(in_row, col)];
                        counters.sram_read += 1; // CurBuffer
                        let b = if offset.is_present() && valid && col >= 1 && col < cols - 1 {
                            counters.sram_read += 1; // OffsetBuffer
                            offset.value(center, col)
                        } else {
                            0.0
                        };
                        let forwarded = self.stage2_out[p];
                        self.pes[p].stage1(input, b, forwarded, center, valid, counters);
                        if let Some(tr) = trace.as_deref_mut() {
                            tr.record(TraceEvent::Stage1 {
                                pe: p,
                                col,
                                row: in_row,
                                value: input,
                            });
                        }
                    }
                    // Last PE forwards its fresh partial to nFIFO for the
                    // next batch's first PE.
                    if valid {
                        let partial = self.pes[active - 1].latch().partial;
                        counters.fifo_backpressure_stalls += self.nfifo.push_backpressure(partial);
                        counters.fifo_push += 1;
                        if let Some(tr) = trace.as_deref_mut() {
                            tr.record(TraceEvent::NfifoPush {
                                col: batch.c1 - 1,
                                row: center,
                                value: partial,
                            });
                        }
                    }
                } else if let Some(tr) = trace.as_deref_mut() {
                    tr.record(TraceEvent::NullCycle);
                }
            }
        }
        self.nfifo.clear();
        self.pfifo.clear();
        if let Some(tr) = trace {
            tr.finish();
        }
        simulated_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{col_batches, RowRange};
    use fdm::pde::OffsetField;
    use fdm::solver::sweep_jacobi;
    use fdm::stencil::FivePointStencil;

    fn laplace_pe() -> PeConfig {
        PeConfig::new(FivePointStencil::new(0.25f32, 0.25, 0.0), false, false)
    }

    fn hot_top(n: usize) -> Grid2D<f32> {
        Grid2D::from_fn(n, n, |i, j| {
            if i == 0 {
                1.0
            } else {
                // Deterministic non-trivial interior.
                ((i * 31 + j * 17) % 7) as f32 * 0.125
            }
        })
    }

    /// One full sweep with the subarray must equal the software Jacobi
    /// sweep bit-for-bit.
    fn assert_matches_jacobi(n: usize, width: usize, fifo_depth: usize) {
        let cur = hot_top(n);
        let mut hw_next = cur.clone();
        let mut sw_next = cur.clone();
        sweep_jacobi(
            &FivePointStencil::new(0.25f32, 0.25, 0.0),
            &OffsetField::None,
            &cur,
            None,
            &mut sw_next,
        );

        let mut sa = Subarray::new(width, laplace_pe(), fifo_depth);
        let mut counters = EventCounters::new();
        let strip = RowRange {
            out_lo: 1,
            out_hi: n - 1,
        };
        for block in crate::mapping::row_blocks(strip, fifo_depth) {
            sa.run_block(
                block,
                &col_batches(n, width),
                &cur,
                &mut hw_next,
                OffsetSource::None,
                &mut counters,
            );
        }
        for i in 0..n {
            for j in 0..n {
                assert_eq!(
                    hw_next[(i, j)].to_bits(),
                    sw_next[(i, j)].to_bits(),
                    "mismatch at ({i},{j}) width={width}"
                );
            }
        }
    }

    #[test]
    fn single_batch_sweep_matches_software() {
        assert_matches_jacobi(8, 8, 64);
    }

    #[test]
    fn multi_batch_halo_matches_software() {
        // 10 columns on a 3-wide chain: four batches, heavy halo traffic.
        assert_matches_jacobi(10, 3, 64);
    }

    #[test]
    fn fifo_blocking_matches_software() {
        // 12 rows with 4-entry FIFOs: three row blocks.
        assert_matches_jacobi(12, 5, 4);
    }

    #[test]
    fn single_pe_chain_matches_software() {
        assert_matches_jacobi(7, 1, 64);
    }

    #[test]
    fn wide_chain_on_narrow_grid_matches_software() {
        assert_matches_jacobi(6, 64, 64);
    }

    #[test]
    fn diff_matches_software_sum() {
        let n = 9;
        let cur = hot_top(n);
        let mut hw_next = cur.clone();
        let mut sw_next = cur.clone();
        let d_sw = sweep_jacobi(
            &FivePointStencil::new(0.25f32, 0.25, 0.0),
            &OffsetField::None,
            &cur,
            None,
            &mut sw_next,
        );
        let mut sa = Subarray::new(4, laplace_pe(), 64);
        let mut counters = EventCounters::new();
        sa.run_block(
            RowRange {
                out_lo: 1,
                out_hi: n - 1,
            },
            &col_batches(n, 4),
            &cur,
            &mut hw_next,
            OffsetSource::None,
            &mut counters,
        );
        let d_hw = sa.take_diff();
        assert!(
            (d_hw - d_sw).abs() <= 1e-12 * d_sw.max(1.0),
            "hardware diff {d_hw} != software diff {d_sw}"
        );
        assert_eq!(sa.take_diff(), 0.0, "drained");
    }

    #[test]
    fn static_offset_matches_software() {
        let n = 8;
        let cur = hot_top(n);
        let offset = Grid2D::from_fn(n, n, |i, j| (i as f32 - j as f32) * 0.01);
        let stencil = FivePointStencil::new(0.25f32, 0.25, 0.0);
        let mut sw_next = cur.clone();
        sweep_jacobi(
            &stencil,
            &OffsetField::Static(offset.clone()),
            &cur,
            None,
            &mut sw_next,
        );
        let mut hw_next = cur.clone();
        let mut sa = Subarray::new(3, PeConfig::new(stencil, true, false), 64);
        let mut counters = EventCounters::new();
        sa.run_block(
            RowRange {
                out_lo: 1,
                out_hi: n - 1,
            },
            &col_batches(n, 3),
            &cur,
            &mut hw_next,
            OffsetSource::Static(&offset),
            &mut counters,
        );
        assert_eq!(hw_next, sw_next);
        assert!(counters.sram_read > 0);
    }

    #[test]
    fn scaled_prev_offset_matches_software() {
        let n = 7;
        let cur = hot_top(n);
        let prev = Grid2D::from_fn(n, n, |i, j| ((i + 2 * j) % 5) as f32 * 0.2);
        let stencil = FivePointStencil::new(0.25f32, 0.25, 1.0);
        let mut sw_next = cur.clone();
        sweep_jacobi(
            &stencil,
            &OffsetField::ScaledPrevField { scale: -1.0f32 },
            &cur,
            Some(&prev),
            &mut sw_next,
        );
        let mut hw_next = cur.clone();
        let mut sa = Subarray::new(4, PeConfig::new(stencil, true, false), 64);
        let mut counters = EventCounters::new();
        sa.run_block(
            RowRange {
                out_lo: 1,
                out_hi: n - 1,
            },
            &col_batches(n, 4),
            &cur,
            &mut hw_next,
            OffsetSource::ScaledPrev {
                field: &prev,
                scale: -1.0,
            },
            &mut counters,
        );
        assert_eq!(hw_next, sw_next);
    }

    #[test]
    fn counter_accounting_per_sweep() {
        // Laplace on n x n with a width-w chain: CurBuffer reads =
        // sum over tiles of streamed_rows * active columns.
        let n = 10;
        let w = 4;
        let cur = hot_top(n);
        let mut next = cur.clone();
        let mut sa = Subarray::new(w, laplace_pe(), 64);
        let mut c = EventCounters::new();
        sa.run_block(
            RowRange {
                out_lo: 1,
                out_hi: n - 1,
            },
            &col_batches(n, w),
            &cur,
            &mut next,
            OffsetSource::None,
            &mut c,
        );
        // streamed = 10 rows; batches active: 4 + 4 + 2.
        assert_eq!(c.sram_read, 10 * (4 + 4 + 2));
        // Interior outputs: 8 * 8.
        assert_eq!(c.sram_write, 64);
        // Two multiplications per stage-1 cycle for Laplace.
        let stage1_cycles = 10 * (4 + 4 + 2) as u64;
        // Each kept complete output adds 1 DIFF mul; halo diffs add more.
        assert!(c.fp_mul >= 2 * stage1_cycles);
        // nFIFO pushes: one per valid centre row per batch = 8 * 3.
        // pFIFO pushes likewise.
        assert_eq!(c.fifo_push, 8 * 3 * 2);
        // Pops: nFIFO by batches 2,3 first PE (8 each); pFIFO by halo in
        // batches 2,3 (8 each).
        assert_eq!(c.fifo_pop, 8 * 2 * 2);
    }

    #[test]
    #[should_panic(expected = "exceeds FIFO depth")]
    fn oversized_block_rejected() {
        let cur = hot_top(12);
        let mut next = cur.clone();
        let mut sa = Subarray::new(4, laplace_pe(), 4);
        let mut c = EventCounters::new();
        sa.run_block(
            RowRange {
                out_lo: 1,
                out_hi: 11,
            },
            &col_batches(12, 4),
            &cur,
            &mut next,
            OffsetSource::None,
            &mut c,
        );
    }

    #[test]
    #[should_panic(expected = "wider than the chain")]
    fn oversized_batch_rejected() {
        let cur = hot_top(8);
        let mut next = cur.clone();
        let mut sa = Subarray::new(2, laplace_pe(), 64);
        let mut c = EventCounters::new();
        sa.run_block(
            RowRange {
                out_lo: 1,
                out_hi: 7,
            },
            &col_batches(8, 4),
            &cur,
            &mut next,
            OffsetSource::None,
            &mut c,
        );
    }
}
