//! The user-facing accelerator API.
//!
//! [`Accelerator::solve`] runs a [`StencilProblem<f32>`] on the
//! cycle-accurate simulator with the elastic planner choosing the array
//! decomposition, and returns the numerical solution together with a full
//! [`SimReport`] (cycles, events, energy).

use crate::config::{ConfigError, FdmaxConfig};
use crate::report::SimReport;
use crate::resilience::{FdmaxError, RecoveryReport, ResiliencePolicy};
use crate::sim::DetailedSim;
use core::fmt;
use fdm::convergence::StopCondition;
use fdm::grid::Grid2D;
use fdm::pde::StencilProblem;
use fdm::solver::UpdateMethod;
use memmodel::faults::FaultCampaign;

/// The update methods the PE datapath supports in hardware (§4.2.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HwUpdateMethod {
    /// Eq. (6): all operands from the previous iteration.
    Jacobi,
    /// Eq. (8): the freshly computed top value is forwarded via the
    /// `R_out -> R_z-2` mux.
    Hybrid,
}

impl HwUpdateMethod {
    /// The equivalent software method (the hardware Hybrid additionally
    /// falls back to Jacobi operands at block/batch seams; see
    /// [`crate::reference`]).
    pub fn software_equivalent(&self) -> UpdateMethod {
        (*self).into()
    }

    /// The suffix letter used in the paper's plots (`FDMAX-J`, `FDMAX-H`).
    pub fn letter(&self) -> char {
        self.software_equivalent().letter()
    }

    /// Inverse of [`HwUpdateMethod::letter`]: only the two letters with a
    /// hardware datapath round-trip.
    pub fn from_letter(letter: char) -> Option<HwUpdateMethod> {
        match UpdateMethod::from_letter(letter)? {
            UpdateMethod::Jacobi => Some(HwUpdateMethod::Jacobi),
            UpdateMethod::Hybrid => Some(HwUpdateMethod::Hybrid),
            _ => None,
        }
    }
}

/// Naming and software-equivalence for hardware methods delegate to the
/// `fdm` [`UpdateMethod`] surface through this conversion — the single
/// source of truth for method letters and display names.
impl From<HwUpdateMethod> for UpdateMethod {
    fn from(m: HwUpdateMethod) -> UpdateMethod {
        match m {
            HwUpdateMethod::Jacobi => UpdateMethod::Jacobi,
            HwUpdateMethod::Hybrid => UpdateMethod::Hybrid,
        }
    }
}

impl fmt::Display for HwUpdateMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.software_equivalent(), f)
    }
}

/// Result of an accelerator solve.
#[derive(Clone, Debug)]
#[must_use = "a solve outcome carries the solution and the recovery report"]
pub struct SolveOutcome {
    /// The final field.
    pub solution: Grid2D<f32>,
    /// Completed iterations.
    pub iterations: usize,
    /// Whether the stop condition's goal was met.
    pub converged: bool,
    /// Cycles, events, energy and configuration of the run.
    pub report: SimReport,
    /// Fault-injection and recovery activity (all-zero for a clean run).
    pub recovery: RecoveryReport,
}

/// An FDMAX accelerator instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Accelerator {
    config: FdmaxConfig,
}

impl Accelerator {
    /// Creates an accelerator with a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration is structurally
    /// invalid.
    pub fn new(config: FdmaxConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Accelerator { config })
    }

    /// The configuration.
    pub fn config(&self) -> &FdmaxConfig {
        &self.config
    }

    /// Solves a problem using its embedded run mode.
    ///
    /// # Errors
    ///
    /// Returns [`FdmaxError::GridTooSmall`] when the problem grid has no
    /// interior.
    pub fn solve(
        &self,
        problem: &StencilProblem<f32>,
        method: HwUpdateMethod,
    ) -> Result<SolveOutcome, FdmaxError> {
        self.solve_with(problem, method, &StopCondition::from_mode(&problem.mode))
    }

    /// Solves a problem with an explicit stop condition.
    ///
    /// # Errors
    ///
    /// Returns [`FdmaxError::GridTooSmall`] when the problem grid has no
    /// interior.
    pub fn solve_with(
        &self,
        problem: &StencilProblem<f32>,
        method: HwUpdateMethod,
        stop: &StopCondition,
    ) -> Result<SolveOutcome, FdmaxError> {
        let mut sim = DetailedSim::new(self.config, problem, method)?;
        let converged = sim.run(stop);
        Ok(Self::outcome_from_sim(self.config, &sim, converged))
    }

    /// Solves under a fault campaign with the full graceful-degradation
    /// chain: checkpoint/rollback inside the simulator (per `policy`),
    /// then Hybrid -> Jacobi method fallback, then the `fdm` software
    /// solver. The same `campaign.seed` always reproduces bit-identical
    /// fault traces, recovery actions and outcome.
    ///
    /// # Errors
    ///
    /// The last simulator error when the retry budget is exhausted and
    /// the policy forbids the remaining fallbacks; never panics.
    pub fn solve_resilient(
        &self,
        problem: &StencilProblem<f32>,
        method: HwUpdateMethod,
        stop: &StopCondition,
        campaign: FaultCampaign,
        policy: &ResiliencePolicy,
    ) -> Result<SolveOutcome, FdmaxError> {
        let mut fallbacks = 0u64;
        let mut method_now = method;
        let (sim, run_result) = loop {
            let mut sim = DetailedSim::new(self.config, problem, method_now)?;
            sim.enable_faults(campaign);
            sim.record_fallbacks(fallbacks);
            match sim.run_resilient(stop, policy) {
                Ok(converged) => break (sim, Ok(converged)),
                Err(err) => {
                    if matches!(method_now, HwUpdateMethod::Hybrid) && policy.allow_method_fallback
                    {
                        fallbacks += 1;
                        method_now = HwUpdateMethod::Jacobi;
                        continue;
                    }
                    break (sim, Err(err));
                }
            }
        };
        let digest = sim
            .fault_injector()
            .map(memmodel::FaultInjector::trace_digest);
        match run_result {
            Ok(converged) => {
                let mut outcome = Self::outcome_from_sim(self.config, &sim, converged);
                outcome.recovery.fault_trace_digest = digest;
                Ok(outcome)
            }
            Err(err) if policy.allow_software_fallback => {
                // Last resort: hand the problem to the software solver.
                // The report keeps the cycles/energy burned on the failed
                // accelerator attempts plus the software answer.
                let sw = fdm::solver::solve(problem, method_now.software_equivalent(), stop);
                let _ = err;
                let mut counters = *sim.counters();
                counters.fallbacks = fallbacks + 1;
                let mut recovery = RecoveryReport::from_counters(&counters);
                recovery.software_fallback = true;
                recovery.fault_trace_digest = digest;
                let report = SimReport::new(
                    self.config,
                    sim.elastic(),
                    counters,
                    sw.history().clone(),
                    sw.iterations(),
                );
                Ok(SolveOutcome {
                    solution: sw.solution().clone(),
                    iterations: sw.iterations(),
                    converged: sw.converged(),
                    report,
                    recovery,
                })
            }
            Err(err) => Err(err.with_fault_trace_digest(digest)),
        }
    }

    fn outcome_from_sim(config: FdmaxConfig, sim: &DetailedSim, converged: bool) -> SolveOutcome {
        let report = SimReport::new(
            config,
            sim.elastic(),
            *sim.counters(),
            sim.history().clone(),
            sim.iterations(),
        );
        SolveOutcome {
            solution: sim.solution().clone(),
            iterations: sim.iterations(),
            converged,
            recovery: RecoveryReport::from_counters(sim.counters()),
            report,
        }
    }

    /// The Table 3 layout report for this configuration.
    pub fn layout_report(&self) -> memmodel::layout::LayoutReport {
        memmodel::layout::LayoutReport::new(&self.config.layout_params())
    }

    /// Analytic estimate of a solve too large to simulate point by point:
    /// `iterations` iterations of an `rows x cols` problem
    /// (`offset_present`/`self_term` select the PDE family's datapath).
    ///
    /// Built from the validated performance and event-count models, so
    /// the returned report carries the exact counters and timing the
    /// simulator would produce — instantly, independent of grid size.
    ///
    /// # Panics
    ///
    /// Panics if the grid has no interior;
    /// [`Accelerator::try_estimate`] is the non-panicking variant.
    pub fn estimate(
        &self,
        rows: usize,
        cols: usize,
        offset_present: bool,
        self_term: bool,
        iterations: u64,
    ) -> SimReport {
        match self.try_estimate(rows, cols, offset_present, self_term, iterations) {
            Ok(report) => report,
            Err(e) => panic!("estimate on an invalid deployment: {e}"),
        }
    }

    /// Fallible [`Accelerator::estimate`]: the deployment is linted first
    /// and Error-level diagnostics are refused, so the estimator rejects
    /// exactly what the simulator constructors reject.
    ///
    /// # Errors
    ///
    /// [`FdmaxError::GridTooSmall`] for interior-less grids,
    /// [`FdmaxError::Lint`] for any other Error-level diagnostic.
    pub fn try_estimate(
        &self,
        rows: usize,
        cols: usize,
        offset_present: bool,
        self_term: bool,
        iterations: u64,
    ) -> Result<SimReport, FdmaxError> {
        if rows < 3 || cols < 3 {
            return Err(FdmaxError::GridTooSmall { rows, cols });
        }
        let report = self.lint_deployment(rows, cols, HwUpdateMethod::Jacobi);
        if report.has_errors() {
            return Err(FdmaxError::Lint { report });
        }
        let engine = crate::engine::EstimateEngine::new(
            self.config,
            rows,
            cols,
            offset_present,
            self_term,
            iterations,
        );
        let mut session =
            crate::engine::Session::new(engine, StopCondition::fixed_steps(iterations as usize));
        session
            .run()
            .expect("budget-free session on a healthy problem cannot fail");
        let (engine, _history) = session.into_parts();
        Ok(engine.into_report())
    }

    /// Runs the elaboration-time static analyzer on this accelerator
    /// deployed on an `rows x cols` grid (planner-chosen decomposition).
    /// The constructors gate on the same report; calling this first lets
    /// tooling see warnings and suggested fixes, not just the refusal.
    pub fn lint_deployment(
        &self,
        rows: usize,
        cols: usize,
        method: HwUpdateMethod,
    ) -> crate::lint::LintReport {
        crate::lint::lint(&crate::lint::LintTarget::planned(
            self.config,
            rows,
            cols,
            method,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdm::boundary::DirichletBoundary;
    use fdm::pde::LaplaceProblem;
    use fdm::solver::solve;

    fn problem() -> StencilProblem<f32> {
        LaplaceProblem::builder(24, 24)
            .boundary(DirichletBoundary::hot_top(1.0))
            .stop(1e-4, 50_000)
            .build()
            .unwrap()
            .discretize::<f32>()
    }

    #[test]
    fn solve_matches_software_and_reports() {
        let accel = Accelerator::new(FdmaxConfig::paper_default()).unwrap();
        let outcome = accel.solve(&problem(), HwUpdateMethod::Jacobi).unwrap();
        assert!(outcome.converged);
        assert!(outcome.recovery.is_clean());
        let sw = solve(
            &problem(),
            UpdateMethod::Jacobi,
            &StopCondition::from_mode(&problem().mode),
        );
        assert_eq!(outcome.iterations, sw.iterations());
        assert_eq!(&outcome.solution, sw.solution());
        assert!(outcome.report.cycles() > 0);
        assert!(outcome.report.energy_joules() > 0.0);
    }

    #[test]
    fn hybrid_converges_faster_than_jacobi() {
        let accel = Accelerator::new(FdmaxConfig::paper_default()).unwrap();
        let j = accel.solve(&problem(), HwUpdateMethod::Jacobi).unwrap();
        let h = accel.solve(&problem(), HwUpdateMethod::Hybrid).unwrap();
        assert!(j.converged && h.converged);
        assert!(
            h.iterations < j.iterations,
            "hybrid {} vs jacobi {}",
            h.iterations,
            j.iterations
        );
    }

    #[test]
    fn explicit_stop_overrides_problem_mode() {
        let accel = Accelerator::new(FdmaxConfig::paper_default()).unwrap();
        let outcome = accel
            .solve_with(
                &problem(),
                HwUpdateMethod::Jacobi,
                &StopCondition::fixed_steps(7),
            )
            .unwrap();
        assert_eq!(outcome.iterations, 7);
        assert!(outcome.converged, "all requested steps completed");
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = FdmaxConfig::paper_default();
        cfg.pe_cols = 0;
        assert!(Accelerator::new(cfg).is_err());
    }

    #[test]
    fn method_metadata() {
        assert_eq!(HwUpdateMethod::Jacobi.letter(), 'J');
        assert_eq!(HwUpdateMethod::Hybrid.letter(), 'H');
        assert_eq!(
            HwUpdateMethod::Hybrid.software_equivalent(),
            UpdateMethod::Hybrid
        );
        assert_eq!(HwUpdateMethod::Jacobi.to_string(), "Jacobi");
    }

    #[test]
    fn resilient_solve_on_disabled_campaign_matches_plain_solve() {
        let accel = Accelerator::new(FdmaxConfig::paper_default()).unwrap();
        let sp = problem();
        let stop = StopCondition::from_mode(&sp.mode);
        let plain = accel
            .solve_with(&sp, HwUpdateMethod::Jacobi, &stop)
            .unwrap();
        let policy = ResiliencePolicy {
            checkpoint_interval: 0, // no checkpoint traffic either
            ..ResiliencePolicy::default()
        };
        let res = accel
            .solve_resilient(
                &sp,
                HwUpdateMethod::Jacobi,
                &stop,
                FaultCampaign::disabled(),
                &policy,
            )
            .unwrap();
        assert_eq!(plain.solution, res.solution);
        assert_eq!(plain.iterations, res.iterations);
        assert_eq!(plain.report.counters(), res.report.counters());
        assert!(res.recovery.is_clean());
        assert_eq!(res.recovery.fault_trace_digest, None);
    }

    #[test]
    fn resilient_solve_recovers_under_parity_campaign() {
        let accel = Accelerator::new(FdmaxConfig::paper_default()).unwrap();
        let sp = problem();
        let stop = StopCondition::from_mode(&sp.mode);
        let campaign = FaultCampaign {
            ecc: memmodel::faults::EccMode::Parity,
            sram_flips_per_iteration: 0.01,
            dma_failure_prob: 0.0,
            ..FaultCampaign::harsh(42)
        };
        let policy = ResiliencePolicy {
            max_retries: 10_000,
            ..ResiliencePolicy::default()
        };
        let outcome = accel
            .solve_resilient(&sp, HwUpdateMethod::Jacobi, &stop, campaign, &policy)
            .unwrap();
        assert!(outcome.converged);
        assert!(outcome.recovery.faults_injected > 0);
        assert_eq!(outcome.recovery.rollbacks, outcome.recovery.faults_detected);
        assert!(outcome.recovery.fault_trace_digest.is_some());
        assert!(!outcome.recovery.software_fallback);
        // Parity + rollback discards every corrupted step, so the answer
        // matches the clean solve bit for bit.
        let clean = accel
            .solve_with(&sp, HwUpdateMethod::Jacobi, &stop)
            .unwrap();
        assert_eq!(outcome.solution, clean.solution);
    }

    #[test]
    fn software_fallback_still_delivers_an_answer() {
        let accel = Accelerator::new(FdmaxConfig::paper_default()).unwrap();
        let sp = problem();
        let stop = StopCondition::from_mode(&sp.mode);
        // A brutal campaign with recovery disabled except the final
        // software fallback: the simulator fails fast, software solves.
        let campaign = FaultCampaign {
            ecc: memmodel::faults::EccMode::Parity,
            sram_flips_per_iteration: 5.0,
            dma_failure_prob: 0.0,
            ..FaultCampaign::harsh(13)
        };
        let policy = ResiliencePolicy {
            allow_software_fallback: true,
            ..ResiliencePolicy::strict()
        };
        let outcome = accel
            .solve_resilient(&sp, HwUpdateMethod::Jacobi, &stop, campaign, &policy)
            .unwrap();
        assert!(outcome.converged, "software fallback converges");
        assert!(outcome.recovery.software_fallback);
        assert!(outcome.recovery.fallbacks >= 1);
        let sw = solve(&sp, UpdateMethod::Jacobi, &stop);
        assert_eq!(&outcome.solution, sw.solution());
    }

    #[test]
    fn strict_policy_returns_structured_error_not_panic() {
        let accel = Accelerator::new(FdmaxConfig::paper_default()).unwrap();
        let sp = problem();
        let stop = StopCondition::from_mode(&sp.mode);
        let campaign = FaultCampaign {
            ecc: memmodel::faults::EccMode::Parity,
            sram_flips_per_iteration: 5.0,
            dma_failure_prob: 0.0,
            ..FaultCampaign::harsh(13)
        };
        let err = accel
            .solve_resilient(
                &sp,
                HwUpdateMethod::Jacobi,
                &stop,
                campaign,
                &ResiliencePolicy::strict(),
            )
            .unwrap_err();
        assert!(matches!(err, FdmaxError::CorruptionDetected { .. }));
    }

    #[test]
    fn hybrid_falls_back_to_jacobi_before_software() {
        let accel = Accelerator::new(FdmaxConfig::paper_default()).unwrap();
        let sp = problem();
        let stop = StopCondition::from_mode(&sp.mode);
        // Parity detections every iteration make the Hybrid attempt
        // exhaust its retry budget; the Jacobi attempt sees the same
        // campaign but method fallback counts either way.
        let campaign = FaultCampaign {
            ecc: memmodel::faults::EccMode::Secded,
            sram_flips_per_iteration: 0.5,
            dma_failure_prob: 0.0,
            ..FaultCampaign::harsh(4)
        };
        // SECDED corrects everything, so Hybrid succeeds directly: no
        // fallback happens on a recoverable campaign.
        let outcome = accel
            .solve_resilient(
                &sp,
                HwUpdateMethod::Hybrid,
                &stop,
                campaign,
                &ResiliencePolicy::default(),
            )
            .unwrap();
        assert_eq!(outcome.recovery.fallbacks, 0);
        assert!(outcome.recovery.faults_corrected > 0);
        assert!(outcome.converged);
    }

    #[test]
    fn layout_report_available() {
        let accel = Accelerator::new(FdmaxConfig::paper_default()).unwrap();
        assert!((accel.layout_report().total_area_mm2() - 0.987).abs() < 0.01);
    }

    #[test]
    fn estimate_matches_a_simulated_solve() {
        // The estimate must reproduce the simulator's counters/timing for
        // a size we can actually simulate.
        let accel = Accelerator::new(FdmaxConfig::paper_default()).unwrap();
        let sp = problem(); // 24x24 Laplace
        let simulated = accel
            .solve_with(&sp, HwUpdateMethod::Jacobi, &StopCondition::fixed_steps(9))
            .unwrap();
        let estimated = accel.estimate(24, 24, false, false, 9);
        assert_eq!(estimated.cycles(), simulated.report.cycles());
        assert_eq!(estimated.counters(), simulated.report.counters());
        assert_eq!(estimated.elastic(), simulated.report.elastic());
    }

    #[test]
    fn estimate_scales_to_paper_sized_grids_instantly() {
        let accel = Accelerator::new(FdmaxConfig::paper_default()).unwrap();
        let r = accel.estimate(10_000, 10_000, false, false, 1_000);
        assert!(r.seconds() > 1.0, "10K^2 x 1000 iterations takes seconds");
        assert!(r.energy_joules() > 0.0);
        assert_eq!(r.iterations(), 1_000);
    }
}
