//! The user-facing accelerator API.
//!
//! [`Accelerator::solve`] runs a [`StencilProblem<f32>`] on the
//! cycle-accurate simulator with the elastic planner choosing the array
//! decomposition, and returns the numerical solution together with a full
//! [`SimReport`] (cycles, events, energy).

use crate::config::{ConfigError, FdmaxConfig};
use crate::report::SimReport;
use crate::sim::DetailedSim;
use fdm::convergence::StopCondition;
use fdm::grid::Grid2D;
use fdm::pde::StencilProblem;
use fdm::solver::UpdateMethod;
use core::fmt;

/// The update methods the PE datapath supports in hardware (§4.2.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HwUpdateMethod {
    /// Eq. (6): all operands from the previous iteration.
    Jacobi,
    /// Eq. (8): the freshly computed top value is forwarded via the
    /// `R_out -> R_z-2` mux.
    Hybrid,
}

impl HwUpdateMethod {
    /// The equivalent software method (the hardware Hybrid additionally
    /// falls back to Jacobi operands at block/batch seams; see
    /// [`crate::reference`]).
    pub fn software_equivalent(&self) -> UpdateMethod {
        match self {
            HwUpdateMethod::Jacobi => UpdateMethod::Jacobi,
            HwUpdateMethod::Hybrid => UpdateMethod::Hybrid,
        }
    }

    /// The suffix letter used in the paper's plots (`FDMAX-J`, `FDMAX-H`).
    pub fn letter(&self) -> char {
        match self {
            HwUpdateMethod::Jacobi => 'J',
            HwUpdateMethod::Hybrid => 'H',
        }
    }
}

impl fmt::Display for HwUpdateMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwUpdateMethod::Jacobi => f.write_str("Jacobi"),
            HwUpdateMethod::Hybrid => f.write_str("Hybrid"),
        }
    }
}

/// Result of an accelerator solve.
#[derive(Clone, Debug)]
pub struct SolveOutcome {
    /// The final field.
    pub solution: Grid2D<f32>,
    /// Completed iterations.
    pub iterations: usize,
    /// Whether the stop condition's goal was met.
    pub converged: bool,
    /// Cycles, events, energy and configuration of the run.
    pub report: SimReport,
}

/// An FDMAX accelerator instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Accelerator {
    config: FdmaxConfig,
}

impl Accelerator {
    /// Creates an accelerator with a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration is structurally
    /// invalid.
    pub fn new(config: FdmaxConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Accelerator { config })
    }

    /// The configuration.
    pub fn config(&self) -> &FdmaxConfig {
        &self.config
    }

    /// Solves a problem using its embedded run mode.
    ///
    /// # Panics
    ///
    /// Panics if the problem grid has no interior.
    pub fn solve(&self, problem: &StencilProblem<f32>, method: HwUpdateMethod) -> SolveOutcome {
        self.solve_with(problem, method, &StopCondition::from_mode(&problem.mode))
    }

    /// Solves a problem with an explicit stop condition.
    ///
    /// # Panics
    ///
    /// Panics if the problem grid has no interior.
    pub fn solve_with(
        &self,
        problem: &StencilProblem<f32>,
        method: HwUpdateMethod,
        stop: &StopCondition,
    ) -> SolveOutcome {
        let mut sim = DetailedSim::new(self.config, problem, method)
            .expect("configuration was validated in Accelerator::new");
        let converged = sim.run(stop);
        let report = SimReport::new(
            self.config,
            sim.elastic(),
            *sim.counters(),
            sim.history().clone(),
            sim.iterations(),
        );
        SolveOutcome {
            solution: sim.solution().clone(),
            iterations: sim.iterations(),
            converged,
            report,
        }
    }

    /// The Table 3 layout report for this configuration.
    pub fn layout_report(&self) -> memmodel::layout::LayoutReport {
        memmodel::layout::LayoutReport::new(&self.config.layout_params())
    }

    /// Analytic estimate of a solve too large to simulate point by point:
    /// `iterations` iterations of an `rows x cols` problem
    /// (`offset_present`/`self_term` select the PDE family's datapath).
    ///
    /// Built from the validated performance and event-count models, so
    /// the returned report carries the exact counters and timing the
    /// simulator would produce — instantly, independent of grid size.
    ///
    /// # Panics
    ///
    /// Panics if the grid has no interior.
    pub fn estimate(
        &self,
        rows: usize,
        cols: usize,
        offset_present: bool,
        self_term: bool,
        iterations: u64,
    ) -> SimReport {
        use crate::perf_model::{iteration_counters, solve_estimate};
        let elastic = crate::elastic::ElasticConfig::plan(&self.config, rows, cols);
        let est = solve_estimate(&self.config, &elastic, rows, cols, offset_present, iterations);
        let per_iter =
            iteration_counters(&self.config, &elastic, rows, cols, offset_present, self_term);
        let mut counters = per_iter.scaled(iterations);
        // Boot/drain traffic and total timing from the solve estimate.
        let grid = (rows * cols) as u64;
        counters.dram_read += grid + if offset_present { grid } else { 0 };
        counters.dram_write += grid;
        counters.sram_write += grid + if offset_present { grid } else { 0 };
        counters.sram_read += grid;
        counters.cycles = est.total_cycles;
        SimReport::new(
            self.config,
            elastic,
            counters,
            fdm::convergence::ResidualHistory::new(),
            iterations as usize,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdm::boundary::DirichletBoundary;
    use fdm::pde::LaplaceProblem;
    use fdm::solver::solve;

    fn problem() -> StencilProblem<f32> {
        LaplaceProblem::builder(24, 24)
            .boundary(DirichletBoundary::hot_top(1.0))
            .stop(1e-4, 50_000)
            .build()
            .unwrap()
            .discretize::<f32>()
    }

    #[test]
    fn solve_matches_software_and_reports() {
        let accel = Accelerator::new(FdmaxConfig::paper_default()).unwrap();
        let outcome = accel.solve(&problem(), HwUpdateMethod::Jacobi);
        assert!(outcome.converged);
        let sw = solve(
            &problem(),
            UpdateMethod::Jacobi,
            &StopCondition::from_mode(&problem().mode),
        );
        assert_eq!(outcome.iterations, sw.iterations());
        assert_eq!(&outcome.solution, sw.solution());
        assert!(outcome.report.cycles() > 0);
        assert!(outcome.report.energy_joules() > 0.0);
    }

    #[test]
    fn hybrid_converges_faster_than_jacobi() {
        let accel = Accelerator::new(FdmaxConfig::paper_default()).unwrap();
        let j = accel.solve(&problem(), HwUpdateMethod::Jacobi);
        let h = accel.solve(&problem(), HwUpdateMethod::Hybrid);
        assert!(j.converged && h.converged);
        assert!(
            h.iterations < j.iterations,
            "hybrid {} vs jacobi {}",
            h.iterations,
            j.iterations
        );
    }

    #[test]
    fn explicit_stop_overrides_problem_mode() {
        let accel = Accelerator::new(FdmaxConfig::paper_default()).unwrap();
        let outcome = accel.solve_with(
            &problem(),
            HwUpdateMethod::Jacobi,
            &StopCondition::fixed_steps(7),
        );
        assert_eq!(outcome.iterations, 7);
        assert!(outcome.converged, "all requested steps completed");
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = FdmaxConfig::paper_default();
        cfg.pe_cols = 0;
        assert!(Accelerator::new(cfg).is_err());
    }

    #[test]
    fn method_metadata() {
        assert_eq!(HwUpdateMethod::Jacobi.letter(), 'J');
        assert_eq!(HwUpdateMethod::Hybrid.letter(), 'H');
        assert_eq!(
            HwUpdateMethod::Hybrid.software_equivalent(),
            UpdateMethod::Hybrid
        );
        assert_eq!(HwUpdateMethod::Jacobi.to_string(), "Jacobi");
    }

    #[test]
    fn layout_report_available() {
        let accel = Accelerator::new(FdmaxConfig::paper_default()).unwrap();
        assert!((accel.layout_report().total_area_mm2() - 0.987).abs() < 0.01);
    }

    #[test]
    fn estimate_matches_a_simulated_solve() {
        // The estimate must reproduce the simulator's counters/timing for
        // a size we can actually simulate.
        let accel = Accelerator::new(FdmaxConfig::paper_default()).unwrap();
        let sp = problem(); // 24x24 Laplace
        let simulated = accel.solve_with(
            &sp,
            HwUpdateMethod::Jacobi,
            &StopCondition::fixed_steps(9),
        );
        let estimated = accel.estimate(24, 24, false, false, 9);
        assert_eq!(estimated.cycles(), simulated.report.cycles());
        assert_eq!(estimated.counters(), simulated.report.counters());
        assert_eq!(estimated.elastic(), simulated.report.elastic());
    }

    #[test]
    fn estimate_scales_to_paper_sized_grids_instantly() {
        let accel = Accelerator::new(FdmaxConfig::paper_default()).unwrap();
        let r = accel.estimate(10_000, 10_000, false, false, 1_000);
        assert!(r.seconds() > 1.0, "10K^2 x 1000 iterations takes seconds");
        assert!(r.energy_joules() > 0.0);
        assert_eq!(r.iterations(), 1_000);
    }
}
