//! The resilient multi-job solve service.
//!
//! Everything below this module solves exactly one problem at a time;
//! [`SolveService`] is the supervisory layer a production deployment
//! wraps around that raw compute: it owns a bounded admission queue,
//! hands every accepted job a cancellation token and an iteration
//! deadline (threaded into the engine loop as a [`Budget`]), watches for
//! stalled solves, quarantines failing backends behind per-rung circuit
//! breakers, and degrades through an ordered fallback chain
//!
//! ```text
//! DetailedSim -> HwReferenceEngine -> ParallelSweepEngine -> SweepEngine
//!     -> KrylovEngine (steady-state jobs only) -> EstimateEngine
//! ```
//!
//! until something serves the job. Every admitted job terminates with a
//! definite [`ServiceReport`] naming the rung that served it (or the
//! error that ended it) and every attempt along the way.
//!
//! # Determinism
//!
//! The service never reads wall-clock time. Deadlines and breaker
//! cool-downs are measured in *iterations executed* and *jobs
//! submitted* respectively, and each job draws its fault schedule from
//! [`FaultCampaign::for_job`] keyed by its [`JobId`] — so a run with the
//! same master seed and submission order replays bit-for-bit, which is
//! what the chaos/soak harness relies on.
//!
//! # Deadline contract
//!
//! A job admitted at service clock `t` must finish by `t +
//! deadline_iterations`. The budget gate runs *before* each engine
//! step, so an iterative rung never executes past the job's remaining
//! budget; once the budget is gone only the O(1) analytic rung can
//! serve (a degraded answer, but an on-time one). Queue wait burns the
//! same budget — a service whose `queue_capacity x max_job_iterations`
//! exceeds `deadline_iterations` can leave a tail job with nothing but
//! the analytic rung, which is exactly what the `FDX011` lint warns
//! about.

use crate::accelerator::HwUpdateMethod;
use crate::config::FdmaxConfig;
use crate::durability::{
    self, BreakerImage, DurabilityConfig, JobJournal, JournalRecord, RecoverySummary,
    ServiceStateImage,
};
use crate::elastic::ElasticConfig;
use crate::engine::{EngineStateImage, EstimateEngine, HwReferenceEngine};
use crate::resilience::{FdmaxError, RecoveryReport, ResiliencePolicy};
use crate::sim::DetailedSim;
use core::fmt;
use fdm::convergence::StopCondition;
use fdm::engine::{Budget, CancelToken, ParallelSweepEngine, Session, SolveEngine, SweepEngine};
use fdm::grid::Grid2D;
use fdm::pde::StencilProblem;
use fdm::solver::krylov::KrylovEngine;
use fdm::tiled::TiledSweepEngine;
use memmodel::faults::FaultCampaign;
use memmodel::FaultInjector;
use std::collections::VecDeque;

pub mod frontend;

/// Identifier of one submitted job, unique within a service instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Identifier of the tenant a job belongs to. The single-tenant default
/// is tenant 0; the multi-tenant front end keys its fair queues, quotas
/// and brownout ladder on this field.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u64);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// One solve request.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// The discretized problem to solve.
    pub problem: StencilProblem<f32>,
    /// Hardware update method for the accelerator rungs.
    pub method: HwUpdateMethod,
    /// Requested stop condition (clamped to the service's per-job
    /// iteration cap at execution time).
    pub stop: StopCondition,
    /// Overrides the service's per-job fault campaign when set (e.g. a
    /// known-clean probe); `None` derives one from the master campaign
    /// via [`FaultCampaign::for_job`].
    pub campaign: Option<FaultCampaign>,
    /// The submitting tenant (defaults to [`TenantId`] 0).
    pub tenant: TenantId,
    /// First rung of the fallback chain this job may use. The default,
    /// [`Rung::Detailed`], is the full chain; the front end's brownout
    /// ladder degrades low-priority tenants by entering lower (cheaper)
    /// rungs instead of rejecting them. Rungs above the entry are
    /// recorded as [`AttemptDisposition::SkippedBrownout`]; the
    /// terminal [`Rung::Estimate`] is always reachable.
    pub entry_rung: Rung,
}

impl JobSpec {
    /// A job with the service-derived fault campaign.
    pub fn new(problem: StencilProblem<f32>, method: HwUpdateMethod, stop: StopCondition) -> Self {
        JobSpec {
            problem,
            method,
            stop,
            campaign: None,
            tenant: TenantId::default(),
            entry_rung: Rung::Detailed,
        }
    }

    /// Pins an explicit fault campaign for this job.
    #[must_use]
    pub fn with_campaign(mut self, campaign: FaultCampaign) -> Self {
        self.campaign = Some(campaign);
        self
    }

    /// Tags the job with a tenant.
    #[must_use]
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Starts the fallback chain at `rung` (brownout degradation).
    #[must_use]
    pub fn with_entry_rung(mut self, rung: Rung) -> Self {
        self.entry_rung = rung;
        self
    }
}

/// Receipt for an admitted job: its id plus the cooperative
/// cancellation handle (cancel it any time; the engine loop observes
/// the token between steps).
#[derive(Clone, Debug)]
#[must_use = "the ticket holds the job's cancellation handle"]
pub struct JobTicket {
    /// The admitted job's id.
    pub id: JobId,
    /// Cancels the job; safe to trigger while queued or mid-solve.
    pub cancel: CancelToken,
}

/// Why a submission was refused at the door.
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitError {
    /// The admission queue is full; retry after `retry_after_jobs` jobs
    /// have drained.
    Saturated {
        /// Jobs currently queued.
        queue_depth: usize,
        /// Completed jobs to wait for before resubmitting.
        retry_after_jobs: usize,
        /// Honest retry hint on the service clock: the expected
        /// iterations until a slot frees, derived from the measured
        /// per-job drain rate (an EWMA of completed jobs' iteration
        /// counts), not a static constant. Shrinks as the service
        /// drains faster than configured worst case.
        retry_after_iterations: u64,
    },
    /// The job can never run (e.g. a grid without an interior).
    Rejected(FdmaxError),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Saturated {
                queue_depth,
                retry_after_jobs,
                retry_after_iterations,
            } => write!(
                f,
                "service saturated ({queue_depth} queued); retry after {retry_after_jobs} job(s) \
                 (~{retry_after_iterations} iterations)"
            ),
            SubmitError::Rejected(e) => write!(f, "job rejected: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The ordered fallback chain, most capable first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rung {
    /// Cycle-accurate [`DetailedSim`] with the job's fault campaign.
    Detailed,
    /// Hardware-semantics [`HwReferenceEngine`] (bit-exact, no timing).
    Reference,
    /// Strip-parallel software [`ParallelSweepEngine`]: row bands on
    /// scoped threads, bit-identical to the serial sweeps.
    Parallel,
    /// Temporal wavefront tiling ([`TiledSweepEngine`]): fuses
    /// `tile_depth` sweeps per cache pass over the strip decomposition,
    /// trading the per-sweep norm cadence (residual histories become
    /// epoch-granular) for ~`tile_depth`× less memory traffic. Only the
    /// data-parallel sweeps tile; other jobs skip through as
    /// [`AttemptDisposition::SkippedNotApplicable`].
    Tiled,
    /// Pure software [`SweepEngine`].
    Software,
    /// Matrix-free conjugate gradients
    /// ([`KrylovEngine`]): converges
    /// in far fewer iterations than any sweep, but only applies to
    /// steady-state jobs (time-dependent jobs skip it as
    /// [`AttemptDisposition::SkippedNotApplicable`]).
    Krylov,
    /// Analytic [`EstimateEngine`]: O(1), always on time, no numeric
    /// solution — the terminal guarantee rung.
    Estimate,
}

impl Rung {
    /// The chain in fallback order.
    pub const ALL: [Rung; 7] = [
        Rung::Detailed,
        Rung::Reference,
        Rung::Parallel,
        Rung::Tiled,
        Rung::Software,
        Rung::Krylov,
        Rung::Estimate,
    ];

    /// Position in the chain (0 = most capable).
    pub fn index(self) -> usize {
        match self {
            Rung::Detailed => 0,
            Rung::Reference => 1,
            Rung::Parallel => 2,
            Rung::Tiled => 3,
            Rung::Software => 4,
            Rung::Krylov => 5,
            Rung::Estimate => 6,
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rung::Detailed => "detailed-sim",
            Rung::Reference => "hw-reference",
            Rung::Parallel => "software-parallel",
            Rung::Tiled => "software-tiled",
            Rung::Software => "software",
            Rung::Krylov => "krylov",
            Rung::Estimate => "estimate",
        })
    }
}

/// Circuit-breaker states (classic closed → open → half-open machine,
/// with the cool-down measured in submitted jobs, not wall time).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: jobs flow through.
    #[default]
    Closed,
    /// Quarantined after consecutive failures; the rung is skipped until
    /// the cool-down elapses.
    Open,
    /// Cool-down elapsed: the next job probes the rung; success closes
    /// the breaker, failure re-opens it.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// Tuning of the per-rung circuit breakers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip Closed -> Open.
    pub open_after: u32,
    /// Job submissions to wait in Open before probing (Open ->
    /// `HalfOpen`). The deterministic stand-in for a wall-clock cool-down.
    pub cooldown_jobs: u32,
    /// Consecutive probe successes that close a `HalfOpen` breaker.
    pub close_after: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            open_after: 3,
            cooldown_jobs: 8,
            close_after: 1,
        }
    }
}

/// One observed breaker state change, stamped with the submission clock
/// (total jobs submitted when it happened).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerTransition {
    /// Jobs submitted to the service when the transition fired.
    pub at_submission: u64,
    /// The rung whose breaker moved.
    pub rung: Rung,
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
}

/// One per-rung breaker.
#[derive(Clone, Copy, Debug)]
struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    cooldown_remaining: u32,
    probe_successes: u32,
}

impl CircuitBreaker {
    fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            cooldown_remaining: 0,
            probe_successes: 0,
        }
    }

    /// Runtime state as a persistable image (the config is not
    /// persisted; restore pairs the image with the live config).
    fn image(&self) -> BreakerImage {
        BreakerImage {
            state: match self.state {
                BreakerState::Closed => 0,
                BreakerState::Open => 1,
                BreakerState::HalfOpen => 2,
            },
            consecutive_failures: self.consecutive_failures,
            cooldown_remaining: self.cooldown_remaining,
            probe_successes: self.probe_successes,
        }
    }

    /// Rebuilds a breaker from a persisted image.
    fn restore(config: BreakerConfig, image: &BreakerImage) -> Self {
        CircuitBreaker {
            config,
            state: match image.state {
                1 => BreakerState::Open,
                2 => BreakerState::HalfOpen,
                _ => BreakerState::Closed,
            },
            consecutive_failures: image.consecutive_failures,
            cooldown_remaining: image.cooldown_remaining,
            probe_successes: image.probe_successes,
        }
    }

    fn admits(&self) -> bool {
        self.state != BreakerState::Open
    }

    /// Submission tick: Open breakers count down toward a probe.
    fn on_submit(&mut self) -> Option<(BreakerState, BreakerState)> {
        if self.state == BreakerState::Open {
            self.cooldown_remaining = self.cooldown_remaining.saturating_sub(1);
            if self.cooldown_remaining == 0 {
                self.state = BreakerState::HalfOpen;
                self.probe_successes = 0;
                return Some((BreakerState::Open, BreakerState::HalfOpen));
            }
        }
        None
    }

    /// `clean` is false when the rung served only after recovery
    /// actions: that neither counts against the rung nor proves it
    /// healthy, so the failure streak is left untouched.
    fn on_success(&mut self, clean: bool) -> Option<(BreakerState, BreakerState)> {
        match self.state {
            BreakerState::Closed => {
                if clean {
                    self.consecutive_failures = 0;
                }
                None
            }
            BreakerState::HalfOpen => {
                self.probe_successes += 1;
                if self.probe_successes >= self.config.close_after {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    Some((BreakerState::HalfOpen, BreakerState::Closed))
                } else {
                    None
                }
            }
            BreakerState::Open => None,
        }
    }

    fn on_failure(&mut self) -> Option<(BreakerState, BreakerState)> {
        match self.state {
            BreakerState::HalfOpen => {
                self.trip();
                Some((BreakerState::HalfOpen, BreakerState::Open))
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.open_after {
                    self.trip();
                    Some((BreakerState::Closed, BreakerState::Open))
                } else {
                    None
                }
            }
            BreakerState::Open => None,
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.cooldown_remaining = self.config.cooldown_jobs.max(1);
    }
}

/// What happened when the service tried one rung for one job.
#[derive(Clone, Debug, PartialEq)]
pub enum AttemptDisposition {
    /// The rung produced the job's answer.
    Served,
    /// The rung's breaker was open; it was not attempted.
    SkippedBreakerOpen,
    /// The job's iteration budget was already exhausted; an iterative
    /// rung could not have finished in time.
    SkippedBudgetExhausted,
    /// The rung does not apply to this job's problem class (e.g.
    /// [`Rung::Krylov`] on a time-dependent job). Not a backend failure:
    /// the breaker is untouched.
    SkippedNotApplicable,
    /// The rung lies above the job's brownout entry rung
    /// ([`JobSpec::entry_rung`]); the front end degraded this job to a
    /// cheaper part of the chain. Not a backend failure: the breaker is
    /// untouched.
    SkippedBrownout,
    /// The rung ran as one side of a hedged race and lost: the other
    /// side produced the answer first and this attempt was cancelled.
    /// Not a backend failure: the breaker is untouched, and the side's
    /// iterations are tallied in
    /// [`ServiceStats::hedge_wasted_iterations`] rather than billed to
    /// the job's deadline clock.
    HedgeLost,
    /// The rung ran and failed with this error.
    Failed(FdmaxError),
}

/// One entry of a job's fallback trace.
#[derive(Clone, Debug, PartialEq)]
pub struct RungAttempt {
    /// The rung tried.
    pub rung: Rung,
    /// How the attempt ended.
    pub disposition: AttemptDisposition,
    /// Engine steps actually executed by this attempt (budget currency;
    /// rollback replays count, the analytic rung charges zero).
    pub iterations: u64,
}

/// Final disposition of one job.
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutcome {
    /// A rung produced the answer.
    Served {
        /// The rung that served.
        rung: Rung,
        /// `true` when a rung below [`Rung::Detailed`] served.
        degraded: bool,
    },
    /// The job's cancellation token fired (while queued or mid-solve).
    Cancelled {
        /// Engine steps this job had executed when cancellation was
        /// observed.
        iteration: u64,
    },
    /// Every rung failed or was skipped; the last error is attached.
    Failed(FdmaxError),
}

/// The definite record every admitted job terminates with.
#[derive(Clone, Debug)]
#[must_use = "a service report records which rung served the job and why"]
pub struct ServiceReport {
    /// The job this report describes.
    pub job: JobId,
    /// Final disposition.
    pub outcome: JobOutcome,
    /// Every rung attempt, in chain order.
    pub attempts: Vec<RungAttempt>,
    /// Service clock (total iterations executed) at admission.
    pub admitted_at: u64,
    /// Service clock when the job was dequeued for execution.
    pub started_at: u64,
    /// Service clock when the job terminated.
    pub completed_at: u64,
    /// The job's deadline on the service clock
    /// (`admitted_at + deadline_iterations`).
    pub deadline_at: u64,
    /// Engine steps this job executed across all attempts.
    pub iterations: u64,
    /// Whether the serving rung met the job's stop-condition goal
    /// (always `false` for the analytic rung).
    pub converged: bool,
    /// Simulated-cycle cost of the job: real simulator cycles for
    /// [`Rung::Detailed`] attempts (failed ones included — burned work
    /// was still burned), analytic-model cycles for the other rungs.
    pub latency_cycles: u64,
    /// Fault/recovery activity of the detailed-simulator attempt, when
    /// one ran.
    pub recovery: Option<RecoveryReport>,
    /// The numeric solution (`None` when the analytic rung served or
    /// the job did not complete).
    pub solution: Option<Grid2D<f32>>,
}

impl ServiceReport {
    /// The rung that served, when one did.
    pub fn served_by(&self) -> Option<Rung> {
        match self.outcome {
            JobOutcome::Served { rung, .. } => Some(rung),
            _ => None,
        }
    }

    /// `true` when the job was served by a rung below the full
    /// simulator.
    pub fn degraded(&self) -> bool {
        matches!(self.outcome, JobOutcome::Served { degraded: true, .. })
    }

    /// `true` when the job terminated at or before its deadline.
    pub fn deadline_met(&self) -> bool {
        self.completed_at <= self.deadline_at
    }

    /// FNV-1a digest over the report's deterministic payload (outcome,
    /// clocks, iteration/latency ledger, fault-trace digest, and every
    /// solution bit). Two runs of the same job from the same service
    /// state — e.g. an uninterrupted run and a crash-recovered
    /// replay — produce the same digest.
    pub fn digest(&self) -> u64 {
        use crate::durability::{fnv1a, FNV_OFFSET};
        let mut h = FNV_OFFSET;
        let put = |h: u64, v: u64| fnv1a(h, &v.to_le_bytes());
        h = put(h, self.job.0);
        h = match &self.outcome {
            JobOutcome::Served { rung, degraded } => put(
                put(fnv1a(h, b"served"), rung.index() as u64),
                u64::from(*degraded),
            ),
            JobOutcome::Cancelled { iteration } => put(fnv1a(h, b"cancelled"), *iteration),
            JobOutcome::Failed(err) => fnv1a(fnv1a(h, b"failed"), err.to_string().as_bytes()),
        };
        for v in [
            self.admitted_at,
            self.started_at,
            self.completed_at,
            self.deadline_at,
            self.iterations,
            u64::from(self.converged),
            self.latency_cycles,
        ] {
            h = put(h, v);
        }
        h = put(
            h,
            self.recovery
                .as_ref()
                .and_then(|r| r.fault_trace_digest)
                .unwrap_or(0),
        );
        if let Some(solution) = &self.solution {
            h = put(h, solution.rows() as u64);
            h = put(h, solution.cols() as u64);
            for v in solution.as_slice() {
                h = fnv1a(h, &v.to_bits().to_le_bytes());
            }
        }
        h
    }
}

/// Tuning of the deterministic hedged-retry trigger.
///
/// When an attempt at a hedge-eligible rung ([`Rung::Reference`],
/// [`Rung::Parallel`], [`Rung::Software`]) has run for the configured
/// percentile of that rung's recent service times without finishing,
/// the service launches the *next* rung of the chain as a hedge and
/// interleaves both in deterministic virtual time; the first result
/// wins and the loser is cancelled through its [`CancelToken`]. Only
/// the winner's virtual completion time is billed to the job's
/// deadline clock (the hedge models a spare lane); the loser's burned
/// iterations land in [`ServiceStats::hedge_wasted_iterations`].
///
/// [`Rung::Detailed`] never hedges (its fault campaign and recovery
/// ledger belong to exactly one simulator instance) and a hedge is
/// never launched at the terminal [`Rung::Estimate`] — a chain whose
/// next rung is `Estimate` makes the hedge vacuous, which is what the
/// `FDX021` lint flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HedgeConfig {
    /// Percentile (1–100) of the rung's recent service times used as
    /// the hedge trigger; 90 hedges the slowest ~10% of attempts.
    pub percentile: u8,
    /// Recorded service-time samples a rung needs before hedging arms
    /// (at most the ring capacity of 8).
    pub min_samples: u8,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            percentile: 90,
            min_samples: 4,
        }
    }
}

/// Ring of recent per-rung attempt service times (iterations) backing
/// the hedge trigger. Fixed capacity keeps the persisted service image
/// `Copy` and recovery bit-exact.
#[derive(Clone, Copy, Debug, Default)]
struct LatencyRing {
    samples: [u64; 8],
    len: u8,
    pos: u8,
}

impl LatencyRing {
    fn push(&mut self, v: u64) {
        self.samples[usize::from(self.pos)] = v;
        self.pos = (self.pos + 1) % 8;
        self.len = (self.len + 1).min(8);
    }

    /// The `pct`-th percentile of the recorded samples (nearest-rank on
    /// the sorted window); `None` while empty.
    fn percentile(&self, pct: u8) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let mut sorted = self.samples[..usize::from(self.len)].to_vec();
        sorted.sort_unstable();
        let idx = (sorted.len() - 1) * usize::from(pct.min(100)) / 100;
        Some(sorted[idx])
    }
}

/// Tuning of a [`SolveService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// The accelerator configuration every hardware rung runs on.
    pub accel: FdmaxConfig,
    /// Bounded admission queue depth; submissions beyond it are refused
    /// with [`SubmitError::Saturated`].
    pub queue_capacity: usize,
    /// Per-job deadline on the service clock, in iterations, counted
    /// from admission (queue wait included).
    pub deadline_iterations: u64,
    /// Hard cap on any single job's iteration count (clamps the
    /// requested stop condition).
    pub max_job_iterations: usize,
    /// Master fault campaign; each job runs under
    /// `campaign.for_job(id)` unless its spec pins one.
    pub campaign: FaultCampaign,
    /// Checkpoint/rollback policy for the detailed-simulator rung.
    pub policy: ResiliencePolicy,
    /// Circuit-breaker tuning, shared by all rungs.
    pub breaker: BreakerConfig,
    /// Stall-watchdog window (iterations); 0 disables the watchdog.
    /// Armed only for tolerance-mode jobs — fixed-step runs are under
    /// no obligation to decay.
    pub stall_window: usize,
    /// A solve is stalled when the norm fails to decay below
    /// `earlier * stall_min_decay` over the window.
    pub stall_min_decay: f64,
    /// Worker bands for the strip-parallel software rung. Results are
    /// thread-count invariant (bit-identical), so this only tunes
    /// throughput.
    pub parallel_threads: usize,
    /// Fused sweeps per cache pass on the [`Rung::Tiled`] rung. `<= 1`
    /// disables the rung (every job skips it as not applicable); depths
    /// incompatible with the job geometry are caught at admission by the
    /// FDX022 lint.
    pub tile_depth: usize,
    /// Durability settings: `Some` wires a write-ahead job journal and
    /// persisted checkpoints under
    /// [`DurabilityConfig::journal_dir`]; `None` keeps the service
    /// purely in-memory.
    pub durability: Option<DurabilityConfig>,
    /// Runs the static solve-plan analysis ([`crate::analysis`]) at
    /// admission and rejects jobs with Error-level findings (FDX015
    /// convergence-budget infeasibility, FDX016 precision-floor
    /// violations) instead of burning their deadline discovering the
    /// same thing dynamically. Disable to admit every structurally
    /// valid job (e.g. to exercise the watchdog paths).
    pub admission_analysis: bool,
    /// Identity of this service inside a worker pool. Stamped on every
    /// `AttemptStarted` journal record so a recovered pool can tell
    /// which worker ran what; each worker owns its own breakers, so
    /// breaker accounting is per-rung *and* per-worker.
    pub worker_id: u32,
    /// Deterministic hedged-retry policy; `None` (the default)
    /// disables hedging.
    pub hedge: Option<HedgeConfig>,
}

impl ServiceConfig {
    /// Defaults sized so the FDX011 invariant holds:
    /// `queue_capacity x max_job_iterations <= deadline_iterations`.
    pub fn new(accel: FdmaxConfig) -> Self {
        ServiceConfig {
            accel,
            queue_capacity: 16,
            deadline_iterations: 20_000,
            max_job_iterations: 1_000,
            campaign: FaultCampaign::disabled(),
            policy: ResiliencePolicy::default(),
            breaker: BreakerConfig::default(),
            stall_window: 0,
            stall_min_decay: 0.999_999,
            parallel_threads: 4,
            tile_depth: 4,
            durability: None,
            admission_analysis: true,
            worker_id: 0,
            hedge: None,
        }
    }

    /// Enables deterministic hedged retries.
    #[must_use]
    pub fn with_hedge(mut self, hedge: HedgeConfig) -> Self {
        self.hedge = Some(hedge);
        self
    }

    /// Enables the write-ahead job journal and persisted checkpoints.
    #[must_use]
    pub fn with_durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = Some(durability);
        self
    }

    /// Runs the FDX011 sizing lint over this configuration.
    ///
    /// Warns when `queue_capacity x max_job_iterations` exceeds
    /// `deadline_iterations`: a tail job behind a full queue can then
    /// burn its whole deadline budget waiting and be served only by the
    /// degraded analytic rung.
    pub fn lint(&self) -> crate::lint::LintReport {
        crate::lint::lint_service(&self.lint_spec())
    }

    /// This configuration as a [`crate::lint::ServiceSpec`], e.g. for
    /// fleet-wide linting via [`crate::lint::lint_service_fleet`].
    pub fn lint_spec(&self) -> crate::lint::ServiceSpec {
        crate::lint::ServiceSpec {
            queue_capacity: self.queue_capacity,
            max_job_iterations: self.max_job_iterations,
            deadline_iterations: self.deadline_iterations,
            checkpoint_every: self.durability.as_ref().map(|d| d.checkpoint_every),
            journal_dir: self
                .durability
                .as_ref()
                .map(|d| d.journal_dir.display().to_string()),
        }
    }
}

/// Aggregate tallies of everything the service has processed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs admitted.
    pub submitted: u64,
    /// Submissions refused (saturation or rejection).
    pub refused: u64,
    /// Jobs served (any rung).
    pub served: u64,
    /// Jobs served by each rung, indexed by [`Rung::index`].
    pub served_by: [u64; 7],
    /// Jobs that ended cancelled.
    pub cancelled: u64,
    /// Jobs that ended failed on every rung.
    pub failed: u64,
    /// Served jobs that missed their deadline (possible only when the
    /// FDX011 sizing invariant is violated).
    pub deadline_misses: u64,
    /// **Loud degradation flag**: `true` once journal I/O has
    /// exhausted its retries and the service fell back to
    /// in-memory-only mode. Jobs keep completing, but a crash from
    /// here on loses them.
    pub journal_degraded: bool,
    /// Journal/checkpoint I/O errors observed (including retries that
    /// eventually succeeded).
    pub journal_io_errors: u64,
    /// Interrupted jobs re-admitted by
    /// [`SolveService::recover`] over this service's lifetime.
    pub recovered_jobs: u64,
    /// Hedged retries launched (a slow attempt crossed its latency
    /// percentile trigger and the next rung was raced against it).
    pub hedges_launched: u64,
    /// Hedged retries where the hedge side produced the job's answer.
    pub hedge_wins: u64,
    /// Iterations burned by losing race sides. Spare-lane work: never
    /// billed to any job's deadline clock, tallied here so capacity
    /// planning sees the overhead hedging really costs.
    pub hedge_wasted_iterations: u64,
}

impl ServiceStats {
    /// Fraction of served jobs that a rung below the full simulator
    /// served.
    pub fn fallback_rate(&self) -> f64 {
        if self.served == 0 {
            return 0.0;
        }
        (self.served - self.served_by[0]) as f64 / self.served as f64
    }
}

/// Where a recovered job resumes: a persisted engine state for one
/// specific rung of the fallback chain. Rungs before it replay from
/// scratch (they are deterministic); the matching rung restores the
/// image and runs only the remaining iterations.
#[derive(Clone, Debug)]
struct ResumePoint {
    rung: Rung,
    image: EngineStateImage,
}

/// A queued job.
#[derive(Clone, Debug)]
struct Job {
    id: JobId,
    spec: JobSpec,
    cancel: CancelToken,
    admitted_at: u64,
    deadline_at: u64,
    resume: Option<ResumePoint>,
}

/// Outcome of running one rung for one job (internal).
struct RungRun {
    result: Result<(bool, Option<Grid2D<f32>>), FdmaxError>,
    executed: u64,
    cycles: u64,
    recovery: Option<RecoveryReport>,
}

/// A hedge-eligible (primary, target) rung pair. Making the pairing a
/// closed enum keeps the engine-type dispatch in
/// [`SolveService::run_hedged`] total: there is no "other" combination
/// to fall through to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum HedgePair {
    /// [`Rung::Reference`] hedged by [`Rung::Parallel`].
    ReferenceParallel,
    /// [`Rung::Parallel`] hedged by [`Rung::Software`].
    ParallelSoftware,
    /// [`Rung::Software`] hedged by [`Rung::Krylov`] (steady-state
    /// jobs only).
    SoftwareKrylov,
}

impl HedgePair {
    fn target(self) -> Rung {
        match self {
            HedgePair::ReferenceParallel => Rung::Parallel,
            HedgePair::ParallelSoftware => Rung::Software,
            HedgePair::SoftwareKrylov => Rung::Krylov,
        }
    }
}

/// Outcome of one deterministic two-engine race (internal).
struct RaceResult {
    /// The winning side's result, or the primary side's error when both
    /// sides failed.
    result: Result<(bool, Option<Grid2D<f32>>), FdmaxError>,
    /// Virtual completion time billed to the job: the winner's finish
    /// on the shared virtual clock (the hedge side starts at the
    /// trigger offset), capped by the deadline budget both sides share.
    billed: u64,
    /// Steps the primary side actually executed.
    primary_executed: u64,
    /// Steps the hedge side actually executed (0 when never launched).
    hedge_executed: u64,
    /// Whether the hedge side was launched at all.
    hedge_launched: bool,
    /// Whether the hedge side produced `result`.
    hedge_won: bool,
    /// The primary side's own error when the hedge won or both failed
    /// (`None` when it was merely cancelled as the losing side).
    primary_error: Option<FdmaxError>,
    /// The hedge side's own error when the primary won or both failed
    /// (`None` when it was merely cancelled as the losing side).
    hedge_error: Option<FdmaxError>,
}

/// Races two engines in deterministic virtual time: the primary runs
/// alone until `hedge_after` steps, then the hedge joins and the side
/// whose virtual clock trails advances next (ties go to the primary),
/// in fixed 8-step slices. The first side to terminate successfully
/// wins and cancels the other through its side-local [`CancelToken`];
/// `job_cancel` (the job's public token) cancels both. Budgets are
/// sized so neither side's virtual finish can exceed the job's
/// remaining deadline budget.
#[allow(clippy::too_many_arguments)]
fn race_engines<A: SolveEngine, B: SolveEngine>(
    stop: &StopCondition,
    job_cancel: &CancelToken,
    p_engine: A,
    p_budget: Budget,
    p_cancel: &CancelToken,
    p_solution: fn(A) -> Grid2D<f32>,
    hedge_after: u64,
    h_engine: B,
    h_budget: Budget,
    h_cancel: &CancelToken,
    h_solution: fn(B) -> Grid2D<f32>,
) -> RaceResult {
    const SLICE: usize = 8;
    let mut p_sess = Session::new(p_engine, *stop).with_budget(p_budget);
    // Phase 1: the primary runs alone up to the trigger, in slices so a
    // job-level cancellation is still observed promptly.
    let mut p_term: Option<Result<bool, FdmaxError>> = None;
    while p_term.is_none() && (p_sess.steps_executed() as u64) < hedge_after {
        if job_cancel.is_cancelled() {
            p_cancel.cancel();
        }
        let rest = (hedge_after - p_sess.steps_executed() as u64).min(SLICE as u64) as usize;
        match p_sess.run_for(rest) {
            Ok(fdm::engine::SessionPoll::Done(met)) => p_term = Some(Ok(met)),
            Ok(fdm::engine::SessionPoll::Yielded) => {}
            Err(e) => p_term = Some(Err(FdmaxError::from(e))),
        }
    }
    if let Some(terminal) = p_term {
        // Finished (or failed) before the trigger: no hedge launched.
        let primary_executed = p_sess.steps_executed() as u64;
        let (engine, _) = p_sess.into_parts();
        return RaceResult {
            result: terminal.map(|met| (met, Some(p_solution(engine)))),
            billed: primary_executed,
            primary_executed,
            hedge_executed: 0,
            hedge_launched: false,
            hedge_won: false,
            primary_error: None,
            hedge_error: None,
        };
    }

    // Phase 2: hedge launched; interleave by virtual time.
    let mut h_sess = Session::new(h_engine, *stop).with_budget(h_budget);
    let mut p_term: Option<Result<bool, FdmaxError>> = None;
    let mut h_term: Option<Result<bool, FdmaxError>> = None;
    let mut hedge_won: Option<bool> = None;
    loop {
        if job_cancel.is_cancelled() {
            p_cancel.cancel();
            h_cancel.cancel();
        }
        let p_now = p_sess.steps_executed() as u64;
        let h_now = hedge_after + h_sess.steps_executed() as u64;
        let advance_primary = match (&p_term, &h_term) {
            (Some(_), Some(_)) => break,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (None, None) => p_now <= h_now,
        };
        if advance_primary {
            match p_sess.run_for(SLICE) {
                Ok(fdm::engine::SessionPoll::Done(met)) => {
                    p_term = Some(Ok(met));
                    if hedge_won.is_none() {
                        hedge_won = Some(false);
                        h_cancel.cancel();
                    }
                }
                Ok(fdm::engine::SessionPoll::Yielded) => {}
                Err(e) => p_term = Some(Err(FdmaxError::from(e))),
            }
        } else {
            match h_sess.run_for(SLICE) {
                Ok(fdm::engine::SessionPoll::Done(met)) => {
                    h_term = Some(Ok(met));
                    if hedge_won.is_none() {
                        hedge_won = Some(true);
                        p_cancel.cancel();
                    }
                }
                Ok(fdm::engine::SessionPoll::Yielded) => {}
                Err(e) => h_term = Some(Err(FdmaxError::from(e))),
            }
        }
    }

    let primary_executed = p_sess.steps_executed() as u64;
    let hedge_executed = h_sess.steps_executed() as u64;
    let is_cancelled = |e: &FdmaxError| matches!(e, FdmaxError::Cancelled { .. });
    let side_error = |term: &Option<Result<bool, FdmaxError>>| match term {
        Some(Err(e)) if !is_cancelled(e) => Some(e.clone()),
        _ => None,
    };
    let (p_engine, _) = p_sess.into_parts();
    let (h_engine, _) = h_sess.into_parts();
    match hedge_won {
        Some(false) => {
            let met = matches!(p_term, Some(Ok(m)) if m);
            RaceResult {
                result: Ok((met, Some(p_solution(p_engine)))),
                billed: primary_executed,
                primary_executed,
                hedge_executed,
                hedge_launched: true,
                hedge_won: false,
                primary_error: None,
                hedge_error: side_error(&h_term),
            }
        }
        Some(true) => {
            let met = matches!(h_term, Some(Ok(m)) if m);
            RaceResult {
                result: Ok((met, Some(h_solution(h_engine)))),
                billed: hedge_after + hedge_executed,
                primary_executed,
                hedge_executed,
                hedge_launched: true,
                hedge_won: true,
                primary_error: side_error(&p_term),
                hedge_error: None,
            }
        }
        None => {
            // Both sides failed; the primary's error drives the chain.
            let p_err = match p_term {
                Some(Err(e)) => e,
                _ => FdmaxError::Cancelled { iteration: 0 },
            };
            RaceResult {
                result: Err(p_err),
                billed: primary_executed.max(hedge_after + hedge_executed),
                primary_executed,
                hedge_executed,
                hedge_launched: true,
                hedge_won: false,
                primary_error: None,
                hedge_error: side_error(&h_term),
            }
        }
    }
}

/// Durability context threaded into one rung attempt: the journal (if
/// still healthy), the checkpoint cadence, and an optional persisted
/// state to resume from.
struct DurCtx<'a> {
    journal: Option<&'a mut JobJournal>,
    checkpoint_every: u64,
    job_id: u64,
    rung: Rung,
    resume: Option<&'a EngineStateImage>,
}

/// The multi-job solve service.
#[derive(Debug)]
pub struct SolveService {
    config: ServiceConfig,
    queue: VecDeque<Job>,
    next_id: u64,
    submitted: u64,
    /// Total engine steps executed across all jobs — the service clock.
    clock: u64,
    breakers: [CircuitBreaker; 7],
    transitions: Vec<BreakerTransition>,
    stats: ServiceStats,
    journal: Option<JobJournal>,
    /// EWMA of completed jobs' iteration counts — the measured per-job
    /// drain rate behind [`SubmitError::Saturated`]'s
    /// `retry_after_iterations`. Seeded pessimistically with the
    /// per-job iteration cap until the first completion.
    drain_ewma: u64,
    /// Recent per-rung service times feeding the hedge trigger.
    latency: [LatencyRing; 7],
}

impl SolveService {
    /// A fresh service; nothing queued, all breakers closed, clock at
    /// zero. When the configuration carries durability settings the
    /// write-ahead journal is opened (an unwritable journal directory
    /// degrades to in-memory-only mode instead of failing).
    pub fn new(config: ServiceConfig) -> Self {
        let breaker = CircuitBreaker::new(config.breaker);
        let journal = config.durability.as_ref().map(JobJournal::open);
        let drain_ewma = config.max_job_iterations as u64;
        let mut service = SolveService {
            config,
            queue: VecDeque::new(),
            next_id: 0,
            submitted: 0,
            clock: 0,
            breakers: [breaker; 7],
            transitions: Vec::new(),
            stats: ServiceStats::default(),
            journal,
            drain_ewma,
            latency: [LatencyRing::default(); 7],
        };
        service.sync_journal_stats();
        service
    }

    /// Mirrors the journal's health into the public stats.
    fn sync_journal_stats(&mut self) {
        if let Some(journal) = &self.journal {
            self.stats.journal_degraded = journal.degraded();
            self.stats.journal_io_errors = journal.io_errors();
        }
    }

    /// The deterministic service state as a persistable image.
    fn state_image(&self) -> ServiceStateImage {
        let mut breakers = [BreakerImage::default(); 7];
        for (slot, breaker) in breakers.iter_mut().zip(&self.breakers) {
            *slot = breaker.image();
        }
        let mut latency_samples = [[0u64; 8]; 7];
        let mut latency_len = [0u8; 7];
        let mut latency_pos = [0u8; 7];
        for (i, ring) in self.latency.iter().enumerate() {
            latency_samples[i] = ring.samples;
            latency_len[i] = ring.len;
            latency_pos[i] = ring.pos;
        }
        ServiceStateImage {
            clock: self.clock,
            next_id: self.next_id,
            submitted: self.submitted,
            stats: self.stats,
            breakers,
            drain_ewma: self.drain_ewma,
            latency_samples,
            latency_len,
            latency_pos,
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Total engine steps executed so far (the deadline clock).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Jobs currently waiting.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Current breaker state of one rung.
    pub fn breaker_state(&self, rung: Rung) -> BreakerState {
        self.breakers[rung.index()].state
    }

    /// Every breaker transition observed so far, in order.
    pub fn transitions(&self) -> &[BreakerTransition] {
        &self.transitions
    }

    /// Aggregate tallies.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// Admits a job (bounded queue, structural validation) and ticks
    /// every open breaker's cool-down — the deterministic stand-in for
    /// elapsed time.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Saturated`] when the queue is full;
    /// [`SubmitError::Rejected`] for jobs that can never run.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobTicket, SubmitError> {
        self.submit_with_deadline_budget(spec, None)
    }

    /// [`SolveService::submit`] with an explicit per-job deadline
    /// budget (iterations from admission) overriding the configured
    /// [`ServiceConfig::deadline_iterations`]. The front end uses this
    /// to charge a job's own queueing delay in *its* queues against the
    /// same deadline the job would have had at the door.
    ///
    /// # Errors
    ///
    /// As [`SolveService::submit`].
    pub fn submit_with_deadline(
        &mut self,
        spec: JobSpec,
        deadline_iterations: u64,
    ) -> Result<JobTicket, SubmitError> {
        self.submit_with_deadline_budget(spec, Some(deadline_iterations))
    }

    /// Measured per-job drain rate: the EWMA of completed jobs'
    /// iteration counts (seeded with the per-job cap until the first
    /// completion). The currency of
    /// [`SubmitError::Saturated`]'s `retry_after_iterations`.
    pub fn drain_rate(&self) -> u64 {
        self.drain_ewma
    }

    fn submit_with_deadline_budget(
        &mut self,
        spec: JobSpec,
        deadline_iterations: Option<u64>,
    ) -> Result<JobTicket, SubmitError> {
        let rows = spec.problem.rows();
        let cols = spec.problem.cols();
        if rows < 3 || cols < 3 {
            self.stats.refused += 1;
            return Err(SubmitError::Rejected(FdmaxError::GridTooSmall {
                rows,
                cols,
            }));
        }
        if self.config.admission_analysis {
            let analysis = crate::analysis::analyze_plan(
                &self.solve_plan(&spec),
                &self.config.accel,
                Some(&self.config.lint_spec()),
            );
            if analysis.lint().has_errors() {
                self.stats.refused += 1;
                return Err(SubmitError::Rejected(FdmaxError::Lint {
                    report: analysis.into_lint(),
                }));
            }
        }
        if self.queue.len() >= self.config.queue_capacity {
            self.stats.refused += 1;
            let retry_after_jobs = self.queue.len() + 1 - self.config.queue_capacity;
            return Err(SubmitError::Saturated {
                queue_depth: self.queue.len(),
                retry_after_jobs,
                retry_after_iterations: retry_after_jobs as u64 * self.drain_ewma,
            });
        }

        let id = JobId(self.next_id);
        self.next_id += 1;
        self.submitted += 1;
        self.stats.submitted += 1;

        // Cool-down tick: open breakers move toward their probe on
        // every accepted submission.
        for rung in Rung::ALL {
            if let Some((from, to)) = self.breakers[rung.index()].on_submit() {
                self.transitions.push(BreakerTransition {
                    at_submission: self.submitted,
                    rung,
                    from,
                    to,
                });
            }
        }

        let admitted_at = self.clock;
        let deadline_at =
            self.clock + deadline_iterations.unwrap_or(self.config.deadline_iterations);
        // Write-ahead: the admission is durable before the caller ever
        // sees the ticket, so every ticket has a journal record.
        if let Some(journal) = self.journal.as_mut() {
            journal.append(&JournalRecord::Submitted {
                id: id.0,
                admitted_at,
                deadline_at,
                spec: spec.clone(),
            });
        }
        self.sync_journal_stats();
        let cancel = CancelToken::new();
        self.queue.push_back(Job {
            id,
            spec,
            cancel: cancel.clone(),
            admitted_at,
            deadline_at,
            resume: None,
        });
        Ok(JobTicket { id, cancel })
    }

    /// Runs the oldest queued job through the fallback chain; `None`
    /// when the queue is empty.
    pub fn run_next(&mut self) -> Option<ServiceReport> {
        let job = self.queue.pop_front()?;
        Some(self.execute(&job))
    }

    /// Runs every queued job to completion, in admission order.
    pub fn drain(&mut self) -> Vec<ServiceReport> {
        let mut reports = Vec::with_capacity(self.queue.len());
        while let Some(report) = self.run_next() {
            reports.push(report);
        }
        reports
    }

    /// The requested stop condition clamped to the service's per-job
    /// iteration cap.
    fn effective_stop(&self, spec: &JobSpec) -> StopCondition {
        spec.stop.clamped(self.config.max_job_iterations)
    }

    /// The solve plan the admission analyzer sees for `spec`: the job's
    /// grid, method, stop condition and data scale (largest finite
    /// `|value|` of the initial field — NaN-poisoned or all-zero fields
    /// yield scale 0, which skips the scale-dependent checks).
    fn solve_plan(&self, spec: &JobSpec) -> crate::analysis::SolvePlan {
        let scale = spec
            .problem
            .initial
            .as_slice()
            .iter()
            .map(|v| f64::from(v.abs()))
            .filter(|v| v.is_finite())
            .fold(0.0_f64, f64::max);
        crate::analysis::SolvePlan {
            rows: spec.problem.rows(),
            cols: spec.problem.cols(),
            method: spec.method,
            tolerance: spec.stop.tolerance_value(),
            requested_iterations: spec.stop.max_iterations(),
            precision: crate::analysis::PrecisionClass::F32,
            steady_state: spec.problem.is_steady_state(),
            scale,
            parallel_threads: self.config.parallel_threads,
            tile_depth: self.config.tile_depth,
        }
    }

    fn budget_for(&self, job: &Job, stop: &StopCondition, remaining: u64) -> Budget {
        let mut budget = Budget::deadline(remaining as usize).with_cancel(job.cancel.clone());
        if self.config.stall_window > 0 && stop.tolerance_value().is_some() {
            budget =
                budget.with_stall_watchdog(self.config.stall_window, self.config.stall_min_decay);
        }
        budget
    }

    /// Analytic cycle cost of `iterations` iterations of this job's
    /// problem (the latency currency for the non-simulated rungs).
    fn analytic_cycles(&self, spec: &JobSpec, iterations: u64) -> u64 {
        match ElasticConfig::try_plan(&self.config.accel, spec.problem.rows(), spec.problem.cols())
        {
            Ok(_) => {
                let mut engine = EstimateEngine::new(
                    self.config.accel,
                    spec.problem.rows(),
                    spec.problem.cols(),
                    spec.problem.offset.requires_buffer(),
                    spec.problem.stencil.has_self_term(),
                    iterations,
                );
                engine.begin();
                let _ = engine.step();
                engine.finish();
                engine.into_report().cycles()
            }
            Err(_) => 0,
        }
    }

    fn run_detailed(&self, job: &Job, stop: &StopCondition, remaining: u64) -> RungRun {
        let campaign = job
            .spec
            .campaign
            .unwrap_or_else(|| self.config.campaign.for_job(job.id.0));
        let mut sim = match DetailedSim::new(self.config.accel, &job.spec.problem, job.spec.method)
        {
            Ok(sim) => sim,
            Err(e) => {
                return RungRun {
                    result: Err(e),
                    executed: 0,
                    cycles: 0,
                    recovery: None,
                }
            }
        };
        sim.enable_faults(campaign);
        let mut session = Session::new(&mut sim, *stop)
            .with_policy(self.config.policy)
            .with_budget(self.budget_for(job, stop, remaining));
        let run = session.run();
        let executed = session.steps_executed() as u64;
        drop(session);
        let digest = sim.fault_injector().map(FaultInjector::trace_digest);
        let mut recovery = RecoveryReport::from_counters(sim.counters());
        recovery.fault_trace_digest = digest;
        let cycles = sim.counters().cycles;
        RungRun {
            result: run
                .map(|met| (met, Some(sim.solution().clone())))
                .map_err(|e| FdmaxError::from(e).with_fault_trace_digest(digest)),
            executed,
            cycles,
            recovery: Some(recovery),
        }
    }

    /// Drives one deterministic engine through a [`Session`]: restores
    /// a resume image when one is supplied (the attempt then runs only
    /// the remaining iterations but reports the *total* executed, so
    /// the service clock advances exactly as an uninterrupted run
    /// would), and streams checkpoints to the journal at the
    /// configured cadence.
    fn run_engine<E: SolveEngine>(
        &self,
        job: &Job,
        stop: &StopCondition,
        remaining: u64,
        mut dur: DurCtx<'_>,
        mut engine: E,
        solution_of: fn(E) -> Grid2D<f32>,
    ) -> RungRun {
        let mut base = 0u64;
        if let Some(image) = dur.resume.take() {
            if engine.restore_state(image) {
                base = image.iterations as u64;
            }
        }
        let budget = self.budget_for(job, stop, remaining.saturating_sub(base));
        let mut session = Session::new(engine, *stop).with_budget(budget);
        if dur.checkpoint_every > 0 {
            if let Some(journal) = dur.journal.take() {
                let (job_id, rung) = (dur.job_id, dur.rung);
                session = session.with_state_sink(dur.checkpoint_every as usize, move |image| {
                    // Record only checkpoints whose file landed: a
                    // `CheckpointTaken` must always point at a
                    // complete snapshot.
                    if let Some(name) = journal.write_checkpoint(job_id, rung, image) {
                        journal.append(&JournalRecord::CheckpointTaken {
                            id: job_id,
                            rung,
                            iteration: image.iterations as u64,
                            snapshot_ref: name,
                        });
                    }
                });
            }
        }
        let run = session.run();
        let executed = base + session.steps_executed() as u64;
        let (engine, _history) = session.into_parts();
        RungRun {
            result: run
                .map(|met| (met, Some(solution_of(engine))))
                .map_err(FdmaxError::from),
            executed,
            cycles: self.analytic_cycles(&job.spec, executed),
            recovery: None,
        }
    }

    fn run_reference(
        &self,
        job: &Job,
        stop: &StopCondition,
        remaining: u64,
        dur: DurCtx<'_>,
    ) -> RungRun {
        let elastic = match ElasticConfig::try_plan(
            &self.config.accel,
            job.spec.problem.rows(),
            job.spec.problem.cols(),
        ) {
            Ok(e) => e,
            Err(e) => {
                return RungRun {
                    result: Err(e),
                    executed: 0,
                    cycles: 0,
                    recovery: None,
                }
            }
        };
        let engine = HwReferenceEngine::with_elastic(
            &self.config.accel,
            &job.spec.problem,
            job.spec.method,
            elastic,
        );
        self.run_engine(
            job,
            stop,
            remaining,
            dur,
            engine,
            HwReferenceEngine::into_solution,
        )
    }

    fn run_parallel(
        &self,
        job: &Job,
        stop: &StopCondition,
        remaining: u64,
        dur: DurCtx<'_>,
    ) -> RungRun {
        let engine = ParallelSweepEngine::new(
            &job.spec.problem,
            job.spec.method.software_equivalent(),
            self.config.parallel_threads,
        );
        self.run_engine(
            job,
            stop,
            remaining,
            dur,
            engine,
            ParallelSweepEngine::into_solution,
        )
    }

    /// The temporally tiled software rung. Billing differs from
    /// [`SolveService::run_engine`]: one engine step is a whole epoch of
    /// up to `tile_depth` sweeps, so the session's step budget is the
    /// deadline converted to epochs, the engine's iteration cap keeps
    /// the final epoch from overshooting the deadline, and the executed
    /// figure billed to the service clock is the engine's *iteration*
    /// count, not the session's step count.
    fn run_tiled(
        &self,
        job: &Job,
        stop: &StopCondition,
        remaining: u64,
        mut dur: DurCtx<'_>,
    ) -> RungRun {
        let k = self.config.tile_depth.max(1);
        let mut engine = TiledSweepEngine::new(
            &job.spec.problem,
            job.spec.method.software_equivalent(),
            k,
            self.config.parallel_threads,
        );
        let mut base = 0u64;
        if let Some(image) = dur.resume.take() {
            if engine.restore_state(image) {
                base = image.iterations as u64;
            }
        }
        let iteration_ceiling = remaining.max(base).min(stop.max_iterations() as u64);
        let mut engine = engine.with_iteration_cap(iteration_ceiling as usize);
        let epoch_deadline = (remaining.saturating_sub(base) as usize).div_ceil(k);
        let mut budget = Budget::deadline(epoch_deadline).with_cancel(job.cancel.clone());
        if self.config.stall_window > 0 && stop.tolerance_value().is_some() {
            // The watchdog window is counted in history entries, which
            // are epochs here: convert so it spans the same sweep count.
            budget = budget.with_stall_watchdog(
                self.config.stall_window.div_ceil(k).max(2),
                self.config.stall_min_decay,
            );
        }
        let mut session = Session::new(&mut engine, *stop).with_budget(budget);
        if dur.checkpoint_every > 0 {
            if let Some(journal) = dur.journal.take() {
                let (job_id, rung) = (dur.job_id, dur.rung);
                session = session.with_state_sink(dur.checkpoint_every as usize, move |image| {
                    if let Some(name) = journal.write_checkpoint(job_id, rung, image) {
                        journal.append(&JournalRecord::CheckpointTaken {
                            id: job_id,
                            rung,
                            iteration: image.iterations as u64,
                            snapshot_ref: name,
                        });
                    }
                });
            }
        }
        let run = session.run();
        drop(session);
        let executed = engine.iterations() as u64;
        RungRun {
            result: run
                .map(|met| (met, Some(engine.into_solution())))
                .map_err(FdmaxError::from),
            executed,
            cycles: self.analytic_cycles(&job.spec, executed),
            recovery: None,
        }
    }

    fn run_software(
        &self,
        job: &Job,
        stop: &StopCondition,
        remaining: u64,
        dur: DurCtx<'_>,
    ) -> RungRun {
        let engine = SweepEngine::new(&job.spec.problem, job.spec.method.software_equivalent());
        self.run_engine(
            job,
            stop,
            remaining,
            dur,
            engine,
            SweepEngine::into_solution,
        )
    }

    /// Matrix-free CG on the job's steady-state system. No assembly, no
    /// checkpoints (conjugacy cannot resume from a field snapshot) — a
    /// detected fault falls through to the next rung.
    fn run_krylov(
        &self,
        job: &Job,
        stop: &StopCondition,
        remaining: u64,
        dur: DurCtx<'_>,
    ) -> RungRun {
        let engine = KrylovEngine::new(&job.spec.problem);
        self.run_engine(
            job,
            stop,
            remaining,
            dur,
            engine,
            KrylovEngine::into_solution,
        )
    }

    /// The terminal rung: an O(1) analytic report of the full requested
    /// solve. Charges no iterations, so it is always on time.
    fn run_estimate(&self, job: &Job, stop: &StopCondition) -> RungRun {
        match ElasticConfig::try_plan(
            &self.config.accel,
            job.spec.problem.rows(),
            job.spec.problem.cols(),
        ) {
            Ok(_) => RungRun {
                result: Ok((false, None)),
                executed: 0,
                cycles: self.analytic_cycles(&job.spec, stop.max_iterations() as u64),
                recovery: None,
            },
            Err(e) => RungRun {
                result: Err(e),
                executed: 0,
                cycles: 0,
                recovery: None,
            },
        }
    }

    /// The hedge pair and trigger for an attempt at `rung`, when the
    /// hedging policy arms: hedging enabled, a hedge-eligible pair, the
    /// target's breaker closed, no resume image pinning the plain
    /// checkpointed path, enough latency samples, and a trigger that
    /// leaves the hedge side a positive budget.
    fn hedge_plan(&self, job: &Job, rung: Rung, remaining: u64) -> Option<(HedgePair, u64)> {
        let hedge = self.config.hedge?;
        let pair = match rung {
            Rung::Reference => HedgePair::ReferenceParallel,
            Rung::Parallel => HedgePair::ParallelSoftware,
            Rung::Software if job.spec.problem.is_steady_state() => HedgePair::SoftwareKrylov,
            _ => return None,
        };
        if !self.breakers[pair.target().index()].admits() {
            return None;
        }
        if job.resume.is_some() {
            return None;
        }
        let ring = &self.latency[rung.index()];
        if ring.len < hedge.min_samples.min(8) {
            return None;
        }
        let trigger = ring.percentile(hedge.percentile)?;
        (trigger > 0 && trigger < remaining).then_some((pair, trigger))
    }

    /// Budget for one side of a hedged race: the side-local token
    /// replaces the job token (losing a race is not a job
    /// cancellation); stall-watchdog semantics match
    /// [`SolveService::budget_for`].
    fn side_budget(&self, stop: &StopCondition, steps: u64, cancel: CancelToken) -> Budget {
        let mut budget = Budget::deadline(steps as usize).with_cancel(cancel);
        if self.config.stall_window > 0 && stop.tolerance_value().is_some() {
            budget =
                budget.with_stall_watchdog(self.config.stall_window, self.config.stall_min_decay);
        }
        budget
    }

    /// Runs one hedged attempt: the pair's primary rung races its
    /// target with the trigger offset. Hedged attempts skip journal
    /// checkpoints (both sides are restartable from scratch and
    /// recovery replays the whole job deterministically).
    fn run_hedged(
        &self,
        job: &Job,
        stop: &StopCondition,
        remaining: u64,
        pair: HedgePair,
        trigger: u64,
    ) -> RaceResult {
        let p_cancel = CancelToken::new();
        let h_cancel = CancelToken::new();
        let p_budget = self.side_budget(stop, remaining, p_cancel.clone());
        let h_budget = self.side_budget(stop, remaining - trigger, h_cancel.clone());
        let no_launch = |result| RaceResult {
            result: Err(result),
            billed: 0,
            primary_executed: 0,
            hedge_executed: 0,
            hedge_launched: false,
            hedge_won: false,
            primary_error: None,
            hedge_error: None,
        };
        match pair {
            HedgePair::ReferenceParallel => {
                let elastic = match ElasticConfig::try_plan(
                    &self.config.accel,
                    job.spec.problem.rows(),
                    job.spec.problem.cols(),
                ) {
                    Ok(e) => e,
                    Err(e) => return no_launch(e),
                };
                let primary = HwReferenceEngine::with_elastic(
                    &self.config.accel,
                    &job.spec.problem,
                    job.spec.method,
                    elastic,
                );
                let hedge = ParallelSweepEngine::new(
                    &job.spec.problem,
                    job.spec.method.software_equivalent(),
                    self.config.parallel_threads,
                );
                race_engines(
                    stop,
                    &job.cancel,
                    primary,
                    p_budget,
                    &p_cancel,
                    HwReferenceEngine::into_solution,
                    trigger,
                    hedge,
                    h_budget,
                    &h_cancel,
                    ParallelSweepEngine::into_solution,
                )
            }
            HedgePair::ParallelSoftware => {
                let primary = ParallelSweepEngine::new(
                    &job.spec.problem,
                    job.spec.method.software_equivalent(),
                    self.config.parallel_threads,
                );
                let hedge =
                    SweepEngine::new(&job.spec.problem, job.spec.method.software_equivalent());
                race_engines(
                    stop,
                    &job.cancel,
                    primary,
                    p_budget,
                    &p_cancel,
                    ParallelSweepEngine::into_solution,
                    trigger,
                    hedge,
                    h_budget,
                    &h_cancel,
                    SweepEngine::into_solution,
                )
            }
            HedgePair::SoftwareKrylov => {
                let primary =
                    SweepEngine::new(&job.spec.problem, job.spec.method.software_equivalent());
                let hedge = KrylovEngine::new(&job.spec.problem);
                race_engines(
                    stop,
                    &job.cancel,
                    primary,
                    p_budget,
                    &p_cancel,
                    SweepEngine::into_solution,
                    trigger,
                    hedge,
                    h_budget,
                    &h_cancel,
                    KrylovEngine::into_solution,
                )
            }
        }
    }

    fn execute(&mut self, job: &Job) -> ServiceReport {
        // The journal is taken out of `self` for the duration of the
        // job so rung runners can borrow it mutably alongside `&self`.
        let mut journal = self.journal.take();
        let checkpoint_every = self
            .config
            .durability
            .as_ref()
            .map_or(0, |d| d.checkpoint_every);
        let started_at = self.clock;
        let stop = self.effective_stop(&job.spec);
        let mut attempts = Vec::new();
        let mut iterations = 0u64;
        let mut latency_cycles = 0u64;
        let mut recovery: Option<RecoveryReport> = None;
        let mut last_error: Option<FdmaxError> = None;
        let mut outcome: Option<JobOutcome> = None;
        let mut converged = false;
        let mut solution = None;

        if job.cancel.is_cancelled() {
            outcome = Some(JobOutcome::Cancelled { iteration: 0 });
        }

        if outcome.is_none() {
            for rung in Rung::ALL {
                let remaining = job.deadline_at.saturating_sub(self.clock);

                // The analytic rung is the terminal guarantee: never
                // skipped for an open breaker, an exhausted budget, or
                // a brownout entry rung.
                if rung != Rung::Estimate {
                    // Brownout: the front end degraded this job to a
                    // cheaper entry; rungs above it are skipped without
                    // feeding the breakers (nothing failed).
                    if rung.index() < job.spec.entry_rung.index() {
                        attempts.push(RungAttempt {
                            rung,
                            disposition: AttemptDisposition::SkippedBrownout,
                            iterations: 0,
                        });
                        continue;
                    }
                    // Temporal tiling needs a data-parallel sweep and a
                    // depth worth fusing; anything else passes straight
                    // through without feeding the breaker (nothing
                    // failed).
                    if rung == Rung::Tiled
                        && (self.config.tile_depth <= 1
                            || !TiledSweepEngine::<f32>::supports(
                                job.spec.method.software_equivalent(),
                            ))
                    {
                        attempts.push(RungAttempt {
                            rung,
                            disposition: AttemptDisposition::SkippedNotApplicable,
                            iterations: 0,
                        });
                        continue;
                    }
                    // Krylov methods only solve steady-state systems; a
                    // time-dependent job passes straight through without
                    // feeding the breaker (nothing failed).
                    if rung == Rung::Krylov && !job.spec.problem.is_steady_state() {
                        attempts.push(RungAttempt {
                            rung,
                            disposition: AttemptDisposition::SkippedNotApplicable,
                            iterations: 0,
                        });
                        continue;
                    }
                    if !self.breakers[rung.index()].admits() {
                        attempts.push(RungAttempt {
                            rung,
                            disposition: AttemptDisposition::SkippedBreakerOpen,
                            iterations: 0,
                        });
                        continue;
                    }
                    if remaining == 0 {
                        attempts.push(RungAttempt {
                            rung,
                            disposition: AttemptDisposition::SkippedBudgetExhausted,
                            iterations: 0,
                        });
                        continue;
                    }
                }

                if let Some(j) = journal.as_mut() {
                    j.append(&JournalRecord::AttemptStarted {
                        id: job.id.0,
                        rung,
                        clock: self.clock,
                        worker: self.config.worker_id,
                    });
                }

                // Hedged dispatch: a slow attempt at a hedge-eligible
                // rung races the next rung, first result wins.
                if let Some((pair, trigger)) = self.hedge_plan(job, rung, remaining) {
                    let race = self.run_hedged(job, &stop, remaining, pair, trigger);
                    if race.hedge_launched {
                        if let Some(j) = journal.as_mut() {
                            j.append(&JournalRecord::AttemptStarted {
                                id: job.id.0,
                                rung: pair.target(),
                                clock: self.clock + trigger,
                                worker: self.config.worker_id,
                            });
                        }
                        self.stats.hedges_launched += 1;
                        if race.hedge_won {
                            self.stats.hedge_wins += 1;
                            self.stats.hedge_wasted_iterations += race.primary_executed;
                        } else {
                            self.stats.hedge_wasted_iterations += race.hedge_executed;
                        }
                    }
                    self.clock += race.billed;
                    iterations += race.billed;
                    latency_cycles += self.analytic_cycles(&job.spec, race.billed);

                    let clean = !recovery.as_ref().is_some_and(RecoveryReport::recovered);
                    // Primary-side attempt record and breaker feed.
                    let primary_failed = match (&race.result, race.hedge_won) {
                        (Ok(_), false) => {
                            attempts.push(RungAttempt {
                                rung,
                                disposition: AttemptDisposition::Served,
                                iterations: race.primary_executed,
                            });
                            None
                        }
                        (Ok(_), true) => {
                            let disposition = match &race.primary_error {
                                Some(e) => AttemptDisposition::Failed(e.clone()),
                                None => AttemptDisposition::HedgeLost,
                            };
                            attempts.push(RungAttempt {
                                rung,
                                disposition,
                                iterations: race.primary_executed,
                            });
                            race.primary_error.clone()
                        }
                        (Err(e), _) => {
                            attempts.push(RungAttempt {
                                rung,
                                disposition: AttemptDisposition::Failed(e.clone()),
                                iterations: race.primary_executed,
                            });
                            Some(e.clone())
                        }
                    };
                    // Hedge-side attempt record and breaker feed.
                    if race.hedge_launched {
                        let target = pair.target();
                        if race.hedge_won {
                            attempts.push(RungAttempt {
                                rung: target,
                                disposition: AttemptDisposition::Served,
                                iterations: race.hedge_executed,
                            });
                            if let Some((from, to)) =
                                self.breakers[target.index()].on_success(clean)
                            {
                                self.transitions.push(BreakerTransition {
                                    at_submission: self.submitted,
                                    rung: target,
                                    from,
                                    to,
                                });
                            }
                        } else {
                            let disposition = match &race.hedge_error {
                                Some(e) => AttemptDisposition::Failed(e.clone()),
                                None => AttemptDisposition::HedgeLost,
                            };
                            attempts.push(RungAttempt {
                                rung: target,
                                disposition,
                                iterations: race.hedge_executed,
                            });
                            if let Some(err) = &race.hedge_error {
                                if !matches!(err, FdmaxError::DeadlineExceeded { .. }) {
                                    if let Some((from, to)) =
                                        self.breakers[target.index()].on_failure()
                                    {
                                        self.transitions.push(BreakerTransition {
                                            at_submission: self.submitted,
                                            rung: target,
                                            from,
                                            to,
                                        });
                                    }
                                }
                            }
                        }
                    }
                    // Primary breaker feed for a genuine failure.
                    if let Some(err) = &primary_failed {
                        match err {
                            FdmaxError::Cancelled { .. } | FdmaxError::DeadlineExceeded { .. } => {}
                            _ => {
                                if let Some((from, to)) = self.breakers[rung.index()].on_failure() {
                                    self.transitions.push(BreakerTransition {
                                        at_submission: self.submitted,
                                        rung,
                                        from,
                                        to,
                                    });
                                }
                            }
                        }
                    }

                    match race.result {
                        Ok((met, sol)) => {
                            let (winner, winner_time) = if race.hedge_won {
                                (pair.target(), race.hedge_executed)
                            } else {
                                (rung, race.primary_executed)
                            };
                            if !race.hedge_won {
                                if let Some((from, to)) =
                                    self.breakers[rung.index()].on_success(clean)
                                {
                                    self.transitions.push(BreakerTransition {
                                        at_submission: self.submitted,
                                        rung,
                                        from,
                                        to,
                                    });
                                }
                            }
                            self.latency[winner.index()].push(winner_time);
                            converged = met;
                            solution = sol;
                            outcome = Some(JobOutcome::Served {
                                rung: winner,
                                degraded: winner != Rung::Detailed,
                            });
                            break;
                        }
                        Err(err) => {
                            if matches!(err, FdmaxError::Cancelled { .. }) {
                                outcome = Some(JobOutcome::Cancelled {
                                    iteration: iterations,
                                });
                                break;
                            }
                            last_error = Some(err);
                            continue;
                        }
                    }
                }

                let dur = DurCtx {
                    journal: journal.as_mut(),
                    checkpoint_every,
                    job_id: job.id.0,
                    rung,
                    resume: job
                        .resume
                        .as_ref()
                        .filter(|r| r.rung == rung)
                        .map(|r| &r.image),
                };
                let run = match rung {
                    Rung::Detailed => self.run_detailed(job, &stop, remaining),
                    Rung::Reference => self.run_reference(job, &stop, remaining, dur),
                    Rung::Parallel => self.run_parallel(job, &stop, remaining, dur),
                    Rung::Tiled => self.run_tiled(job, &stop, remaining, dur),
                    Rung::Software => self.run_software(job, &stop, remaining, dur),
                    Rung::Krylov => self.run_krylov(job, &stop, remaining, dur),
                    Rung::Estimate => self.run_estimate(job, &stop),
                };
                self.clock += run.executed;
                iterations += run.executed;
                latency_cycles += run.cycles;
                if run.recovery.is_some() {
                    recovery = run.recovery;
                }

                match run.result {
                    Ok((met, sol)) => {
                        self.latency[rung.index()].push(run.executed);
                        let clean = !recovery.as_ref().is_some_and(RecoveryReport::recovered);
                        if let Some((from, to)) = self.breakers[rung.index()].on_success(clean) {
                            self.transitions.push(BreakerTransition {
                                at_submission: self.submitted,
                                rung,
                                from,
                                to,
                            });
                        }
                        attempts.push(RungAttempt {
                            rung,
                            disposition: AttemptDisposition::Served,
                            iterations: run.executed,
                        });
                        converged = met;
                        solution = sol;
                        outcome = Some(JobOutcome::Served {
                            rung,
                            degraded: rung != Rung::Detailed,
                        });
                        break;
                    }
                    Err(err) => {
                        attempts.push(RungAttempt {
                            rung,
                            disposition: AttemptDisposition::Failed(err.clone()),
                            iterations: run.executed,
                        });
                        match err {
                            FdmaxError::Cancelled { .. } => {
                                outcome = Some(JobOutcome::Cancelled {
                                    iteration: iterations,
                                });
                                break;
                            }
                            // Running out of budget is the job's problem,
                            // not the backend's: fall through without
                            // feeding the breaker.
                            FdmaxError::DeadlineExceeded { .. } => {}
                            _ => {
                                if let Some((from, to)) = self.breakers[rung.index()].on_failure() {
                                    self.transitions.push(BreakerTransition {
                                        at_submission: self.submitted,
                                        rung,
                                        from,
                                        to,
                                    });
                                }
                            }
                        }
                        last_error = Some(err);
                    }
                }
            }
        }

        let outcome = outcome.unwrap_or_else(|| {
            JobOutcome::Failed(last_error.unwrap_or(FdmaxError::GridTooSmall {
                rows: job.spec.problem.rows(),
                cols: job.spec.problem.cols(),
            }))
        });

        let report = ServiceReport {
            job: job.id,
            outcome,
            attempts,
            admitted_at: job.admitted_at,
            started_at,
            completed_at: self.clock,
            deadline_at: job.deadline_at,
            iterations,
            converged,
            latency_cycles,
            recovery,
            solution,
        };

        match &report.outcome {
            JobOutcome::Served { rung, .. } => {
                self.stats.served += 1;
                self.stats.served_by[rung.index()] += 1;
                if !report.deadline_met() {
                    self.stats.deadline_misses += 1;
                }
            }
            JobOutcome::Cancelled { .. } => self.stats.cancelled += 1,
            JobOutcome::Failed(_) => self.stats.failed += 1,
        }

        // Fold this job's cost into the measured drain rate (EWMA with
        // a 3/4 memory factor), before the state image is journaled so
        // recovery reproduces the same retry-after hints.
        self.drain_ewma = (3 * self.drain_ewma + report.iterations) / 4;

        // Every terminal path — served, failed, cancelled — writes a
        // `Completed` record, so recovery never re-runs a job the
        // caller already has a report for.
        if let Some(j) = journal.as_mut() {
            j.append(&JournalRecord::Completed {
                id: job.id.0,
                outcome_digest: report.digest(),
                image: self.state_image(),
            });
        }
        self.journal = journal;
        self.sync_journal_stats();
        report
    }

    /// Rebuilds a service from the write-ahead journal under
    /// `config.durability`: replays the journal, restores the
    /// deterministic state image of the last completed job, re-admits
    /// every interrupted job (resuming from its last persisted
    /// checkpoint when one survives) and reopens the journal for
    /// appending.
    ///
    /// Recovery never hard-fails: a missing journal yields a fresh
    /// service, an unreadable one a fresh service in degraded
    /// (in-memory-only) mode — both reported in the summary. Because
    /// fault schedules and engines are deterministic, draining the
    /// recovered service produces reports and final grids
    /// bit-identical to an uninterrupted run.
    ///
    /// Re-admitted jobs get fresh [`CancelToken`]s: cancellation is a
    /// process-local handle and does not survive a crash.
    pub fn recover(config: ServiceConfig) -> (SolveService, RecoverySummary) {
        let Some(dur_config) = config.durability.clone() else {
            return (SolveService::new(config), RecoverySummary::default());
        };
        let mut summary = RecoverySummary::default();
        let Ok(contents) = durability::read_journal(&dur_config.journal_dir) else {
            let mut service = SolveService::new(config);
            service.stats.journal_degraded = true;
            service.journal = None;
            summary.journal_degraded = true;
            return (service, summary);
        };
        summary.records_replayed = contents.records.len() as u64;
        summary.torn_tail = contents.torn;
        if contents.torn {
            // Drop the torn tail before appending anything new: a fresh
            // record written after a half-frame would be unreachable to
            // every future scan (the decoder stops at the tear).
            let _ =
                durability::truncate_journal(&dur_config.journal_dir, contents.valid_len as u64);
        }

        let mut last_image: Option<ServiceStateImage> = None;
        let mut last_completed_pos: Option<usize> = None;
        let mut completed: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut checkpoints: std::collections::HashMap<u64, (Rung, String)> =
            std::collections::HashMap::new();
        let mut admissions: Vec<(usize, u64, u64, u64, JobSpec)> = Vec::new();
        for (pos, record) in contents.records.iter().enumerate() {
            match record {
                JournalRecord::Submitted {
                    id,
                    admitted_at,
                    deadline_at,
                    spec,
                } => admissions.push((pos, *id, *admitted_at, *deadline_at, spec.clone())),
                JournalRecord::AttemptStarted { .. } => {}
                JournalRecord::CheckpointTaken {
                    id,
                    rung,
                    snapshot_ref,
                    ..
                } => {
                    checkpoints.insert(*id, (*rung, snapshot_ref.clone()));
                }
                JournalRecord::Completed { id, image, .. } => {
                    completed.insert(*id);
                    last_image = Some(*image);
                    last_completed_pos = Some(pos);
                }
            }
        }
        summary.jobs_completed = completed.len() as u64;

        let mut service = SolveService::new(config);
        if let Some(image) = &last_image {
            service.clock = image.clock;
            service.next_id = image.next_id;
            service.submitted = image.submitted;
            let journal_degraded = service.stats.journal_degraded;
            let journal_io_errors = service.stats.journal_io_errors;
            service.stats = image.stats;
            service.stats.journal_degraded = journal_degraded;
            service.stats.journal_io_errors = journal_io_errors;
            for (slot, b) in service.breakers.iter_mut().zip(&image.breakers) {
                *slot = CircuitBreaker::restore(service.config.breaker, b);
            }
            service.drain_ewma = image.drain_ewma;
            for (i, ring) in service.latency.iter_mut().enumerate() {
                *ring = LatencyRing {
                    samples: image.latency_samples[i],
                    len: image.latency_len[i],
                    pos: image.latency_pos[i],
                };
            }
        }

        for (pos, id, admitted_at, deadline_at, spec) in admissions {
            if completed.contains(&id) {
                continue;
            }
            // Submissions after the state image re-apply their
            // admission effects (counter bumps and breaker cool-down
            // ticks); earlier ones are already folded into the image.
            if last_completed_pos.is_none_or(|c| pos > c) {
                service.submitted += 1;
                service.stats.submitted += 1;
                service.next_id = service.next_id.max(id + 1);
                for rung in Rung::ALL {
                    if let Some((from, to)) = service.breakers[rung.index()].on_submit() {
                        service.transitions.push(BreakerTransition {
                            at_submission: service.submitted,
                            rung,
                            from,
                            to,
                        });
                    }
                }
            }
            let resume = checkpoints.get(&id).and_then(|(rung, name)| {
                let bytes = std::fs::read(dur_config.journal_dir.join(name)).ok()?;
                let image = durability::decode_engine_image(&bytes)?;
                Some(ResumePoint { rung: *rung, image })
            });
            if resume.is_some() {
                summary.resumed_from_checkpoint += 1;
            }
            summary.jobs_recovered += 1;
            service.stats.recovered_jobs += 1;
            service.queue.push_back(Job {
                id: JobId(id),
                spec,
                cancel: CancelToken::new(),
                admitted_at,
                deadline_at,
                resume,
            });
        }
        summary.journal_degraded = service.stats.journal_degraded;
        (service, summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdm::boundary::DirichletBoundary;
    use fdm::pde::LaplaceProblem;

    fn laplace(n: usize) -> StencilProblem<f32> {
        LaplaceProblem::builder(n, n)
            .boundary(DirichletBoundary::hot_top(1.0))
            .build()
            .unwrap()
            .discretize::<f32>()
    }

    fn service() -> SolveService {
        SolveService::new(ServiceConfig::new(FdmaxConfig::paper_default()))
    }

    fn job(n: usize, steps: usize) -> JobSpec {
        JobSpec::new(
            laplace(n),
            HwUpdateMethod::Jacobi,
            StopCondition::fixed_steps(steps),
        )
    }

    #[test]
    fn clean_job_is_served_by_the_simulator() {
        let mut svc = service();
        let ticket = svc.submit(job(16, 20)).unwrap();
        let report = svc.run_next().unwrap();
        assert_eq!(report.job, ticket.id);
        assert_eq!(report.served_by(), Some(Rung::Detailed));
        assert!(!report.degraded());
        assert!(report.converged);
        assert!(report.deadline_met());
        assert!(report.solution.is_some());
        assert_eq!(report.iterations, 20);
        assert_eq!(svc.clock(), 20);
        assert!(report.latency_cycles > 0);
        let recovery = report.recovery.unwrap();
        assert!(!recovery.recovered(), "no recovery action was needed");
        assert!(recovery.checkpoints > 0, "the policy still took insurance");
    }

    #[test]
    fn krylov_rung_serves_when_the_sweep_rungs_stall() {
        // On a 96x96 grid the Jacobi spectral radius is ~0.9995, so the
        // update norm decays by only ~2% over a 40-iteration window and
        // an armed stall watchdog fails every sweep-based rung. CG's
        // contraction is orders of magnitude faster, so the matrix-free
        // Krylov rung picks the job up and converges inside the budget.
        let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
        cfg.stall_window = 40;
        cfg.stall_min_decay = 0.9;
        cfg.policy = ResiliencePolicy::strict();
        let mut svc = SolveService::new(cfg);
        let spec = JobSpec::new(
            laplace(96),
            HwUpdateMethod::Jacobi,
            StopCondition::tolerance(1e-8, 1_000),
        );
        let _ = svc.submit(spec).unwrap();
        let report = svc.run_next().unwrap();
        assert_eq!(report.served_by(), Some(Rung::Krylov), "{report:?}");
        assert!(report.degraded());
        assert!(report.converged, "CG in f64 reaches the tight tolerance");
        let solution = report.solution.expect("the Krylov rung returns a field");
        // Dirichlet ring preserved from the job's problem.
        assert_eq!(solution.row(0), laplace(96).initial.row(0));
        for rung in [
            Rung::Detailed,
            Rung::Reference,
            Rung::Parallel,
            Rung::Software,
        ] {
            assert!(
                report
                    .attempts
                    .iter()
                    .any(|a| a.rung == rung
                        && matches!(a.disposition, AttemptDisposition::Failed(_))),
                "{rung} should have failed before Krylov served"
            );
        }
    }

    #[test]
    fn time_dependent_jobs_skip_the_krylov_rung_as_not_applicable() {
        use fdm::pde::HeatProblem;
        // Poison the field so every numeric rung fails and the chain
        // walks past Krylov: a time-dependent job must record the
        // not-applicable skip, not a Krylov failure.
        let mut problem = HeatProblem::builder(10, 10)
            .time(0.2, 8)
            .build()
            .unwrap()
            .discretize::<f32>();
        problem.initial.as_mut_slice().fill(f32::NAN);
        let spec = JobSpec::new(
            problem,
            HwUpdateMethod::Jacobi,
            StopCondition::fixed_steps(8),
        );
        let mut svc = service();
        let _ = svc.submit(spec).unwrap();
        let report = svc.run_next().unwrap();
        assert_eq!(report.served_by(), Some(Rung::Estimate));
        let krylov = report
            .attempts
            .iter()
            .find(|a| a.rung == Rung::Krylov)
            .expect("the chain records every rung");
        assert_eq!(krylov.disposition, AttemptDisposition::SkippedNotApplicable);
        assert_eq!(krylov.iterations, 0);
        assert_eq!(svc.breaker_state(Rung::Krylov), BreakerState::Closed);
    }

    #[test]
    fn admission_is_bounded_with_retry_after() {
        let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
        cfg.queue_capacity = 2;
        let mut svc = SolveService::new(cfg);
        let _ = svc.submit(job(8, 1)).unwrap();
        let _ = svc.submit(job(8, 1)).unwrap();
        let err = svc.submit(job(8, 1)).unwrap_err();
        assert_eq!(
            err,
            SubmitError::Saturated {
                queue_depth: 2,
                retry_after_jobs: 1,
                // Nothing has completed yet, so the drain rate is the
                // pessimistic prior: the per-job iteration cap.
                retry_after_iterations: 1_000,
            }
        );
        assert!(err.to_string().contains("saturated"));
        assert_eq!(svc.stats().refused, 1);
        // Draining one job frees one slot.
        let _ = svc.run_next().unwrap();
        let _ = svc.submit(job(8, 1)).unwrap();
    }

    #[test]
    fn retry_after_shrinks_as_the_measured_drain_rate_drops() {
        let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
        cfg.queue_capacity = 2;
        let mut svc = SolveService::new(cfg);
        let saturated_hint = |svc: &mut SolveService| {
            let err = svc.submit(job(8, 1)).unwrap_err();
            match err {
                SubmitError::Saturated {
                    retry_after_iterations,
                    ..
                } => retry_after_iterations,
                other => panic!("expected saturation, got {other:?}"),
            }
        };
        let _ = svc.submit(job(8, 1)).unwrap();
        let _ = svc.submit(job(8, 1)).unwrap();
        let before = saturated_hint(&mut svc);
        assert_eq!(before, 1_000, "pessimistic prior before any completion");

        // Drain both 1-iteration jobs: the measured drain rate collapses
        // far below the configured worst case...
        let _ = svc.drain();
        assert!(svc.drain_rate() < 1_000);

        // ...and the retry hint with it.
        let _ = svc.submit(job(8, 1)).unwrap();
        let _ = svc.submit(job(8, 1)).unwrap();
        let after = saturated_hint(&mut svc);
        assert!(
            after < before,
            "retry_after must shrink with the drain rate ({after} !< {before})"
        );
        assert_eq!(after, svc.drain_rate(), "one excess job to wait out");
    }

    #[test]
    fn interiorless_grids_are_rejected_at_the_door() {
        // The problem builders refuse such grids themselves, so forge
        // one by shrinking the initial field of a valid problem.
        let mut spec = job(8, 1);
        spec.problem.initial = Grid2D::zeros(2, 2);
        let mut svc = service();
        let err = svc.submit(spec).unwrap_err();
        assert!(matches!(
            err,
            SubmitError::Rejected(FdmaxError::GridTooSmall { rows: 2, cols: 2 })
        ));
        assert_eq!(svc.stats().refused, 1);
    }

    #[test]
    fn statically_infeasible_jobs_are_rejected_at_admission() {
        // Tolerance below the f32 precision floor: the dynamic path
        // would burn the whole deadline stalling; the analyzer rejects
        // at the door with FDX016 instead.
        let mut svc = service();
        let err = svc
            .submit(JobSpec::new(
                laplace(16),
                HwUpdateMethod::Jacobi,
                StopCondition::tolerance(1e-30, 400),
            ))
            .unwrap_err();
        match err {
            SubmitError::Rejected(FdmaxError::Lint { report }) => {
                assert!(report.has(crate::lint::DiagCode::PrecisionFloorViolated));
                assert!(report.has_errors());
            }
            other => panic!("expected a lint rejection, got {other:?}"),
        }
        assert_eq!(svc.stats().refused, 1);
        assert_eq!(svc.stats().submitted, 0);

        // The same job with a representable tolerance is admitted.
        let _ = svc
            .submit(JobSpec::new(
                laplace(16),
                HwUpdateMethod::Jacobi,
                StopCondition::tolerance(1e-3, 400),
            ))
            .unwrap();
    }

    #[test]
    fn cancelled_while_queued_never_runs() {
        let mut svc = service();
        let ticket = svc.submit(job(16, 50)).unwrap();
        ticket.cancel.cancel();
        let report = svc.run_next().unwrap();
        assert_eq!(report.outcome, JobOutcome::Cancelled { iteration: 0 });
        assert!(report.attempts.is_empty());
        assert_eq!(svc.clock(), 0, "no work was performed");
        assert_eq!(svc.stats().cancelled, 1);
    }

    #[test]
    fn exhausted_budget_degrades_to_the_analytic_rung() {
        let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
        cfg.deadline_iterations = 0; // every job is born out of budget
        let mut svc = SolveService::new(cfg);
        let _ = svc.submit(job(16, 50)).unwrap();
        let report = svc.run_next().unwrap();
        assert_eq!(report.served_by(), Some(Rung::Estimate));
        assert!(report.degraded());
        assert!(report.solution.is_none());
        assert!(!report.converged);
        assert!(report.latency_cycles > 0, "the estimate still costs cycles");
        assert!(report.deadline_met(), "the analytic rung is always on time");
        assert_eq!(report.iterations, 0);
        let skipped: Vec<_> = report
            .attempts
            .iter()
            .filter(|a| a.disposition == AttemptDisposition::SkippedBudgetExhausted)
            .map(|a| a.rung)
            .collect();
        assert_eq!(
            skipped,
            [
                Rung::Detailed,
                Rung::Reference,
                Rung::Parallel,
                Rung::Tiled,
                Rung::Software,
                Rung::Krylov
            ]
        );
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_recovers() {
        let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
        // Parity + heavy flips + zero retries: the detailed rung fails
        // deterministically on every faulted job.
        cfg.campaign = FaultCampaign {
            sram_flips_per_iteration: 5.0,
            dma_failure_prob: 0.0,
            ..FaultCampaign::harsh(11)
        };
        cfg.policy = ResiliencePolicy {
            max_retries: 0,
            ..ResiliencePolicy::default()
        };
        cfg.breaker = BreakerConfig {
            open_after: 3,
            cooldown_jobs: 2,
            close_after: 1,
        };
        let mut svc = SolveService::new(cfg);

        // Three failing jobs trip the detailed breaker.
        for _ in 0..3 {
            let _ = svc.submit(job(16, 30)).unwrap();
            let report = svc.run_next().unwrap();
            assert_eq!(report.served_by(), Some(Rung::Reference), "fell back");
            assert!(report.degraded());
        }
        assert_eq!(svc.breaker_state(Rung::Detailed), BreakerState::Open);
        assert!(svc.transitions().iter().any(|t| t.rung == Rung::Detailed
            && t.from == BreakerState::Closed
            && t.to == BreakerState::Open));

        // While open, the detailed rung is skipped outright. This
        // submission is the first cool-down tick (2 -> 1).
        let _ = svc.submit(job(16, 30)).unwrap();
        let report = svc.run_next().unwrap();
        assert_eq!(
            report.attempts[0].disposition,
            AttemptDisposition::SkippedBreakerOpen
        );
        assert_eq!(svc.breaker_state(Rung::Detailed), BreakerState::Open);

        // The second post-open submission completes the cool-down, and
        // the clean probe job closes the breaker again.
        let _ = svc
            .submit(job(16, 30).with_campaign(FaultCampaign::disabled()))
            .unwrap();
        assert_eq!(svc.breaker_state(Rung::Detailed), BreakerState::HalfOpen);
        let report = svc.run_next().unwrap();
        assert_eq!(report.served_by(), Some(Rung::Detailed));
        assert_eq!(svc.breaker_state(Rung::Detailed), BreakerState::Closed);
        assert!(svc.transitions().iter().any(|t| t.rung == Rung::Detailed
            && t.from == BreakerState::HalfOpen
            && t.to == BreakerState::Closed));
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
        cfg.campaign = FaultCampaign {
            sram_flips_per_iteration: 5.0,
            dma_failure_prob: 0.0,
            ..FaultCampaign::harsh(13)
        };
        cfg.policy = ResiliencePolicy {
            max_retries: 0,
            ..ResiliencePolicy::default()
        };
        cfg.breaker = BreakerConfig {
            open_after: 1,
            cooldown_jobs: 1,
            close_after: 1,
        };
        let mut svc = SolveService::new(cfg);
        let _ = svc.submit(job(16, 30)).unwrap();
        let _ = svc.run_next().unwrap();
        assert_eq!(svc.breaker_state(Rung::Detailed), BreakerState::Open);
        // Next submission ends the 1-job cool-down; the faulty probe
        // fails and the breaker snaps back open.
        let _ = svc.submit(job(16, 30)).unwrap();
        assert_eq!(svc.breaker_state(Rung::Detailed), BreakerState::HalfOpen);
        let _ = svc.run_next().unwrap();
        assert_eq!(svc.breaker_state(Rung::Detailed), BreakerState::Open);
        assert!(svc.transitions().iter().any(|t| t.rung == Rung::Detailed
            && t.from == BreakerState::HalfOpen
            && t.to == BreakerState::Open));
    }

    #[test]
    fn deadline_is_enforced_mid_solve() {
        let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
        cfg.deadline_iterations = 10;
        // The admission analyzer would reject this sub-floor tolerance
        // (FDX016); bypass it to exercise the dynamic deadline path.
        cfg.admission_analysis = false;
        let mut svc = SolveService::new(cfg);
        // Unreachable tolerance: the job would run to the cap without a
        // deadline.
        let _ = svc
            .submit(JobSpec::new(
                laplace(16),
                HwUpdateMethod::Jacobi,
                StopCondition::tolerance(1e-30, 1_000),
            ))
            .unwrap();
        let report = svc.run_next().unwrap();
        assert!(
            report.deadline_met(),
            "completed at {}",
            report.completed_at
        );
        assert!(report.completed_at <= report.deadline_at);
        assert_eq!(report.served_by(), Some(Rung::Estimate));
        assert_eq!(report.iterations, 10, "exactly the budget was executed");
        assert!(report.attempts.iter().any(|a| matches!(
            a.disposition,
            AttemptDisposition::Failed(FdmaxError::DeadlineExceeded { .. })
        )));
        // Deadline failures never feed the breakers.
        assert_eq!(svc.breaker_state(Rung::Detailed), BreakerState::Closed);
    }

    #[test]
    fn queue_wait_burns_the_same_deadline_budget() {
        let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
        cfg.deadline_iterations = 25;
        let mut svc = SolveService::new(cfg);
        let _ = svc.submit(job(16, 20)).unwrap();
        let _ = svc.submit(job(16, 20)).unwrap();
        let first = svc.run_next().unwrap();
        let second = svc.run_next().unwrap();
        assert_eq!(first.served_by(), Some(Rung::Detailed));
        // Job 2 was admitted at clock 0 but started at 20: only 5 of
        // its 25-iteration budget remain, so the simulator attempt is
        // cut off and the analytic rung serves, on time.
        assert_eq!(second.started_at, 20);
        assert_eq!(second.served_by(), Some(Rung::Estimate));
        assert!(second.deadline_met());
    }

    #[test]
    fn stall_watchdog_fails_over_to_the_next_rung() {
        // Demand the norm halve every 4 iterations: Jacobi on a 16x16
        // Laplace decays far slower, so the watchdog declares the
        // detailed rung stalled and the chain moves on.
        let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
        cfg.stall_window = 4;
        cfg.stall_min_decay = 0.5;
        // Bypass the FDX016 admission rejection to reach the watchdog.
        cfg.admission_analysis = false;
        let mut svc = SolveService::new(cfg);
        let _ = svc
            .submit(JobSpec::new(
                laplace(16),
                HwUpdateMethod::Jacobi,
                StopCondition::tolerance(1e-30, 400),
            ))
            .unwrap();
        let report = svc.run_next().unwrap();
        assert!(matches!(
            report.attempts[0].disposition,
            AttemptDisposition::Failed(FdmaxError::Stalled { .. })
        ));
        // Every iterative rung stalls the same way; the analytic rung
        // serves.
        assert_eq!(report.served_by(), Some(Rung::Estimate));
        assert!(report.deadline_met());
    }

    #[test]
    fn fallback_solution_matches_the_simulator_bitwise() {
        // Jacobi is bit-exact across DetailedSim, HwReferenceEngine and
        // SweepEngine, so a degraded answer is *identical* to the one
        // the healthy rung would have produced.
        let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
        cfg.breaker = BreakerConfig {
            open_after: 1,
            cooldown_jobs: 100,
            close_after: 1,
        };
        cfg.campaign = FaultCampaign {
            sram_flips_per_iteration: 5.0,
            dma_failure_prob: 0.0,
            ..FaultCampaign::harsh(5)
        };
        cfg.policy = ResiliencePolicy {
            max_retries: 0,
            ..ResiliencePolicy::default()
        };
        let mut svc = SolveService::new(cfg);
        // Trip the detailed breaker.
        let _ = svc.submit(job(16, 12)).unwrap();
        let faulted = svc.run_next().unwrap();
        assert_eq!(faulted.served_by(), Some(Rung::Reference));
        // The degraded answer equals a clean simulator run bit-for-bit.
        let clean = crate::accelerator::Accelerator::new(FdmaxConfig::paper_default())
            .unwrap()
            .solve_with(
                &laplace(16),
                HwUpdateMethod::Jacobi,
                &StopCondition::fixed_steps(12),
            )
            .unwrap();
        assert_eq!(faulted.solution.as_ref().unwrap(), &clean.solution);
    }

    #[test]
    fn stats_and_fallback_rate_tally() {
        let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
        cfg.deadline_iterations = 0;
        let mut svc = SolveService::new(cfg);
        let _ = svc.submit(job(8, 5)).unwrap();
        let _ = svc.drain();
        let stats = svc.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.served, 1);
        assert_eq!(stats.served_by[Rung::Estimate.index()], 1);
        assert!((stats.fallback_rate() - 1.0).abs() < f64::EPSILON);
        assert_eq!(stats.deadline_misses, 0);
    }

    #[test]
    fn display_types_read_well() {
        assert_eq!(JobId(7).to_string(), "job#7");
        assert_eq!(Rung::Detailed.to_string(), "detailed-sim");
        assert_eq!(BreakerState::HalfOpen.to_string(), "half-open");
        assert_eq!(Rung::ALL.len(), 7);
        assert_eq!(Rung::Tiled.index(), 3);
        assert_eq!(Rung::Krylov.index(), 5);
        assert_eq!(Rung::Estimate.index(), 6);
        assert_eq!(Rung::Krylov.to_string(), "krylov");
        assert_eq!(Rung::Tiled.to_string(), "software-tiled");
        assert_eq!(Rung::Parallel.to_string(), "software-parallel");
    }

    fn durability_tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fdmax-service-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A job whose initial field is poisoned with NaN: every numeric
    /// rung fails with `NonFinite` (the detailed rung exhausts its
    /// retries), so only the analytic rung can serve.
    fn poisoned_job(steps: usize) -> JobSpec {
        let mut problem = laplace(10);
        problem.initial.as_mut_slice().fill(f32::NAN);
        JobSpec::new(
            problem,
            HwUpdateMethod::Jacobi,
            StopCondition::fixed_steps(steps),
        )
    }

    #[test]
    fn poisoned_job_still_terminates_with_a_report_and_a_journal_record() {
        let dir = durability_tmpdir("poisoned");
        let config = ServiceConfig::new(FdmaxConfig::paper_default())
            .with_durability(DurabilityConfig::new(&dir));
        let mut service = SolveService::new(config);
        let _ = service.submit(poisoned_job(8)).unwrap();
        let report = service.run_next().expect("queued job must yield a report");
        // Every numeric rung fails; the analytic rung is the terminal
        // guarantee and still serves an estimate.
        assert_eq!(report.served_by(), Some(Rung::Estimate));
        assert!(report
            .attempts
            .iter()
            .filter(|a| a.rung != Rung::Estimate)
            .all(|a| matches!(a.disposition, AttemptDisposition::Failed(_))));
        // The journal holds the job's terminal `Completed` record.
        let contents = durability::read_journal(&dir).unwrap();
        assert!(contents
            .records
            .iter()
            .any(|r| matches!(r, JournalRecord::Completed { id: 0, .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_rungs_open_breakers_still_emit_a_terminal_report() {
        let dir = durability_tmpdir("open-breakers");
        let config = ServiceConfig::new(FdmaxConfig::paper_default())
            .with_durability(DurabilityConfig::new(&dir));
        let mut service = SolveService::new(config);
        // Force every breaker open — including the analytic rung's,
        // which must be ignored (it is the terminal guarantee).
        for breaker in &mut service.breakers {
            breaker.trip();
        }
        let _ = service.submit(job(10, 6)).unwrap();
        let report = service.run_next().expect("job must terminate");
        assert_eq!(report.served_by(), Some(Rung::Estimate));
        assert!(report
            .attempts
            .iter()
            .filter(|a| a.rung != Rung::Estimate)
            .all(|a| matches!(a.disposition, AttemptDisposition::SkippedBreakerOpen)));
        assert_eq!(service.stats().served_by[Rung::Estimate.index()], 1);
        let contents = durability::read_journal(&dir).unwrap();
        assert!(contents
            .records
            .iter()
            .any(|r| matches!(r, JournalRecord::Completed { id: 0, .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_journal_dir_degrades_but_jobs_still_serve() {
        let dir = durability_tmpdir("degraded-service");
        std::fs::create_dir_all(&dir).unwrap();
        let blocked = dir.join("blocked-file");
        std::fs::write(&blocked, b"file, not a dir").unwrap();
        let config = ServiceConfig::new(FdmaxConfig::paper_default())
            .with_durability(DurabilityConfig::new(&blocked));
        let mut service = SolveService::new(config);
        assert!(service.stats().journal_degraded, "flag must be loud");
        assert!(service.stats().journal_io_errors >= 1);
        let _ = service.submit(job(10, 6)).unwrap();
        let report = service.run_next().unwrap();
        assert!(matches!(report.outcome, JobOutcome::Served { .. }));
        assert!(service.stats().journal_degraded);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_from_missing_journal_is_a_fresh_service() {
        let dir = durability_tmpdir("fresh-recover");
        let config = ServiceConfig::new(FdmaxConfig::paper_default())
            .with_durability(DurabilityConfig::new(&dir));
        let (mut service, summary) = SolveService::recover(config);
        assert_eq!(summary, RecoverySummary::default());
        let _ = service.submit(job(10, 6)).unwrap();
        assert!(matches!(
            service.run_next().unwrap().outcome,
            JobOutcome::Served { .. }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_resumes_interrupted_job_bit_identically() {
        let steps = 24usize;
        // Dense parity-detected flips with a zero retry budget: the
        // detailed rung fails deterministically, so the reference rung
        // serves — and the reference rung takes checkpoints.
        let mut base_config = ServiceConfig::new(FdmaxConfig::paper_default());
        base_config.campaign = FaultCampaign {
            sram_flips_per_iteration: 5.0,
            dma_failure_prob: 0.0,
            ..FaultCampaign::harsh(0x0B5E55)
        };
        base_config.policy = crate::resilience::ResiliencePolicy {
            max_retries: 0,
            ..crate::resilience::ResiliencePolicy::default()
        };

        // Baseline: no durability, uninterrupted.
        let mut baseline = SolveService::new(base_config.clone());
        let _ = baseline.submit(job(12, steps)).unwrap();
        let want = baseline.run_next().unwrap();
        assert_eq!(want.served_by(), Some(Rung::Reference));

        // Durable run with a tight checkpoint cadence, completed, then
        // "crashed" by dropping the job's Completed record: truncate
        // the journal right after its last CheckpointTaken.
        let dir = durability_tmpdir("resume");
        let config = base_config.with_durability(
            DurabilityConfig::new(&dir)
                .with_checkpoint_every(5)
                .with_fsync_policy(durability::FsyncPolicy::Never),
        );
        let mut durable = SolveService::new(config.clone());
        let _ = durable.submit(job(12, steps)).unwrap();
        let _ = durable.run_next().unwrap();
        drop(durable);

        // Find the byte offset just past the last CheckpointTaken
        // record and truncate there.
        let journal_path = dir.join(durability::JOURNAL_FILE);
        let bytes = std::fs::read(&journal_path).unwrap();
        let mut cut = 0usize;
        let mut pos = 0usize;
        while pos + 8 <= bytes.len() {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let end = pos + 8 + len;
            let record = durability::decode_journal(&bytes[pos..end]);
            if matches!(
                record.records.first(),
                Some(JournalRecord::CheckpointTaken { .. })
            ) {
                cut = end;
            }
            pos = end;
        }
        assert!(cut > 0, "expected at least one checkpoint record");
        std::fs::write(&journal_path, &bytes[..cut]).unwrap();

        let (mut recovered, summary) = SolveService::recover(config);
        assert_eq!(summary.jobs_recovered, 1);
        assert_eq!(summary.resumed_from_checkpoint, 1);
        let got = recovered.run_next().expect("re-admitted job runs");
        assert_eq!(
            got.digest(),
            want.digest(),
            "recovered run must be bit-identical"
        );
        assert_eq!(got.solution, want.solution);
        assert_eq!(got.iterations, want.iterations);
        assert_eq!(got.completed_at, want.completed_at);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
