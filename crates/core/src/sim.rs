//! The cycle-accurate FDMAX simulator.
//!
//! [`DetailedSim`] executes a [`StencilProblem<f32>`] iteration by
//! iteration on the modelled hardware:
//!
//! * every subarray chain runs its row strip over all column batches via
//!   [`crate::array::Subarray`] — producing **bit-exact f32 results**
//!   (identical to `fdm`'s software sweeps) and exact event counts;
//! * per-iteration timing follows the paper's overlap law: effective
//!   cycles = `max(compute-with-stalls, DRAM streaming)`, with DMA double
//!   buffering hiding the smaller term;
//! * the ECU totals the per-PE DIFF accumulators and decides the stop
//!   condition on-chip (§4.2.4), so no host round-trip is modelled;
//! * the wave equation's `U^{k-1}` history rotates through the
//!   OffsetBuffer with a sign flip, exactly as the mapping requires.
//!
//! Hardware-semantics subtlety: in Hybrid mode the forwarded "latest top
//! value" is unavailable at row-block seams and at column-batch seam
//! columns (the incomplete products complete later, in the HaloAdders), so
//! those points fall back to the Jacobi operand. The reference
//! implementation of exactly these semantics lives in [`crate::reference`]
//! and the integration tests assert bitwise agreement.

use crate::accelerator::HwUpdateMethod;
use crate::array::{OffsetSource, Subarray};
use crate::config::{ConfigError, FdmaxConfig};
use crate::elastic::ElasticConfig;
use crate::mapping::{col_batches, row_blocks, row_strips, ColBatch, RowRange};
use crate::pe::PeConfig;
use crate::perf_model::{iteration_estimate, IterationEstimate};
use fdm::convergence::{ResidualHistory, StopCondition};
use fdm::grid::Grid2D;
use fdm::pde::{OffsetField, StencilProblem};
use memmodel::EventCounters;

/// The cycle-accurate simulator state for one solve.
#[derive(Clone, Debug)]
pub struct DetailedSim {
    config: FdmaxConfig,
    elastic: ElasticConfig,
    method: HwUpdateMethod,
    offset: OffsetField<f32>,
    cur: Grid2D<f32>,
    next: Grid2D<f32>,
    prev: Option<Grid2D<f32>>,
    subarrays: Vec<Subarray>,
    strips: Vec<RowRange>,
    batches: Vec<ColBatch>,
    per_iteration: IterationEstimate,
    counters: EventCounters,
    history: ResidualHistory,
    iterations: usize,
}

impl DetailedSim {
    /// Creates a simulator, letting the elastic planner pick the
    /// decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for an invalid configuration.
    ///
    /// # Panics
    ///
    /// Panics if the problem grid has no interior.
    pub fn new(
        config: FdmaxConfig,
        problem: &StencilProblem<f32>,
        method: HwUpdateMethod,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        let elastic = ElasticConfig::plan(&config, problem.rows(), problem.cols());
        Self::with_elastic(config, problem, method, elastic)
    }

    /// Creates a simulator with an explicit elastic decomposition
    /// (used by the elasticity studies and tests).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for an invalid configuration.
    ///
    /// # Panics
    ///
    /// Panics if the problem grid has no interior or the decomposition
    /// does not belong to the configured array.
    pub fn with_elastic(
        config: FdmaxConfig,
        problem: &StencilProblem<f32>,
        method: HwUpdateMethod,
        elastic: ElasticConfig,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        assert!(
            elastic.pe_count() == config.pe_count() && config.pe_rows.is_multiple_of(elastic.subarrays),
            "elastic decomposition {elastic} does not fit the {}x{} array",
            config.pe_rows,
            config.pe_cols
        );
        let rows = problem.rows();
        let cols = problem.cols();
        assert!(rows >= 3 && cols >= 3, "grid needs an interior");

        let pe_config = PeConfig::new(
            problem.stencil,
            problem.offset.requires_buffer(),
            matches!(method, HwUpdateMethod::Hybrid),
        );
        let depth = elastic.sub_fifo_depth(&config);
        let strips = row_strips(rows, elastic.subarrays);
        let subarrays = strips
            .iter()
            .map(|_| Subarray::new(elastic.width, pe_config, depth))
            .collect();
        let per_iteration = iteration_estimate(
            &config,
            &elastic,
            rows,
            cols,
            problem.offset.requires_buffer(),
        );

        Ok(DetailedSim {
            config,
            elastic,
            method,
            offset: problem.offset.clone(),
            cur: problem.initial.clone(),
            next: problem.initial.clone(),
            prev: problem.prev_initial.clone(),
            subarrays,
            strips,
            batches: col_batches(cols, elastic.width),
            per_iteration,
            counters: EventCounters::new(),
            history: ResidualHistory::new(),
            iterations: 0,
        })
    }

    /// The elastic decomposition in use.
    pub fn elastic(&self) -> ElasticConfig {
        self.elastic
    }

    /// The update method in use.
    pub fn method(&self) -> HwUpdateMethod {
        self.method
    }

    /// The per-iteration timing estimate the simulator charges.
    pub fn per_iteration(&self) -> &IterationEstimate {
        &self.per_iteration
    }

    /// The current field `U^k`.
    pub fn solution(&self) -> &Grid2D<f32> {
        &self.cur
    }

    /// Accumulated event counts.
    pub fn counters(&self) -> &EventCounters {
        &self.counters
    }

    /// Completed iterations.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Per-iteration update norms.
    pub fn history(&self) -> &ResidualHistory {
        &self.history
    }

    /// Executes one iteration; returns the update norm
    /// `||U^{k+1} - U^k||_2` computed by the ECU.
    pub fn step(&mut self) -> f64 {
        let depth = self.elastic.sub_fifo_depth(&self.config);
        let mut max_subarray_cycles = 0u64;
        for (sa, strip) in self.subarrays.iter_mut().zip(&self.strips) {
            let offset_src = match &self.offset {
                OffsetField::None => OffsetSource::None,
                OffsetField::Static(g) => OffsetSource::Static(g),
                OffsetField::ScaledPrevField { scale } => OffsetSource::ScaledPrev {
                    field: self
                        .prev
                        .as_ref()
                        .expect("ScaledPrevField problems carry prev_initial"),
                    scale: *scale,
                },
            };
            let mut cycles = 0u64;
            for block in row_blocks(*strip, depth) {
                cycles += sa.run_block(
                    block,
                    &self.batches,
                    &self.cur,
                    &mut self.next,
                    offset_src,
                    &mut self.counters,
                );
            }
            max_subarray_cycles = max_subarray_cycles.max(cycles);
        }
        debug_assert_eq!(
            max_subarray_cycles, self.per_iteration.unstalled_cycles,
            "simulated loop cycles must match the analytic unstalled count"
        );

        // ECU: total the per-PE DIFF registers plus the halo contributions.
        let diff2: f64 = self.subarrays.iter_mut().map(Subarray::take_diff).sum();

        // Rotate the double buffers (and the wave history).
        if let Some(prev) = self.prev.as_mut() {
            core::mem::swap(&mut self.cur, prev);
        }
        core::mem::swap(&mut self.cur, &mut self.next);

        // Timing and DRAM-side traffic for this iteration.
        let est = &self.per_iteration;
        self.counters.cycles += est.effective_cycles();
        self.counters.stall_cycles += est.stall_cycles();
        self.counters.dram_read += est.dram_read_elements;
        self.counters.dram_write += est.dram_write_elements;
        // DMA side of the buffers: fills mirror DRAM reads, drains mirror
        // DRAM writes.
        self.counters.sram_write += est.dram_read_elements;
        self.counters.sram_read += est.dram_write_elements;

        self.iterations += 1;
        let norm = diff2.sqrt();
        self.history.push(norm);
        norm
    }

    /// Runs until `stop` is satisfied, charging the initial DMA load and
    /// final drain. Returns `true` when the stop condition's goal was met.
    pub fn run(&mut self, stop: &StopCondition) -> bool {
        // Initial load: U^0 (+ offset field / wave history).
        let grid = (self.cur.rows() * self.cur.cols()) as u64;
        let extra = match &self.offset {
            OffsetField::None => 0,
            OffsetField::Static(_) | OffsetField::ScaledPrevField { .. } => grid,
        };
        self.charge_dram(grid + extra, 0);

        let mut met = stop.max_iterations() == 0 && stop.tolerance_value().is_none();
        while self.iterations < stop.max_iterations() {
            let norm = self.step();
            if stop.should_stop(self.iterations, norm) {
                met = stop.is_met(self.iterations, norm);
                break;
            }
        }
        if self.iterations == stop.max_iterations() && !self.history.is_empty() {
            met = stop.is_met(self.iterations, self.history.last().unwrap_or(f64::INFINITY));
        }

        // Final drain: the solution streams back to DRAM.
        self.charge_dram(0, grid);
        met
    }

    fn charge_dram(&mut self, read_elements: u64, write_elements: u64) {
        let cycles = self
            .config
            .dram()
            .cycles_for_elements(read_elements + write_elements);
        self.counters.cycles += cycles;
        self.counters.dram_read += read_elements;
        self.counters.dram_write += write_elements;
        self.counters.sram_write += read_elements;
        self.counters.sram_read += write_elements;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdm::boundary::DirichletBoundary;
    use fdm::pde::LaplaceProblem;
    use fdm::solver::{solve, UpdateMethod};

    fn laplace32() -> StencilProblem<f32> {
        LaplaceProblem::builder(20, 20)
            .boundary(DirichletBoundary::hot_top(1.0))
            .build()
            .unwrap()
            .discretize::<f32>()
    }

    #[test]
    fn jacobi_steps_match_software_bitwise() {
        let sp = laplace32();
        let mut sim =
            DetailedSim::new(FdmaxConfig::paper_default(), &sp, HwUpdateMethod::Jacobi).unwrap();
        for _ in 0..5 {
            sim.step();
        }
        let sw = solve(&sp, UpdateMethod::Jacobi, &StopCondition::fixed_steps(5));
        assert_eq!(sim.solution(), sw.solution());
        assert_eq!(sim.iterations(), 5);
    }

    #[test]
    fn diff_norm_matches_software_history() {
        let sp = laplace32();
        let mut sim =
            DetailedSim::new(FdmaxConfig::paper_default(), &sp, HwUpdateMethod::Jacobi).unwrap();
        let n1 = sim.step();
        let sw = solve(&sp, UpdateMethod::Jacobi, &StopCondition::fixed_steps(1));
        let expect = sw.history().last().unwrap();
        assert!((n1 - expect).abs() < 1e-10 * expect.max(1.0));
    }

    #[test]
    fn run_converges_like_software() {
        let sp = laplace32();
        let stop = StopCondition::tolerance(1e-4, 50_000);
        let mut sim =
            DetailedSim::new(FdmaxConfig::paper_default(), &sp, HwUpdateMethod::Jacobi).unwrap();
        let met = sim.run(&stop);
        assert!(met);
        let sw = solve(&sp, UpdateMethod::Jacobi, &stop);
        assert_eq!(sim.iterations(), sw.iterations());
        assert_eq!(sim.solution(), sw.solution());
    }

    #[test]
    fn every_elastic_option_gives_identical_jacobi_results() {
        let sp = laplace32();
        let cfg = FdmaxConfig::paper_default();
        let reference = {
            let mut sim = DetailedSim::with_elastic(
                cfg,
                &sp,
                HwUpdateMethod::Jacobi,
                ElasticConfig {
                    subarrays: 1,
                    width: 64,
                },
            )
            .unwrap();
            for _ in 0..3 {
                sim.step();
            }
            sim.solution().clone()
        };
        for e in ElasticConfig::options(&cfg) {
            let mut sim = DetailedSim::with_elastic(cfg, &sp, HwUpdateMethod::Jacobi, e).unwrap();
            for _ in 0..3 {
                sim.step();
            }
            assert_eq!(sim.solution(), &reference, "config {e} diverged");
        }
    }

    #[test]
    fn counters_accumulate_dram_and_cycles() {
        let sp = laplace32(); // 20x20 fits on chip (400 <= 1024)
        let cfg = FdmaxConfig::paper_default();
        let mut sim = DetailedSim::new(cfg, &sp, HwUpdateMethod::Jacobi).unwrap();
        let met = sim.run(&StopCondition::fixed_steps(3));
        assert!(met);
        let c = sim.counters();
        // On-chip resident: DRAM only boot + drain.
        assert_eq!(c.dram_read, 400);
        assert_eq!(c.dram_write, 400);
        assert!(c.cycles > 0);
        assert!(c.fp_mul > 0);
        assert!(c.sram_read > 0);
    }

    #[test]
    fn hybrid_on_monolithic_chain_matches_software_hybrid() {
        // A 1x64 chain with sub-FIFO depth 512 covers a 20x20 grid in one
        // block and one batch: no seams, so hardware Hybrid == software
        // Hybrid exactly.
        let sp = laplace32();
        let cfg = FdmaxConfig::paper_default();
        let mut sim = DetailedSim::with_elastic(
            cfg,
            &sp,
            HwUpdateMethod::Hybrid,
            ElasticConfig {
                subarrays: 1,
                width: 64,
            },
        )
        .unwrap();
        for _ in 0..4 {
            sim.step();
        }
        let sw = solve(&sp, UpdateMethod::Hybrid, &StopCondition::fixed_steps(4));
        assert_eq!(sim.solution(), sw.solution());
    }

    #[test]
    fn wave_history_rotates() {
        use fdm::pde::WaveProblem;
        let sp = WaveProblem::builder(16, 16)
            .time(0.4, 6)
            .initial_fn(|x, y| (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin())
            .build()
            .unwrap()
            .discretize::<f32>();
        let cfg = FdmaxConfig::paper_default();
        let mut sim = DetailedSim::new(cfg, &sp, HwUpdateMethod::Jacobi).unwrap();
        for _ in 0..6 {
            sim.step();
        }
        let sw = solve(&sp, UpdateMethod::Jacobi, &StopCondition::fixed_steps(6));
        assert_eq!(sim.solution(), sw.solution());
    }

    #[test]
    fn invalid_elastic_rejected() {
        let sp = laplace32();
        let cfg = FdmaxConfig::paper_default();
        let bad = ElasticConfig {
            subarrays: 3,
            width: 24,
        };
        let result = std::panic::catch_unwind(|| {
            DetailedSim::with_elastic(cfg, &sp, HwUpdateMethod::Jacobi, bad)
        });
        assert!(result.is_err());
    }
}
