//! The cycle-accurate FDMAX simulator.
//!
//! [`DetailedSim`] executes a [`StencilProblem<f32>`] iteration by
//! iteration on the modelled hardware:
//!
//! * every subarray chain runs its row strip over all column batches via
//!   [`crate::array::Subarray`] — producing **bit-exact f32 results**
//!   (identical to `fdm`'s software sweeps) and exact event counts;
//! * per-iteration timing follows the paper's overlap law: effective
//!   cycles = `max(compute-with-stalls, DRAM streaming)`, with DMA double
//!   buffering hiding the smaller term;
//! * the ECU totals the per-PE DIFF accumulators and decides the stop
//!   condition on-chip (§4.2.4), so no host round-trip is modelled;
//! * the wave equation's `U^{k-1}` history rotates through the
//!   `OffsetBuffer` with a sign flip, exactly as the mapping requires.
//!
//! Hardware-semantics subtlety: in Hybrid mode the forwarded "latest top
//! value" is unavailable at row-block seams and at column-batch seam
//! columns (the incomplete products complete later, in the `HaloAdders`), so
//! those points fall back to the Jacobi operand. The reference
//! implementation of exactly these semantics lives in [`crate::reference`]
//! and the integration tests assert bitwise agreement.

use crate::accelerator::HwUpdateMethod;
use crate::array::{OffsetSource, Subarray};
use crate::config::FdmaxConfig;
use crate::elastic::ElasticConfig;
use crate::mapping::{col_batches, row_blocks, row_strips, ColBatch, RowRange};
use crate::pe::PeConfig;
use crate::perf_model::{iteration_estimate, IterationEstimate};
use crate::resilience::{FdmaxError, ResiliencePolicy};
use fdm::convergence::{ResidualHistory, StopCondition};
use fdm::engine::{Session, SolveEngine, StepFault, StepOutcome};
use fdm::grid::Grid2D;
use fdm::pde::{OffsetField, StencilProblem};
use memmodel::faults::{
    FaultCampaign, FaultInjector, FaultTarget, FlipOutcome, ECC_CORRECT_CYCLES, ECC_DETECT_CYCLES,
};
use memmodel::EventCounters;

/// The cycle-accurate simulator state for one solve.
#[derive(Clone, Debug)]
pub struct DetailedSim {
    config: FdmaxConfig,
    elastic: ElasticConfig,
    method: HwUpdateMethod,
    offset: OffsetField<f32>,
    cur: Grid2D<f32>,
    next: Grid2D<f32>,
    prev: Option<Grid2D<f32>>,
    subarrays: Vec<Subarray>,
    strips: Vec<RowRange>,
    batches: Vec<ColBatch>,
    per_iteration: IterationEstimate,
    counters: EventCounters,
    history: ResidualHistory,
    iterations: usize,
    injector: Option<FaultInjector>,
    dma_failed_at: Option<usize>,
    saved: Option<Checkpoint>,
}

/// A rollback point of one resilient solve: the full grid state plus the
/// iteration/history position. Counters are *not* part of a checkpoint —
/// cycles spent on discarded work were really spent.
#[derive(Clone, Debug)]
struct Checkpoint {
    cur: Grid2D<f32>,
    next: Grid2D<f32>,
    prev: Option<Grid2D<f32>>,
    iterations: usize,
    history_len: usize,
}

impl DetailedSim {
    /// Creates a simulator, letting the elastic planner pick the
    /// decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`FdmaxError::Config`] for an invalid configuration and
    /// [`FdmaxError::GridTooSmall`] for a grid without an interior.
    pub fn new(
        config: FdmaxConfig,
        problem: &StencilProblem<f32>,
        method: HwUpdateMethod,
    ) -> Result<Self, FdmaxError> {
        let elastic = ElasticConfig::try_plan(&config, problem.rows(), problem.cols())?;
        Self::with_elastic(config, problem, method, elastic)
    }

    /// Creates a simulator with an explicit elastic decomposition
    /// (used by the elasticity studies and tests).
    ///
    /// # Errors
    ///
    /// Returns [`FdmaxError::Config`] for an invalid configuration,
    /// [`FdmaxError::ElasticMismatch`] for a decomposition that does not
    /// belong to the configured array, and [`FdmaxError::GridTooSmall`]
    /// for a grid without an interior.
    pub fn with_elastic(
        config: FdmaxConfig,
        problem: &StencilProblem<f32>,
        method: HwUpdateMethod,
        elastic: ElasticConfig,
    ) -> Result<Self, FdmaxError> {
        config.validate()?;
        if elastic.pe_count() != config.pe_count()
            || !config.pe_rows.is_multiple_of(elastic.subarrays)
        {
            return Err(FdmaxError::ElasticMismatch {
                elastic,
                pe_rows: config.pe_rows,
                pe_cols: config.pe_cols,
            });
        }
        let rows = problem.rows();
        let cols = problem.cols();
        if rows < 3 || cols < 3 {
            return Err(FdmaxError::GridTooSmall { rows, cols });
        }

        // Elaboration-time lint: the specific legacy checks above keep
        // their precise error variants; everything else the static
        // analyzer can prove wrong (FIFO sizing, halo coverage, schedule
        // deadlock) is refused here, before any cycle is simulated.
        let report = crate::lint::lint(&crate::lint::LintTarget {
            config,
            elastic: Some(elastic),
            rows,
            cols,
            method,
        });
        if report.has_errors() {
            return Err(FdmaxError::Lint { report });
        }

        let pe_config = PeConfig::new(
            problem.stencil,
            problem.offset.requires_buffer(),
            matches!(method, HwUpdateMethod::Hybrid),
        );
        let depth = elastic.sub_fifo_depth(&config);
        let strips = row_strips(rows, elastic.subarrays);
        let subarrays = strips
            .iter()
            .map(|_| Subarray::new(elastic.width, pe_config, depth))
            .collect();
        let per_iteration = iteration_estimate(
            &config,
            &elastic,
            rows,
            cols,
            problem.offset.requires_buffer(),
        );

        Ok(DetailedSim {
            config,
            elastic,
            method,
            offset: problem.offset.clone(),
            cur: problem.initial.clone(),
            next: problem.initial.clone(),
            prev: problem.prev_initial.clone(),
            subarrays,
            strips,
            batches: col_batches(cols, elastic.width),
            per_iteration,
            counters: EventCounters::new(),
            history: ResidualHistory::new(),
            iterations: 0,
            injector: None,
            dma_failed_at: None,
            saved: None,
        })
    }

    /// Arms a fault campaign: from now on every [`DetailedSim::step`]
    /// draws SRAM upsets and DMA failures from the campaign's seeded
    /// streams. An inactive campaign leaves the simulator untouched, so
    /// results stay bit-identical to a fault-free build.
    pub fn enable_faults(&mut self, campaign: FaultCampaign) {
        self.injector = campaign.is_active().then(|| FaultInjector::new(campaign));
    }

    /// The armed fault injector (for trace/digest inspection).
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Tallies fallbacks decided above this simulator (method/software
    /// fallbacks happen in [`crate::accelerator::Accelerator`], but the
    /// event ledger lives here).
    pub fn record_fallbacks(&mut self, count: u64) {
        self.counters.fallbacks += count;
    }

    /// The elastic decomposition in use.
    pub fn elastic(&self) -> ElasticConfig {
        self.elastic
    }

    /// The update method in use.
    pub fn method(&self) -> HwUpdateMethod {
        self.method
    }

    /// The per-iteration timing estimate the simulator charges.
    pub fn per_iteration(&self) -> &IterationEstimate {
        &self.per_iteration
    }

    /// The current field `U^k`.
    pub fn solution(&self) -> &Grid2D<f32> {
        &self.cur
    }

    /// Accumulated event counts.
    pub fn counters(&self) -> &EventCounters {
        &self.counters
    }

    /// Completed iterations.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Per-iteration update norms.
    pub fn history(&self) -> &ResidualHistory {
        &self.history
    }

    /// Applies this iteration's SRAM upsets to the modeled buffers. ECC
    /// semantics: SECDED corrects in place (the word never corrupts),
    /// parity detects but leaves the corruption for the recovery layer,
    /// no ECC corrupts silently. Each detection/correction charges its
    /// modeled cycle cost.
    ///
    /// Upsets land in the *interior* working set: the Dirichlet ring is
    /// host-owned constants that the controller refreshes on stream-in,
    /// so a ring upset never outlives the iteration and is not modeled.
    fn inject_sram_faults(&mut self) {
        let Some(inj) = self.injector.as_mut() else {
            return;
        };
        inj.begin_iteration(self.iterations as u64 + 1);
        let cols = self.cur.cols();
        let interior = (self.cur.rows() - 2) * (cols - 2);
        for flip in inj.draw_sram_flips(interior) {
            self.counters.faults_injected += 1;
            match flip.outcome {
                FlipOutcome::Corrected => {
                    self.counters.faults_corrected += 1;
                    self.counters.cycles += ECC_CORRECT_CYCLES;
                }
                outcome => {
                    if outcome == FlipOutcome::Detected {
                        self.counters.faults_detected += 1;
                        self.counters.cycles += ECC_DETECT_CYCLES;
                    }
                    let grid = match flip.target {
                        FaultTarget::CurBuffer => &mut self.cur,
                        FaultTarget::NextBuffer => &mut self.next,
                    };
                    let word_index =
                        (1 + flip.index / (cols - 2)) * cols + 1 + flip.index % (cols - 2);
                    let word = &mut grid.as_mut_slice()[word_index];
                    *word = f32::from_bits(word.to_bits() ^ (1u32 << flip.bit));
                }
            }
        }
    }

    /// Pushes this iteration's DRAM streaming through the DMA fault
    /// model: retries charge backoff + re-transfer cycles; a permanent
    /// failure is latched for the recovery layer.
    fn inject_dma_faults(&mut self) {
        let streamed =
            self.per_iteration.dram_read_elements + self.per_iteration.dram_write_elements;
        let transfer_cycles = self.config.dram().cycles_for_elements(streamed);
        let Some(inj) = self.injector.as_mut() else {
            return;
        };
        if inj.campaign().dma_failure_prob <= 0.0 || streamed == 0 {
            return;
        }
        let attempt = inj.draw_dma_transfer(transfer_cycles);
        self.counters.dma_retries += u64::from(attempt.retries);
        self.counters.cycles += attempt.extra_cycles;
        if !attempt.succeeded {
            self.dma_failed_at = Some(self.iterations + 1);
        }
    }

    /// Executes one iteration; returns the update norm
    /// `||U^{k+1} - U^k||_2` computed by the ECU.
    pub fn step(&mut self) -> f64 {
        self.advance()
    }

    /// The step body shared by the inherent entry point and the
    /// [`SolveEngine`] implementation.
    fn advance(&mut self) -> f64 {
        self.inject_sram_faults();
        let depth = self.elastic.sub_fifo_depth(&self.config);
        let mut max_subarray_cycles = 0u64;
        for (sa, strip) in self.subarrays.iter_mut().zip(&self.strips) {
            let offset_src = match &self.offset {
                OffsetField::None => OffsetSource::None,
                OffsetField::Static(g) => OffsetSource::Static(g),
                OffsetField::ScaledPrevField { scale } => OffsetSource::ScaledPrev {
                    field: self
                        .prev
                        .as_ref()
                        .expect("ScaledPrevField problems carry prev_initial"),
                    scale: *scale,
                },
            };
            let mut cycles = 0u64;
            for block in row_blocks(*strip, depth) {
                cycles += sa.run_block(
                    block,
                    &self.batches,
                    &self.cur,
                    &mut self.next,
                    offset_src,
                    &mut self.counters,
                );
            }
            max_subarray_cycles = max_subarray_cycles.max(cycles);
        }
        debug_assert_eq!(
            max_subarray_cycles, self.per_iteration.unstalled_cycles,
            "simulated loop cycles must match the analytic unstalled count"
        );

        // ECU: total the per-PE DIFF registers plus the halo contributions.
        let diff2: f64 = self.subarrays.iter_mut().map(Subarray::take_diff).sum();

        // Rotate the double buffers (and the wave history).
        if let Some(prev) = self.prev.as_mut() {
            core::mem::swap(&mut self.cur, prev);
        }
        core::mem::swap(&mut self.cur, &mut self.next);

        // Timing and DRAM-side traffic for this iteration.
        let est = &self.per_iteration;
        self.counters.cycles += est.effective_cycles();
        self.counters.stall_cycles += est.stall_cycles();
        self.counters.dram_read += est.dram_read_elements;
        self.counters.dram_write += est.dram_write_elements;
        // DMA side of the buffers: fills mirror DRAM reads, drains mirror
        // DRAM writes.
        self.counters.sram_write += est.dram_read_elements;
        self.counters.sram_read += est.dram_write_elements;
        self.inject_dma_faults();

        self.iterations += 1;
        let norm = diff2.sqrt();
        self.history.push(norm);
        norm
    }

    /// Runs until `stop` is satisfied, charging the initial DMA load and
    /// final drain. Returns `true` when the stop condition's goal was met.
    ///
    /// This is a plain [`Session`] over the simulator: no checkpoints,
    /// no divergence checks.
    pub fn run(&mut self, stop: &StopCondition) -> bool {
        let mut session = Session::new(&mut *self, *stop);
        session
            .run()
            .expect("budget-free session on a healthy problem cannot fail")
    }

    /// [`DetailedSim::run`] with graceful degradation: periodic grid
    /// checkpoints, rollback-and-retry on parity-detected corruption,
    /// permanent DMA failure, NaN/Inf or sustained residual growth, and a
    /// structured [`FdmaxError`] (never a panic) when the retry budget
    /// runs out. Without an armed campaign and with a healthy problem the
    /// solve path is identical to [`DetailedSim::run`] except for the
    /// checkpoint traffic.
    ///
    /// Returns `Ok(met)` like [`run`](Self::run) on a (possibly
    /// recovered) clean finish.
    ///
    /// # Errors
    ///
    /// The first unrecoverable trouble: [`FdmaxError::NonFinite`],
    /// [`FdmaxError::Diverged`], [`FdmaxError::CorruptionDetected`],
    /// [`FdmaxError::DmaFailed`] when recovery is disabled
    /// (`checkpoint_interval == 0`), or [`FdmaxError::RetriesExhausted`]
    /// when `max_retries` rollbacks were not enough.
    pub fn run_resilient(
        &mut self,
        stop: &StopCondition,
        policy: &ResiliencePolicy,
    ) -> Result<bool, FdmaxError> {
        let mut session = Session::new(&mut *self, *stop).with_policy(*policy);
        let result = session.run().map_err(FdmaxError::from);
        result.map_err(|e| {
            let digest = self
                .fault_injector()
                .map(memmodel::FaultInjector::trace_digest);
            e.with_fault_trace_digest(digest)
        })
    }

    /// Elements in one grid buffer (boot/drain/checkpoint DMA unit).
    fn grid_elements(&self) -> u64 {
        (self.cur.rows() * self.cur.cols()) as u64
    }

    /// Initial load: U^0 (+ offset field / wave history).
    fn charge_boot(&mut self) {
        let grid = self.grid_elements();
        let extra = match &self.offset {
            OffsetField::None => 0,
            OffsetField::Static(_) | OffsetField::ScaledPrevField { .. } => grid,
        };
        self.charge_dram(grid + extra, 0);
    }

    /// Final drain: the solution streams back to DRAM.
    fn charge_drain(&mut self) {
        self.charge_dram(0, self.grid_elements());
    }

    /// Snapshots the grid state; the checkpoint streams to DRAM, so its
    /// traffic is charged like any other drain. The snapshot buffers are
    /// allocated once and reused on every subsequent checkpoint.
    fn save_checkpoint(&mut self) {
        self.counters.checkpoints += 1;
        self.charge_dram(0, self.grid_elements());
        match &mut self.saved {
            Some(ckpt) => {
                ckpt.cur.as_mut_slice().copy_from_slice(self.cur.as_slice());
                ckpt.next
                    .as_mut_slice()
                    .copy_from_slice(self.next.as_slice());
                match (&mut ckpt.prev, &self.prev) {
                    (Some(dst), Some(src)) => dst.as_mut_slice().copy_from_slice(src.as_slice()),
                    (dst, src) => *dst = src.clone(),
                }
                ckpt.iterations = self.iterations;
                ckpt.history_len = self.history.len();
            }
            None => {
                self.saved = Some(Checkpoint {
                    cur: self.cur.clone(),
                    next: self.next.clone(),
                    prev: self.prev.clone(),
                    iterations: self.iterations,
                    history_len: self.history.len(),
                });
            }
        }
    }

    /// Rolls the solve state back to the saved checkpoint; the reload
    /// streams from DRAM. Counters are never rolled back — discarded
    /// work still happened — but the residual series is truncated so the
    /// replayed iterations re-record it. Returns `false` when no
    /// checkpoint exists.
    fn rollback_to_checkpoint(&mut self) -> bool {
        if self.saved.is_none() {
            return false;
        }
        self.counters.rollbacks += 1;
        self.charge_dram(self.grid_elements(), 0);
        let ckpt = self.saved.as_ref().expect("checked above");
        self.cur.as_mut_slice().copy_from_slice(ckpt.cur.as_slice());
        self.next
            .as_mut_slice()
            .copy_from_slice(ckpt.next.as_slice());
        match (&mut self.prev, &ckpt.prev) {
            (Some(dst), Some(src)) => dst.as_mut_slice().copy_from_slice(src.as_slice()),
            (dst, src) => *dst = src.clone(),
        }
        self.iterations = ckpt.iterations;
        let history_len = ckpt.history_len;
        self.history.truncate(history_len);
        true
    }

    fn charge_dram(&mut self, read_elements: u64, write_elements: u64) {
        let cycles = self
            .config
            .dram()
            .cycles_for_elements(read_elements + write_elements);
        self.counters.cycles += cycles;
        self.counters.dram_read += read_elements;
        self.counters.dram_write += write_elements;
        self.counters.sram_write += read_elements;
        self.counters.sram_read += write_elements;
    }
}

impl SolveEngine for DetailedSim {
    /// One simulated iteration, with the fault latches translated into
    /// the driver's [`StepFault`] vocabulary: a permanent DMA failure
    /// wins over a parity detection (the transfer loss is fatal first),
    /// divergence is the driver's job.
    fn step(&mut self) -> StepOutcome {
        let detected_before = self.counters.faults_detected;
        let norm = self.advance();
        let fault = if self.dma_failed_at.take().is_some() {
            Some(StepFault::DmaFailed)
        } else if self.counters.faults_detected > detected_before {
            Some(StepFault::CorruptionDetected)
        } else {
            None
        };
        StepOutcome {
            norm: Some(norm),
            fault,
        }
    }

    fn iterations(&self) -> usize {
        self.iterations
    }

    fn supports_checkpoint(&self) -> bool {
        true
    }

    fn checkpoint(&mut self) {
        self.save_checkpoint();
    }

    fn rollback(&mut self) -> bool {
        self.rollback_to_checkpoint()
    }

    fn begin(&mut self) {
        self.charge_boot();
    }

    fn finish(&mut self) {
        self.charge_drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdm::boundary::DirichletBoundary;
    use fdm::pde::LaplaceProblem;
    use fdm::solver::{solve, UpdateMethod};

    fn laplace32() -> StencilProblem<f32> {
        LaplaceProblem::builder(20, 20)
            .boundary(DirichletBoundary::hot_top(1.0))
            .build()
            .unwrap()
            .discretize::<f32>()
    }

    #[test]
    fn jacobi_steps_match_software_bitwise() {
        let sp = laplace32();
        let mut sim =
            DetailedSim::new(FdmaxConfig::paper_default(), &sp, HwUpdateMethod::Jacobi).unwrap();
        for _ in 0..5 {
            sim.step();
        }
        let sw = solve(&sp, UpdateMethod::Jacobi, &StopCondition::fixed_steps(5));
        assert_eq!(sim.solution(), sw.solution());
        assert_eq!(sim.iterations(), 5);
    }

    #[test]
    fn diff_norm_matches_software_history() {
        let sp = laplace32();
        let mut sim =
            DetailedSim::new(FdmaxConfig::paper_default(), &sp, HwUpdateMethod::Jacobi).unwrap();
        let n1 = sim.step();
        let sw = solve(&sp, UpdateMethod::Jacobi, &StopCondition::fixed_steps(1));
        let expect = sw.history().last().unwrap();
        assert!((n1 - expect).abs() < 1e-10 * expect.max(1.0));
    }

    #[test]
    fn run_converges_like_software() {
        let sp = laplace32();
        let stop = StopCondition::tolerance(1e-4, 50_000);
        let mut sim =
            DetailedSim::new(FdmaxConfig::paper_default(), &sp, HwUpdateMethod::Jacobi).unwrap();
        let met = sim.run(&stop);
        assert!(met);
        let sw = solve(&sp, UpdateMethod::Jacobi, &stop);
        assert_eq!(sim.iterations(), sw.iterations());
        assert_eq!(sim.solution(), sw.solution());
    }

    #[test]
    fn every_elastic_option_gives_identical_jacobi_results() {
        let sp = laplace32();
        let cfg = FdmaxConfig::paper_default();
        let reference = {
            let mut sim = DetailedSim::with_elastic(
                cfg,
                &sp,
                HwUpdateMethod::Jacobi,
                ElasticConfig {
                    subarrays: 1,
                    width: 64,
                },
            )
            .unwrap();
            for _ in 0..3 {
                sim.step();
            }
            sim.solution().clone()
        };
        for e in ElasticConfig::options(&cfg) {
            let mut sim = DetailedSim::with_elastic(cfg, &sp, HwUpdateMethod::Jacobi, e).unwrap();
            for _ in 0..3 {
                sim.step();
            }
            assert_eq!(sim.solution(), &reference, "config {e} diverged");
        }
    }

    #[test]
    fn counters_accumulate_dram_and_cycles() {
        let sp = laplace32(); // 20x20 fits on chip (400 <= 1024)
        let cfg = FdmaxConfig::paper_default();
        let mut sim = DetailedSim::new(cfg, &sp, HwUpdateMethod::Jacobi).unwrap();
        let met = sim.run(&StopCondition::fixed_steps(3));
        assert!(met);
        let c = sim.counters();
        // On-chip resident: DRAM only boot + drain.
        assert_eq!(c.dram_read, 400);
        assert_eq!(c.dram_write, 400);
        assert!(c.cycles > 0);
        assert!(c.fp_mul > 0);
        assert!(c.sram_read > 0);
    }

    #[test]
    fn hybrid_on_monolithic_chain_matches_software_hybrid() {
        // A 1x64 chain with sub-FIFO depth 512 covers a 20x20 grid in one
        // block and one batch: no seams, so hardware Hybrid == software
        // Hybrid exactly.
        let sp = laplace32();
        let cfg = FdmaxConfig::paper_default();
        let mut sim = DetailedSim::with_elastic(
            cfg,
            &sp,
            HwUpdateMethod::Hybrid,
            ElasticConfig {
                subarrays: 1,
                width: 64,
            },
        )
        .unwrap();
        for _ in 0..4 {
            sim.step();
        }
        let sw = solve(&sp, UpdateMethod::Hybrid, &StopCondition::fixed_steps(4));
        assert_eq!(sim.solution(), sw.solution());
    }

    #[test]
    fn wave_history_rotates() {
        use fdm::pde::WaveProblem;
        let sp = WaveProblem::builder(16, 16)
            .time(0.4, 6)
            .initial_fn(|x, y| (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin())
            .build()
            .unwrap()
            .discretize::<f32>();
        let cfg = FdmaxConfig::paper_default();
        let mut sim = DetailedSim::new(cfg, &sp, HwUpdateMethod::Jacobi).unwrap();
        for _ in 0..6 {
            sim.step();
        }
        let sw = solve(&sp, UpdateMethod::Jacobi, &StopCondition::fixed_steps(6));
        assert_eq!(sim.solution(), sw.solution());
    }

    #[test]
    fn invalid_elastic_rejected() {
        let sp = laplace32();
        let cfg = FdmaxConfig::paper_default();
        let bad = ElasticConfig {
            subarrays: 3,
            width: 24,
        };
        let err = DetailedSim::with_elastic(cfg, &sp, HwUpdateMethod::Jacobi, bad).unwrap_err();
        assert!(matches!(err, FdmaxError::ElasticMismatch { .. }));
        assert!(err.to_string().contains("does not fit"));
    }

    #[test]
    fn resilient_run_without_faults_matches_plain_run_bitwise() {
        let sp = laplace32();
        let stop = StopCondition::tolerance(1e-4, 50_000);
        let cfg = FdmaxConfig::paper_default();
        let mut plain = DetailedSim::new(cfg, &sp, HwUpdateMethod::Jacobi).unwrap();
        let met_plain = plain.run(&stop);
        let mut resilient = DetailedSim::new(cfg, &sp, HwUpdateMethod::Jacobi).unwrap();
        let met_res = resilient
            .run_resilient(&stop, &ResiliencePolicy::default())
            .unwrap();
        assert_eq!(met_plain, met_res);
        assert_eq!(plain.solution(), resilient.solution());
        assert_eq!(plain.iterations(), resilient.iterations());
        let c = resilient.counters();
        assert!(c.checkpoints > 0, "periodic checkpoints were taken");
        assert_eq!(c.rollbacks, 0);
        assert_eq!(c.faults_injected, 0);
    }

    #[test]
    fn secded_campaign_corrects_in_place_bitwise() {
        // SECDED corrects every upset before it lands, so the numerical
        // trajectory is identical to a fault-free run; only the ledger
        // shows the activity.
        let sp = laplace32();
        let stop = StopCondition::fixed_steps(40);
        let cfg = FdmaxConfig::paper_default();
        let mut clean = DetailedSim::new(cfg, &sp, HwUpdateMethod::Jacobi).unwrap();
        clean.run(&stop);
        let mut faulty = DetailedSim::new(cfg, &sp, HwUpdateMethod::Jacobi).unwrap();
        faulty.enable_faults(FaultCampaign {
            ecc: memmodel::faults::EccMode::Secded,
            sram_flips_per_iteration: 2.0,
            dma_failure_prob: 0.0,
            ..FaultCampaign::harsh(99)
        });
        faulty.run(&stop);
        assert_eq!(clean.solution(), faulty.solution());
        let c = faulty.counters();
        assert_eq!(c.faults_injected, 80, "2 per iteration x 40 iterations");
        assert_eq!(c.faults_corrected, 80);
        assert_eq!(c.faults_detected, 0);
        assert!(
            c.cycles > clean.counters().cycles,
            "correction costs cycles"
        );
    }

    #[test]
    fn parity_campaign_rolls_back_and_still_converges() {
        let sp = laplace32();
        let stop = StopCondition::tolerance(1e-4, 200_000);
        let cfg = FdmaxConfig::paper_default();
        let mut sim = DetailedSim::new(cfg, &sp, HwUpdateMethod::Jacobi).unwrap();
        sim.enable_faults(FaultCampaign {
            ecc: memmodel::faults::EccMode::Parity,
            sram_flips_per_iteration: 0.01,
            dma_failure_prob: 0.0,
            ..FaultCampaign::harsh(7)
        });
        let met = sim
            .run_resilient(
                &stop,
                &ResiliencePolicy {
                    max_retries: 10_000,
                    ..ResiliencePolicy::default()
                },
            )
            .unwrap();
        assert!(met, "recovered solve still converges");
        let c = sim.counters();
        assert!(c.faults_injected > 0);
        assert_eq!(
            c.rollbacks, c.faults_detected,
            "every detection rolled back"
        );
        // The recovered answer matches the clean solve bit-for-bit:
        // rollback restores checkpointed state exactly, and replayed
        // iterations without faults are deterministic.
        let mut clean = DetailedSim::new(cfg, &sp, HwUpdateMethod::Jacobi).unwrap();
        clean.run(&stop);
        assert_eq!(sim.solution(), clean.solution());
    }

    #[test]
    fn strict_policy_surfaces_corruption_as_error() {
        let sp = laplace32();
        let cfg = FdmaxConfig::paper_default();
        let mut sim = DetailedSim::new(cfg, &sp, HwUpdateMethod::Jacobi).unwrap();
        sim.enable_faults(FaultCampaign {
            ecc: memmodel::faults::EccMode::Parity,
            sram_flips_per_iteration: 5.0,
            dma_failure_prob: 0.0,
            ..FaultCampaign::harsh(3)
        });
        let err = sim
            .run_resilient(
                &StopCondition::fixed_steps(100),
                &ResiliencePolicy::strict(),
            )
            .unwrap_err();
        assert!(matches!(err, FdmaxError::CorruptionDetected { .. }));
    }

    #[test]
    fn exhausted_retries_surface_structured_error() {
        let sp = laplace32();
        let cfg = FdmaxConfig::paper_default();
        let mut sim = DetailedSim::new(cfg, &sp, HwUpdateMethod::Jacobi).unwrap();
        sim.enable_faults(FaultCampaign {
            ecc: memmodel::faults::EccMode::Parity,
            sram_flips_per_iteration: 5.0, // detection virtually every step
            dma_failure_prob: 0.0,
            ..FaultCampaign::harsh(3)
        });
        let err = sim
            .run_resilient(
                &StopCondition::fixed_steps(100),
                &ResiliencePolicy {
                    max_retries: 3,
                    ..ResiliencePolicy::default()
                },
            )
            .unwrap_err();
        match err {
            FdmaxError::RetriesExhausted {
                attempts,
                checkpoint_iteration,
                fault_trace_digest,
            } => {
                assert_eq!(attempts, 3);
                // Detection fires before the first periodic checkpoint, so
                // every retry rolled back to the initial (iteration 0) state.
                assert_eq!(checkpoint_iteration, 0);
                let expected = sim
                    .fault_injector()
                    .map(memmodel::FaultInjector::trace_digest);
                assert!(expected.is_some());
                assert_eq!(fault_trace_digest, expected);
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        assert_eq!(sim.counters().rollbacks, 3);
    }
}
