//! 3-D solving on the unmodified 2-D FDMAX array (extension beyond the
//! paper).
//!
//! A seven-point 3-D Jacobi update decomposes into two five-point passes
//! per z-plane (see [`fdm::volume`]):
//!
//! 1. **coupling pass** — the PE array runs the degenerate stencil
//!    `(w_v, w_h, w_s) = (0, 0, w_z)` over plane `z-1` with plane `z+1`
//!    routed through the `OffsetBuffer` (`ScaledPrev` with scale `w_z`),
//!    producing the cross-plane term `w_z·(u[z-1] + u[z+1])`;
//! 2. **in-plane pass** — the ordinary five-point stencil over plane `z`
//!    with the coupling plane as the static offset.
//!
//! No hardware changes: both passes are configurations the paper's PE
//! already supports (§4.2.1's weight registers plus the offset port). The
//! cost is 2x the passes of a native 2-D solve; the result is
//! **bit-identical** to the software plane-pass reference.

use crate::array::{OffsetSource, Subarray};
use crate::config::{ConfigError, FdmaxConfig};
use crate::elastic::ElasticConfig;
use crate::mapping::{col_batches, row_blocks, row_strips};
use crate::pe::PeConfig;
use crate::perf_model::iteration_estimate;
use fdm::grid::Grid2D;
use fdm::volume::{Grid3D, SevenPointStencil};
use memmodel::EventCounters;

/// A 3-D plane-sweep solver on the FDMAX array.
#[derive(Clone, Debug)]
pub struct VolumeSolver {
    config: FdmaxConfig,
    elastic: ElasticConfig,
    counters: EventCounters,
    iterations: usize,
}

impl VolumeSolver {
    /// Creates a solver; the elastic planner configures the array for
    /// the plane shape.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for an invalid configuration.
    ///
    /// # Panics
    ///
    /// Panics if the plane has no interior.
    pub fn new(config: FdmaxConfig, rows: usize, cols: usize) -> Result<Self, ConfigError> {
        config.validate()?;
        let elastic = ElasticConfig::plan(&config, rows, cols);
        Ok(VolumeSolver {
            config,
            elastic,
            counters: EventCounters::new(),
            iterations: 0,
        })
    }

    /// The elastic decomposition chosen for the planes.
    pub fn elastic(&self) -> ElasticConfig {
        self.elastic
    }

    /// Accumulated event counts.
    pub fn counters(&self) -> &EventCounters {
        &self.counters
    }

    /// Completed 3-D iterations.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Runs one five-point pass of `stencil` over `cur` into `next` with
    /// the given offset source, on a fresh subarray set. Returns the sum
    /// of squared updates (the pass's DIFF total).
    fn run_pass(
        &mut self,
        stencil: fdm::stencil::FivePointStencil<f32>,
        offset: OffsetSource<'_>,
        cur: &Grid2D<f32>,
        next: &mut Grid2D<f32>,
    ) -> f64 {
        let pe_config = PeConfig::new(stencil, offset.is_present(), false);
        let depth = self.elastic.sub_fifo_depth(&self.config);
        let strips = row_strips(cur.rows(), self.elastic.subarrays);
        let batches = col_batches(cur.cols(), self.elastic.width);
        let mut diff = 0.0f64;
        for strip in strips {
            let mut sa = Subarray::new(self.elastic.width, pe_config, depth);
            for block in row_blocks(strip, depth) {
                sa.run_block(block, &batches, cur, next, offset, &mut self.counters);
            }
            diff += sa.take_diff();
        }
        diff
    }

    /// One 3-D Jacobi iteration: two passes per interior plane. Returns
    /// the update norm `||U^{k+1} - U^k||_2` (from the in-plane passes'
    /// DIFF logic).
    ///
    /// # Panics
    ///
    /// Panics if the volume has no interior.
    pub fn step(
        &mut self,
        stencil: &SevenPointStencil<f32>,
        cur: &Grid3D<f32>,
        next: &mut Grid3D<f32>,
    ) -> f64 {
        assert!(
            cur.planes() >= 3 && cur.rows() >= 3 && cur.cols() >= 3,
            "volume needs an interior"
        );
        let coupling_stencil = stencil.coupling_pass();
        let in_plane = stencil.in_plane();
        let mut diff2 = 0.0f64;
        for z in 1..cur.planes() - 1 {
            let below = cur.plane(z - 1);
            let above = cur.plane(z + 1);
            let plane = cur.plane(z);

            // Pass 1: coupling through the OffsetBuffer. Its DIFF output
            // is architectural garbage (the pass computes an offset
            // field, not a solution update) and is discarded.
            let mut coupling = Grid2D::zeros(cur.rows(), cur.cols());
            let _ = self.run_pass(
                coupling_stencil,
                OffsetSource::ScaledPrev {
                    field: &above,
                    scale: stencil.w_z,
                },
                &below,
                &mut coupling,
            );

            // Pass 2: the in-plane stencil with the coupling offset; its
            // DIFF is the true squared update of plane z.
            let mut out = plane.clone();
            diff2 += self.run_pass(in_plane, OffsetSource::Static(&coupling), &plane, &mut out);
            next.set_plane(z, &out);
        }

        // Timing: two passes per interior plane, each costing one 2-D
        // iteration of the plane shape (pass 1 reads an offset).
        let per_pass =
            iteration_estimate(&self.config, &self.elastic, cur.rows(), cur.cols(), true)
                .effective_cycles();
        self.counters.cycles += 2 * per_pass * (cur.planes() as u64 - 2);
        self.iterations += 1;
        diff2.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdm::volume::{jacobi3d_sweep, laplace3d_benchmark, plane_pass_sweep};

    fn solver(n: usize) -> VolumeSolver {
        VolumeSolver::new(FdmaxConfig::paper_default(), n, n).expect("valid config")
    }

    #[test]
    fn hardware_matches_software_plane_pass_bitwise() {
        let n = 12;
        let stencil = SevenPointStencil::<f32>::laplace_uniform();
        let cur = laplace3d_benchmark::<f32>(n, n, n);
        let mut hw_next = cur.clone();
        let mut sw_next = cur.clone();
        let mut vs = solver(n);
        let hw_diff = vs.step(&stencil, &cur, &mut hw_next);
        let sw_diff2 = plane_pass_sweep(&stencil, &cur, &mut sw_next);
        assert_eq!(hw_next, sw_next, "hardware plane sweep diverged");
        assert!((hw_diff - sw_diff2.sqrt()).abs() < 1e-9 * hw_diff.max(1.0));
    }

    #[test]
    fn plane_pass_tracks_direct_seven_point() {
        let n = 10;
        let stencil = SevenPointStencil::<f32>::laplace_uniform();
        let cur = laplace3d_benchmark::<f32>(n, n, n);
        let mut hw_next = cur.clone();
        let mut direct = cur.clone();
        let mut vs = solver(n);
        vs.step(&stencil, &cur, &mut hw_next);
        jacobi3d_sweep(&stencil, &cur, &mut direct);
        // Different f32 summation order: equal within a few ulps.
        assert!(hw_next.diff_max(&direct) < 1e-6);
    }

    #[test]
    fn iterating_converges_toward_the_3d_solution() {
        let n = 11;
        let stencil = SevenPointStencil::<f32>::laplace_uniform();
        let mut cur = laplace3d_benchmark::<f32>(n, n, n);
        let mut next = cur.clone();
        let mut vs = solver(n);
        let mut last_norm = f64::INFINITY;
        for _ in 0..300 {
            last_norm = vs.step(&stencil, &cur, &mut next);
            core::mem::swap(&mut cur, &mut next);
        }
        assert!(last_norm < 1e-4, "update norm should shrink: {last_norm}");
        let exact = fdm::volume::laplace3d_sine_face(n, n, n).convert::<f32>();
        let err = cur.diff_max(&exact);
        assert!(err < 2e-2, "3D error {err} too large");
        assert_eq!(vs.iterations(), 300);
    }

    #[test]
    fn cycles_charge_two_passes_per_plane() {
        let n = 9;
        let stencil = SevenPointStencil::<f32>::laplace_uniform();
        let cur = laplace3d_benchmark::<f32>(n, n, n);
        let mut next = cur.clone();
        let mut vs = solver(n);
        vs.step(&stencil, &cur, &mut next);
        let per_pass = iteration_estimate(&FdmaxConfig::paper_default(), &vs.elastic(), n, n, true)
            .effective_cycles();
        assert_eq!(vs.counters().cycles, 2 * per_pass * (n as u64 - 2));
    }
}
