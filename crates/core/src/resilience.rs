//! Structured errors and the graceful-degradation policy.
//!
//! The simulator stack never panics on a malformed problem or a faulty
//! run; everything surfaces as [`FdmaxError`]. On top of that,
//! [`ResiliencePolicy`] describes how a solve recovers from injected (or
//! numerical) trouble:
//!
//! 1. periodic **checkpoints** of the grid state, rolled back to when
//!    parity-detected corruption, a permanent DMA failure, NaN/Inf, or
//!    sustained residual growth shows up;
//! 2. bounded **retries** from the last checkpoint (a transient fault
//!    draws a fresh schedule from the campaign RNG, so the replay is
//!    deterministic but not doomed to repeat the fault);
//! 3. **fallbacks** once retries are exhausted: Hybrid drops to the
//!    sturdier Jacobi datapath, and the accelerator finally hands the
//!    problem to the `fdm` software solver.
//!
//! Every recovery action is tallied both in the run's
//! [`memmodel::EventCounters`] and in the [`RecoveryReport`] attached to
//! the solve outcome.

use crate::config::ConfigError;
use crate::elastic::ElasticConfig;
use crate::lint::LintReport;
use core::fmt;
use fdm::convergence::InvalidTolerance;
use fdm::engine::EngineError;
use memmodel::EventCounters;

/// The graceful-degradation policy, defined next to the generic
/// [`fdm::engine::Session`] driver it configures and re-exported here
/// for the accelerator-facing API.
pub use fdm::engine::ResiliencePolicy;

/// Any failure the FDMAX stack can surface.
#[derive(Clone, Debug, PartialEq)]
pub enum FdmaxError {
    /// The accelerator configuration is structurally invalid.
    Config(ConfigError),
    /// The problem grid has no interior to iterate on.
    GridTooSmall {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// An explicit elastic decomposition does not fit the physical array.
    ElasticMismatch {
        /// The rejected decomposition.
        elastic: ElasticConfig,
        /// Physical array rows.
        pe_rows: usize,
        /// Physical array columns.
        pe_cols: usize,
    },
    /// A stop condition carried an unusable tolerance.
    Tolerance(InvalidTolerance),
    /// The update norm became NaN or infinite and no recovery was
    /// possible (or allowed).
    NonFinite {
        /// Iteration (1-based) whose norm went non-finite.
        iteration: usize,
    },
    /// The update norm grew persistently and no recovery was possible.
    Diverged {
        /// Iteration at the end of the growth window.
        iteration: usize,
        /// Growth ratio over the detection window.
        ratio: f64,
    },
    /// Parity flagged corrupted buffer data and no rollback was possible
    /// (or allowed).
    CorruptionDetected {
        /// Iteration (1-based) during which parity fired.
        iteration: usize,
    },
    /// A DMA block transfer failed permanently (retry budget exhausted).
    DmaFailed {
        /// Iteration during which the transfer gave up.
        iteration: usize,
    },
    /// Rollback-and-retry was attempted `attempts` times without a clean
    /// run; the fallback chain (if any) is also exhausted.
    RetriesExhausted {
        /// Recovery attempts performed.
        attempts: u32,
        /// Iteration of the checkpoint every retry rolled back to — the
        /// last state known to be good.
        checkpoint_iteration: usize,
        /// FNV-1a digest of the fault trace that defeated the retries
        /// (`None` when no injector ran), for deterministic replay.
        fault_trace_digest: Option<u64>,
    },
    /// The job's cancellation token was triggered between steps.
    Cancelled {
        /// Iterations completed when the cancellation was observed.
        iteration: usize,
    },
    /// The job's iteration or wall-clock budget ran out before the stop
    /// condition was satisfied.
    DeadlineExceeded {
        /// Iterations completed when the budget ran out.
        iteration: usize,
    },
    /// The watchdog found the residual series making no progress.
    Stalled {
        /// Iteration (1-based) ending the stalled window.
        iteration: usize,
    },
    /// The elaboration-time lint found Error-level diagnostics; the
    /// configuration was refused before a single cycle was simulated.
    Lint {
        /// The full lint report (errors plus any accompanying warnings).
        report: LintReport,
    },
}

impl fmt::Display for FdmaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FdmaxError::Config(e) => write!(f, "{e}"),
            FdmaxError::GridTooSmall { rows, cols } => {
                write!(f, "{rows}x{cols} grid has no interior to iterate on")
            }
            FdmaxError::ElasticMismatch {
                elastic,
                pe_rows,
                pe_cols,
            } => write!(
                f,
                "elastic decomposition {elastic} does not fit the {pe_rows}x{pe_cols} array"
            ),
            FdmaxError::Tolerance(e) => write!(f, "{e}"),
            FdmaxError::NonFinite { iteration } => {
                write!(f, "update norm became non-finite at iteration {iteration}")
            }
            FdmaxError::Diverged { iteration, ratio } => write!(
                f,
                "solve diverged (norm grew {ratio:.2}x) by iteration {iteration}"
            ),
            FdmaxError::CorruptionDetected { iteration } => write!(
                f,
                "parity detected buffer corruption at iteration {iteration}"
            ),
            FdmaxError::DmaFailed { iteration } => {
                write!(
                    f,
                    "DMA transfer failed permanently at iteration {iteration}"
                )
            }
            FdmaxError::RetriesExhausted {
                attempts,
                checkpoint_iteration,
                fault_trace_digest,
            } => {
                write!(
                    f,
                    "recovery failed after {attempts} rollback attempts to the \
                     checkpoint at iteration {checkpoint_iteration}"
                )?;
                if let Some(d) = fault_trace_digest {
                    write!(f, " (fault trace {d:#018x})")?;
                }
                Ok(())
            }
            FdmaxError::Cancelled { iteration } => {
                write!(f, "solve cancelled after {iteration} iterations")
            }
            FdmaxError::DeadlineExceeded { iteration } => {
                write!(f, "budget deadline exceeded after {iteration} iterations")
            }
            FdmaxError::Stalled { iteration } => {
                write!(f, "watchdog: no residual progress by iteration {iteration}")
            }
            FdmaxError::Lint { report } => {
                let errors = report.errors().count();
                let first = report
                    .errors()
                    .next()
                    .map_or_else(|| "no detail".to_string(), ToString::to_string);
                write!(
                    f,
                    "configuration refused by lint ({errors} error{}): {first}",
                    if errors == 1 { "" } else { "s" }
                )
            }
        }
    }
}

impl std::error::Error for FdmaxError {}

impl From<ConfigError> for FdmaxError {
    fn from(e: ConfigError) -> Self {
        FdmaxError::Config(e)
    }
}

impl From<InvalidTolerance> for FdmaxError {
    fn from(e: InvalidTolerance) -> Self {
        FdmaxError::Tolerance(e)
    }
}

impl From<EngineError> for FdmaxError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::NonFinite { iteration } => FdmaxError::NonFinite { iteration },
            EngineError::Diverged { iteration, ratio } => FdmaxError::Diverged { iteration, ratio },
            EngineError::CorruptionDetected { iteration } => {
                FdmaxError::CorruptionDetected { iteration }
            }
            EngineError::DmaFailed { iteration } => FdmaxError::DmaFailed { iteration },
            EngineError::RetriesExhausted {
                attempts,
                checkpoint_iteration,
            } => FdmaxError::RetriesExhausted {
                attempts,
                checkpoint_iteration,
                // The engine layer has no injector; whoever owns one
                // (DetailedSim's resilient paths) fills the digest in.
                fault_trace_digest: None,
            },
            EngineError::Cancelled { iteration } => FdmaxError::Cancelled { iteration },
            EngineError::DeadlineExceeded { iteration } => {
                FdmaxError::DeadlineExceeded { iteration }
            }
            EngineError::Stalled { iteration } => FdmaxError::Stalled { iteration },
        }
    }
}

impl FdmaxError {
    /// Attaches the fault-trace digest to the errors that carry one
    /// (currently [`FdmaxError::RetriesExhausted`]); other variants pass
    /// through unchanged. Used by the simulator-owning layers, which are
    /// the only ones that can see the injector.
    #[must_use]
    pub fn with_fault_trace_digest(self, digest: Option<u64>) -> Self {
        match self {
            FdmaxError::RetriesExhausted {
                attempts,
                checkpoint_iteration,
                ..
            } => FdmaxError::RetriesExhausted {
                attempts,
                checkpoint_iteration,
                fault_trace_digest: digest,
            },
            other => other,
        }
    }
}

/// What the recovery machinery actually did during one solve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[must_use = "a recovery report records fallbacks and rollbacks the caller should inspect"]
pub struct RecoveryReport {
    /// SRAM upsets injected.
    pub faults_injected: u64,
    /// Upsets detected by parity.
    pub faults_detected: u64,
    /// Upsets corrected in place by SECDED.
    pub faults_corrected: u64,
    /// DMA transfer retries performed.
    pub dma_retries: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Rollbacks to a checkpoint.
    pub rollbacks: u64,
    /// Method fallbacks (Hybrid -> Jacobi) plus the software fallback.
    pub fallbacks: u64,
    /// `true` when the answer came from the `fdm` software solver.
    pub software_fallback: bool,
    /// FNV-1a digest of the fault trace (`None` when no injector ran).
    pub fault_trace_digest: Option<u64>,
}

impl RecoveryReport {
    /// Collects the fault/recovery tallies out of an event ledger.
    pub fn from_counters(c: &EventCounters) -> Self {
        RecoveryReport {
            faults_injected: c.faults_injected,
            faults_detected: c.faults_detected,
            faults_corrected: c.faults_corrected,
            dma_retries: c.dma_retries,
            checkpoints: c.checkpoints,
            rollbacks: c.rollbacks,
            fallbacks: c.fallbacks,
            software_fallback: false,
            fault_trace_digest: None,
        }
    }

    /// `true` when the run survived only thanks to a recovery action
    /// (rollback, retry, fallback, or detected/corrected faults).
    /// Checkpoints alone don't count: taking insurance is not a claim.
    pub fn recovered(&self) -> bool {
        self.faults_detected > 0
            || self.faults_corrected > 0
            || self.dma_retries > 0
            || self.rollbacks > 0
            || self.fallbacks > 0
            || self.software_fallback
    }

    /// `true` when the run needed any recovery action at all.
    pub fn is_clean(&self) -> bool {
        *self
            == RecoveryReport {
                fault_trace_digest: self.fault_trace_digest,
                ..RecoveryReport::default()
            }
    }
}

/// Deterministic decorrelated-jitter backoff driven by a
/// [`DetRng`](detrng::DetRng), for retrying transient I/O failures
/// (the durability journal and its snapshot files).
///
/// Each delay is a uniform draw in `[base, 3 * previous)` from a
/// seeded stream, capped at `base * 2^20` — the AWS "decorrelated
/// jitter" schedule. It grows roughly exponentially in expectation,
/// but successive delays share no fixed ladder, so concurrent services
/// seeded apart never thundering-herd in lockstep; and because the
/// stream is seeded, retry *schedules* are reproducible even though
/// they span real wall-clock time.
#[derive(Clone, Debug)]
pub struct RetryBackoff {
    base_micros: u64,
    max_attempts: u32,
    attempt: u32,
    prev_micros: u64,
    rng: detrng::DetRng,
}

impl RetryBackoff {
    /// A backoff schedule: `max_attempts` retries starting at
    /// `base_micros`, jittered from `seed`.
    pub fn new(base_micros: u64, max_attempts: u32, seed: u64) -> Self {
        RetryBackoff {
            base_micros,
            max_attempts,
            attempt: 0,
            prev_micros: base_micros,
            rng: detrng::DetRng::seed_from_u64(seed),
        }
    }

    /// Retries remaining before [`RetryBackoff::next_delay`] gives up.
    pub fn remaining(&self) -> u32 {
        self.max_attempts.saturating_sub(self.attempt)
    }

    /// The next delay to sleep before retrying, or `None` when the
    /// attempt budget is spent.
    pub fn next_delay(&mut self) -> Option<core::time::Duration> {
        if self.attempt >= self.max_attempts {
            return None;
        }
        self.attempt += 1;
        let delay = if self.base_micros == 0 {
            0
        } else {
            let cap = self.base_micros.saturating_mul(1 << 20);
            let hi = self
                .prev_micros
                .saturating_mul(3)
                .min(cap)
                .max(self.base_micros + 1);
            self.base_micros + self.rng.gen_range(0, (hi - self.base_micros) as usize) as u64
        };
        self.prev_micros = delay.max(self.base_micros);
        Some(core::time::Duration::from_micros(delay))
    }

    /// Rewinds the schedule after a success, so the next failure starts
    /// from the base delay again.
    pub fn reset(&mut self) {
        self.attempt = 0;
        self.prev_micros = self.base_micros;
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return f.write_str("clean run (no recovery actions)");
        }
        write!(
            f,
            "{} faults ({} detected, {} corrected), {} DMA retries, \
             {} checkpoints, {} rollbacks, {} fallbacks{}",
            self.faults_injected,
            self.faults_detected,
            self.faults_corrected,
            self.dma_retries,
            self.checkpoints,
            self.rollbacks,
            self.fallbacks,
            if self.software_fallback {
                " (software)"
            } else {
                ""
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_backoff_is_decorrelated_jitter_pinned_by_seed() {
        let schedule = |seed: u64| -> Vec<u64> {
            let mut b = RetryBackoff::new(50, 5, seed);
            std::iter::from_fn(|| b.next_delay())
                .map(|d| d.as_micros() as u64)
                .collect()
        };
        // The replay contract: the whole schedule is a pure function of
        // the seed...
        let first = schedule(0xD0_0D1E);
        assert_eq!(first, schedule(0xD0_0D1E));
        assert_eq!(first.len(), 5, "the attempt budget is honored");
        // ...different seeds decorrelate (no shared base*2^n ladder)...
        assert_ne!(first, schedule(0xD0_0D1F));
        // ...and every delay obeys the decorrelated-jitter bounds:
        // uniform in [base, 3 * previous), starting from previous =
        // base.
        let mut prev = 50u64;
        for &d in &first {
            assert!(d >= 50, "below base: {d}");
            assert!(d < prev.saturating_mul(3).max(51), "above 3x prev: {d}");
            prev = d.max(50);
        }

        // reset() rewinds both the attempt budget and the growth state:
        // the post-reset schedule starts from the base window again.
        let mut b = RetryBackoff::new(50, 3, 7);
        while b.next_delay().is_some() {}
        assert_eq!(b.remaining(), 0);
        b.reset();
        assert_eq!(b.remaining(), 3);
        let restarted = b.next_delay().unwrap().as_micros() as u64;
        assert!((50..150).contains(&restarted), "first window: {restarted}");

        // A zero base degrades to immediate retries without drawing.
        let mut zero = RetryBackoff::new(0, 2, 1);
        assert_eq!(zero.next_delay(), Some(core::time::Duration::ZERO));
    }

    #[test]
    fn errors_display_their_context() {
        let e = FdmaxError::from(ConfigError::ZeroParameter { name: "pe_rows" });
        assert!(e.to_string().contains("pe_rows"));
        assert!(FdmaxError::GridTooSmall { rows: 2, cols: 9 }
            .to_string()
            .contains("2x9"));
        assert!(FdmaxError::NonFinite { iteration: 7 }
            .to_string()
            .contains("iteration 7"));
        assert!(FdmaxError::Diverged {
            iteration: 9,
            ratio: 12.5
        }
        .to_string()
        .contains("12.5"));
        assert!(FdmaxError::DmaFailed { iteration: 3 }
            .to_string()
            .contains("DMA"));
        assert!(FdmaxError::CorruptionDetected { iteration: 2 }
            .to_string()
            .contains("parity"));
        let retries = FdmaxError::RetriesExhausted {
            attempts: 4,
            checkpoint_iteration: 96,
            fault_trace_digest: None,
        };
        assert!(retries.to_string().contains("4 rollback"));
        assert!(retries.to_string().contains("iteration 96"));
        assert!(!retries.to_string().contains("fault trace"));
        let retries = retries.with_fault_trace_digest(Some(0xdead_beef));
        assert!(retries.to_string().contains("0x00000000deadbeef"));
        assert!(FdmaxError::Cancelled { iteration: 11 }
            .to_string()
            .contains("cancelled after 11"));
        assert!(FdmaxError::DeadlineExceeded { iteration: 12 }
            .to_string()
            .contains("deadline"));
        assert!(FdmaxError::Stalled { iteration: 13 }
            .to_string()
            .contains("watchdog"));
        let e = FdmaxError::ElasticMismatch {
            elastic: ElasticConfig {
                subarrays: 3,
                width: 24,
            },
            pe_rows: 8,
            pe_cols: 8,
        };
        assert!(e.to_string().contains("8x8"));
    }

    #[test]
    fn tolerance_errors_convert() {
        let err = fdm::convergence::StopCondition::try_tolerance(-1.0, 5).unwrap_err();
        let e = FdmaxError::from(err);
        assert!(matches!(e, FdmaxError::Tolerance(_)));
        assert!(e.to_string().contains("positive"));
    }

    #[test]
    fn policy_defaults_enable_the_full_chain() {
        let p = ResiliencePolicy::default();
        assert!(p.checkpoint_interval > 0);
        assert!(p.max_retries > 0);
        assert!(p.allow_method_fallback && p.allow_software_fallback);
        let s = ResiliencePolicy::strict();
        assert_eq!(s.checkpoint_interval, 0);
        assert_eq!(s.max_retries, 0);
    }

    #[test]
    fn recovery_report_cleanliness() {
        let mut r = RecoveryReport::default();
        assert!(r.is_clean());
        assert!(r.to_string().contains("clean"));
        r.fault_trace_digest = Some(42);
        assert!(r.is_clean(), "a digest alone is not a recovery action");
        r.rollbacks = 2;
        assert!(!r.is_clean());
        assert!(r.to_string().contains("2 rollbacks"));
    }

    #[test]
    fn recovery_report_reads_the_ledger() {
        let mut c = EventCounters::new();
        c.faults_injected = 5;
        c.faults_detected = 3;
        c.dma_retries = 2;
        c.checkpoints = 4;
        c.rollbacks = 1;
        let r = RecoveryReport::from_counters(&c);
        assert_eq!(r.faults_injected, 5);
        assert_eq!(r.faults_detected, 3);
        assert_eq!(r.dma_retries, 2);
        assert_eq!(r.checkpoints, 4);
        assert_eq!(r.rollbacks, 1);
        assert!(!r.software_fallback);
    }
}
