//! Tiling of an FDM grid onto the PE array (paper §5).
//!
//! A grid of `rows x cols` points maps to an elastic configuration of
//! `s` subarray chains of width `w` as follows:
//!
//! * the interior output rows (`1 .. rows-1`) split into `s` contiguous
//!   **row strips**, one per subarray;
//! * each strip splits into **row blocks** of at most `fifo_depth` output
//!   rows — a column batch pushes one nFIFO and one pFIFO entry per output
//!   row, so the block height is bounded by the FIFO capacity;
//! * the `cols` grid columns (boundary columns included — their values
//!   feed the row-wise partials of their neighbours) split into **column
//!   batches** of `w` columns.
//!
//! Processing one `(block, batch)` tile streams `block_height + 2` input
//! rows plus one NULL flush cycle (the paper's Cycle #100), i.e.
//! `block_height + 3` cycles before SRAM bank stalls. The same arithmetic
//! drives the cycle-accurate simulator and the closed-form performance
//! model, which is what keeps them in exact agreement.

/// A contiguous range of output rows `[out_lo, out_hi)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RowRange {
    /// First output row (inclusive).
    pub out_lo: usize,
    /// One past the last output row.
    pub out_hi: usize,
}

impl RowRange {
    /// Number of output rows.
    pub fn height(&self) -> usize {
        self.out_hi - self.out_lo
    }

    /// Rows streamed as inputs for this range: the range itself plus one
    /// halo row above and below.
    pub fn streamed_rows(&self) -> usize {
        self.height() + 2
    }
}

/// Splits the interior rows of a `rows`-row grid into `subarrays`
/// contiguous strips (earlier strips take the remainder).
///
/// Strips beyond the interior height come back empty-free: if there are
/// fewer interior rows than subarrays, only the first `interior` strips
/// are returned.
///
/// # Panics
///
/// Panics if `subarrays` is zero or `rows < 3`.
pub fn row_strips(rows: usize, subarrays: usize) -> Vec<RowRange> {
    assert!(subarrays > 0, "need at least one subarray");
    assert!(rows >= 3, "grid needs an interior");
    let interior = rows - 2;
    let active = subarrays.min(interior);
    let base = interior / active;
    let extra = interior % active;
    let mut strips = Vec::with_capacity(active);
    let mut lo = 1usize;
    for k in 0..active {
        let h = base + usize::from(k < extra);
        strips.push(RowRange {
            out_lo: lo,
            out_hi: lo + h,
        });
        lo += h;
    }
    strips
}

/// Splits a strip into row blocks of at most `fifo_depth` output rows.
///
/// # Panics
///
/// Panics if `fifo_depth` is zero or the strip is empty.
pub fn row_blocks(strip: RowRange, fifo_depth: usize) -> Vec<RowRange> {
    assert!(fifo_depth > 0, "fifo depth must be nonzero");
    assert!(strip.height() > 0, "empty strip");
    let mut blocks = Vec::with_capacity(strip.height().div_ceil(fifo_depth));
    let mut lo = strip.out_lo;
    while lo < strip.out_hi {
        let hi = (lo + fifo_depth).min(strip.out_hi);
        blocks.push(RowRange {
            out_lo: lo,
            out_hi: hi,
        });
        lo = hi;
    }
    blocks
}

/// A contiguous range of grid columns `[c0, c1)` handled by one batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColBatch {
    /// First column (inclusive).
    pub c0: usize,
    /// One past the last column.
    pub c1: usize,
}

impl ColBatch {
    /// Number of active PEs in this batch.
    pub fn active(&self) -> usize {
        self.c1 - self.c0
    }
}

/// Splits `cols` grid columns into batches of `width`.
///
/// # Panics
///
/// Panics if `width` is zero or `cols` is zero.
pub fn col_batches(cols: usize, width: usize) -> Vec<ColBatch> {
    assert!(width > 0, "subarray width must be nonzero");
    assert!(cols > 0, "grid must have columns");
    let mut batches = Vec::with_capacity(cols.div_ceil(width));
    let mut c0 = 0usize;
    while c0 < cols {
        let c1 = (c0 + width).min(cols);
        batches.push(ColBatch { c0, c1 });
        c0 = c1;
    }
    batches
}

/// Cycles one subarray spends on one `(block, batch)` tile before stalls:
/// `streamed rows + 1` NULL flush.
pub fn tile_cycles(block: RowRange) -> u64 {
    (block.streamed_rows() + 1) as u64
}

/// Stall-adjusted cycles for a tile whose cycles each issue
/// `concurrent_accesses` consecutive-address accesses to a buffer with
/// `banks` single-ported banks.
///
/// The buffer controller queues requests, so over a whole tile the
/// throughput limit is the *average* `accesses / banks` rate (consecutive
/// addresses interleave perfectly): the tile takes
/// `ceil(cycles · accesses / banks)` when over-subscribed, `cycles`
/// otherwise.
pub fn stalled_tile_cycles(cycles: u64, concurrent_accesses: usize, banks: usize) -> u64 {
    debug_assert!(banks > 0);
    if concurrent_accesses <= banks {
        cycles
    } else {
        let num = cycles as u128 * concurrent_accesses as u128;
        num.div_ceil(banks as u128) as u64
    }
}

/// Compute cycles of one full iteration for an elastic configuration:
/// the slowest subarray's sum over its blocks and batches of
/// `tile_cycles x stall_factor`, where the stall factor sees the
/// *concurrent* accesses of all `s` lock-stepped subarrays.
///
/// This is the exact accounting the cycle-accurate simulator performs.
pub fn iteration_compute_cycles(
    rows: usize,
    cols: usize,
    subarrays: usize,
    width: usize,
    fifo_depth: usize,
    banks: usize,
) -> u64 {
    let strips = row_strips(rows, subarrays);
    let active_subarrays = strips.len();
    let batches = col_batches(cols, width);
    strips
        .iter()
        .map(|&strip| {
            row_blocks(strip, fifo_depth)
                .into_iter()
                .map(|block| {
                    batches
                        .iter()
                        .map(|b| {
                            stalled_tile_cycles(
                                tile_cycles(block),
                                b.active() * active_subarrays,
                                banks,
                            )
                        })
                        .sum::<u64>()
                })
                .sum::<u64>()
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_partition_the_interior() {
        let strips = row_strips(102, 8);
        assert_eq!(strips.len(), 8);
        assert_eq!(strips[0].out_lo, 1);
        assert_eq!(strips.last().unwrap().out_hi, 101);
        let total: usize = strips.iter().map(RowRange::height).sum();
        assert_eq!(total, 100);
        // Heights differ by at most one: 100 = 4*13 + 4*12.
        assert_eq!(strips[0].height(), 13);
        assert_eq!(strips[7].height(), 12);
        // Contiguity.
        for w in strips.windows(2) {
            assert_eq!(w[0].out_hi, w[1].out_lo);
        }
    }

    #[test]
    fn strips_capped_by_interior_height() {
        let strips = row_strips(5, 8);
        assert_eq!(strips.len(), 3, "only 3 interior rows");
        assert!(strips.iter().all(|s| s.height() == 1));
    }

    #[test]
    fn blocks_bounded_by_fifo_depth() {
        let strip = RowRange {
            out_lo: 1,
            out_hi: 151,
        };
        let blocks = row_blocks(strip, 64);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].height(), 64);
        assert_eq!(blocks[1].height(), 64);
        assert_eq!(blocks[2].height(), 22);
        assert_eq!(blocks[2].out_hi, 151);
    }

    #[test]
    fn single_block_when_strip_fits() {
        let strip = RowRange {
            out_lo: 1,
            out_hi: 11,
        };
        let blocks = row_blocks(strip, 64);
        assert_eq!(blocks, vec![strip]);
    }

    #[test]
    fn col_batches_cover_all_columns() {
        let batches = col_batches(100, 64);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0], ColBatch { c0: 0, c1: 64 });
        assert_eq!(batches[1], ColBatch { c0: 64, c1: 100 });
        assert_eq!(batches[1].active(), 36);
    }

    #[test]
    fn streamed_rows_add_halo() {
        let r = RowRange {
            out_lo: 1,
            out_hi: 99,
        };
        assert_eq!(r.streamed_rows(), 100);
        assert_eq!(tile_cycles(r), 101, "paper: 100 rows + NULL cycle");
    }

    #[test]
    fn stall_model_matches_bank_math() {
        assert_eq!(stalled_tile_cycles(100, 32, 32), 100, "fully banked");
        assert_eq!(stalled_tile_cycles(100, 64, 32), 200, "64 PEs on 32 banks");
        assert_eq!(
            stalled_tile_cycles(100, 80, 32),
            250,
            "fractional oversubscription"
        );
        assert_eq!(stalled_tile_cycles(100, 1, 32), 100);
        assert_eq!(
            stalled_tile_cycles(100, 0, 32),
            100,
            "NULL cycles still tick"
        );
        assert_eq!(stalled_tile_cycles(3, 65, 32), 7, "rounds up");
    }

    #[test]
    fn iteration_cycles_paper_example_shape() {
        // Fig. 6: a 1x3 chain on a 100x100 grid, no FIFO-depth blocking
        // (depth >= 98), no bank limits: ceil(100/3)=34 batches of
        // (98 + 2 + 1) = 101 cycles.
        let cycles = iteration_compute_cycles(100, 100, 1, 3, 1_000, 1_000);
        assert_eq!(cycles, 34 * 101);
    }

    #[test]
    fn elastic_helps_tall_thin_grids() {
        // 10_000 x 20 grid on 64 PEs: one 1x64 chain wastes 44 PEs;
        // eight 1x8 chains split the rows.
        let wide = iteration_compute_cycles(10_000, 20, 1, 64, 64, 64);
        let split = iteration_compute_cycles(10_000, 20, 8, 8, 64, 64);
        assert!(
            split * 2 < wide,
            "8x(1x8) ({split}) should be >2x faster than 1x64 ({wide})"
        );
    }

    #[test]
    fn bank_conflicts_double_default_config_cycles() {
        // 64 concurrent PEs on 32 banks: factor 2.
        let fast = iteration_compute_cycles(100, 100, 1, 64, 64, 64);
        let stalled = iteration_compute_cycles(100, 100, 1, 64, 64, 32);
        assert!(stalled > fast);
        assert!(stalled <= 2 * fast);
    }

    #[test]
    fn more_subarrays_raise_concurrency_pressure() {
        // With 8 subarrays of width 8, full batches have 64 concurrent
        // accesses — same pressure as one 1x64 chain.
        let a = iteration_compute_cycles(1_000, 1_000, 8, 8, 64, 32);
        let b = iteration_compute_cycles(1_000, 1_000, 1, 64, 64, 32);
        // Both stall by 2x on full batches; totals are comparable.
        let ratio = a as f64 / b as f64;
        assert!(ratio > 0.5 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "interior")]
    fn strips_need_interior() {
        let _ = row_strips(2, 1);
    }
}
