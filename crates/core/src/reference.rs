//! Software reference of the *hardware* update semantics.
//!
//! For the Jacobi method, FDMAX's results are bit-identical to
//! [`fdm::solver::sweep_jacobi`] — no reference needed. For the Hybrid
//! method the hardware forwards the freshly assembled output through the
//! `R_out -> R_z-2` mux, which is impossible at two kinds of seams:
//!
//! * the **first output row of each row block** (nothing was assembled the
//!   cycle before), including the first row of each subarray's strip;
//! * **column-batch seam columns** (the last column of each full batch):
//!   their outputs leave the chain incomplete and are only finished later
//!   by the `HaloAdders`, so they cannot be forwarded.
//!
//! At those points the operand falls back to the previous iteration's
//! value (Jacobi-style). [`hybrid_hw_sweep`] reproduces exactly these
//! semantics in plain software, so the cycle-accurate simulator can be
//! tested for bitwise agreement in every elastic configuration. To run
//! these sweeps iteration by iteration through the generic engine
//! driver, use [`crate::engine::HwReferenceEngine`].

use crate::mapping::{row_blocks, row_strips, RowRange};
use fdm::grid::Grid2D;
use fdm::kernels::{hybrid_hw_row, OffsetRow};
use fdm::pde::OffsetField;
use fdm::precision::Scalar;
use fdm::stencil::FivePointStencil;

/// `true` when column `j` is a column-batch seam for chains of `width`:
/// the last column of a *full* batch, whose output completes in the
/// `HaloAdders` of the following batch.
pub fn is_seam_column(j: usize, width: usize) -> bool {
    (j + 1).is_multiple_of(width)
}

/// One Hybrid sweep with hardware seam semantics.
///
/// `strips` are the row strips of the elastic decomposition (from
/// [`row_strips`]); `sub_fifo_depth` bounds the row blocks; `width` is the
/// subarray chain width. Reads `cur` (and `prev` for wave-style offsets),
/// writes interior points of `next`, returns the f64 sum of squared
/// updates.
///
/// # Panics
///
/// Panics if shapes differ or a `ScaledPrevField` offset is used without
/// `prev`.
#[allow(clippy::too_many_arguments)]
pub fn hybrid_hw_sweep<T: Scalar>(
    stencil: &FivePointStencil<T>,
    offset: &OffsetField<T>,
    cur: &Grid2D<T>,
    prev: Option<&Grid2D<T>>,
    next: &mut Grid2D<T>,
    strips: &[RowRange],
    sub_fifo_depth: usize,
    width: usize,
) -> f64 {
    assert_eq!(cur.rows(), next.rows(), "cur/next shape mismatch");
    assert_eq!(cur.cols(), next.cols(), "cur/next shape mismatch");
    let cols = cur.cols();
    let mut diff2 = 0.0f64;
    let data = next.as_mut_slice();
    for strip in strips {
        for block in row_blocks(*strip, sub_fifo_depth) {
            for i in block.out_lo..block.out_hi {
                let b = OffsetRow::for_row(offset, prev, i);
                // Split `next` so the freshly assembled row `i - 1` is
                // readable while row `i` is the output.
                let (before, rest) = data.split_at_mut(i * cols);
                let new_up = &before[(i - 1) * cols..];
                let out = &mut rest[..cols];
                diff2 += hybrid_hw_row(
                    stencil,
                    cur.row(i - 1),
                    new_up,
                    cur.row(i),
                    cur.row(i + 1),
                    b,
                    out,
                    i == block.out_lo,
                    width,
                );
            }
        }
    }
    diff2
}

/// Convenience wrapper: hardware-Hybrid semantics for a given elastic
/// decomposition of a grid.
#[allow(clippy::too_many_arguments)]
pub fn hybrid_hw_sweep_elastic<T: Scalar>(
    stencil: &FivePointStencil<T>,
    offset: &OffsetField<T>,
    cur: &Grid2D<T>,
    prev: Option<&Grid2D<T>>,
    next: &mut Grid2D<T>,
    subarrays: usize,
    width: usize,
    sub_fifo_depth: usize,
) -> f64 {
    let strips = row_strips(cur.rows(), subarrays);
    hybrid_hw_sweep(
        stencil,
        offset,
        cur,
        prev,
        next,
        &strips,
        sub_fifo_depth,
        width,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdm::solver::sweep_hybrid;

    fn stencil() -> FivePointStencil<f32> {
        FivePointStencil::new(0.25, 0.25, 0.0)
    }

    fn test_grid(n: usize) -> Grid2D<f32> {
        Grid2D::from_fn(n, n, |i, j| {
            if i == 0 {
                1.0
            } else {
                ((i * 13 + j * 7) % 5) as f32 * 0.2
            }
        })
    }

    #[test]
    fn seam_columns_for_width_4() {
        assert!(!is_seam_column(1, 4));
        assert!(is_seam_column(3, 4));
        assert!(is_seam_column(7, 4));
        assert!(!is_seam_column(4, 4));
    }

    #[test]
    fn no_seams_degenerates_to_software_hybrid() {
        // One strip, one block, chain wider than the grid: no seams at
        // all, so the hardware semantics equal plain sweep_hybrid.
        let cur = test_grid(10);
        let mut a = cur.clone();
        let mut b = cur.clone();
        let d1 = sweep_hybrid(&stencil(), &OffsetField::None, &cur, None, &mut a);
        let d2 = hybrid_hw_sweep_elastic(
            &stencil(),
            &OffsetField::None,
            &cur,
            None,
            &mut b,
            1,
            64,
            512,
        );
        assert_eq!(a, b);
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn seams_fall_back_to_jacobi_operands() {
        let cur = test_grid(10);
        let mut hw = cur.clone();
        // Width 4: columns 3 and 7 are seams.
        hybrid_hw_sweep_elastic(
            &stencil(),
            &OffsetField::None,
            &cur,
            None,
            &mut hw,
            1,
            4,
            512,
        );
        let mut sw = cur.clone();
        sweep_hybrid(&stencil(), &OffsetField::None, &cur, None, &mut sw);
        // Row 1 has no fresh top anywhere: identical.
        for j in 1..9 {
            assert_eq!(hw[(1, j)], sw[(1, j)]);
        }
        // Deeper rows: seam columns differ from software hybrid wherever
        // the top value changed, non-seam columns agree.
        let mut seam_diffs = 0;
        for i in 2..9 {
            for j in 1..9 {
                if is_seam_column(j, 4) {
                    if hw[(i, j)] != sw[(i, j)] {
                        seam_diffs += 1;
                    }
                } else {
                    assert_eq!(
                        hw[(i, j)],
                        sw[(i, j)],
                        "non-seam ({i},{j}) must match software hybrid"
                    );
                }
            }
        }
        assert!(seam_diffs > 0, "seams should actually differ on this grid");
    }

    #[test]
    fn strip_boundaries_fall_back_to_jacobi_operands() {
        let cur = test_grid(12);
        let mut one = cur.clone();
        let mut four = cur.clone();
        hybrid_hw_sweep_elastic(
            &stencil(),
            &OffsetField::None,
            &cur,
            None,
            &mut one,
            1,
            64,
            512,
        );
        hybrid_hw_sweep_elastic(
            &stencil(),
            &OffsetField::None,
            &cur,
            None,
            &mut four,
            4,
            16,
            128,
        );
        // Different strip decomposition changes values below the first
        // strip boundary.
        assert_ne!(one, four);
    }

    #[test]
    fn block_seams_match_strip_seams() {
        // One strip with fifo depth 3 equals three strips of height 3 plus
        // remainder — identical block boundaries, identical results.
        let cur = test_grid(11); // 9 interior rows
        let mut blocked = cur.clone();
        hybrid_hw_sweep_elastic(
            &stencil(),
            &OffsetField::None,
            &cur,
            None,
            &mut blocked,
            1,
            64,
            3,
        );
        let mut stripped = cur.clone();
        hybrid_hw_sweep_elastic(
            &stencil(),
            &OffsetField::None,
            &cur,
            None,
            &mut stripped,
            3,
            64,
            512,
        );
        assert_eq!(blocked, stripped);
    }
}
