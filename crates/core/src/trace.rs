//! Cycle-level tracing of a subarray — the machinery behind the Fig. 6
//! walkthrough and a debugging aid for the halo/FIFO protocol.
//!
//! A [`Trace`] attached to [`run_block_traced`](crate::array::Subarray::run_block_traced) records one
//! [`TraceEvent`] per microarchitectural action per cycle: stage-1 input
//! consumption, stage-2 assemblies (complete and incomplete), FIFO
//! pushes/pops and `HaloAdder` completions. The text renderer prints the
//! same story the paper tells cycle by cycle in §5.

use core::fmt;

/// One microarchitectural action.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A new column batch begins.
    BatchStart {
        /// First column of the batch.
        c0: usize,
        /// One past the last column.
        c1: usize,
    },
    /// Stage 1: a PE consumed an input element from `CurBuffer`.
    Stage1 {
        /// PE index within the chain.
        pe: usize,
        /// Grid column the PE owns this batch.
        col: usize,
        /// Grid row of the consumed element.
        row: usize,
        /// The element's value.
        value: f32,
    },
    /// The NULL flush cycle (PEs read zeros; §5 Cycle #100).
    NullCycle,
    /// Stage 2: a complete final product was assembled.
    Stage2Complete {
        /// PE index.
        pe: usize,
        /// Output column.
        col: usize,
        /// Output (centre) row.
        row: usize,
        /// The assembled `U^{k+1}` value.
        value: f32,
        /// Whether it was written to `NextBuffer` (interior point).
        kept: bool,
    },
    /// Stage 2 at the last PE: incomplete product pushed to pFIFO.
    PfifoPush {
        /// Output column awaiting its right partial.
        col: usize,
        /// Output row.
        row: usize,
        /// The incomplete value `col_product + p_left`.
        value: f32,
    },
    /// The last PE forwarded its row-wise partial to nFIFO.
    NfifoPush {
        /// The column whose *right neighbour* will need this partial.
        col: usize,
        /// Centre row of the partial.
        row: usize,
        /// `w_h * u[row][col]`.
        value: f32,
    },
    /// The first PE popped its left partial from nFIFO.
    NfifoPop {
        /// Consuming column.
        col: usize,
        /// Centre row.
        row: usize,
        /// The popped partial.
        value: f32,
    },
    /// A `HaloAdder` completed the previous batch's last column.
    HaloComplete {
        /// The completed column.
        col: usize,
        /// Output row.
        row: usize,
        /// The final value written to `NextBuffer`.
        value: f32,
    },
}

/// A recorded cycle: its index within the block and its events.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CycleRecord {
    /// Cycle number, counted from the start of the traced block.
    pub cycle: u64,
    /// Events in issue order.
    pub events: Vec<TraceEvent>,
}

/// A cycle-by-cycle recording of one subarray block execution.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    cycles: Vec<CycleRecord>,
    current: CycleRecord,
    started: bool,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the start of a new cycle.
    pub(crate) fn begin_cycle(&mut self) {
        if self.started {
            let cycle = self.current.cycle;
            let finished = core::mem::take(&mut self.current);
            self.cycles.push(finished);
            self.current.cycle = cycle + 1;
        }
        self.started = true;
    }

    /// Records an event in the current cycle.
    pub(crate) fn record(&mut self, event: TraceEvent) {
        self.current.events.push(event);
    }

    /// Finishes recording. Cycle numbering continues if the trace is
    /// reused for another block.
    pub(crate) fn finish(&mut self) {
        if self.started {
            let next_cycle = self.current.cycle + 1;
            let finished = core::mem::take(&mut self.current);
            self.cycles.push(finished);
            self.current.cycle = next_cycle;
            self.started = false;
        }
    }

    /// The recorded cycles.
    pub fn cycles(&self) -> &[CycleRecord] {
        &self.cycles
    }

    /// All events of every cycle, flattened in order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.cycles.iter().flat_map(|c| c.events.iter())
    }

    /// Number of recorded cycles.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.cycles {
            writeln!(f, "Cycle #{}:", c.cycle)?;
            for e in &c.events {
                match e {
                    TraceEvent::BatchStart { c0, c1 } => {
                        writeln!(f, "  == switch to column batch [{c0}, {c1}) ==")?;
                    }
                    TraceEvent::Stage1 {
                        pe,
                        col,
                        row,
                        value,
                    } => writeln!(
                        f,
                        "  PE{pe}: read u[{row},{col}] = {value:.4} from CurBuffer"
                    )?,
                    TraceEvent::NullCycle => {
                        writeln!(f, "  NULL cycle: PEs read zeros to flush the pipeline")?;
                    }
                    TraceEvent::Stage2Complete {
                        pe,
                        col,
                        row,
                        value,
                        kept,
                    } => writeln!(
                        f,
                        "  PE{pe}: assembled u'[{row},{col}] = {value:.4}{}",
                        if *kept {
                            " -> NextBuffer"
                        } else {
                            " (boundary, discarded)"
                        }
                    )?,
                    TraceEvent::PfifoPush { col, row, value } => writeln!(
                        f,
                        "  last PE: incomplete u'[{row},{col}] = {value:.4} -> pFIFO"
                    )?,
                    TraceEvent::NfifoPush { col, row, value } => {
                        writeln!(f, "  last PE: partial p[{row},{col}] = {value:.4} -> nFIFO")?;
                    }
                    TraceEvent::NfifoPop { col, row, value } => writeln!(
                        f,
                        "  first PE: popped partial {value:.4} from nFIFO for u'[{row},{col}]"
                    )?,
                    TraceEvent::HaloComplete { col, row, value } => writeln!(
                        f,
                        "  HaloAdder: completed u'[{row},{col}] = {value:.4} -> NextBuffer"
                    )?,
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::{OffsetSource, Subarray};
    use crate::mapping::{col_batches, RowRange};
    use crate::pe::PeConfig;
    use fdm::grid::Grid2D;
    use fdm::stencil::FivePointStencil;
    use memmodel::EventCounters;

    fn traced_run(n: usize, width: usize) -> (Trace, Grid2D<f32>) {
        let cur = Grid2D::from_fn(n, n, |i, j| if i == 0 { 1.0 } else { (j % 3) as f32 * 0.5 });
        let mut next = cur.clone();
        let cfg = PeConfig::new(FivePointStencil::new(0.25f32, 0.25, 0.0), false, false);
        let mut sa = Subarray::new(width, cfg, 64);
        let mut counters = EventCounters::new();
        let mut trace = Trace::new();
        sa.run_block_traced(
            RowRange {
                out_lo: 1,
                out_hi: n - 1,
            },
            &col_batches(n, width),
            &cur,
            &mut next,
            OffsetSource::None,
            &mut counters,
            Some(&mut trace),
        );
        (trace, next)
    }

    #[test]
    fn trace_counts_cycles_like_the_mapping() {
        // One 6x6 grid on a 3-wide chain: two batches of (4+2+1) cycles.
        let (trace, _) = traced_run(6, 3);
        assert_eq!(trace.len(), 2 * 7);
    }

    #[test]
    fn trace_contains_the_protocol_in_order() {
        let (trace, _) = traced_run(6, 3);
        let mut saw_batch_starts = 0;
        let mut saw_null = 0;
        let mut pfifo_pushes = 0;
        let mut halo_completes = 0;
        let mut nfifo_pops = 0;
        for e in trace.events() {
            match e {
                TraceEvent::BatchStart { .. } => saw_batch_starts += 1,
                TraceEvent::NullCycle => saw_null += 1,
                TraceEvent::PfifoPush { .. } => pfifo_pushes += 1,
                TraceEvent::HaloComplete { .. } => halo_completes += 1,
                TraceEvent::NfifoPop { .. } => nfifo_pops += 1,
                _ => {}
            }
        }
        assert_eq!(saw_batch_starts, 2);
        assert_eq!(saw_null, 2, "one NULL cycle per batch");
        assert_eq!(
            pfifo_pushes,
            2 * 4,
            "one incomplete per output row per batch"
        );
        assert_eq!(halo_completes, 4, "batch 2 completes batch 1's last column");
        assert_eq!(nfifo_pops, 4, "only batch 2 pops the seam partials");
    }

    #[test]
    fn traced_and_untraced_runs_agree() {
        let n = 7;
        let (_, traced_next) = traced_run(n, 3);
        // Untraced reference.
        let cur = Grid2D::from_fn(n, n, |i, j| if i == 0 { 1.0 } else { (j % 3) as f32 * 0.5 });
        let mut next = cur.clone();
        let cfg = PeConfig::new(FivePointStencil::new(0.25f32, 0.25, 0.0), false, false);
        let mut sa = Subarray::new(3, cfg, 64);
        let mut counters = EventCounters::new();
        sa.run_block(
            RowRange {
                out_lo: 1,
                out_hi: n - 1,
            },
            &col_batches(n, 3),
            &cur,
            &mut next,
            OffsetSource::None,
            &mut counters,
        );
        assert_eq!(traced_next, next, "tracing must not perturb results");
    }

    #[test]
    fn halo_events_carry_final_values() {
        // Every HaloComplete value must equal what landed in `next`.
        let (trace, next) = traced_run(8, 3);
        let mut checked = 0;
        for e in trace.events() {
            if let TraceEvent::HaloComplete { col, row, value } = e {
                assert_eq!(next[(*row, *col)], *value);
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn display_renders_the_walkthrough() {
        let (trace, _) = traced_run(5, 2);
        let text = trace.to_string();
        assert!(text.contains("Cycle #0"));
        assert!(text.contains("CurBuffer"));
        assert!(text.contains("NULL cycle"));
        assert!(text.contains("pFIFO"));
        assert!(text.contains("HaloAdder"));
    }

    #[test]
    fn empty_trace_behaviour() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.to_string(), "");
    }
}
