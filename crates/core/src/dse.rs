//! Design-space exploration.
//!
//! The paper: "The simulator allows us to quickly explore the design
//! space of FDMAX accelerator" (§1/§6.2). This module sweeps the main
//! structural knobs — PE-array size, buffer banks, FIFO depth, DRAM
//! bandwidth — through the validated performance, energy and layout
//! models, and extracts the Pareto frontier of performance versus area
//! (or versus power).

use crate::config::FdmaxConfig;
use crate::elastic::ElasticConfig;
use crate::perf_model::{iteration_counters, iteration_estimate};
use crate::resilience::FdmaxError;
use core::fmt;
use memmodel::energy::{EnergyBreakdown, OpEnergies};
use memmodel::layout::LayoutReport;

/// One evaluated design.
#[derive(Clone, Debug, PartialEq)]
pub struct DesignPoint {
    /// The configuration.
    pub config: FdmaxConfig,
    /// The elastic decomposition the planner chose for the workload.
    pub elastic: ElasticConfig,
    /// Effective cycles per iteration on the probe workload.
    pub cycles_per_iteration: u64,
    /// Interior-point updates per second.
    pub updates_per_second: f64,
    /// Silicon area (layout model), mm².
    pub area_mm2: f64,
    /// Design power (layout model), mW.
    pub power_mw: f64,
    /// Event energy per iteration, joules.
    pub energy_per_iteration_j: f64,
}

impl DesignPoint {
    /// Performance per area, updates/s/mm².
    pub fn perf_per_area(&self) -> f64 {
        self.updates_per_second / self.area_mm2
    }

    /// Energy per interior-point update, picojoules.
    pub fn energy_per_update_pj(&self, interior: u64) -> f64 {
        self.energy_per_iteration_j * 1e12 / interior as f64
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} PEs, {} banks, {}-deep FIFOs, {:.0} GB/s: {:.2} Gupd/s, {:.3} mm2, {:.0} mW",
            self.config.pe_rows,
            self.config.pe_cols,
            self.config.buffer_banks,
            self.config.fifo_depth,
            self.config.dram_gb_s,
            self.updates_per_second / 1e9,
            self.area_mm2,
            self.power_mw
        )
    }
}

/// The workload a sweep is evaluated on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbeWorkload {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Whether the equation reads an offset operand.
    pub offset_present: bool,
    /// Whether the stencil has a self term.
    pub self_term: bool,
}

impl ProbeWorkload {
    /// The scalability-study workload: Laplace 10K x 10K.
    pub fn laplace_10k() -> Self {
        ProbeWorkload {
            rows: 10_000,
            cols: 10_000,
            offset_present: false,
            self_term: false,
        }
    }

    /// Interior points.
    pub fn interior(&self) -> u64 {
        ((self.rows - 2) * (self.cols - 2)) as u64
    }
}

/// Evaluates one configuration on a workload.
///
/// # Panics
///
/// Panics if the configuration is invalid or the grid has no interior;
/// [`try_evaluate`] is the non-panicking variant the sweep uses.
pub fn evaluate(config: &FdmaxConfig, workload: &ProbeWorkload) -> DesignPoint {
    match try_evaluate(config, workload) {
        Ok(p) => p,
        Err(e) => panic!("invalid design point in sweep: {e}"),
    }
}

/// Fallible [`evaluate`]: lints the deployment first and refuses
/// Error-level configurations, so design-space sweeps skip illegal
/// points instead of panicking deep inside the models.
///
/// # Errors
///
/// [`FdmaxError::Lint`] carrying the full report when the
/// elaboration-time analyzer finds Error-level diagnostics.
pub fn try_evaluate(
    config: &FdmaxConfig,
    workload: &ProbeWorkload,
) -> Result<DesignPoint, FdmaxError> {
    let report = crate::lint::lint(&crate::lint::LintTarget::planned(
        *config,
        workload.rows,
        workload.cols,
        crate::accelerator::HwUpdateMethod::Jacobi,
    ));
    if report.has_errors() {
        return Err(FdmaxError::Lint { report });
    }
    let elastic = ElasticConfig::try_plan(config, workload.rows, workload.cols)?;
    let est = iteration_estimate(
        config,
        &elastic,
        workload.rows,
        workload.cols,
        workload.offset_present,
    );
    let counters = iteration_counters(
        config,
        &elastic,
        workload.rows,
        workload.cols,
        workload.offset_present,
        workload.self_term,
    );
    let layout = LayoutReport::new(&config.layout_params());
    let seconds_per_iter = est.effective_cycles() as f64 / config.clock_hz;
    let energy = EnergyBreakdown::from_counters(&counters, &OpEnergies::fdmax_32nm());
    Ok(DesignPoint {
        config: *config,
        elastic,
        cycles_per_iteration: est.effective_cycles(),
        updates_per_second: workload.interior() as f64 / seconds_per_iter,
        area_mm2: layout.total_area_mm2(),
        power_mw: layout.total_power_mw(),
        energy_per_iteration_j: energy.total_joules()
            + layout.total_power_mw() * 1e-3 * seconds_per_iter,
    })
}

/// Sweeps the cross product of the given knob values. Lint-rejected
/// configurations (zero knob values and other Error-level diagnostics)
/// are skipped, not simulated and not panicked on.
pub fn sweep(
    workload: &ProbeWorkload,
    array_sizes: &[usize],
    banks: &[usize],
    fifo_depths: &[usize],
    dram_gb_s: &[f64],
) -> Vec<DesignPoint> {
    let mut points = Vec::new();
    for &s in array_sizes {
        for &b in banks {
            for &fd in fifo_depths {
                for &bw in dram_gb_s {
                    let mut cfg = FdmaxConfig::square(s);
                    cfg.buffer_banks = b;
                    cfg.fifo_depth = fd;
                    cfg.dram_gb_s = bw;
                    if let Ok(point) = try_evaluate(&cfg, workload) {
                        points.push(point);
                    }
                }
            }
        }
    }
    points
}

/// Extracts the Pareto frontier maximizing performance while minimizing
/// `cost` (e.g. area or power). Returned sorted by ascending cost.
pub fn pareto_frontier(
    points: &[DesignPoint],
    cost: impl Fn(&DesignPoint) -> f64,
) -> Vec<DesignPoint> {
    let mut sorted: Vec<&DesignPoint> = points.iter().collect();
    sorted.sort_by(|a, b| {
        cost(a).partial_cmp(&cost(b)).expect("finite costs").then(
            b.updates_per_second
                .partial_cmp(&a.updates_per_second)
                .expect("finite perf"),
        )
    });
    let mut frontier: Vec<DesignPoint> = Vec::new();
    let mut best_perf = f64::NEG_INFINITY;
    for p in sorted {
        if p.updates_per_second > best_perf {
            best_perf = p.updates_per_second;
            frontier.push(p.clone());
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_probe() -> ProbeWorkload {
        ProbeWorkload {
            rows: 500,
            cols: 500,
            offset_present: false,
            self_term: false,
        }
    }

    #[test]
    fn evaluate_default_configuration() {
        let p = evaluate(&FdmaxConfig::paper_default(), &small_probe());
        assert!(p.updates_per_second > 1e9, "multi-Gupd/s expected");
        assert!((p.area_mm2 - 0.987).abs() < 0.01);
        assert!(p.energy_per_iteration_j > 0.0);
        assert!(p.perf_per_area() > 0.0);
        assert!(p.energy_per_update_pj(small_probe().interior()) > 0.0);
        assert!(p.to_string().contains("8x8"));
    }

    #[test]
    fn sweep_covers_the_cross_product() {
        let pts = sweep(&small_probe(), &[4, 8], &[16, 32], &[64], &[128.0]);
        assert_eq!(pts.len(), 4);
        // Area grows with the array.
        let a4 = pts.iter().find(|p| p.config.pe_rows == 4).unwrap();
        let a8 = pts.iter().find(|p| p.config.pe_rows == 8).unwrap();
        assert!(a8.area_mm2 > a4.area_mm2);
    }

    #[test]
    fn pareto_frontier_is_monotone() {
        let pts = sweep(
            &small_probe(),
            &[4, 6, 8, 10],
            &[8, 32, 64],
            &[64],
            &[128.0, 256.0],
        );
        let frontier = pareto_frontier(&pts, |p| p.area_mm2);
        assert!(!frontier.is_empty());
        assert!(frontier.len() <= pts.len());
        for w in frontier.windows(2) {
            assert!(w[0].area_mm2 <= w[1].area_mm2, "sorted by cost");
            assert!(
                w[0].updates_per_second < w[1].updates_per_second,
                "strictly improving performance"
            );
        }
        // Every non-frontier point is dominated.
        for p in &pts {
            let dominated = frontier
                .iter()
                .any(|f| f.area_mm2 <= p.area_mm2 && f.updates_per_second >= p.updates_per_second);
            assert!(dominated, "point {p} escapes the frontier");
        }
    }

    #[test]
    fn bandwidth_only_helps_when_bound() {
        let probe = ProbeWorkload::laplace_10k();
        let mut slow = FdmaxConfig::paper_default();
        slow.dram_gb_s = 16.0;
        let mut fast = FdmaxConfig::paper_default();
        fast.dram_gb_s = 256.0;
        let p_slow = evaluate(&slow, &probe);
        let p_fast = evaluate(&fast, &probe);
        assert!(p_fast.updates_per_second > 2.0 * p_slow.updates_per_second);
        assert_eq!(p_slow.area_mm2, p_fast.area_mm2, "DRAM is off-chip");
    }
}
