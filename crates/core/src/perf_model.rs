//! Closed-form performance model.
//!
//! Reproduces the cycle and traffic accounting of the cycle-accurate
//! simulator analytically, which serves two purposes:
//!
//! 1. the integration tests cross-validate the detailed simulator's event
//!    counts against these formulas on small grids;
//! 2. the benchmark harness extrapolates to grids (10K x 10K) and
//!    iteration counts too large to simulate point-by-point, exactly as
//!    the paper's own evaluation does.
//!
//! The timing law: one iteration's effective cycles =
//! `max(compute cycles with SRAM bank stalls, DRAM streaming cycles)` —
//! DMA double buffering (paper §4.1) hides whichever is smaller. This is
//! what produces the Fig. 9 behaviour: arrays beyond 8x8 gain little at
//! 128 GB/s because the DRAM term dominates.

use crate::config::FdmaxConfig;
use crate::elastic::ElasticConfig;
use crate::mapping::{col_batches, iteration_compute_cycles, row_blocks, row_strips};

/// Per-iteration timing and traffic estimate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IterationEstimate {
    /// Compute cycles including SRAM bank stalls.
    pub compute_cycles: u64,
    /// Compute cycles with unlimited banks (no stalls).
    pub unstalled_cycles: u64,
    /// Cycles DRAM needs to stream this iteration's traffic.
    pub dram_cycles: u64,
    /// Elements read from DRAM this iteration.
    pub dram_read_elements: u64,
    /// Elements written to DRAM this iteration.
    pub dram_write_elements: u64,
    /// PE-side SRAM reads (`CurBuffer` + `OffsetBuffer`).
    pub sram_pe_reads: u64,
    /// PE-side SRAM writes (`NextBuffer`).
    pub sram_pe_writes: u64,
    /// FIFO pushes (nFIFO + pFIFO).
    pub fifo_pushes: u64,
    /// FIFO pops (nFIFO + pFIFO).
    pub fifo_pops: u64,
}

impl IterationEstimate {
    /// Effective cycles: compute and DRAM overlap under double buffering.
    pub fn effective_cycles(&self) -> u64 {
        self.compute_cycles.max(self.dram_cycles)
    }

    /// Cycles attributable to stalls (bank conflicts + DRAM waits).
    pub fn stall_cycles(&self) -> u64 {
        self.effective_cycles() - self.unstalled_cycles
    }

    /// `true` when the iteration is DRAM-bandwidth-bound.
    pub fn is_bandwidth_bound(&self) -> bool {
        self.dram_cycles > self.compute_cycles
    }
}

/// Estimates one iteration of an `rows x cols` problem on `config`
/// decomposed as `elastic`. `offset_present` marks equations with an
/// `OffsetBuffer` operand (Poisson, Wave).
///
/// # Panics
///
/// Panics if the grid has no interior.
pub fn iteration_estimate(
    config: &FdmaxConfig,
    elastic: &ElasticConfig,
    rows: usize,
    cols: usize,
    offset_present: bool,
) -> IterationEstimate {
    assert!(rows >= 3 && cols >= 3, "grid needs an interior");
    let depth = elastic.sub_fifo_depth(config);
    let compute = iteration_compute_cycles(
        rows,
        cols,
        elastic.subarrays,
        elastic.width,
        depth,
        config.buffer_banks,
    );
    let unstalled = iteration_compute_cycles(
        rows,
        cols,
        elastic.subarrays,
        elastic.width,
        depth,
        usize::MAX,
    );

    let strips = row_strips(rows, elastic.subarrays);
    let batches = col_batches(cols, elastic.width).len() as u64;
    let interior = ((rows - 2) * (cols - 2)) as u64;

    // PE-side SRAM traffic: every streamed (row, column) pair is one
    // CurBuffer read; every interior output adds an OffsetBuffer read
    // (when present) and a NextBuffer write.
    let mut cur_reads = 0u64;
    let mut fifo_pushes = 0u64;
    let mut fifo_pops = 0u64;
    for strip in &strips {
        for block in row_blocks(*strip, depth) {
            cur_reads += block.streamed_rows() as u64 * cols as u64;
            let hb = block.height() as u64;
            fifo_pushes += 2 * hb * batches;
            fifo_pops += 2 * hb * (batches - 1);
        }
    }
    let offset_reads = if offset_present { interior } else { 0 };

    // DRAM traffic: the same rows the PEs stream must arrive from DRAM
    // (halo rows of each block are re-fetched), plus the offset field and
    // the interior write-back — unless the grid is resident on chip.
    let (dram_read, dram_write) = if config.grid_fits_on_chip(rows, cols) {
        (0, 0)
    } else {
        (cur_reads + offset_reads, interior)
    };

    let dram_cycles = config.dram().cycles_for_elements(dram_read + dram_write);

    IterationEstimate {
        compute_cycles: compute,
        unstalled_cycles: unstalled,
        dram_cycles,
        dram_read_elements: dram_read,
        dram_write_elements: dram_write,
        sram_pe_reads: cur_reads + offset_reads,
        sram_pe_writes: interior,
        fifo_pushes,
        fifo_pops,
    }
}

/// Exact per-iteration event counts, mirroring the cycle-accurate
/// simulator event for event (the integration tests assert equality).
///
/// `self_term` marks equations with `w_s != 0` (Heat, Wave), which gate
/// the third multiplier on; `offset_present` marks equations with an
/// `OffsetBuffer` operand (Poisson, Wave).
///
/// The returned `cycles`/`stall_cycles` are the iteration's effective and
/// stall cycles; DRAM traffic and the DMA-side SRAM fills/drains are
/// included.
pub fn iteration_counters(
    config: &FdmaxConfig,
    elastic: &ElasticConfig,
    rows: usize,
    cols: usize,
    offset_present: bool,
    self_term: bool,
) -> memmodel::EventCounters {
    use memmodel::EventCounters;
    let est = iteration_estimate(config, elastic, rows, cols, offset_present);
    let depth = elastic.sub_fifo_depth(config);
    let strips = row_strips(rows, elastic.subarrays);
    let batches = col_batches(cols, elastic.width);

    let mut c = EventCounters::new();
    let s1_mul = 2 + u64::from(self_term);
    let s1_add = 1 + u64::from(self_term) + u64::from(offset_present);
    let s1_rf_read = 5 + u64::from(self_term);

    for strip in &strips {
        for block in row_blocks(*strip, depth) {
            let hb = block.height() as u64;
            for b in &batches {
                let active = b.active() as u64;
                // Stage 1: one call per streamed row per active PE.
                let s1_calls = block.streamed_rows() as u64 * active;
                c.fp_mul += s1_calls * s1_mul;
                c.fp_add += s1_calls * s1_add;
                c.rf_read += s1_calls * s1_rf_read;
                c.rf_write += s1_calls * 4;
                c.sram_read += s1_calls; // CurBuffer
                if offset_present {
                    // One OffsetBuffer read per valid centre on an
                    // interior column.
                    let interior_cols = (b.c1.min(cols - 1)).saturating_sub(b.c0.max(1)) as u64;
                    c.sram_read += hb * interior_cols;
                }
                // Per valid centre row:
                // HaloAdder completes the previous batch's last column.
                if b.c0 > 0 {
                    c.fifo_pop += hb; // pFIFO
                    c.fp_add += hb; // completion add
                    if b.c0 > 1 {
                        c.sram_write += hb;
                        c.fp_add += 2 * hb; // ECU diff sub + accumulate
                        c.fp_mul += hb; // ECU diff square
                    }
                    c.fifo_pop += hb; // nFIFO pop by the first PE
                }
                // Complete stage-2 assemblies (all but the last PE).
                let complete = active - 1;
                c.fp_add += hb * complete * 2;
                c.rf_read += hb * complete;
                c.rf_write += hb * complete;
                // Kept completes run the DIFF logic and write NextBuffer.
                let kept: u64 = (b.c0..b.c1 - 1)
                    .filter(|&col| col >= 1 && col < cols - 1)
                    .count() as u64;
                c.sram_write += hb * kept;
                c.fp_add += hb * kept * 2;
                c.fp_mul += hb * kept;
                c.rf_read += hb * kept;
                c.rf_write += hb * kept;
                // The last PE's incomplete product and FIFO traffic.
                c.fp_add += hb;
                c.rf_read += hb;
                c.rf_write += hb;
                c.fifo_push += 2 * hb; // pFIFO incomplete + nFIFO partial
            }
        }
    }

    // Timing and the DMA side of the buffers.
    c.cycles = est.effective_cycles();
    c.stall_cycles = est.stall_cycles();
    c.dram_read = est.dram_read_elements;
    c.dram_write = est.dram_write_elements;
    c.sram_write += est.dram_read_elements;
    c.sram_read += est.dram_write_elements;
    c
}

/// A whole solve: `iterations` identical iterations plus the initial load
/// and final drain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolveEstimate {
    /// The per-iteration estimate.
    pub per_iteration: IterationEstimate,
    /// Number of iterations.
    pub iterations: u64,
    /// Total cycles including the initial grid load and final store.
    pub total_cycles: u64,
    /// Wall-clock seconds at the configured clock.
    pub seconds: f64,
}

/// Estimates a complete solve.
pub fn solve_estimate(
    config: &FdmaxConfig,
    elastic: &ElasticConfig,
    rows: usize,
    cols: usize,
    offset_present: bool,
    iterations: u64,
) -> SolveEstimate {
    let per = iteration_estimate(config, elastic, rows, cols, offset_present);
    let grid = (rows * cols) as u64;
    let boot = grid + if offset_present { grid } else { 0 };
    let boot_cycles = config.dram().cycles_for_elements(boot);
    let drain_cycles = config.dram().cycles_for_elements(grid);
    let total = per.effective_cycles() * iterations + boot_cycles + drain_cycles;
    SolveEstimate {
        per_iteration: per,
        iterations,
        total_cycles: total,
        seconds: total as f64 / config.clock_hz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_pair() -> (FdmaxConfig, ElasticConfig) {
        let cfg = FdmaxConfig::paper_default();
        let e = ElasticConfig {
            subarrays: 1,
            width: 64,
        };
        (cfg, e)
    }

    #[test]
    fn on_chip_grid_has_no_dram_traffic() {
        let (cfg, e) = default_pair();
        let est = iteration_estimate(&cfg, &e, 32, 32, false);
        assert_eq!(est.dram_read_elements, 0);
        assert_eq!(est.dram_write_elements, 0);
        assert_eq!(est.dram_cycles, 0);
        assert!(!est.is_bandwidth_bound());
        assert_eq!(est.effective_cycles(), est.compute_cycles);
    }

    #[test]
    fn streamed_grid_traffic_matches_formula() {
        let (cfg, e) = default_pair();
        // 100x100, 1x64, sub-FIFO depth 512: one block of 98 output rows.
        let est = iteration_estimate(&cfg, &e, 100, 100, false);
        assert_eq!(est.sram_pe_reads, 100 * 100, "one block streams all rows");
        assert_eq!(est.sram_pe_writes, 98 * 98);
        assert_eq!(est.dram_read_elements, 100 * 100);
        assert_eq!(est.dram_write_elements, 98 * 98);
        // Two batches (64 + 36 columns), 98 pushes x2 FIFOs each.
        assert_eq!(est.fifo_pushes, 2 * 98 * 2);
        assert_eq!(est.fifo_pops, 2 * 98);
    }

    #[test]
    fn offset_adds_reads() {
        let (cfg, e) = default_pair();
        let without = iteration_estimate(&cfg, &e, 100, 100, false);
        let with = iteration_estimate(&cfg, &e, 100, 100, true);
        assert_eq!(
            with.sram_pe_reads - without.sram_pe_reads,
            98 * 98,
            "one offset read per interior output"
        );
        assert!(with.dram_cycles > without.dram_cycles);
    }

    #[test]
    fn large_grids_are_bandwidth_bound_at_low_dram_bandwidth() {
        let (mut cfg, e) = default_pair();
        cfg.dram_gb_s = 16.0; // the low end of the Fig. 9(a) sweep
        let est = iteration_estimate(&cfg, &e, 2_000, 2_000, false);
        assert!(
            est.is_bandwidth_bound(),
            "compute {} vs dram {}",
            est.compute_cycles,
            est.dram_cycles
        );
        // At the paper's default 128 GB/s the same problem is
        // compute/SRAM bound instead — the §6.1 balance.
        let (cfg, e) = default_pair();
        let est = iteration_estimate(&cfg, &e, 2_000, 2_000, false);
        assert!(!est.is_bandwidth_bound());
    }

    #[test]
    fn bandwidth_sweep_reduces_dram_cycles() {
        let e = ElasticConfig {
            subarrays: 1,
            width: 64,
        };
        let mut slow = FdmaxConfig::paper_default();
        slow.dram_gb_s = 16.0;
        let mut fast = FdmaxConfig::paper_default();
        fast.dram_gb_s = 256.0;
        let est_slow = iteration_estimate(&slow, &e, 1_000, 1_000, false);
        let est_fast = iteration_estimate(&fast, &e, 1_000, 1_000, false);
        assert!(est_slow.dram_cycles > 10 * est_fast.dram_cycles);
        assert!(est_slow.effective_cycles() > est_fast.effective_cycles());
    }

    #[test]
    fn stalls_counted_against_unstalled_baseline() {
        let (cfg, e) = default_pair();
        // Full 64-wide batches on 32 banks: compute stalls by 2x.
        let est = iteration_estimate(&cfg, &e, 100, 100, false);
        assert!(est.compute_cycles > est.unstalled_cycles);
        assert_eq!(
            est.stall_cycles(),
            est.effective_cycles() - est.unstalled_cycles
        );
    }

    #[test]
    fn solve_estimate_adds_boot_and_drain() {
        let (cfg, e) = default_pair();
        let s = solve_estimate(&cfg, &e, 100, 100, false, 10);
        let per = iteration_estimate(&cfg, &e, 100, 100, false);
        let boot = cfg.dram().cycles_for_elements(100 * 100);
        assert_eq!(s.total_cycles, per.effective_cycles() * 10 + 2 * boot);
        assert!((s.seconds - s.total_cycles as f64 / 200e6).abs() < 1e-12);
    }

    #[test]
    fn iteration_counters_match_the_detailed_simulator() {
        use crate::accelerator::HwUpdateMethod;
        use crate::sim::DetailedSim;
        use fdm::pde::{PdeKind, StencilProblem};
        use fdm::workload::benchmark_problem;

        let cfg = FdmaxConfig::paper_default();
        for (kind, n) in [
            (PdeKind::Laplace, 20),
            (PdeKind::Poisson, 25),
            (PdeKind::Heat, 33),
            (PdeKind::Wave, 40),
        ] {
            let sp: StencilProblem<f32> = benchmark_problem(kind, n, 4).unwrap();
            for e in ElasticConfig::options(&cfg) {
                let mut sim =
                    DetailedSim::with_elastic(cfg, &sp, HwUpdateMethod::Jacobi, e).unwrap();
                sim.step();
                let predicted = iteration_counters(
                    &cfg,
                    &e,
                    n,
                    n,
                    sp.offset.requires_buffer(),
                    sp.stencil.w_s != 0.0,
                );
                assert_eq!(
                    *sim.counters(),
                    predicted,
                    "counter mismatch for {kind} {n}x{n} on {e}"
                );
            }
        }
    }

    #[test]
    fn bigger_arrays_saturate_on_bandwidth() {
        // The Fig. 9 story: at 128 GB/s, going past 8x8 gains little.
        let grid = 4_000;
        let times: Vec<u64> = [4usize, 8, 12]
            .iter()
            .map(|&s| {
                let cfg = FdmaxConfig::square(s);
                let e = ElasticConfig {
                    subarrays: 1,
                    width: s * s,
                };
                iteration_estimate(&cfg, &e, grid, grid, false).effective_cycles()
            })
            .collect();
        let gain_4_to_8 = times[0] as f64 / times[1] as f64;
        let gain_8_to_12 = times[1] as f64 / times[2] as f64;
        assert!(
            gain_4_to_8 > 1.5,
            "4->8 should speed up well, got {gain_4_to_8}"
        );
        assert!(
            gain_8_to_12 < 1.3,
            "8->12 should be bandwidth-capped, got {gain_8_to_12}"
        );
    }
}
