//! Hardware-side [`SolveEngine`] backends.
//!
//! The engine *contract* (trait, driver, policy) lives in
//! [`fdm::engine`] so the pure-numerics crate can drive its own sweeps;
//! this module re-exports it and adds the accelerator-model backends:
//!
//! * [`crate::sim::DetailedSim`] — the cycle-accurate simulator
//!   (implements [`SolveEngine`] directly);
//! * [`HwReferenceEngine`] — the hardware-semantics reference sweeps of
//!   [`crate::reference`], generic over [`Scalar`];
//! * [`EstimateEngine`] — the analytic performance model as a single
//!   O(1) macro-step, so paper-sized grids cost nothing to "run".

pub use fdm::engine::{
    EngineError, EngineStateImage, ParallelSweepEngine, ResiliencePolicy, Session, SolveEngine,
    StepFault, StepOutcome, SweepEngine,
};

use crate::accelerator::HwUpdateMethod;
use crate::config::FdmaxConfig;
use crate::elastic::ElasticConfig;
use crate::reference::hybrid_hw_sweep_elastic;
use crate::report::SimReport;
use fdm::convergence::{ResidualHistory, StopCondition};
use fdm::grid::Grid2D;
use fdm::pde::{OffsetField, StencilProblem};
use fdm::precision::Scalar;
use fdm::solver::{sweep_jacobi, SolveResult};
use memmodel::EventCounters;

/// The hardware-semantics reference sweeps as a [`SolveEngine`].
///
/// One step is one full-grid sweep with exactly the operand-availability
/// semantics of the modeled array: Jacobi is seam-free; Hybrid falls
/// back to Jacobi operands at row-block and column-batch seams (see
/// [`crate::reference`]). Bit-exact with [`crate::sim::DetailedSim`] for
/// the same elastic decomposition, at a fraction of the bookkeeping.
#[derive(Debug)]
pub struct HwReferenceEngine<'p, T: Scalar> {
    problem: &'p StencilProblem<T>,
    method: HwUpdateMethod,
    cur: Grid2D<T>,
    next: Grid2D<T>,
    prev: Option<Grid2D<T>>,
    subarrays: usize,
    width: usize,
    sub_fifo_depth: usize,
    iterations: usize,
}

impl<'p, T: Scalar> HwReferenceEngine<'p, T> {
    /// Prepares a reference engine for an explicit decomposition
    /// (`subarrays` row strips, `width`-column batches, `sub_fifo_depth`
    /// rows per block).
    ///
    /// # Panics
    ///
    /// Panics when a `ScaledPrevField` offset (wave equation) comes
    /// without `prev_initial`.
    pub fn new(
        problem: &'p StencilProblem<T>,
        method: HwUpdateMethod,
        subarrays: usize,
        width: usize,
        sub_fifo_depth: usize,
    ) -> Self {
        let cur = problem.initial.clone();
        let next = cur.clone();
        let prev = problem.prev_initial.clone();
        if matches!(problem.offset, OffsetField::ScaledPrevField { .. }) {
            assert!(
                prev.is_some(),
                "a ScaledPrevField offset requires prev_initial"
            );
        }
        HwReferenceEngine {
            problem,
            method,
            cur,
            next,
            prev,
            subarrays,
            width,
            sub_fifo_depth,
            iterations: 0,
        }
    }

    /// Prepares a reference engine mirroring the decomposition a
    /// [`crate::sim::DetailedSim`] would use.
    pub fn with_elastic(
        config: &FdmaxConfig,
        problem: &'p StencilProblem<T>,
        method: HwUpdateMethod,
        elastic: ElasticConfig,
    ) -> Self {
        Self::new(
            problem,
            method,
            elastic.subarrays,
            elastic.width,
            elastic.sub_fifo_depth(config),
        )
    }

    /// The current field `U^k`.
    pub fn solution(&self) -> &Grid2D<T> {
        &self.cur
    }

    /// Consumes the engine, returning the final field.
    pub fn into_solution(self) -> Grid2D<T> {
        self.cur
    }
}

impl<T: Scalar> SolveEngine for HwReferenceEngine<'_, T> {
    fn step(&mut self) -> StepOutcome {
        let problem = self.problem;
        let diff2 = match self.method {
            HwUpdateMethod::Jacobi => sweep_jacobi(
                &problem.stencil,
                &problem.offset,
                &self.cur,
                self.prev.as_ref(),
                &mut self.next,
            ),
            HwUpdateMethod::Hybrid => hybrid_hw_sweep_elastic(
                &problem.stencil,
                &problem.offset,
                &self.cur,
                self.prev.as_ref(),
                &mut self.next,
                self.subarrays,
                self.width,
                self.sub_fifo_depth,
            ),
        };
        if let Some(prev) = self.prev.as_mut() {
            core::mem::swap(&mut self.cur, prev);
        }
        core::mem::swap(&mut self.cur, &mut self.next);
        self.iterations += 1;
        StepOutcome::clean(diff2.sqrt())
    }

    fn iterations(&self) -> usize {
        self.iterations
    }

    fn export_state(&self) -> Option<EngineStateImage> {
        Some(EngineStateImage::capture(
            self.iterations,
            &self.cur,
            self.prev.as_ref(),
        ))
    }

    fn restore_state(&mut self, image: &EngineStateImage) -> bool {
        let Some(cur) = image.cur_grid::<T>() else {
            return false;
        };
        if cur.rows() != self.cur.rows()
            || cur.cols() != self.cur.cols()
            || image.prev.is_some() != self.prev.is_some()
        {
            return false;
        }
        let prev = if self.prev.is_some() {
            match image.prev_grid::<T>() {
                Some(p) if p.rows() == cur.rows() && p.cols() == cur.cols() => Some(p),
                _ => return false,
            }
        } else {
            None
        };
        // `next` mirrors `cur`: the sweeps rewrite its interior before
        // reading it, and the boundary ring must match the field's.
        self.next = cur.clone();
        self.cur = cur;
        self.prev = prev;
        self.iterations = image.iterations;
        true
    }
}

/// Solves a problem through a [`Session`] over the hardware-semantics
/// reference, mirroring the decomposition the simulator would use.
pub fn solve_reference<T: Scalar>(
    config: &FdmaxConfig,
    problem: &StencilProblem<T>,
    method: HwUpdateMethod,
    elastic: ElasticConfig,
    stop: &StopCondition,
) -> SolveResult<T> {
    let engine = HwReferenceEngine::with_elastic(config, problem, method, elastic);
    let mut session = Session::new(engine, *stop);
    let met = session
        .run()
        .expect("budget-free session on a healthy problem cannot fail");
    let (engine, history) = session.into_parts();
    let iterations = engine.iterations();
    SolveResult::from_parts(engine.into_solution(), iterations, history, met)
}

/// The analytic performance model as a [`SolveEngine`].
///
/// The engine charges the boot DMA in [`begin`](SolveEngine::begin), all
/// requested iterations in one analytic macro-step (scaling the exact
/// per-iteration [`EventCounters`] of the validated model, so the cost is
/// O(1) in the iteration count), and the drain DMA in
/// [`finish`](SolveEngine::finish). The resulting ledger is identical to
/// what [`crate::sim::DetailedSim`] would accumulate over a real run.
#[derive(Clone, Debug)]
pub struct EstimateEngine {
    config: FdmaxConfig,
    elastic: ElasticConfig,
    offset_present: bool,
    grid_elements: u64,
    per_iteration: EventCounters,
    counters: EventCounters,
    target: u64,
    done: u64,
}

impl EstimateEngine {
    /// Plans the elastic decomposition and the per-iteration ledger for
    /// an `rows x cols` problem (`offset_present`/`self_term` select the
    /// PDE family's datapath).
    ///
    /// # Panics
    ///
    /// Panics if the grid has no interior.
    pub fn new(
        config: FdmaxConfig,
        rows: usize,
        cols: usize,
        offset_present: bool,
        self_term: bool,
        iterations: u64,
    ) -> Self {
        let elastic = ElasticConfig::plan(&config, rows, cols);
        let per_iteration = crate::perf_model::iteration_counters(
            &config,
            &elastic,
            rows,
            cols,
            offset_present,
            self_term,
        );
        EstimateEngine {
            config,
            elastic,
            offset_present,
            grid_elements: (rows * cols) as u64,
            per_iteration,
            counters: EventCounters::new(),
            target: iterations,
            done: 0,
        }
    }

    /// The accumulated ledger as a [`SimReport`].
    pub fn into_report(self) -> SimReport {
        SimReport::new(
            self.config,
            self.elastic,
            self.counters,
            ResidualHistory::new(),
            self.done as usize,
        )
    }

    fn charge_dram(&mut self, read_elements: u64, write_elements: u64) {
        let cycles = self
            .config
            .dram()
            .cycles_for_elements(read_elements + write_elements);
        self.counters.cycles += cycles;
        self.counters.dram_read += read_elements;
        self.counters.dram_write += write_elements;
        self.counters.sram_write += read_elements;
        self.counters.sram_read += write_elements;
    }
}

impl SolveEngine for EstimateEngine {
    /// One macro-step covering every remaining iteration — the analytic
    /// model has no per-iteration state, so there is nothing to gain
    /// from stepping one at a time.
    fn step(&mut self) -> StepOutcome {
        let remaining = self.target - self.done;
        self.counters += self.per_iteration.scaled(remaining);
        self.done = self.target;
        StepOutcome::silent()
    }

    fn iterations(&self) -> usize {
        self.done as usize
    }

    fn begin(&mut self) {
        let extra = if self.offset_present {
            self.grid_elements
        } else {
            0
        };
        self.charge_dram(self.grid_elements + extra, 0);
    }

    fn finish(&mut self) {
        self.charge_dram(0, self.grid_elements);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::DetailedSim;
    use fdm::boundary::DirichletBoundary;
    use fdm::pde::LaplaceProblem;

    fn laplace(n: usize) -> StencilProblem<f32> {
        LaplaceProblem::builder(n, n)
            .boundary(DirichletBoundary::hot_top(1.0))
            .build()
            .unwrap()
            .discretize::<f32>()
    }

    #[test]
    fn reference_engine_matches_detailed_sim_bitwise() {
        let sp = laplace(20);
        let cfg = FdmaxConfig::paper_default();
        for e in ElasticConfig::options(&cfg) {
            let mut sim = DetailedSim::with_elastic(cfg, &sp, HwUpdateMethod::Hybrid, e).unwrap();
            for _ in 0..4 {
                sim.step();
            }
            let r = solve_reference(
                &cfg,
                &sp,
                HwUpdateMethod::Hybrid,
                e,
                &StopCondition::fixed_steps(4),
            );
            assert_eq!(r.solution(), sim.solution(), "config {e} diverged");
        }
    }

    #[test]
    fn estimate_engine_runs_in_one_macro_step() {
        let cfg = FdmaxConfig::paper_default();
        let engine = EstimateEngine::new(cfg, 24, 24, false, false, 9);
        let mut session = Session::new(engine, StopCondition::fixed_steps(9));
        assert!(session.run().unwrap());
        let (engine, history) = session.into_parts();
        assert!(history.is_empty(), "analytic steps record no norms");
        let report = engine.into_report();
        assert_eq!(report.iterations(), 9);
        assert!(report.cycles() > 0);
    }
}
