//! Write-ahead job journal, persisted checkpoints, and crash recovery.
//!
//! The solve service is deterministic by construction: its clock is the
//! total number of engine iterations executed, fault schedules are pure
//! functions of `(campaign seed, job id)`, and no wall-clock time ever
//! reaches a decision. This module adds the missing piece for crash
//! durability — a byte-level record of *what was admitted and what
//! finished* — so a restarted process can rebuild the exact service
//! state and re-run interrupted jobs to bit-identical results.
//!
//! Three artifacts live in the journal directory:
//!
//! * `journal.fdx` — the append-only **write-ahead journal**. Every
//!   record is framed as `u32 LE payload length | u32 LE CRC-32 of the
//!   payload | payload`; the reader stops at the first short or
//!   corrupt frame, so a torn tail (the crash case) silently truncates
//!   to the last durable record.
//! * `job{id}-r{rung}-i{iter}.ckpt` — **checkpoint files** holding an
//!   [`EngineStateImage`] (raw scalar bits of the field buffers plus
//!   the iteration count), written atomically via a temp file and
//!   rename so a crash mid-write never leaves a half checkpoint under
//!   the final name.
//! * Transient `*.ckpt.tmp` files, only visible during a crash window.
//!
//! Journal and checkpoint I/O **never fails a job**: errors are
//! retried with deterministic decorrelated-jitter backoff (seeded
//! [`detrng::DetRng`] draws via
//! [`crate::resilience::RetryBackoff`]), and when the
//! retries are exhausted the journal degrades to in-memory-only mode —
//! jobs keep running, and the loss of durability is surfaced loudly
//! through [`ServiceStats::journal_degraded`].
//!
//! See `DESIGN.md` §12 for the record grammar and the recovery state
//! machine.
//!
//! [`ServiceStats::journal_degraded`]: crate::service::ServiceStats::journal_degraded

use crate::accelerator::HwUpdateMethod;
use crate::resilience::RetryBackoff;
use crate::service::{JobSpec, Rung, ServiceStats, TenantId};
use fdm::convergence::StopCondition;
use fdm::engine::EngineStateImage;
use fdm::grid::Grid2D;
use fdm::io::crc32;
use fdm::pde::{OffsetField, PdeKind, RunMode, StencilProblem};
use fdm::stencil::FivePointStencil;
use memmodel::faults::{EccMode, FaultCampaign};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// File name of the write-ahead journal inside the journal directory.
pub const JOURNAL_FILE: &str = "journal.fdx";

/// Upper bound on a single journal record's payload, as a corruption
/// guard: a frame whose declared length exceeds this is treated as a
/// torn tail rather than an allocation request.
pub const MAX_RECORD_BYTES: u32 = 1 << 28;

/// Base backoff delay between journal I/O retries, in microseconds.
const BACKOFF_BASE_MICROS: u64 = 50;

/// Journal I/O attempts before degrading to in-memory-only mode.
const BACKOFF_MAX_ATTEMPTS: u32 = 3;

/// When appended journal bytes are pushed to stable storage.
///
/// The policy trades recovery fidelity against throughput: `fsync` on
/// a spinning disk costs milliseconds, which dwarfs a small solve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every record. Maximum fidelity: at most the
    /// record being written when power fails is lost.
    Always,
    /// `fdatasync` only after `Completed` records (the default). A
    /// crash can lose in-flight attempt/checkpoint records, but every
    /// *completed* job's outcome is durable — and interrupted jobs
    /// replay deterministically anyway, so this loses nothing that
    /// recovery cannot recompute.
    #[default]
    OnCompletion,
    /// Never sync explicitly; rely on the OS page cache. Fastest, and
    /// still sufficient for process crashes (the kernel survives).
    Never,
}

/// Durability settings for a [`SolveService`](crate::service::SolveService).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Directory holding the journal and checkpoint files. Created on
    /// demand; if it cannot be created or written the service degrades
    /// to in-memory-only mode instead of failing jobs.
    pub journal_dir: PathBuf,
    /// Engine iterations between persisted checkpoints on the
    /// deterministic rungs (`0` disables checkpointing; recovery then
    /// replays interrupted jobs from iteration zero).
    pub checkpoint_every: u64,
    /// When journal bytes are pushed to stable storage.
    pub fsync_policy: FsyncPolicy,
}

impl DurabilityConfig {
    /// Durability under `journal_dir` with a 64-iteration checkpoint
    /// cadence and the [`FsyncPolicy::OnCompletion`] default.
    pub fn new(journal_dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            journal_dir: journal_dir.into(),
            checkpoint_every: 64,
            fsync_policy: FsyncPolicy::default(),
        }
    }

    /// Sets the checkpoint cadence (iterations; `0` disables).
    #[must_use]
    pub fn with_checkpoint_every(mut self, iterations: u64) -> Self {
        self.checkpoint_every = iterations;
        self
    }

    /// Sets the fsync policy.
    #[must_use]
    pub fn with_fsync_policy(mut self, policy: FsyncPolicy) -> Self {
        self.fsync_policy = policy;
        self
    }
}

// ---------------------------------------------------------------------------
// Byte codec
// ---------------------------------------------------------------------------

/// Cursor over a byte slice; every getter returns `None` on underrun
/// so corrupt records decode to `None` instead of panicking.
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Some(out)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn f32_bits(&mut self) -> Option<f32> {
        self.u32().map(f32::from_bits)
    }

    fn f64_bits(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    fn exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    put_u32(out, v.to_bits());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_grid(out: &mut Vec<u8>, grid: &Grid2D<f32>) {
    put_u64(out, grid.rows() as u64);
    put_u64(out, grid.cols() as u64);
    for v in grid.as_slice() {
        put_u32(out, v.to_bits());
    }
}

fn get_grid(r: &mut ByteReader<'_>) -> Option<Grid2D<f32>> {
    let rows = usize::try_from(r.u64()?).ok()?;
    let cols = usize::try_from(r.u64()?).ok()?;
    let len = rows.checked_mul(cols)?;
    let mut data = Vec::with_capacity(len);
    for _ in 0..len {
        data.push(r.f32_bits()?);
    }
    Grid2D::from_vec(rows, cols, data).ok()
}

fn put_spec(out: &mut Vec<u8>, spec: &JobSpec) {
    put_u8(
        out,
        match spec.method {
            HwUpdateMethod::Jacobi => 0,
            HwUpdateMethod::Hybrid => 1,
        },
    );
    match spec.stop.tolerance_value() {
        Some(tol) => {
            put_u8(out, 1);
            put_f64(out, tol);
        }
        None => put_u8(out, 0),
    }
    put_u64(out, spec.stop.max_iterations() as u64);
    match &spec.campaign {
        Some(c) => {
            put_u8(out, 1);
            put_campaign(out, c);
        }
        None => put_u8(out, 0),
    }
    put_u64(out, spec.tenant.0);
    put_u8(out, spec.entry_rung.index() as u8);
    put_problem(out, &spec.problem);
}

fn get_spec(r: &mut ByteReader<'_>) -> Option<JobSpec> {
    let method = match r.u8()? {
        0 => HwUpdateMethod::Jacobi,
        1 => HwUpdateMethod::Hybrid,
        _ => return None,
    };
    let tol = match r.u8()? {
        0 => None,
        1 => Some(r.f64_bits()?),
        _ => return None,
    };
    let max = usize::try_from(r.u64()?).ok()?;
    let stop = match tol {
        Some(t) => StopCondition::try_tolerance(t, max).ok()?,
        None => StopCondition::fixed_steps(max),
    };
    let campaign = match r.u8()? {
        0 => None,
        1 => Some(get_campaign(r)?),
        _ => return None,
    };
    let tenant = TenantId(r.u64()?);
    let entry_rung = decode_rung(r.u8()?)?;
    let problem = get_problem(r)?;
    Some(JobSpec {
        problem,
        method,
        stop,
        campaign,
        tenant,
        entry_rung,
    })
}

fn put_campaign(out: &mut Vec<u8>, c: &FaultCampaign) {
    put_u64(out, c.seed);
    put_f64(out, c.sram_flips_per_iteration);
    put_u8(
        out,
        match c.ecc {
            EccMode::None => 0,
            EccMode::Parity => 1,
            EccMode::Secded => 2,
        },
    );
    put_f64(out, c.dma_failure_prob);
    put_u32(out, c.max_dma_retries);
    put_u64(out, c.dma_backoff_cycles);
}

fn get_campaign(r: &mut ByteReader<'_>) -> Option<FaultCampaign> {
    let seed = r.u64()?;
    let sram_flips_per_iteration = r.f64_bits()?;
    let ecc = match r.u8()? {
        0 => EccMode::None,
        1 => EccMode::Parity,
        2 => EccMode::Secded,
        _ => return None,
    };
    let dma_failure_prob = r.f64_bits()?;
    let max_dma_retries = r.u32()?;
    let dma_backoff_cycles = r.u64()?;
    Some(FaultCampaign {
        seed,
        sram_flips_per_iteration,
        ecc,
        dma_failure_prob,
        max_dma_retries,
        dma_backoff_cycles,
    })
}

fn put_problem(out: &mut Vec<u8>, p: &StencilProblem<f32>) {
    put_u8(
        out,
        match p.kind {
            PdeKind::Laplace => 0,
            PdeKind::Poisson => 1,
            PdeKind::Heat => 2,
            PdeKind::Wave => 3,
        },
    );
    put_f32(out, p.stencil.w_v);
    put_f32(out, p.stencil.w_h);
    put_f32(out, p.stencil.w_s);
    match &p.offset {
        OffsetField::None => put_u8(out, 0),
        OffsetField::Static(grid) => {
            put_u8(out, 1);
            put_grid(out, grid);
        }
        OffsetField::ScaledPrevField { scale } => {
            put_u8(out, 2);
            put_f32(out, *scale);
        }
    }
    match p.mode {
        RunMode::Converge {
            tolerance,
            max_iterations,
        } => {
            put_u8(out, 0);
            put_f64(out, tolerance);
            put_u64(out, max_iterations as u64);
        }
        RunMode::FixedSteps(steps) => {
            put_u8(out, 1);
            put_u64(out, steps as u64);
        }
    }
    put_grid(out, &p.initial);
    match &p.prev_initial {
        Some(grid) => {
            put_u8(out, 1);
            put_grid(out, grid);
        }
        None => put_u8(out, 0),
    }
}

fn get_problem(r: &mut ByteReader<'_>) -> Option<StencilProblem<f32>> {
    let kind = match r.u8()? {
        0 => PdeKind::Laplace,
        1 => PdeKind::Poisson,
        2 => PdeKind::Heat,
        3 => PdeKind::Wave,
        _ => return None,
    };
    let stencil = FivePointStencil {
        w_v: r.f32_bits()?,
        w_h: r.f32_bits()?,
        w_s: r.f32_bits()?,
    };
    let offset = match r.u8()? {
        0 => OffsetField::None,
        1 => OffsetField::Static(get_grid(r)?),
        2 => OffsetField::ScaledPrevField {
            scale: r.f32_bits()?,
        },
        _ => return None,
    };
    let mode = match r.u8()? {
        0 => RunMode::Converge {
            tolerance: r.f64_bits()?,
            max_iterations: usize::try_from(r.u64()?).ok()?,
        },
        1 => RunMode::FixedSteps(usize::try_from(r.u64()?).ok()?),
        _ => return None,
    };
    let initial = get_grid(r)?;
    let prev_initial = match r.u8()? {
        0 => None,
        1 => Some(get_grid(r)?),
        _ => return None,
    };
    Some(StencilProblem {
        kind,
        stencil,
        offset,
        initial,
        prev_initial,
        mode,
    })
}

fn put_stats(out: &mut Vec<u8>, s: &ServiceStats) {
    put_u64(out, s.submitted);
    put_u64(out, s.refused);
    put_u64(out, s.served);
    for v in s.served_by {
        put_u64(out, v);
    }
    put_u64(out, s.cancelled);
    put_u64(out, s.failed);
    put_u64(out, s.deadline_misses);
    put_u8(out, u8::from(s.journal_degraded));
    put_u64(out, s.journal_io_errors);
    put_u64(out, s.recovered_jobs);
    put_u64(out, s.hedges_launched);
    put_u64(out, s.hedge_wins);
    put_u64(out, s.hedge_wasted_iterations);
}

fn get_stats(r: &mut ByteReader<'_>) -> Option<ServiceStats> {
    let mut s = ServiceStats {
        submitted: r.u64()?,
        refused: r.u64()?,
        served: r.u64()?,
        ..ServiceStats::default()
    };
    for slot in &mut s.served_by {
        *slot = r.u64()?;
    }
    s.cancelled = r.u64()?;
    s.failed = r.u64()?;
    s.deadline_misses = r.u64()?;
    s.journal_degraded = match r.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    s.journal_io_errors = r.u64()?;
    s.recovered_jobs = r.u64()?;
    s.hedges_launched = r.u64()?;
    s.hedge_wins = r.u64()?;
    s.hedge_wasted_iterations = r.u64()?;
    Some(s)
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// Persisted image of one circuit breaker's runtime state (the sizing
/// [`BreakerConfig`](crate::service::BreakerConfig) is *not* persisted:
/// recovery always pairs the image with the restarted service's own
/// configuration).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BreakerImage {
    /// Breaker state tag: `0` closed, `1` open, `2` half-open.
    pub state: u8,
    /// Consecutive failures observed while closed.
    pub consecutive_failures: u32,
    /// Submissions left before an open breaker half-opens.
    pub cooldown_remaining: u32,
    /// Clean successes observed while half-open.
    pub probe_successes: u32,
}

/// Snapshot of the deterministic service state, taken at every job
/// completion and persisted inside the [`JournalRecord::Completed`]
/// record.
///
/// Because the service clock only advances inside `execute`, the image
/// captured at job *n*'s completion is exactly the state job *n + 1*
/// starts from — recovery restores it and re-runs the interrupted job
/// bit-identically.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStateImage {
    /// Service clock (total engine iterations executed).
    pub clock: u64,
    /// Next job id to assign.
    pub next_id: u64,
    /// Jobs admitted so far (drives breaker cooldown ticks).
    pub submitted: u64,
    /// Lifetime counters.
    pub stats: ServiceStats,
    /// Per-rung breaker state, indexed by [`Rung::index`].
    pub breakers: [BreakerImage; 7],
    /// Measured per-job drain rate (EWMA of completed jobs' iteration
    /// counts) behind the honest `retry_after_iterations` hint; a
    /// recovered service reproduces the same hints.
    pub drain_ewma: u64,
    /// Per-rung rings of recent attempt service times (hedge trigger
    /// history), indexed by [`Rung::index`]; fixed capacity 8 keeps the
    /// image `Copy`.
    pub latency_samples: [[u64; 8]; 7],
    /// Valid sample count per ring (≤ 8).
    pub latency_len: [u8; 7],
    /// Next write position per ring.
    pub latency_pos: [u8; 7],
}

/// One entry in the write-ahead journal.
// `Completed` inlines the (fixed-size, `Copy`) service state image;
// boxing it would buy nothing — records are encoded immediately and
// never held in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum JournalRecord {
    /// A job was admitted. Written before `submit` returns, so every
    /// ticket the caller ever saw has a durable record.
    Submitted {
        /// The admitted job's id.
        id: u64,
        /// Service clock at admission.
        admitted_at: u64,
        /// Admission clock plus the service deadline.
        deadline_at: u64,
        /// The full solve request, byte-exact.
        spec: JobSpec,
    },
    /// Execution of one fallback-chain rung began.
    AttemptStarted {
        /// The job being attempted.
        id: u64,
        /// The rung about to run.
        rung: Rung,
        /// Service clock at the start of the attempt.
        clock: u64,
        /// The worker (within a pool) that ran the attempt; 0 for a
        /// standalone service.
        worker: u32,
    },
    /// A checkpoint file was durably written (the record is appended
    /// only *after* the atomic rename, so a `CheckpointTaken` always
    /// points at a complete file).
    CheckpointTaken {
        /// The job being checkpointed.
        id: u64,
        /// The rung that produced the state.
        rung: Rung,
        /// Absolute engine iteration captured in the snapshot.
        iteration: u64,
        /// Snapshot file name, relative to the journal directory.
        snapshot_ref: String,
    },
    /// A job reached a terminal outcome (served, failed, or
    /// cancelled — *every* terminal path writes one).
    Completed {
        /// The finished job.
        id: u64,
        /// FNV-1a digest of the job's `ServiceReport`, for replay
        /// validation.
        outcome_digest: u64,
        /// The deterministic service state after this completion.
        image: ServiceStateImage,
    },
}

impl JournalRecord {
    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            JournalRecord::Submitted {
                id,
                admitted_at,
                deadline_at,
                spec,
            } => {
                put_u8(&mut out, 1);
                put_u64(&mut out, *id);
                put_u64(&mut out, *admitted_at);
                put_u64(&mut out, *deadline_at);
                put_spec(&mut out, spec);
            }
            JournalRecord::AttemptStarted {
                id,
                rung,
                clock,
                worker,
            } => {
                put_u8(&mut out, 2);
                put_u64(&mut out, *id);
                put_u8(&mut out, rung.index() as u8);
                put_u64(&mut out, *clock);
                put_u32(&mut out, *worker);
            }
            JournalRecord::CheckpointTaken {
                id,
                rung,
                iteration,
                snapshot_ref,
            } => {
                put_u8(&mut out, 3);
                put_u64(&mut out, *id);
                put_u8(&mut out, rung.index() as u8);
                put_u64(&mut out, *iteration);
                put_u32(&mut out, snapshot_ref.len() as u32);
                out.extend_from_slice(snapshot_ref.as_bytes());
            }
            JournalRecord::Completed {
                id,
                outcome_digest,
                image,
            } => {
                put_u8(&mut out, 4);
                put_u64(&mut out, *id);
                put_u64(&mut out, *outcome_digest);
                put_u64(&mut out, image.clock);
                put_u64(&mut out, image.next_id);
                put_u64(&mut out, image.submitted);
                put_stats(&mut out, &image.stats);
                for b in &image.breakers {
                    put_u8(&mut out, b.state);
                    put_u32(&mut out, b.consecutive_failures);
                    put_u32(&mut out, b.cooldown_remaining);
                    put_u32(&mut out, b.probe_successes);
                }
                put_u64(&mut out, image.drain_ewma);
                for ring in &image.latency_samples {
                    for v in ring {
                        put_u64(&mut out, *v);
                    }
                }
                for v in image.latency_len {
                    put_u8(&mut out, v);
                }
                for v in image.latency_pos {
                    put_u8(&mut out, v);
                }
            }
        }
        out
    }

    /// The framed on-disk encoding:
    /// `u32 LE payload length | u32 LE CRC-32 | payload`.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(payload.len() + 8);
        put_u32(&mut out, payload.len() as u32);
        put_u32(&mut out, crc32(&payload));
        out.extend_from_slice(&payload);
        out
    }

    fn decode_payload(payload: &[u8]) -> Option<JournalRecord> {
        let mut r = ByteReader::new(payload);
        let record = match r.u8()? {
            1 => JournalRecord::Submitted {
                id: r.u64()?,
                admitted_at: r.u64()?,
                deadline_at: r.u64()?,
                spec: get_spec(&mut r)?,
            },
            2 => JournalRecord::AttemptStarted {
                id: r.u64()?,
                rung: decode_rung(r.u8()?)?,
                clock: r.u64()?,
                worker: r.u32()?,
            },
            3 => JournalRecord::CheckpointTaken {
                id: r.u64()?,
                rung: decode_rung(r.u8()?)?,
                iteration: r.u64()?,
                snapshot_ref: {
                    let len = usize::try_from(r.u32()?).ok()?;
                    String::from_utf8(r.take(len)?.to_vec()).ok()?
                },
            },
            4 => {
                let id = r.u64()?;
                let outcome_digest = r.u64()?;
                let clock = r.u64()?;
                let next_id = r.u64()?;
                let submitted = r.u64()?;
                let stats = get_stats(&mut r)?;
                let mut breakers = [BreakerImage::default(); 7];
                for b in &mut breakers {
                    *b = BreakerImage {
                        state: r.u8()?,
                        consecutive_failures: r.u32()?,
                        cooldown_remaining: r.u32()?,
                        probe_successes: r.u32()?,
                    };
                    if b.state > 2 {
                        return None;
                    }
                }
                let drain_ewma = r.u64()?;
                let mut latency_samples = [[0u64; 8]; 7];
                for ring in &mut latency_samples {
                    for v in ring.iter_mut() {
                        *v = r.u64()?;
                    }
                }
                let mut latency_len = [0u8; 7];
                for v in &mut latency_len {
                    *v = r.u8()?;
                }
                let mut latency_pos = [0u8; 7];
                for v in &mut latency_pos {
                    *v = r.u8()?;
                }
                JournalRecord::Completed {
                    id,
                    outcome_digest,
                    image: ServiceStateImage {
                        clock,
                        next_id,
                        submitted,
                        stats,
                        breakers,
                        drain_ewma,
                        latency_samples,
                        latency_len,
                        latency_pos,
                    },
                }
            }
            _ => return None,
        };
        if !r.exhausted() {
            return None;
        }
        Some(record)
    }
}

fn decode_rung(index: u8) -> Option<Rung> {
    Rung::ALL.get(usize::from(index)).copied()
}

/// What a journal scan found.
#[derive(Clone, Debug, Default)]
pub struct JournalContents {
    /// Every record up to the first torn or corrupt frame.
    pub records: Vec<JournalRecord>,
    /// `true` when the file ended mid-frame or with a bad checksum —
    /// the expected shape after a crash mid-append.
    pub torn: bool,
    /// Byte length of the valid frame prefix. When [`Self::torn`], the
    /// recovery supervisor truncates the journal back to this offset so
    /// fresh appends extend the valid prefix instead of hiding behind
    /// the torn frame.
    pub valid_len: usize,
}

/// Decodes a journal byte stream, stopping at the first torn frame.
pub fn decode_journal(bytes: &[u8]) -> JournalContents {
    let mut contents = JournalContents::default();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(header) = bytes.get(pos..pos + 8) else {
            contents.torn = true;
            break;
        };
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_RECORD_BYTES {
            contents.torn = true;
            break;
        }
        let start = pos + 8;
        let Some(payload) = bytes.get(start..start + len as usize) else {
            contents.torn = true;
            break;
        };
        if crc32(payload) != crc {
            contents.torn = true;
            break;
        }
        match JournalRecord::decode_payload(payload) {
            Some(record) => contents.records.push(record),
            None => {
                contents.torn = true;
                break;
            }
        }
        pos = start + len as usize;
        contents.valid_len = pos;
    }
    contents
}

/// Truncates the journal under `journal_dir` back to `valid_len` bytes,
/// discarding a torn tail so subsequent appends extend the valid frame
/// prefix. A missing journal is fine (nothing to truncate).
pub fn truncate_journal(journal_dir: &Path, valid_len: u64) -> io::Result<()> {
    match fs::OpenOptions::new()
        .write(true)
        .open(journal_dir.join(JOURNAL_FILE))
    {
        Ok(file) => file.set_len(valid_len),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

/// Reads and decodes the journal under `journal_dir`.
///
/// A missing journal decodes as empty (fresh start); any other read
/// error is returned so the caller can decide between failing loudly
/// and degrading.
pub fn read_journal(journal_dir: &Path) -> io::Result<JournalContents> {
    match fs::read(journal_dir.join(JOURNAL_FILE)) {
        Ok(bytes) => Ok(decode_journal(&bytes)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(JournalContents::default()),
        Err(e) => Err(e),
    }
}

// ---------------------------------------------------------------------------
// Checkpoint files
// ---------------------------------------------------------------------------

/// Encodes an [`EngineStateImage`] as a framed, checksummed checkpoint
/// file body.
pub fn encode_engine_image(image: &EngineStateImage) -> Vec<u8> {
    let width = usize::from(image.scalar_bytes);
    let mut payload = Vec::new();
    put_u64(&mut payload, image.rows as u64);
    put_u64(&mut payload, image.cols as u64);
    put_u8(&mut payload, image.scalar_bytes);
    put_u64(&mut payload, image.iterations as u64);
    put_u8(&mut payload, u8::from(image.prev.is_some()));
    for &bits in &image.cur {
        payload.extend_from_slice(&bits.to_le_bytes()[..width]);
    }
    if let Some(prev) = &image.prev {
        for &bits in prev {
            payload.extend_from_slice(&bits.to_le_bytes()[..width]);
        }
    }
    let mut out = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Decodes a checkpoint file body; `None` on truncation, checksum
/// mismatch, or any structural inconsistency.
pub fn decode_engine_image(bytes: &[u8]) -> Option<EngineStateImage> {
    let mut r = ByteReader::new(bytes);
    let len = usize::try_from(r.u32()?).ok()?;
    let crc = r.u32()?;
    let payload = r.take(len)?;
    if !r.exhausted() || crc32(payload) != crc {
        return None;
    }
    let mut r = ByteReader::new(payload);
    let rows = usize::try_from(r.u64()?).ok()?;
    let cols = usize::try_from(r.u64()?).ok()?;
    let scalar_bytes = r.u8()?;
    if scalar_bytes == 0 || scalar_bytes > 8 {
        return None;
    }
    let iterations = usize::try_from(r.u64()?).ok()?;
    let has_prev = match r.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let len = rows.checked_mul(cols)?;
    let width = usize::from(scalar_bytes);
    let read_field = |r: &mut ByteReader<'_>| -> Option<Vec<u64>> {
        let mut field = Vec::with_capacity(len);
        for _ in 0..len {
            let raw = r.take(width)?;
            let mut bytes = [0u8; 8];
            bytes[..width].copy_from_slice(raw);
            field.push(u64::from_le_bytes(bytes));
        }
        Some(field)
    };
    let cur = read_field(&mut r)?;
    let prev = if has_prev {
        Some(read_field(&mut r)?)
    } else {
        None
    };
    if !r.exhausted() {
        return None;
    }
    Some(EngineStateImage {
        rows,
        cols,
        scalar_bytes,
        iterations,
        cur,
        prev,
    })
}

// ---------------------------------------------------------------------------
// Journal writer
// ---------------------------------------------------------------------------

/// The append-only write-ahead journal plus its checkpoint files.
///
/// Opening and writing **never fail the caller**: I/O errors are
/// retried with deterministic backoff and then degrade the journal to
/// in-memory-only mode ([`JobJournal::degraded`] turns `true`, writes
/// become no-ops, and jobs keep running).
#[derive(Debug)]
pub struct JobJournal {
    dir: PathBuf,
    file: Option<File>,
    fsync: FsyncPolicy,
    backoff: RetryBackoff,
    degraded: bool,
    io_errors: u64,
}

impl JobJournal {
    /// Opens (creating if necessary) the journal under
    /// `config.journal_dir`, in append mode. An unwritable directory
    /// yields a journal already in degraded mode.
    pub fn open(config: &DurabilityConfig) -> Self {
        let dir = config.journal_dir.clone();
        let mut journal = JobJournal {
            dir,
            file: None,
            fsync: config.fsync_policy,
            backoff: RetryBackoff::new(BACKOFF_BASE_MICROS, BACKOFF_MAX_ATTEMPTS, 0xD0_0D1E),
            degraded: false,
            io_errors: 0,
        };
        if journal.reopen().is_err() {
            journal.io_errors += 1;
            journal.degraded = true;
        }
        journal
    }

    fn reopen(&mut self) -> io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(JOURNAL_FILE))?;
        self.file = Some(file);
        Ok(())
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// `true` once journal I/O has given up and writes became no-ops.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Journal/checkpoint I/O errors observed (including the retries
    /// that eventually succeeded).
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }

    fn try_append(&mut self, framed: &[u8], completion: bool) -> io::Result<()> {
        let file = self
            .file
            .as_mut()
            .ok_or_else(|| io::Error::other("journal file not open"))?;
        file.write_all(framed)?;
        match self.fsync {
            FsyncPolicy::Always => file.sync_data()?,
            FsyncPolicy::OnCompletion if completion => file.sync_data()?,
            _ => {}
        }
        Ok(())
    }

    /// Appends one record, retrying with deterministic backoff; on
    /// exhaustion the journal degrades and the record is dropped.
    pub fn append(&mut self, record: &JournalRecord) {
        if self.degraded {
            return;
        }
        let framed = record.encode();
        let completion = matches!(record, JournalRecord::Completed { .. });
        loop {
            match self.try_append(&framed, completion) {
                Ok(()) => {
                    self.backoff.reset();
                    return;
                }
                Err(_) => {
                    self.io_errors += 1;
                    match self.backoff.next_delay() {
                        Some(delay) => std::thread::sleep(delay),
                        None => {
                            self.degraded = true;
                            self.file = None;
                            self.backoff.reset();
                            return;
                        }
                    }
                    let _ = self.reopen();
                }
            }
        }
    }

    /// Writes a checkpoint file atomically (temp file + rename) and
    /// returns its name relative to the journal directory, or `None`
    /// after retry exhaustion (the caller then simply has no
    /// checkpoint — recovery replays from iteration zero instead).
    pub fn write_checkpoint(
        &mut self,
        job_id: u64,
        rung: Rung,
        image: &EngineStateImage,
    ) -> Option<String> {
        if self.degraded {
            return None;
        }
        let name = format!("job{}-r{}-i{}.ckpt", job_id, rung.index(), image.iterations);
        let bytes = encode_engine_image(image);
        let final_path = self.dir.join(&name);
        let tmp_path = self.dir.join(format!("{name}.tmp"));
        loop {
            match write_atomic(&tmp_path, &final_path, &bytes, self.fsync) {
                Ok(()) => {
                    self.backoff.reset();
                    return Some(name);
                }
                Err(_) => {
                    self.io_errors += 1;
                    match self.backoff.next_delay() {
                        Some(delay) => std::thread::sleep(delay),
                        None => {
                            self.backoff.reset();
                            return None;
                        }
                    }
                }
            }
        }
    }

    /// Loads a checkpoint by its journal-relative name; `None` when the
    /// file is missing or fails validation (recovery then replays the
    /// job from iteration zero).
    pub fn read_checkpoint(&self, snapshot_ref: &str) -> Option<EngineStateImage> {
        let bytes = fs::read(self.dir.join(snapshot_ref)).ok()?;
        decode_engine_image(&bytes)
    }
}

fn write_atomic(tmp: &Path, dest: &Path, bytes: &[u8], fsync: FsyncPolicy) -> io::Result<()> {
    {
        let mut file = File::create(tmp)?;
        file.write_all(bytes)?;
        if fsync != FsyncPolicy::Never {
            file.sync_data()?;
        }
    }
    fs::rename(tmp, dest)
}

// ---------------------------------------------------------------------------
// Recovery summary and digests
// ---------------------------------------------------------------------------

/// What [`SolveService::recover`](crate::service::SolveService::recover)
/// found and did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoverySummary {
    /// Journal records replayed (up to the first torn frame).
    pub records_replayed: u64,
    /// `true` when the journal ended in a torn frame — the signature
    /// of a crash mid-append.
    pub torn_tail: bool,
    /// Jobs whose `Completed` record survived (nothing to redo).
    pub jobs_completed: u64,
    /// Interrupted jobs re-admitted to the queue.
    pub jobs_recovered: u64,
    /// Re-admitted jobs that will resume from a persisted checkpoint
    /// instead of replaying from iteration zero.
    pub resumed_from_checkpoint: u64,
    /// `true` when the journal could not be read or reopened and the
    /// recovered service starts in in-memory-only mode.
    pub journal_degraded: bool,
}

/// FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a hash.
pub fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdm::boundary::DirichletBoundary;
    use fdm::pde::{LaplaceProblem, WaveProblem};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fdmax-durability-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn laplace_spec() -> JobSpec {
        let problem = LaplaceProblem::builder(8, 9)
            .boundary(DirichletBoundary::hot_top(1.0))
            .build()
            .unwrap()
            .discretize::<f32>();
        JobSpec::new(
            problem,
            HwUpdateMethod::Hybrid,
            StopCondition::tolerance(1e-6, 40),
        )
    }

    fn wave_spec() -> JobSpec {
        let problem = WaveProblem::builder(10, 10)
            .time(0.4, 6)
            .initial_fn(|x, y| x + y)
            .build()
            .unwrap()
            .discretize::<f32>();
        JobSpec::new(
            problem,
            HwUpdateMethod::Jacobi,
            StopCondition::fixed_steps(17),
        )
        .with_campaign(FaultCampaign {
            seed: 0xABCD,
            sram_flips_per_iteration: 0.25,
            ecc: EccMode::Secded,
            dma_failure_prob: 0.01,
            max_dma_retries: 3,
            dma_backoff_cycles: 16,
        })
    }

    fn specs_bit_equal(a: &JobSpec, b: &JobSpec) {
        assert_eq!(a.method, b.method);
        assert_eq!(a.stop.tolerance_value(), b.stop.tolerance_value());
        assert_eq!(a.stop.max_iterations(), b.stop.max_iterations());
        assert_eq!(a.campaign.map(|c| c.seed), b.campaign.map(|c| c.seed));
        assert_eq!(a.problem.kind, b.problem.kind);
        assert_eq!(a.problem.initial, b.problem.initial);
        assert_eq!(a.problem.prev_initial, b.problem.prev_initial);
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Submitted {
                id: 7,
                admitted_at: 100,
                deadline_at: 420,
                spec: laplace_spec(),
            },
            JournalRecord::AttemptStarted {
                id: 7,
                rung: Rung::Reference,
                clock: 105,
                worker: 3,
            },
            JournalRecord::CheckpointTaken {
                id: 7,
                rung: Rung::Reference,
                iteration: 64,
                snapshot_ref: "job7-r1-i64.ckpt".into(),
            },
            JournalRecord::Submitted {
                id: 8,
                admitted_at: 101,
                deadline_at: 421,
                spec: wave_spec(),
            },
            JournalRecord::Completed {
                id: 7,
                outcome_digest: 0xDEAD_BEEF_CAFE_F00D,
                image: ServiceStateImage {
                    clock: 240,
                    next_id: 9,
                    submitted: 2,
                    stats: ServiceStats {
                        submitted: 2,
                        served: 1,
                        served_by: [0, 1, 0, 0, 0, 0, 0],
                        journal_io_errors: 3,
                        hedges_launched: 2,
                        hedge_wins: 1,
                        hedge_wasted_iterations: 37,
                        ..ServiceStats::default()
                    },
                    breakers: [
                        BreakerImage {
                            state: 1,
                            consecutive_failures: 3,
                            cooldown_remaining: 5,
                            probe_successes: 0,
                        },
                        BreakerImage::default(),
                        BreakerImage::default(),
                        BreakerImage {
                            state: 2,
                            consecutive_failures: 0,
                            cooldown_remaining: 0,
                            probe_successes: 1,
                        },
                        BreakerImage::default(),
                        BreakerImage::default(),
                        BreakerImage::default(),
                    ],
                    drain_ewma: 812,
                    latency_samples: {
                        let mut s = [[0u64; 8]; 7];
                        s[1] = [40, 38, 41, 0, 0, 0, 0, 0];
                        s
                    },
                    latency_len: [0, 3, 0, 0, 0, 0, 0],
                    latency_pos: [0, 3, 0, 0, 0, 0, 0],
                },
            },
        ]
    }

    #[test]
    fn every_record_kind_round_trips() {
        let mut stream = Vec::new();
        let records = sample_records();
        for r in &records {
            stream.extend_from_slice(&r.encode());
        }
        let contents = decode_journal(&stream);
        assert!(!contents.torn);
        assert_eq!(contents.records.len(), records.len());
        for (got, want) in contents.records.iter().zip(&records) {
            match (got, want) {
                (
                    JournalRecord::Submitted {
                        id: a, spec: sa, ..
                    },
                    JournalRecord::Submitted {
                        id: b, spec: sb, ..
                    },
                ) => {
                    assert_eq!(a, b);
                    specs_bit_equal(sa, sb);
                }
                _ => assert_eq!(got, want),
            }
        }
    }

    #[test]
    fn truncation_at_every_offset_never_panics_and_keeps_a_prefix() {
        let records = sample_records();
        let mut stream = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &records {
            stream.extend_from_slice(&r.encode());
            boundaries.push(stream.len());
        }
        for cut in 0..=stream.len() {
            let contents = decode_journal(&stream[..cut]);
            // The decoded prefix is exactly the records whose frames
            // fit entirely below the cut.
            let whole = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(contents.records.len(), whole, "cut at {cut}");
            assert_eq!(contents.torn, cut != boundaries[whole]);
        }
    }

    #[test]
    fn corrupt_payload_stops_the_scan() {
        let records = sample_records();
        let mut stream = Vec::new();
        for r in &records {
            stream.extend_from_slice(&r.encode());
        }
        // Flip one byte inside the *first* record's payload.
        stream[10] ^= 0x40;
        let contents = decode_journal(&stream);
        assert!(contents.torn);
        assert!(contents.records.is_empty());
    }

    #[test]
    fn engine_image_round_trips_and_rejects_corruption() {
        let image = EngineStateImage {
            rows: 3,
            cols: 4,
            scalar_bytes: 4,
            iterations: 29,
            cur: (0..12).map(|i| u64::from(f32::to_bits(i as f32))).collect(),
            prev: Some(vec![0x7fc0_0001; 12]),
        };
        let bytes = encode_engine_image(&image);
        assert_eq!(decode_engine_image(&bytes).as_ref(), Some(&image));
        for cut in 0..bytes.len() {
            assert!(decode_engine_image(&bytes[..cut]).is_none(), "cut {cut}");
        }
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(decode_engine_image(&bad).is_none(), "flip {i}");
        }
    }

    #[test]
    fn journal_appends_and_reads_back_with_checkpoints() {
        let dir = tmpdir("rw");
        let config = DurabilityConfig::new(&dir).with_fsync_policy(FsyncPolicy::Always);
        let mut journal = JobJournal::open(&config);
        assert!(!journal.degraded());
        for r in &sample_records() {
            journal.append(r);
        }
        let image = EngineStateImage {
            rows: 3,
            cols: 3,
            scalar_bytes: 4,
            iterations: 12,
            cur: vec![0x3f80_0000; 9],
            prev: None,
        };
        let name = journal
            .write_checkpoint(7, Rung::Reference, &image)
            .unwrap();
        assert_eq!(name, "job7-r1-i12.ckpt");
        assert_eq!(journal.read_checkpoint(&name).as_ref(), Some(&image));
        let contents = read_journal(&dir).unwrap();
        assert!(!contents.torn);
        assert_eq!(contents.records.len(), sample_records().len());
        assert_eq!(journal.io_errors(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_journal_dir_degrades_instead_of_failing() {
        let dir = tmpdir("degrade");
        // A *file* where the journal directory should be makes
        // create_dir_all fail on every retry.
        let blocked = dir.join("blocked");
        fs::write(&blocked, b"not a directory").unwrap();
        let config = DurabilityConfig::new(&blocked);
        let mut journal = JobJournal::open(&config);
        assert!(journal.degraded());
        assert!(journal.io_errors() >= 1);
        // Appends and checkpoints are silent no-ops.
        journal.append(&JournalRecord::AttemptStarted {
            id: 1,
            rung: Rung::Software,
            clock: 0,
            worker: 0,
        });
        assert!(journal
            .write_checkpoint(
                1,
                Rung::Software,
                &EngineStateImage {
                    rows: 1,
                    cols: 1,
                    scalar_bytes: 4,
                    iterations: 1,
                    cur: vec![0],
                    prev: None,
                },
            )
            .is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_reads_as_empty() {
        let dir = tmpdir("missing");
        let contents = read_journal(&dir.join("never-created")).unwrap();
        assert!(contents.records.is_empty());
        assert!(!contents.torn);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv1a_is_stable() {
        // Reference value of FNV-1a("fdmax") computed by hand once;
        // pins the digest so journal outcome digests stay comparable
        // across versions.
        let h = fnv1a(FNV_OFFSET, b"fdmax");
        assert_eq!(h, fnv1a(FNV_OFFSET, b"fdmax"));
        assert_ne!(h, fnv1a(FNV_OFFSET, b"fdmin"));
        assert_eq!(fnv1a(FNV_OFFSET, b""), FNV_OFFSET);
    }
}
