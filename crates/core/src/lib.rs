//! FDMAX — an elastic accelerator architecture for solving partial
//! differential equations (reproduction of Li et al., ISCA 2023).
//!
//! This crate models the FDMAX accelerator down to the microarchitectural
//! level:
//!
//! * [`pe`] — the reconfigurable processing element: sliding-window
//!   registers (`R_z-1`, `R_z-2`), a two-stage pipeline, computation reuse
//!   (three multiplications per five-point stencil output), row-wise
//!   partial-product propagation to neighbour PEs, per-PE DIFF logic, and
//!   a Jacobi/Hybrid update mux;
//! * [`mod@array`] — a chained PE subarray with nFIFO/pFIFO halo machinery and
//!   `HaloAdders` resolving partial products across column batches;
//! * [`elastic`] — the elastic decomposition of the physical PE array into
//!   `1x(C·k)` subarray chains and the planner that picks the
//!   cycle-minimizing configuration for a grid;
//! * [`mapping`] — how an `M x N` FDM grid is tiled into row strips, row
//!   blocks (bounded by FIFO depth) and column batches;
//! * [`sim`] — the cycle-accurate simulator: exact cycle counts, exact
//!   event counts ([`memmodel::EventCounters`]) and bit-exact f32 results
//!   (identical to the software solvers in [`fdm`]);
//! * [`perf_model`] — a closed-form performance model that reproduces the
//!   detailed simulator's cycle accounting exactly and extrapolates to
//!   grids too large to simulate point-by-point;
//! * [`engine`] — the hardware-side [`SolveEngine`](engine::SolveEngine)
//!   backends (cycle-accurate, hardware-semantics reference, analytic
//!   estimator), all driven by the one generic
//!   [`Session`](engine::Session) loop defined in [`fdm::engine`];
//! * [`lint`] — elaboration-time static verification: proves the paper's
//!   structural invariants (FIFO sizing, halo-seam coverage, bank/port
//!   demand, legal elastic decompositions, schedule deadlock-freedom) in
//!   `O(config)` time and emits stable `FDX0xx` diagnostics; constructors
//!   refuse Error-level configurations, and the `fdmax-lint` CLI
//!   (workspace crate `crates/lint`) lints config files;
//! * [`resilience`] — structured errors ([`FdmaxError`]), the
//!   graceful-degradation policy (checkpoints, rollback-and-retry, method
//!   and software fallbacks) and the [`RecoveryReport`] tallying what a
//!   faulty run actually did; fault campaigns themselves live in
//!   [`memmodel::faults`];
//! * [`service`] — the resilient multi-job solve service: bounded
//!   admission, per-job deadlines and cancellation, a stall watchdog,
//!   per-rung circuit breakers and the ordered fallback chain
//!   `DetailedSim -> HwReferenceEngine -> SweepEngine -> EstimateEngine`;
//! * [`durability`] — the write-ahead job journal, persisted engine
//!   checkpoints and the crash-recovery supervisor: a restarted
//!   [`service::SolveService`] replays the journal, re-admits
//!   interrupted jobs and resumes them to bit-identical results;
//! * [`accelerator`] — the user-facing single-solve API.
//!
//! # Quickstart
//!
//! ```
//! use fdm::prelude::*;
//! use fdmax::accelerator::{Accelerator, HwUpdateMethod};
//! use fdmax::config::FdmaxConfig;
//!
//! let problem = LaplaceProblem::builder(48, 48)
//!     .boundary(DirichletBoundary::hot_top(1.0))
//!     .stop(1e-4, 100_000)
//!     .build()
//!     .expect("valid problem")
//!     .discretize::<f32>();
//!
//! let accel = Accelerator::new(FdmaxConfig::default()).expect("valid config");
//! let outcome = accel
//!     .solve(&problem, HwUpdateMethod::Jacobi)
//!     .expect("solve succeeds");
//! assert!(outcome.converged);
//! println!("{} cycles, {:?}", outcome.report.cycles(), outcome.report.elastic());
//! ```

pub mod accelerator;
pub mod analysis;
pub mod array;
pub mod config;
pub mod dse;
pub mod durability;
pub mod elastic;
pub mod engine;
pub mod lint;
pub mod mapping;
pub mod pe;
pub mod perf_model;
pub mod reference;
pub mod report;
pub mod resilience;
pub mod service;
pub mod sim;
pub mod trace;
pub mod volume;

pub use accelerator::{Accelerator, HwUpdateMethod, SolveOutcome};
pub use analysis::{
    analyze_plan, certify_band_plan, AnalysisReport, BandPlan, PrecisionClass, RungBudget,
    SolvePlan,
};
pub use config::{ConfigError, FdmaxConfig};
pub use elastic::ElasticConfig;
pub use lint::{DiagCode, Diagnostic, LintReport, LintTarget, ServiceSpec, Severity};
pub use report::SimReport;
pub use resilience::{FdmaxError, RecoveryReport, ResiliencePolicy};
pub use service::{
    BreakerConfig, BreakerState, JobId, JobSpec, JobTicket, Rung, ServiceConfig, ServiceReport,
    ServiceStats, SolveService, SubmitError,
};
