//! Static solve-plan analysis: convergence-budget proofs, precision-floor
//! checks and strip-schedule race certification (FDX015–FDX019).
//!
//! The structural lints (FDX001–FDX014) answer "can this configuration
//! run at all?". This module answers the questions that actually sink
//! production jobs after the structure checks out:
//!
//! * **FDX015** — can this job converge inside its iteration budget on
//!   *any* rung of the fallback chain? The five-point Laplacian's
//!   spectral radii ([`fdm::theory`]) give sound per-rung iteration
//!   bounds from the requested tolerance alone, and
//!   [`crate::perf_model`] prices each iteration in cycles, so
//!   infeasibility is provable at admission time instead of discovered
//!   at the deadline.
//! * **FDX016** — is the tolerance even representable at the chosen
//!   precision? Update norms plateau near
//!   `machine_eps * scale * sqrt(interior)` instead of decaying to
//!   zero; a tolerance below that floor only ever ends by stall
//!   watchdog.
//! * **FDX017** — does the durability cadence do anything for jobs the
//!   budget analysis proves will finish before their first checkpoint?
//! * **FDX018** — is the strip-parallel band plan race-free? A dataflow
//!   pass over the [`fdm::engine::ParallelSweepEngine`] band geometry
//!   proves band disjointness and fixed-order fold determinism.
//! * **FDX019** — which rungs of the fallback chain are statically dead
//!   for this job class?
//!
//! Soundness contract (DESIGN.md §14): every lower bound is *sound*
//! (never exceeds the true iteration count of the rung it bounds), and
//! every upper bound is conservative; a job is rejected only when **no**
//! rung can feasibly finish. `tests/analysis_soundness.rs` validates the
//! contract against actual solver runs over DetRng-sampled configs.

use crate::accelerator::HwUpdateMethod;
use crate::config::FdmaxConfig;
use crate::elastic::ElasticConfig;
use crate::lint::{DiagCode, Diagnostic, LintReport, ServiceSpec, Severity};
use crate::perf_model;
use core::ops::Range;
use fdm::kernels::row_bands;
use fdm::precision::{Scalar, F16};
use fdm::theory;

/// The numeric format a solve plan runs at, for the precision-floor
/// analysis (FDX016).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PrecisionClass {
    /// IEEE 754 binary16.
    F16,
    /// IEEE 754 binary32 — the hardware datapath format.
    F32,
    /// IEEE 754 binary64 — the Krylov rung format.
    F64,
}

impl PrecisionClass {
    /// The format's machine epsilon, widened to `f64`.
    pub fn machine_epsilon(&self) -> f64 {
        match self {
            PrecisionClass::F16 => F16::MACHINE_EPSILON,
            PrecisionClass::F32 => <f32 as Scalar>::MACHINE_EPSILON,
            PrecisionClass::F64 => <f64 as Scalar>::MACHINE_EPSILON,
        }
    }

    /// Short human-readable name (`"f16"`, `"f32"`, `"f64"`).
    pub fn name(&self) -> &'static str {
        match self {
            PrecisionClass::F16 => "f16",
            PrecisionClass::F32 => "f32",
            PrecisionClass::F64 => "f64",
        }
    }

    /// Parses a precision name (as written in lint config files).
    pub fn parse(s: &str) -> Option<PrecisionClass> {
        match s {
            "f16" => Some(PrecisionClass::F16),
            "f32" => Some(PrecisionClass::F32),
            "f64" => Some(PrecisionClass::F64),
            _ => None,
        }
    }
}

/// One concrete job as the analyzer sees it: grid, method, stop
/// condition, precision and the boundary scale of the data.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolvePlan {
    /// Grid rows (boundary included).
    pub rows: usize,
    /// Grid columns (boundary included).
    pub cols: usize,
    /// The hardware update method of the primary rungs.
    pub method: HwUpdateMethod,
    /// Convergence threshold on the update norm; `None` for fixed-step
    /// (time-stepping) jobs.
    pub tolerance: Option<f64>,
    /// The job's own iteration cap (or exact step count for fixed-step
    /// jobs).
    pub requested_iterations: usize,
    /// Numeric format of the sweep rungs.
    pub precision: PrecisionClass,
    /// `true` for steady-state equations (Laplace/Poisson), which the
    /// Krylov rung can serve; `false` for time-stepping jobs.
    pub steady_state: bool,
    /// Magnitude of the data: the largest finite `|value|` over the
    /// initial/boundary field. `0.0` (or non-finite) means unknown, and
    /// the scale-dependent checks (FDX015/FDX016) are skipped.
    pub scale: f64,
    /// Worker threads of the strip-parallel rung.
    pub parallel_threads: usize,
    /// Fused sweeps per cache pass on the temporally tiled rung; `<= 1`
    /// means the rung is disabled.
    pub tile_depth: usize,
}

impl SolvePlan {
    /// Interior cells of the grid (zero when the grid has no interior).
    pub fn interior_cells(&self) -> usize {
        self.rows.saturating_sub(2) * self.cols.saturating_sub(2)
    }

    /// `true` when the scale-dependent analyses can run.
    fn has_scale(&self) -> bool {
        self.scale.is_finite() && self.scale > 0.0
    }

    /// `true` when the temporally tiled rung can serve this job: a depth
    /// worth fusing and a data-parallel sweep (the hardware Hybrid's
    /// software equivalent carries a row-order dependency the wavefront
    /// cannot legally reorder).
    pub fn tiled_live(&self) -> bool {
        self.tile_depth > 1 && matches!(self.method, HwUpdateMethod::Jacobi)
    }
}

/// Per-rung feasibility verdict inside an [`AnalysisReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RungBudget {
    /// The rung's name as the service reports it.
    pub rung: &'static str,
    /// `false` when the rung is statically dead for this job class.
    pub reachable: bool,
    /// Sound lower bound on iterations to converge (`None` when the
    /// rung never converges by itself, e.g. the analytic estimate, or
    /// when the job is fixed-step).
    pub lower_bound: Option<u64>,
    /// Conservative upper bound on iterations to converge.
    pub upper_bound: Option<u64>,
    /// Modeled cycles per iteration on this rung.
    pub cycles_per_iteration: u64,
    /// `true` when the rung provably fits the budget, `false` when it
    /// provably does not, `None` bounds leave it at `true` (cannot
    /// disprove).
    pub feasible: bool,
}

/// The analyzer's findings: the lint diagnostics plus the per-rung
/// budget table they were derived from.
#[must_use = "an analysis report changes nothing by itself; check lint() or rungs()"]
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AnalysisReport {
    lint: LintReport,
    rungs: Vec<RungBudget>,
    budget: Option<u64>,
}

impl AnalysisReport {
    /// The lint findings (FDX015–FDX019).
    pub fn lint(&self) -> &LintReport {
        &self.lint
    }

    /// Consumes the report, keeping the lint findings.
    pub fn into_lint(self) -> LintReport {
        self.lint
    }

    /// The per-rung budget table the findings were derived from, in
    /// fallback-chain order.
    pub fn rungs(&self) -> &[RungBudget] {
        &self.rungs
    }

    /// The iteration budget the rungs were held against (`None` when no
    /// deadline bounds the job).
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// `true` when at least one reachable rung provably fits the budget.
    pub fn some_rung_feasible(&self) -> bool {
        self.rungs.iter().any(|r| r.reachable && r.feasible)
    }
}

/// The attainable update-norm floor at `precision` on a grid with
/// `interior_cells` interior points and data of magnitude `scale`.
///
/// Each sweep commits a relative rounding error around the machine
/// epsilon per interior point; the L2 update norm therefore plateaus
/// near `eps * scale * sqrt(interior)`. The division by 4096 is a safety
/// margin — the floor the analyzer enforces is three orders of magnitude
/// *below* the plateau the solver actually measures, so FDX016 never
/// rejects a tolerance a real run could still cross (soundness, DESIGN.md
/// §14).
pub fn attainable_residual_floor(
    precision: PrecisionClass,
    scale: f64,
    interior_cells: usize,
) -> f64 {
    precision.machine_epsilon() * scale * (interior_cells as f64).sqrt() / 4096.0
}

/// Sound two-sided iteration bounds for the sweep rungs of `plan`:
/// `Some((lower, upper))`, or `None` when the job is fixed-step,
/// scale-less, or trivially convergent (tolerance at or above the
/// initial update norm).
///
/// The lower bound assumes the *fastest* plausible start (initial error
/// three orders of magnitude below the data scale) and the method's
/// asymptotic contraction from iteration one, then halves the result;
/// the upper bound assumes the worst start (`scale * sqrt(interior)`)
/// at the slower Jacobi rate and doubles it. A real solve lands in
/// between — `tests/analysis_soundness.rs` checks both sides against
/// measured iteration counts.
pub fn sweep_iteration_bounds(plan: &SolvePlan) -> Option<(u64, u64)> {
    let tol = plan.tolerance?;
    if !plan.has_scale() || tol <= 0.0 || !tol.is_finite() {
        return None;
    }
    let (m, n) = (plan.rows.saturating_sub(2), plan.cols.saturating_sub(2));
    if m == 0 || n == 0 {
        return None;
    }
    let rho_slow = theory::jacobi_spectral_radius(m, n);
    let rho_fast = match plan.method {
        HwUpdateMethod::Jacobi => rho_slow,
        HwUpdateMethod::Hybrid => theory::gauss_seidel_spectral_radius(m, n),
    };
    let r0_floor = plan.scale * 1e-3;
    let r0_ceiling = plan.scale * ((m * n) as f64).sqrt();
    if tol >= r0_ceiling {
        // The very first update norm may already satisfy the tolerance.
        return None;
    }
    let lower = if tol >= r0_floor {
        0
    } else {
        (theory::iterations_for_reduction(rho_fast, r0_floor / tol) / 2.0).floor() as u64
    };
    let upper = (2.0 * theory::iterations_for_reduction(rho_slow, r0_ceiling / tol))
        .ceil()
        .max(1.0) as u64;
    Some((lower, upper))
}

/// Sound two-sided iteration bounds for the Krylov (conjugate-gradient)
/// rung, or `None` when the rung is dead for this job (time-stepping)
/// or the job is not scale/tolerance driven.
///
/// The lower bound is information propagation: one CG iteration extends
/// the Krylov space by one, so a boundary perturbation needs on the
/// order of `min(m, n)` iterations to cross the domain; we claim a
/// quarter of that, and only when the tolerance asks for a real
/// reduction (below `scale / 100`). The upper bound is the classic
/// `(sqrt(kappa)-1)/(sqrt(kappa)+1)` energy-norm contraction, doubled.
pub fn krylov_iteration_bounds(plan: &SolvePlan) -> Option<(u64, u64)> {
    if !plan.steady_state {
        return None;
    }
    let tol = plan.tolerance?;
    if !plan.has_scale() || tol <= 0.0 || !tol.is_finite() {
        return None;
    }
    let (m, n) = (plan.rows.saturating_sub(2), plan.cols.saturating_sub(2));
    if m == 0 || n == 0 {
        return None;
    }
    let lower = if tol < plan.scale / 100.0 {
        (m.min(n) as u64 / 4).max(1)
    } else {
        1
    };
    let rho_cg = theory::cg_error_contraction(m, n);
    let r0_ceiling = plan.scale * ((m * n) as f64).sqrt();
    let upper = if tol >= r0_ceiling {
        1
    } else {
        (2.0 * theory::iterations_for_reduction(rho_cg, r0_ceiling / tol))
            .ceil()
            .max(1.0) as u64
    };
    Some((lower, upper))
}

/// Modeled cycles per sweep iteration of `plan` on `config` (the
/// planner-chosen elastic decomposition), `0` when the grid has no
/// interior to estimate.
fn sweep_cycles_per_iteration(plan: &SolvePlan, config: &FdmaxConfig) -> u64 {
    if plan.rows < 3 || plan.cols < 3 {
        return 0;
    }
    let elastic = ElasticConfig::plan(config, plan.rows, plan.cols);
    perf_model::iteration_estimate(config, &elastic, plan.rows, plan.cols, false).effective_cycles()
}

/// Modeled cycles per Krylov iteration: the matrix-free operator streams
/// the five-point stencil over the interior in f64 (two vectors read,
/// one written per point), priced at DRAM bandwidth.
fn krylov_cycles_per_iteration(plan: &SolvePlan, config: &FdmaxConfig) -> u64 {
    let interior = plan.interior_cells() as u64;
    if interior == 0 {
        return 0;
    }
    config
        .dram()
        .cycles_for_sized_elements(3 * interior, <f64 as Scalar>::BYTES as u64)
}

/// Runs the solve-plan analysis: FDX015 (convergence budget), FDX016
/// (precision floor), FDX017 (checkpoint cadence) and FDX019 (dead
/// rungs). Band-plan certification (FDX018) is separate — see
/// [`certify_band_plan`] — because the band geometry is derived from
/// thread count and grid, not carried by the plan.
pub fn analyze_plan(
    plan: &SolvePlan,
    config: &FdmaxConfig,
    service: Option<&ServiceSpec>,
) -> AnalysisReport {
    let mut report = AnalysisReport::default();

    // The iteration budget: the job's own cap, clamped by the service's
    // per-job cap and deadline when a service fronts the job.
    let mut budget = plan.requested_iterations as u64;
    if let Some(spec) = service {
        budget = budget
            .min(spec.max_job_iterations as u64)
            .min(spec.deadline_iterations);
    }
    report.budget = Some(budget);

    let sweep_bounds = sweep_iteration_bounds(plan);
    let kry_bounds = krylov_iteration_bounds(plan);
    let sweep_cycles = sweep_cycles_per_iteration(plan, config);
    let kry_cycles = krylov_cycles_per_iteration(plan, config);

    let fits = |bounds: Option<(u64, u64)>| -> bool {
        match bounds {
            Some((lower, _)) => lower <= budget,
            None => true,
        }
    };
    let proven = |bounds: Option<(u64, u64)>| -> bool {
        match bounds {
            Some((_, upper)) => upper <= budget,
            None => true,
        }
    };

    let krylov_reachable = plan.steady_state;
    let parallel_live = plan.parallel_threads > 1;
    let tiled_live = plan.tiled_live();
    // The tiled rung advances in whole epochs: a tolerance met at sweep
    // `t` is only *detected* at the next epoch boundary, so its
    // conservative upper bound rounds up to a multiple of the depth.
    // The lower bound is unchanged (fused sweeps are the same sweeps).
    let tiled_bounds = sweep_bounds.map(|(lower, upper)| {
        let k = plan.tile_depth.max(1) as u64;
        (lower, upper.div_ceil(k) * k)
    });
    for (rung, reachable, bounds, cycles) in [
        ("DetailedSim", true, sweep_bounds, sweep_cycles),
        ("HwReference", true, sweep_bounds, sweep_cycles),
        ("ParallelSweep", parallel_live, sweep_bounds, sweep_cycles),
        ("TiledSweep", tiled_live, tiled_bounds, sweep_cycles),
        ("SoftwareSweep", true, sweep_bounds, sweep_cycles),
        ("Krylov", krylov_reachable, kry_bounds, kry_cycles),
        ("Estimate", true, None, 0),
    ] {
        report.rungs.push(RungBudget {
            rung,
            reachable,
            lower_bound: bounds.map(|b| b.0),
            upper_bound: bounds.map(|b| b.1),
            cycles_per_iteration: cycles,
            feasible: fits(bounds),
        });
    }

    // FDX016 first: a tolerance below the precision floor makes the
    // budget analysis moot (the job never converges at any budget).
    let mut floor_violated = false;
    if let Some(tol) = plan.tolerance {
        if plan.has_scale() && plan.interior_cells() > 0 {
            let floor =
                attainable_residual_floor(plan.precision, plan.scale, plan.interior_cells());
            if tol < floor {
                floor_violated = true;
                report.lint.push(
                    Diagnostic::new(
                        DiagCode::PrecisionFloorViolated,
                        "tolerance",
                        format!(
                            "tolerance {tol:.3e} is below the attainable {} update-norm \
                             floor {floor:.3e} on this {}x{} grid (scale {:.3e}): the \
                             solve can only end by stall watchdog or budget exhaustion",
                            plan.precision.name(),
                            plan.rows,
                            plan.cols,
                            plan.scale,
                        ),
                    )
                    .suggest(format!(
                        "raise the tolerance above {floor:.3e} or move to a wider \
                         precision (f64 floor: {:.3e})",
                        attainable_residual_floor(
                            PrecisionClass::F64,
                            plan.scale,
                            plan.interior_cells()
                        ),
                    )),
                );
            }
        }
    }

    // FDX015: rung-by-rung budget feasibility.
    match plan.tolerance {
        Some(tol) if !floor_violated => {
            if let Some((sweep_lb, sweep_ub)) = sweep_bounds {
                let cycles_lb = sweep_lb.saturating_mul(sweep_cycles);
                let seconds_lb = cycles_lb as f64 / config.clock_hz;
                let sweep_fits = sweep_lb <= budget;
                let kry_fits = krylov_reachable && fits(kry_bounds);
                if !sweep_fits && !kry_fits {
                    let reason = if krylov_reachable {
                        format!(
                            "and the Krylov rung needs >= {} (budget {budget})",
                            kry_bounds.map_or(0, |b| b.0),
                        )
                    } else {
                        "and the Krylov rung is dead for time-stepping jobs".to_string()
                    };
                    report.lint.push(
                        Diagnostic::new(
                            DiagCode::ConvergenceBudgetInfeasible,
                            "deadline_iterations",
                            format!(
                                "no rung can reach tolerance {tol:.3e} inside the budget: \
                                 the sweep rungs need >= {sweep_lb} iterations \
                                 (>= {cycles_lb} cycles, {seconds_lb:.3}s) {reason}",
                            ),
                        )
                        .suggest(format!(
                            "raise the deadline above {sweep_ub} iterations, loosen the \
                             tolerance, or shrink the grid",
                        )),
                    );
                } else if !sweep_fits {
                    report.lint.push(
                        Diagnostic::new(
                            DiagCode::ConvergenceBudgetInfeasible,
                            "deadline_iterations",
                            format!(
                                "only the Krylov rung fits the budget: the sweep rungs \
                                 need >= {sweep_lb} iterations (budget {budget}), so every \
                                 sweep rung burns its circuit breaker before the Krylov \
                                 rung serves the job",
                            ),
                        )
                        .with_severity(Severity::Warn)
                        .suggest(format!(
                            "raise the deadline above {sweep_ub} iterations to give the \
                             sweep rungs a chance, or accept the Krylov-only chain",
                        )),
                    );
                } else if !proven(sweep_bounds) {
                    report.lint.push(
                        Diagnostic::new(
                            DiagCode::ConvergenceBudgetInfeasible,
                            "deadline_iterations",
                            format!(
                                "convergence unproven inside the budget: the sweep rungs \
                                 need between {sweep_lb} and {sweep_ub} iterations and the \
                                 budget is {budget}",
                            ),
                        )
                        .with_severity(Severity::Warn)
                        .suggest(format!(
                            "raise the deadline above {sweep_ub} iterations for a proof",
                        )),
                    );
                }
            }
        }
        None => {
            let steps = plan.requested_iterations as u64;
            if steps > budget {
                report.lint.push(
                    Diagnostic::new(
                        DiagCode::ConvergenceBudgetInfeasible,
                        "deadline_iterations",
                        format!(
                            "a fixed {steps}-step run exceeds the budget of {budget} \
                             iterations: the service will degrade the job to the \
                             analytic rung at the deadline",
                        ),
                    )
                    .with_severity(Severity::Warn)
                    .suggest(format!("raise the deadline above {steps} iterations")),
                );
            }
        }
        _ => {}
    }

    // FDX017: durability cadence vs. the expected completion window.
    // On the tiled rung checkpoints fire at epoch crossings, so the
    // cadence the job actually experiences there rounds up to a
    // multiple of the tile depth.
    if let Some(spec) = service {
        if let Some(cadence) = spec.checkpoint_every.filter(|&c| c > 0) {
            let effective_cadence = if tiled_live {
                let k = plan.tile_depth as u64;
                cadence.div_ceil(k) * k
            } else {
                cadence
            };
            let window = match (plan.tolerance, sweep_bounds) {
                (Some(_), Some((_, upper))) if upper <= budget => Some(upper),
                (None, _) => Some(plan.requested_iterations as u64),
                _ => None,
            };
            if let Some(window) = window {
                if effective_cadence >= window && cadence < spec.deadline_iterations {
                    let epoch_note = if effective_cadence != cadence {
                        format!(" (epoch-rounded to {effective_cadence} on the tiled rung)")
                    } else {
                        String::new()
                    };
                    report.lint.push(
                        Diagnostic::new(
                            DiagCode::CheckpointCadenceMismatch,
                            "checkpoint_every",
                            format!(
                                "checkpoint cadence {cadence}{epoch_note} is no faster \
                                 than the job's expected completion window of {window} \
                                 iterations: a crash always replays from iteration \
                                 zero, so durability buys nothing for this job class",
                            ),
                        )
                        .suggest(format!(
                            "checkpoint at least every {} iterations or drop \
                             durability for these jobs",
                            (window / 4).max(1),
                        )),
                    );
                }
            }
        }
    }

    // FDX019: statically dead rungs of the fallback chain.
    if !plan.steady_state {
        report.lint.push(
            Diagnostic::new(
                DiagCode::DeadFallbackRungs,
                "pde",
                "the Krylov rung is dead for this job: time-stepping equations skip \
                 it as not applicable, so the operational chain ends at the software \
                 sweep rung"
                    .to_string(),
            )
            .suggest("plan capacity for the sweep rungs alone".to_string()),
        );
    }
    if !parallel_live {
        report.lint.push(
            Diagnostic::new(
                DiagCode::DeadFallbackRungs,
                "parallel_threads",
                format!(
                    "the strip-parallel rung degenerates to the serial software rung \
                     at {} thread(s): two chain positions run the same engine",
                    plan.parallel_threads,
                ),
            )
            .suggest("run the service with parallel_threads >= 2".to_string()),
        );
    }

    // FDX022: tile depth vs. the grid/strip geometry of the tiled rung.
    if tiled_live {
        let k = plan.tile_depth;
        let interior = plan.rows.saturating_sub(2);
        if interior > 0 && k >= interior {
            report.lint.push(
                Diagnostic::new(
                    DiagCode::TileDepthGeometry,
                    "tile_depth",
                    format!(
                        "tile depth {k} is at least the interior height {interior} of \
                         this {}x{} grid: the k-deep halo trapezoid consumes the whole \
                         interior, so the tiled rung degenerates to serial \
                         recomputation with no cache reuse to show for it",
                        plan.rows, plan.cols,
                    ),
                )
                .with_severity(Severity::Error)
                .suggest(format!(
                    "lower tile_depth below {interior} or disable the rung \
                     (tile_depth = 1) for grids this small",
                )),
            );
        } else if interior > 0 && plan.parallel_threads.saturating_mul(k) > interior {
            let widest = interior / k;
            report.lint.push(
                Diagnostic::new(
                    DiagCode::TileDepthGeometry,
                    "tile_depth",
                    format!(
                        "tile depth {k} forces the halo-aware band split of the \
                         {interior}-row interior down to {} band(s), below the \
                         requested {} thread(s): the tiled rung silently sheds \
                         parallelism on this grid",
                        widest.max(1),
                        plan.parallel_threads,
                    ),
                )
                .suggest(format!(
                    "lower tile_depth to at most {} or accept the coarser split",
                    (interior / plan.parallel_threads.max(1)).max(1),
                )),
            );
        }
        if let Some(spec) = service {
            if k > spec.max_job_iterations {
                report.lint.push(
                    Diagnostic::new(
                        DiagCode::TileDepthGeometry,
                        "tile_depth",
                        format!(
                            "tile depth {k} exceeds the service's per-job iteration \
                             cap of {}: every epoch truncates below the configured \
                             depth, so the cache reuse the depth was chosen for is \
                             never achieved",
                            spec.max_job_iterations,
                        ),
                    )
                    .suggest(format!(
                        "lower tile_depth to at most {}",
                        spec.max_job_iterations.max(1),
                    )),
                );
            }
        }
    }

    report
}

/// A strip-parallel band plan as the race certifier sees it: the grid it
/// covers and the interior row ranges its workers sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BandPlan {
    /// Grid rows (boundary included).
    pub rows: usize,
    /// Grid columns (boundary included).
    pub cols: usize,
    /// Worker bands over interior rows, in fold order.
    pub bands: Vec<Range<usize>>,
}

impl BandPlan {
    /// The plan [`fdm::engine::ParallelSweepEngine`] derives for
    /// `threads` workers — by construction ascending, disjoint and
    /// contiguous, so it always certifies clean.
    pub fn from_threads(rows: usize, cols: usize, threads: usize) -> Self {
        BandPlan {
            rows,
            cols,
            bands: row_bands(rows, threads.max(1)),
        }
    }
}

/// Certifies a strip-parallel band plan race-free (FDX018).
///
/// A sound plan partitions the interior rows `1..rows-1` into non-empty,
/// strictly ascending, contiguous bands. Each violation gets its own
/// finding:
///
/// * a band touching row 0 or `rows-1` writes the Dirichlet boundary;
/// * overlapping or unordered bands alias rows — two workers write the
///   same row concurrently and the per-row diff² partials of the shared
///   rows are folded twice, so the parallel residual diverges from the
///   serial engine;
/// * gaps leave interior rows no worker sweeps;
/// * an empty band is a worker with no work (and breaks the fold-order
///   induction).
pub fn certify_band_plan(plan: &BandPlan) -> LintReport {
    let mut report = LintReport::new();
    let interior_rows = plan.rows.saturating_sub(2);
    if interior_rows == 0 || plan.cols.saturating_sub(2) == 0 {
        if !plan.bands.is_empty() {
            report.push(Diagnostic::new(
                DiagCode::BandPlanRace,
                "bands",
                format!(
                    "{} band(s) scheduled on a {}x{} grid with no interior",
                    plan.bands.len(),
                    plan.rows,
                    plan.cols,
                ),
            ));
        }
        return report;
    }
    if plan.bands.is_empty() {
        report.push(
            Diagnostic::new(
                DiagCode::BandPlanRace,
                "bands",
                format!("empty band plan: {interior_rows} interior row(s) are never swept",),
            )
            .suggest("derive the plan with BandPlan::from_threads".to_string()),
        );
        return report;
    }
    for (i, band) in plan.bands.iter().enumerate() {
        if band.start >= band.end {
            report.push(Diagnostic::new(
                DiagCode::BandPlanRace,
                "bands",
                format!(
                    "band {i} ({}..{}) is empty: a worker with no rows breaks the \
                     fixed-order fold induction",
                    band.start, band.end,
                ),
            ));
            continue;
        }
        if band.start < 1 || band.end > plan.rows - 1 {
            report.push(Diagnostic::new(
                DiagCode::BandPlanRace,
                "bands",
                format!(
                    "band {i} ({}..{}) leaves the interior 1..{}: it writes the \
                     Dirichlet boundary",
                    band.start,
                    band.end,
                    plan.rows - 1,
                ),
            ));
        }
    }
    for (i, pair) in plan.bands.windows(2).enumerate() {
        let (a, b) = (&pair[0], &pair[1]);
        if a.start >= a.end || b.start >= b.end {
            continue; // already reported as empty
        }
        if b.start < a.end {
            report.push(
                Diagnostic::new(
                    DiagCode::BandPlanRace,
                    "bands",
                    format!(
                        "bands {i} ({}..{}) and {} ({}..{}) alias rows {}..{}: two \
                         workers write the same rows and their diff-squared partials \
                         fold twice",
                        a.start,
                        a.end,
                        i + 1,
                        b.start,
                        b.end,
                        b.start.max(a.start),
                        a.end.min(b.end).max(b.start),
                    ),
                )
                .suggest("make consecutive bands contiguous and ascending".to_string()),
            );
        } else if b.start > a.end {
            report.push(Diagnostic::new(
                DiagCode::BandPlanRace,
                "bands",
                format!(
                    "gap between band {i} ({}..{}) and band {} ({}..{}): rows {}..{} \
                     are never swept",
                    a.start,
                    a.end,
                    i + 1,
                    b.start,
                    b.end,
                    a.end,
                    b.start,
                ),
            ));
        }
    }
    let non_empty: Vec<&Range<usize>> = plan.bands.iter().filter(|b| b.start < b.end).collect();
    if let (Some(first), Some(last)) = (non_empty.first(), non_empty.last()) {
        if first.start > 1 {
            report.push(Diagnostic::new(
                DiagCode::BandPlanRace,
                "bands",
                format!(
                    "rows 1..{} precede the first band and are never swept",
                    first.start,
                ),
            ));
        }
        if last.end < plan.rows - 1 {
            report.push(Diagnostic::new(
                DiagCode::BandPlanRace,
                "bands",
                format!(
                    "rows {}..{} follow the last band and are never swept",
                    last.end,
                    plan.rows - 1,
                ),
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(rows: usize, cols: usize, tol: Option<f64>, cap: usize) -> SolvePlan {
        SolvePlan {
            rows,
            cols,
            method: HwUpdateMethod::Jacobi,
            tolerance: tol,
            requested_iterations: cap,
            precision: PrecisionClass::F32,
            steady_state: true,
            scale: 1.0,
            parallel_threads: 4,
            tile_depth: 4,
        }
    }

    #[test]
    fn generous_budget_is_clean() {
        let p = plan(48, 48, Some(1e-4), 500_000);
        let r = analyze_plan(&p, &FdmaxConfig::default(), None);
        assert!(r.lint().is_clean(), "{}", r.lint());
        assert!(r.some_rung_feasible());
    }

    #[test]
    fn impossible_budget_is_fdx015_error() {
        let mut p = plan(96, 96, Some(1e-8), 500_000);
        p.steady_state = false; // kill the Krylov escape hatch
        let spec = ServiceSpec {
            queue_capacity: 4,
            max_job_iterations: 500_000,
            deadline_iterations: 50,
            checkpoint_every: None,
            journal_dir: None,
        };
        let r = analyze_plan(&p, &FdmaxConfig::default(), Some(&spec));
        assert!(r.lint().has(DiagCode::ConvergenceBudgetInfeasible));
        assert!(r.lint().has_errors());
        assert!(!r.some_rung_feasible() || !r.rungs()[0].feasible);
    }

    #[test]
    fn krylov_escape_downgrades_fdx015_to_warn() {
        let p = plan(96, 96, Some(1e-6), 500_000);
        let spec = ServiceSpec {
            queue_capacity: 4,
            max_job_iterations: 500_000,
            deadline_iterations: 200,
            checkpoint_every: None,
            journal_dir: None,
        };
        let r = analyze_plan(&p, &FdmaxConfig::default(), Some(&spec));
        assert!(r.lint().has(DiagCode::ConvergenceBudgetInfeasible));
        assert!(!r.lint().has_errors(), "{}", r.lint());
    }

    #[test]
    fn precision_floor_is_fdx016_error() {
        let p = plan(32, 32, Some(1e-12), 500_000);
        let r = analyze_plan(&p, &FdmaxConfig::default(), None);
        assert!(r.lint().has(DiagCode::PrecisionFloorViolated));
        assert!(r.lint().has_errors());
        // The same tolerance is fine at f64.
        let mut p64 = p;
        p64.precision = PrecisionClass::F64;
        let r64 = analyze_plan(&p64, &FdmaxConfig::default(), None);
        assert!(!r64.lint().has(DiagCode::PrecisionFloorViolated));
    }

    #[test]
    fn nan_scale_skips_scale_dependent_checks() {
        let mut p = plan(32, 32, Some(1e-12), 500_000);
        p.scale = f64::NAN;
        let r = analyze_plan(&p, &FdmaxConfig::default(), None);
        assert!(!r.lint().has(DiagCode::PrecisionFloorViolated));
        assert!(!r.lint().has(DiagCode::ConvergenceBudgetInfeasible));
    }

    #[test]
    fn dead_rungs_are_fdx019() {
        let mut p = plan(32, 32, None, 100);
        p.steady_state = false;
        p.parallel_threads = 1;
        let r = analyze_plan(&p, &FdmaxConfig::default(), None);
        let dead: Vec<_> = r
            .lint()
            .diagnostics()
            .iter()
            .filter(|d| d.code == DiagCode::DeadFallbackRungs)
            .collect();
        assert_eq!(dead.len(), 2);
        assert!(!r.lint().has_errors());
    }

    #[test]
    fn checkpoint_cadence_mismatch_is_fdx017() {
        let p = plan(16, 16, Some(1e-3), 500_000);
        let spec = ServiceSpec {
            queue_capacity: 4,
            max_job_iterations: 500_000,
            deadline_iterations: 1_000_000,
            checkpoint_every: Some(500_000),
            journal_dir: Some("/tmp/j".to_string()),
        };
        let r = analyze_plan(&p, &FdmaxConfig::default(), Some(&spec));
        assert!(
            r.lint().has(DiagCode::CheckpointCadenceMismatch),
            "{}",
            r.lint()
        );
        assert!(!r.lint().has_errors());
    }

    #[test]
    fn derived_band_plans_certify_clean() {
        for rows in [3, 4, 8, 33, 100] {
            for threads in [1, 2, 3, 7, 64] {
                let plan = BandPlan::from_threads(rows, 16, threads);
                let report = certify_band_plan(&plan);
                assert!(report.is_clean(), "rows={rows} threads={threads}: {report}");
            }
        }
    }

    #[test]
    fn aliasing_bands_are_fdx018() {
        let plan = BandPlan {
            rows: 10,
            cols: 10,
            bands: vec![1..5, 4..9],
        };
        let report = certify_band_plan(&plan);
        assert!(report.has(DiagCode::BandPlanRace));
        assert!(report.has_errors());
    }

    #[test]
    // Single-band plans below really are one `Range` per plan.
    #[allow(clippy::single_range_in_vec_init)]
    fn gaps_boundary_writes_and_empty_bands_are_fdx018() {
        for bands in [
            vec![1..3, 5..9],       // gap
            vec![0..5, 5..9],       // boundary write (top)
            vec![1..5, 5..10],      // boundary write (bottom)
            vec![1..5, 5..5, 5..9], // empty band
            vec![2..9],             // uncovered prefix
            vec![1..8],             // uncovered suffix
            vec![],                 // no bands at all
        ] {
            let plan = BandPlan {
                rows: 10,
                cols: 10,
                bands,
            };
            let report = certify_band_plan(&plan);
            assert!(report.has(DiagCode::BandPlanRace), "{:?}", plan.bands);
        }
    }

    #[test]
    fn sweep_bounds_order_sanely() {
        let p = plan(40, 40, Some(1e-6), 500_000);
        let (lb, ub) = sweep_iteration_bounds(&p).unwrap();
        assert!(lb > 0 && lb < ub, "lb={lb} ub={ub}");
        let mut hybrid = p;
        hybrid.method = HwUpdateMethod::Hybrid;
        let (hlb, _) = sweep_iteration_bounds(&hybrid).unwrap();
        assert!(hlb <= lb, "Hybrid lower bound must not exceed Jacobi's");
        let (klb, kub) = krylov_iteration_bounds(&p).unwrap();
        assert!(klb <= kub);
        assert!(kub < ub, "CG upper bound should beat Jacobi's");
    }

    #[test]
    fn fixed_step_overrun_warns() {
        let p = plan(16, 16, None, 500);
        let spec = ServiceSpec {
            queue_capacity: 4,
            max_job_iterations: 1_000,
            deadline_iterations: 100,
            checkpoint_every: None,
            journal_dir: None,
        };
        let r = analyze_plan(&p, &FdmaxConfig::default(), Some(&spec));
        assert!(r.lint().has(DiagCode::ConvergenceBudgetInfeasible));
        assert!(!r.lint().has_errors());
    }
}
