//! Accelerator configuration.
//!
//! The paper's evaluated design point (§6.1): an 8x8 PE array, eight
//! 64-entry nFIFOs and pFIFOs, three 4 KB buffers with 32 banks each,
//! 200 MHz clock, 128 GB/s HBM. All of these are sweepable — Fig. 9
//! varies the array size, the DRAM bandwidth and the bank count.

use core::fmt;
use memmodel::dram::DramModel;
use memmodel::layout::LayoutParams;

/// Errors from validating an [`FdmaxConfig`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A structural count (PEs, FIFO depth, banks, buffer depth) is zero.
    ZeroParameter {
        /// Name of the zero parameter.
        name: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroParameter { name } => {
                write!(f, "configuration parameter {name} must be nonzero")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Structural and clocking parameters of one FDMAX instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FdmaxConfig {
    /// Physical PE array rows (the reconfiguration granularity: subarrays
    /// are chains of whole rows).
    pub pe_rows: usize,
    /// Physical PE array columns.
    pub pe_cols: usize,
    /// Entries per nFIFO/pFIFO. Bounds the row-block height of the
    /// mapping (a column batch may not produce more halo entries than the
    /// FIFO can hold).
    pub fifo_depth: usize,
    /// Banks per on-chip buffer (`CurBuffer`, `OffsetBuffer`, `NextBuffer` each
    /// have this many single-ported banks).
    pub buffer_banks: usize,
    /// Elements per bank (default 32, giving 4 KB buffers).
    pub buffer_depth: usize,
    /// Clock frequency in Hz.
    pub clock_hz: f64,
    /// Off-chip DRAM bandwidth in GB/s.
    pub dram_gb_s: f64,
}

impl FdmaxConfig {
    /// The paper's default configuration.
    pub fn paper_default() -> Self {
        FdmaxConfig {
            pe_rows: 8,
            pe_cols: 8,
            fifo_depth: 64,
            buffer_banks: 32,
            buffer_depth: 32,
            clock_hz: 200e6,
            dram_gb_s: 128.0,
        }
    }

    /// A square `s x s` variant of the default (Fig. 9 sweep).
    pub fn square(s: usize) -> Self {
        FdmaxConfig {
            pe_rows: s,
            pe_cols: s,
            ..Self::paper_default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroParameter`] when any structural count is
    /// zero (clock/bandwidth positivity is enforced by [`DramModel`]).
    pub fn validate(&self) -> Result<(), ConfigError> {
        let checks: [(&'static str, usize); 5] = [
            ("pe_rows", self.pe_rows),
            ("pe_cols", self.pe_cols),
            ("fifo_depth", self.fifo_depth),
            ("buffer_banks", self.buffer_banks),
            ("buffer_depth", self.buffer_depth),
        ];
        for (name, v) in checks {
            if v == 0 {
                return Err(ConfigError::ZeroParameter { name });
            }
        }
        Ok(())
    }

    /// Total number of PEs.
    pub fn pe_count(&self) -> usize {
        self.pe_rows * self.pe_cols
    }

    /// Capacity of each on-chip buffer in elements.
    pub fn buffer_capacity_elements(&self) -> usize {
        self.buffer_banks * self.buffer_depth
    }

    /// The DRAM model at this configuration's clock.
    pub fn dram(&self) -> DramModel {
        DramModel::new(self.dram_gb_s, self.clock_hz)
    }

    /// The layout-model parameters for this configuration (for the
    /// Table 3 area/power report).
    pub fn layout_params(&self) -> LayoutParams {
        LayoutParams {
            pe_rows: self.pe_rows,
            pe_cols: self.pe_cols,
            fifo_count: self.pe_rows,
            fifo_entries: self.fifo_depth,
            buffer_banks: self.buffer_banks,
            ..LayoutParams::fdmax_default()
        }
    }

    /// `true` when an `rows x cols` grid fits entirely on chip (per-buffer
    /// capacity), so iterations run with no DRAM traffic.
    pub fn grid_fits_on_chip(&self, rows: usize, cols: usize) -> bool {
        rows.saturating_mul(cols) <= self.buffer_capacity_elements()
    }
}

impl Default for FdmaxConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl fmt::Display for FdmaxConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FDMAX {}x{} PEs, {}-entry FIFOs, {} banks x {} x3 buffers, {:.0} MHz, {:.0} GB/s",
            self.pe_rows,
            self.pe_cols,
            self.fifo_depth,
            self.buffer_banks,
            self.buffer_depth,
            self.clock_hz / 1e6,
            self.dram_gb_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_6_1() {
        let c = FdmaxConfig::paper_default();
        assert_eq!(c.pe_count(), 64);
        assert_eq!(c.fifo_depth, 64);
        assert_eq!(c.buffer_capacity_elements(), 1024, "4 KB of f32");
        assert!((c.dram().elements_per_cycle() - 160.0).abs() < 1e-9);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn square_sweep() {
        let c = FdmaxConfig::square(12);
        assert_eq!(c.pe_count(), 144);
        assert_eq!(c.fifo_depth, 64, "FIFO depth inherited from default");
        assert_eq!(c.layout_params().fifo_count, 12, "FIFOs scale with rows");
    }

    #[test]
    fn zero_parameters_rejected() {
        for field in 0..5 {
            let mut c = FdmaxConfig::paper_default();
            match field {
                0 => c.pe_rows = 0,
                1 => c.pe_cols = 0,
                2 => c.fifo_depth = 0,
                3 => c.buffer_banks = 0,
                _ => c.buffer_depth = 0,
            }
            let err = c.validate().unwrap_err();
            assert!(err.to_string().contains("nonzero"));
        }
    }

    #[test]
    fn on_chip_residency() {
        let c = FdmaxConfig::paper_default();
        assert!(c.grid_fits_on_chip(32, 32));
        assert!(!c.grid_fits_on_chip(33, 32));
        assert!(!c.grid_fits_on_chip(100, 100));
    }

    #[test]
    fn layout_params_reproduce_table3() {
        let r = memmodel::layout::LayoutReport::new(&FdmaxConfig::paper_default().layout_params());
        assert!((r.total_power_mw() - 1711.27).abs() < 0.5);
    }

    #[test]
    fn display_mentions_dimensions() {
        let s = FdmaxConfig::paper_default().to_string();
        assert!(s.contains("8x8"));
        assert!(s.contains("128 GB/s"));
    }
}
