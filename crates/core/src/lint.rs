//! Elaboration-time static verification of accelerator configurations.
//!
//! The paper states structural invariants — FIFO depths sized to the
//! subarray chain, `HaloAdders` covering every column-batch seam, bank
//! counts matching PE-array port demand, legal `R×C -> 1×(C·k)` elastic
//! decompositions — that the simulator otherwise only discovers
//! dynamically, deep inside [`crate::sim::DetailedSim`], as panics or as
//! backpressure/overflow "faults". This module proves (or refutes) those
//! invariants in `O(config)` time without simulating a single cycle,
//! RTL-lint style.
//!
//! Every finding is a [`Diagnostic`] with a stable code (`FDX0xx`), a
//! [`Severity`], the offending configuration field and a suggested fix;
//! a run of the analyzer returns a [`LintReport`].
//!
//! Three layers consume the analyzer:
//!
//! * [`crate::accelerator::Accelerator`] and [`crate::sim::DetailedSim`]
//!   constructors refuse Error-level configurations with
//!   [`crate::resilience::FdmaxError::Lint`];
//! * the `fdmax-lint` CLI (workspace crate `crates/lint`) lints config
//!   files and prints a rustc-style report;
//! * the differential-validation harness (`tests/lint_differential.rs`)
//!   proves the analyzer against the cycle-accurate simulator: every
//!   lint-clean random configuration simulates with zero
//!   backpressure/overflow events, and every diagnostic code has a
//!   witness configuration that demonstrably misbehaves when the lint
//!   gate is bypassed.
//!
//! # Soundness argument (lint-clean ⇒ stall-free steady state)
//!
//! The steady-state schedule of one `(row block, column batch)` tile is
//! fully determined by [`crate::mapping`]: a block of height `h` pushes
//! exactly `h` entries to nFIFO and `h` to pFIFO per batch (one per valid
//! centre row), and the *next* batch pops exactly `h` from each. The
//! sub-FIFO backing queues hold `depth + 1` entries. Therefore:
//!
//! 1. occupancy during a batch is bounded by `h` (+1 transient), so
//!    `h <= depth` (checked by [`DiagCode::FifoDepthExceeded`]) implies no
//!    backpressure push ever blocks;
//! 2. a batch at columns `[c0, c1)` with `c0 > 0` pops entries its
//!    predecessor pushed; contiguity of the batch sequence (checked by
//!    [`DiagCode::HaloSeamUncovered`]) and a first batch at `c0 == 0`
//!    (checked by [`DiagCode::ScheduleUnderflow`]) imply every pop finds
//!    its entry — no underflow, no deadlock;
//! 3. batch width `<= chain width` (also [`DiagCode::HaloSeamUncovered`])
//!    implies every column has a PE and the last PE's pFIFO push pairs
//!    with exactly one `HaloAdder` completion in the following batch.
//!
//! Bank conflicts ([`DiagCode::BankOversubscribed`]) and off-chip
//! streaming ([`DiagCode::OffChipResident`]) cost cycles but never
//! correctness, so they are Warn/Info, not Error — the paper's own
//! default (64 PEs on 32 banks) oversubscribes by design.

use crate::accelerator::HwUpdateMethod;
use crate::config::FdmaxConfig;
use crate::elastic::ElasticConfig;
use crate::mapping::{col_batches, row_blocks, row_strips, ColBatch, RowRange};
use crate::perf_model::iteration_estimate;
use core::fmt;

/// How bad a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth knowing, nothing to fix.
    Info,
    /// The configuration works but wastes cycles or hardware.
    Warn,
    /// The configuration violates a structural invariant; constructors
    /// refuse it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        })
    }
}

/// Defines [`DiagCode`] from one table: for every code its rustdoc
/// comment, stable `FDX0xx` string, fixed [`Severity`] and one-line
/// title. The rustdoc comment doubles as the long-form explanation
/// returned by [`DiagCode::explanation`] (and printed by
/// `fdmax-lint --explain`), so the CLI documentation can never drift
/// from the API documentation.
macro_rules! diag_codes {
    (@count) => { 0usize };
    (@count $head:ident $($tail:ident)*) => { 1usize + diag_codes!(@count $($tail)*) };
    ($($(#[doc = $doc:literal])+ $variant:ident = ($code:literal, $sev:ident, $title:literal),)+) => {
        /// Stable diagnostic codes. The numeric part never changes
        /// meaning; new checks get new numbers.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub enum DiagCode {
            $($(#[doc = $doc])+ $variant,)+
        }

        /// All codes, in numeric order (used by the CLI's `--explain`
        /// listing and the witness coverage test).
        pub const ALL_CODES: [DiagCode; diag_codes!(@count $($variant)+)] =
            [$(DiagCode::$variant,)+];

        impl DiagCode {
            /// The stable `FDX0xx` code string.
            pub fn as_str(&self) -> &'static str {
                match self { $(DiagCode::$variant => $code,)+ }
            }

            /// The fixed severity of this code. Individual findings can
            /// override it via [`Diagnostic::severity`] (e.g. FDX013's
            /// journal collision errors where its cadence check warns).
            pub fn severity(&self) -> Severity {
                match self { $(DiagCode::$variant => Severity::$sev,)+ }
            }

            /// One-line description of what the code means.
            pub fn title(&self) -> &'static str {
                match self { $(DiagCode::$variant => $title,)+ }
            }

            /// The long-form documentation of this code — the exact text
            /// of the variant's rustdoc comment, which `fdmax-lint
            /// --explain FDX0xx` prints.
            pub fn explanation(&self) -> &'static str {
                match self { $(DiagCode::$variant => concat!($($doc, "\n"),+),)+ }
            }
        }
    };
}

diag_codes! {
    /// FDX001: a structural count (PEs, FIFO depth, banks, depth) is zero.
    ZeroParameter = ("FDX001", Error, "structural parameter is zero"),
    /// FDX002: the elastic decomposition does not fit the physical array.
    ElasticMismatch = ("FDX002", Error, "elastic decomposition does not fit the array"),
    /// FDX003: a row block is taller than the sub-FIFO depth, so nFIFO/
    /// pFIFO pushes outrun pops and the producer backpressure-stalls (or
    /// overflows in hardware without interlocks).
    FifoDepthExceeded = ("FDX003", Error, "row block exceeds sub-FIFO depth"),
    /// FDX004: the column-batch sequence leaves a seam no `HaloAdder`
    /// covers — a gap/overlap between consecutive batches, a batch wider
    /// than the chain, or columns never processed.
    HaloSeamUncovered = ("FDX004", Error, "column-batch seam not covered by a HaloAdder"),
    /// FDX005: concurrent per-cycle SRAM port demand exceeds the bank
    /// count; every tile stalls by the oversubscription factor.
    BankOversubscribed =
        ("FDX005", Warn, "SRAM banks oversubscribed by concurrent PE accesses"),
    /// FDX006: part of the array can never do useful work on this grid
    /// (more subarrays than interior rows, or a chain wider than the
    /// grid's columns).
    DeadSubarrays = ("FDX006", Warn, "part of the array is idle on this grid"),
    /// FDX007: the grid has no interior to iterate on.
    GridTooSmall = ("FDX007", Error, "grid has no interior"),
    /// FDX008: the Hybrid update method degrades to Jacobi operands at
    /// row-block and column-batch seams of this decomposition.
    HybridSeamFallback = ("FDX008", Info, "Hybrid update falls back to Jacobi at seams"),
    /// FDX009: the grid does not fit on chip; every iteration streams
    /// DRAM and may be bandwidth-bound.
    OffChipResident = ("FDX009", Info, "grid streams from DRAM every iteration"),
    /// FDX010: the steady-state schedule pops a FIFO entry no earlier
    /// batch pushed — underflow, which the hardware expresses as
    /// deadlock.
    ScheduleUnderflow = ("FDX010", Error, "steady-state schedule pops an entry never pushed"),
    /// FDX011: the solve service admits more work than its deadline
    /// budget covers — `queue_capacity x max_job_iterations` exceeds
    /// `deadline_iterations`, so a tail job can burn its whole deadline
    /// waiting in the queue and be served only by the degraded analytic
    /// rung.
    ServiceOvercommitted =
        ("FDX011", Warn, "service queue admits more iterations than the deadline budget"),
    /// FDX012: the strip decomposition yields row strips shorter than 3
    /// output rows. Every strip streams `height + 2` input rows for
    /// `height` output rows, so thin strips spend most of their SRAM
    /// traffic on halo rows — a guaranteed slowdown versus a coarser
    /// decomposition of the same grid.
    HaloDominatedStrips = ("FDX012", Warn, "strip decomposition is halo-dominated"),
    /// FDX013: the durability layer is configured so it cannot do its
    /// job — a checkpoint cadence no job can ever reach before its
    /// deadline (recovery then always replays from iteration zero), or,
    /// at Error severity, two services sharing one journal directory
    /// (their append-only journals interleave and corrupt each other's
    /// recovery).
    DurabilityMisconfigured =
        ("FDX013", Warn, "durability settings cannot protect the jobs they cover"),
    /// FDX014: the assembled CSR system for this grid (values + column
    /// indices + row pointers) exceeds the modeled DRAM capacity, so any
    /// Krylov rung that assembles the matrix cannot hold it off chip.
    /// The matrix-free operator path needs none of that storage.
    KrylovFootprintExceedsDram =
        ("FDX014", Warn, "assembled Krylov matrix exceeds the modeled DRAM capacity"),
    /// FDX015: no rung of the fallback chain can converge inside the
    /// job's iteration budget. The spectral radius of the requested
    /// sweep method on this grid gives a sound lower bound on the
    /// iterations any sweep rung needs to reach the requested tolerance;
    /// when that bound (and, for steady-state jobs, the Krylov rung's
    /// information-propagation bound too) already exceeds
    /// `min(deadline_iterations, max_job_iterations)`, the job is
    /// statically known to burn its whole budget and degrade to the
    /// analytic rung. At Warn severity the same code reports the partial
    /// cases: convergence unproven inside the budget, only the Krylov
    /// rung feasible, or a fixed-step run longer than the deadline
    /// (deliberate degradation, legal but worth seeing).
    ConvergenceBudgetInfeasible =
        ("FDX015", Error, "no fallback rung can converge inside the iteration budget"),
    /// FDX016: the requested tolerance sits below the attainable
    /// update-norm floor of the chosen precision. Each sweep updates
    /// interior points with relative rounding error around the machine
    /// epsilon, so the update norm plateaus near
    /// `eps * scale * sqrt(interior)` (divided by a safety margin)
    /// instead of decaying to zero; a tolerance below that floor can
    /// never be crossed and the job only ends by stall watchdog or
    /// budget exhaustion. Caught statically, the job is rejected at
    /// admission instead.
    PrecisionFloorViolated =
        ("FDX016", Error, "tolerance below the attainable precision floor"),
    /// FDX017: the durability checkpoint cadence is slower than the
    /// expected failure-free completion window of the jobs it covers —
    /// legal (unlike FDX013 the cadence is reachable before the
    /// deadline), but the convergence-budget analysis proves the job is
    /// expected to finish before its first checkpoint ever fires, so a
    /// crash still replays from iteration zero and the durability
    /// configuration buys nothing.
    CheckpointCadenceMismatch =
        ("FDX017", Warn, "checkpoint cadence slower than the expected completion window"),
    /// FDX018: the strip-parallel band plan is not race-free. A sound
    /// plan partitions the interior rows into non-empty, ascending,
    /// contiguous bands: overlapping or unordered bands alias halo rows
    /// (concurrent writers to the same row, and double-folded residual
    /// partials), gaps leave rows no worker sweeps, and out-of-interior
    /// rows write the Dirichlet boundary. Any of those breaks the
    /// fixed-order fold determinism that makes parallel residuals
    /// bit-identical to the serial engine at every thread count.
    BandPlanRace = ("FDX018", Error, "strip-parallel band plan is not race-free"),
    /// FDX019: rungs of the fallback chain that are statically dead for
    /// this job class — the Krylov rung skips every transient
    /// (time-stepping) job as not applicable, and the strip-parallel
    /// rung degenerates to the serial software rung when the service
    /// runs single-threaded — so the operationally real chain is shorter
    /// than the configured one.
    DeadFallbackRungs = ("FDX019", Warn, "fallback chain contains statically dead rungs"),
    /// FDX020: the per-tenant in-flight quotas of the multi-tenant
    /// front end overcommit the worker pool — the sum of registered
    /// tenants' `max_in_flight` quotas exceeds the number of workers.
    /// Every individual tenant's quota is honored, but the quotas
    /// cannot all be honored *simultaneously*: under concurrent load
    /// the deficit-round-robin scheduler arbitrates the shortfall, so a
    /// tenant sized against its quota sees less concurrency than it was
    /// promised. Legal (statistical multiplexing is often intended),
    /// but worth seeing.
    TenantQuotaOvercommit =
        ("FDX020", Warn, "per-tenant in-flight quotas overcommit the worker pool"),
    /// FDX021: hedging is enabled on a chain whose entry rung has no
    /// rung below it to hedge onto — jobs entering at `Krylov` or the
    /// terminal `Estimate` can never launch a hedge (the hedge pairs
    /// are Reference→Parallel, Parallel→Software and Software→Krylov),
    /// so the configured hedge policy is vacuous: it costs a latency
    /// ring per rung and arms nothing. Either raise the entry rung or
    /// drop the hedge configuration.
    VacuousHedge =
        ("FDX021", Warn, "hedging enabled on a chain that can never launch a hedge"),
    /// FDX022: the configured tile depth is incompatible with the job's
    /// grid or strip geometry. The temporally tiled rung fuses
    /// `tile_depth` sweeps per cache pass, and each worker strip
    /// recomputes a `tile_depth`-deep halo trapezoid per side. A depth
    /// at or beyond the interior height makes the halo consume the
    /// whole interior (error: the rung degenerates to redundant serial
    /// recomputation); a depth that forces the halo-aware band split
    /// below the requested thread count silently sheds parallelism
    /// (warning); and a depth above the service's per-job iteration cap
    /// means every epoch truncates, so the configured cache reuse is
    /// never achieved (warning).
    TileDepthGeometry =
        ("FDX022", Warn, "tile depth incompatible with grid/strip geometry"),
}

impl DiagCode {
    /// Parses an `FDX0xx` string back into a code.
    pub fn parse(s: &str) -> Option<DiagCode> {
        ALL_CODES.iter().copied().find(|c| c.as_str() == s)
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding of the analyzer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: DiagCode,
    /// The configuration field (or mapping element) at fault.
    pub field: &'static str,
    /// What is wrong, with the concrete numbers.
    pub message: String,
    /// How to fix it, when a concrete fix exists.
    pub suggestion: Option<String>,
    /// Overrides the code's default severity for findings where the
    /// same code spans severities (e.g. FDX013: a wasteful cadence
    /// warns, a corrupting journal collision errors).
    severity_override: Option<Severity>,
}

impl Diagnostic {
    pub(crate) fn new(code: DiagCode, field: &'static str, message: String) -> Self {
        Diagnostic {
            code,
            field,
            message,
            suggestion: None,
            severity_override: None,
        }
    }

    pub(crate) fn suggest(mut self, s: String) -> Self {
        self.suggestion = Some(s);
        self
    }

    pub(crate) fn with_severity(mut self, severity: Severity) -> Self {
        self.severity_override = Some(severity);
        self
    }

    /// The severity: the code's fixed default unless this particular
    /// finding overrides it.
    pub fn severity(&self) -> Severity {
        self.severity_override
            .unwrap_or_else(|| self.code.severity())
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} ({})",
            self.severity(),
            self.code,
            self.message,
            self.field
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, "; help: {s}")?;
        }
        Ok(())
    }
}

/// The findings of one analyzer run.
#[must_use = "a lint report changes nothing by itself; check has_errors()/diagnostics()"]
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    pub(crate) fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// All findings, in the order the checks ran.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Findings at Error severity.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }

    /// `true` when at least one Error-level finding exists — constructors
    /// refuse such configurations.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// `true` when nothing at all was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The worst severity present, `None` for a clean report.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(Diagnostic::severity).max()
    }

    /// `true` when some finding carries `code`.
    pub fn has(&self, code: DiagCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// `true` when no findings (alias of [`is_clean`](Self::is_clean),
    /// for the usual container idiom).
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return f.write_str("lint clean");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// What the analyzer verifies: a configuration deployed on a grid.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LintTarget {
    /// The accelerator configuration.
    pub config: FdmaxConfig,
    /// An explicit elastic decomposition, or `None` for the planner's
    /// cycle-minimizing choice.
    pub elastic: Option<ElasticConfig>,
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// The hardware update method.
    pub method: HwUpdateMethod,
}

impl LintTarget {
    /// A target on the planner-chosen decomposition.
    pub fn planned(config: FdmaxConfig, rows: usize, cols: usize, method: HwUpdateMethod) -> Self {
        LintTarget {
            config,
            elastic: None,
            rows,
            cols,
            method,
        }
    }
}

/// The symbolic steady-state schedule of one subarray: its row blocks,
/// the column-batch sequence they run over, and the FIFO geometry. The
/// deployment lint derives one per strip from [`crate::mapping`]; tests
/// (and the differential harness's witnesses) also build them by hand to
/// model a bypassed or degraded controller.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanSpec {
    /// PEs in the chain.
    pub width: usize,
    /// Entries per sub-FIFO (nFIFO and pFIFO).
    pub fifo_depth: usize,
    /// Grid columns the batches must tile.
    pub cols: usize,
    /// Row blocks executed by this chain.
    pub blocks: Vec<RowRange>,
    /// The column batches each block runs over, in schedule order.
    pub batches: Vec<ColBatch>,
}

impl PlanSpec {
    /// The schedule [`crate::mapping`] derives for one strip.
    pub fn derive(
        config: &FdmaxConfig,
        elastic: &ElasticConfig,
        strip: RowRange,
        cols: usize,
    ) -> Self {
        let depth = elastic.sub_fifo_depth(config);
        PlanSpec {
            width: elastic.width,
            fifo_depth: depth,
            cols,
            blocks: row_blocks(strip, depth),
            batches: col_batches(cols, elastic.width),
        }
    }
}

/// The supervisory-layer sizing the service lint verifies: a
/// [`crate::service::SolveService`]'s admission bound, per-job
/// iteration cap, deadline budget and (optional) durability settings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceSpec {
    /// Bounded admission-queue depth.
    pub queue_capacity: usize,
    /// Hard cap on any single job's iterations.
    pub max_job_iterations: usize,
    /// Per-job deadline in service-clock iterations, counted from
    /// admission (queue wait included).
    pub deadline_iterations: u64,
    /// Checkpoint cadence of the durability layer, in iterations
    /// (`None` when durability is off; `Some(0)` disables
    /// checkpointing explicitly).
    pub checkpoint_every: Option<u64>,
    /// Journal directory of the durability layer (`None` when
    /// durability is off). Compared verbatim across a fleet by
    /// [`lint_service_fleet`].
    pub journal_dir: Option<String>,
}

/// Lints a service sizing: FDX011.
///
/// The service deadline clock ticks on every executed iteration, and a
/// job admitted behind a full queue waits for up to
/// `queue_capacity x max_job_iterations` ticks before it even starts.
/// When that worst-case wait exceeds `deadline_iterations`, a tail job
/// can arrive at the executor with zero budget left and be served only
/// by the degraded analytic rung — legal, but almost certainly not what
/// the operator sized the service for.
pub fn lint_service(spec: &ServiceSpec) -> LintReport {
    let mut report = LintReport::new();
    let worst_wait = (spec.queue_capacity as u64).saturating_mul(spec.max_job_iterations as u64);
    if worst_wait > spec.deadline_iterations {
        report.push(
            Diagnostic::new(
                DiagCode::ServiceOvercommitted,
                "deadline_iterations",
                format!(
                    "a full queue of {} jobs at up to {} iterations each is {} \
                     iterations of worst-case wait, but the per-job deadline budget \
                     is only {}: tail jobs can exhaust their deadline before \
                     starting and degrade to the analytic rung",
                    spec.queue_capacity,
                    spec.max_job_iterations,
                    worst_wait,
                    spec.deadline_iterations
                ),
            )
            .suggest(format!(
                "raise deadline_iterations to at least {worst_wait}, shrink the \
                 queue to {} jobs, or cap jobs at {} iterations",
                (spec.deadline_iterations / (spec.max_job_iterations as u64).max(1)).max(1),
                (spec.deadline_iterations / (spec.queue_capacity as u64).max(1)).max(1),
            )),
        );
    }
    // FDX013 — a checkpoint cadence at or beyond the deadline budget can
    // never fire before the job must already be done: the durability
    // layer journals admissions and completions but persists no mid-run
    // state, so every crash recovery replays from iteration zero.
    if let Some(every) = spec.checkpoint_every {
        if every > 0 && every >= spec.deadline_iterations {
            report.push(
                Diagnostic::new(
                    DiagCode::DurabilityMisconfigured,
                    "checkpoint_every",
                    format!(
                        "checkpoint cadence of {} iterations meets or exceeds the \
                         per-job deadline budget of {}: no job can reach its first \
                         checkpoint, so crash recovery always replays from \
                         iteration zero",
                        every, spec.deadline_iterations
                    ),
                )
                .suggest(format!(
                    "lower checkpoint_every below {} (or set it to 0 to disable \
                     checkpointing deliberately)",
                    spec.deadline_iterations
                )),
            );
        }
    }
    report
}

/// Lints a fleet of service sizings together: per-service checks for
/// each spec, plus the cross-service FDX013 journal-collision check.
///
/// The write-ahead journal is an append-only file owned by exactly one
/// service; two services sharing a `journal_dir` interleave their
/// records and each poisons the other's recovery (job ids collide, and
/// the torn-tail scan stops at the first frame the other service wrote
/// mid-append). That is an Error, not a Warn: recovery correctness is
/// gone, not just degraded.
pub fn lint_service_fleet(specs: &[ServiceSpec]) -> LintReport {
    let mut report = LintReport::new();
    for spec in specs {
        report.merge(lint_service(spec));
    }
    report.merge(lint_journal_collisions(specs));
    report
}

/// The cross-service half of [`lint_service_fleet`]: only the FDX013
/// journal-directory collision check, with no per-spec diagnostics.
/// The `fdmax-lint` CLI calls this across config files it has already
/// linted individually, so collisions are reported exactly once.
pub fn lint_journal_collisions(specs: &[ServiceSpec]) -> LintReport {
    let mut report = LintReport::new();
    for (i, a) in specs.iter().enumerate() {
        let Some(dir) = &a.journal_dir else { continue };
        for b in specs.iter().skip(i + 1) {
            if b.journal_dir.as_ref() == Some(dir) {
                report.push(
                    Diagnostic::new(
                        DiagCode::DurabilityMisconfigured,
                        "journal_dir",
                        format!(
                            "two services share the journal directory {dir:?}: their \
                             append-only journals interleave, job ids collide, and \
                             each service corrupts the other's crash recovery"
                        ),
                    )
                    .with_severity(Severity::Error)
                    .suggest("give every service its own journal_dir".to_string()),
                );
            }
        }
    }
    report
}

/// The multi-tenant front-end sizing the FDX020/FDX021 lints verify: a
/// [`crate::service::frontend::Frontend`]'s worker-pool size, the
/// registered tenants' in-flight quotas, and whether the worker
/// template arms hedging on a chain that can actually hedge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrontendSpec {
    /// Worker-pool size.
    pub workers: usize,
    /// Registered tenants' `max_in_flight` quotas.
    pub tenant_in_flight_quotas: Vec<usize>,
    /// Whether the worker template enables hedged retries.
    pub hedge_enabled: bool,
    /// Index ([`crate::service::Rung::index`]) of the deepest entry
    /// rung the front end can assign — the brownout ladder's last step
    /// when a delay budget arms it, the configured entry otherwise.
    pub entry_rung_index: usize,
}

/// Lints a multi-tenant front-end sizing: FDX020 (quota overcommit)
/// and FDX021 (vacuous hedge).
pub fn lint_frontend(spec: &FrontendSpec) -> LintReport {
    let mut report = LintReport::new();
    let promised: usize = spec.tenant_in_flight_quotas.iter().sum();
    if promised > spec.workers {
        report.push(
            Diagnostic::new(
                DiagCode::TenantQuotaOvercommit,
                "max_in_flight",
                format!(
                    "registered tenants are promised {} concurrent jobs in total but \
                     the pool has only {} worker(s): the quotas cannot all be honored \
                     simultaneously and the fair scheduler arbitrates the shortfall",
                    promised, spec.workers
                ),
            )
            .suggest(format!(
                "grow the pool to {promised} workers or shrink the per-tenant \
                 max_in_flight quotas to sum to at most {}",
                spec.workers
            )),
        );
    }
    // The hedge pairs are Reference→Parallel, Parallel→Software and
    // Software→Krylov (the tiled rung at index 3 is not hedge-eligible);
    // entering at Krylov (5) or Estimate (6) leaves nothing to hedge
    // onto.
    if spec.hedge_enabled && spec.entry_rung_index >= 5 {
        report.push(
            Diagnostic::new(
                DiagCode::VacuousHedge,
                "hedge",
                format!(
                    "hedging is enabled but jobs can enter the chain at rung index {} \
                     (Krylov or the terminal Estimate), past the last hedge pair \
                     Software→Krylov: such jobs can never launch a hedge, so the \
                     policy is vacuous for them",
                    spec.entry_rung_index
                ),
            )
            .suggest(
                "raise the entry rung above Krylov (or keep brownout from reaching \
                 Estimate) or drop the hedge configuration"
                    .to_string(),
            ),
        );
    }
    report
}

/// Lints a deployment end to end: the accelerator target plus, when one
/// is sized, the solve service admitting jobs in front of it, plus,
/// when a multi-tenant front end fronts the pool, its quota/hedge
/// checks (FDX020/FDX021), plus, when a concrete job is described, the
/// solve-plan analysis (FDX015–FDX019).
pub fn lint_full(
    target: &LintTarget,
    service: Option<&ServiceSpec>,
    frontend: Option<&FrontendSpec>,
    plan: Option<&crate::analysis::SolvePlan>,
) -> LintReport {
    let mut report = lint(target);
    if let Some(spec) = service {
        report.merge(lint_service(spec));
    }
    if let Some(spec) = frontend {
        report.merge(lint_frontend(spec));
    }
    if let Some(plan) = plan {
        report.merge(crate::analysis::analyze_plan(plan, &target.config, service).into_lint());
    }
    report
}

/// Lints a configuration alone: FDX001.
pub fn lint_config(config: &FdmaxConfig) -> LintReport {
    let mut report = LintReport::new();
    let checks: [(&'static str, usize); 5] = [
        ("pe_rows", config.pe_rows),
        ("pe_cols", config.pe_cols),
        ("fifo_depth", config.fifo_depth),
        ("buffer_banks", config.buffer_banks),
        ("buffer_depth", config.buffer_depth),
    ];
    for (field, v) in checks {
        if v == 0 {
            report.push(
                Diagnostic::new(
                    DiagCode::ZeroParameter,
                    field,
                    format!("configuration parameter {field} is zero"),
                )
                .suggest(format!("set {field} to a positive count")),
            );
        }
    }
    report
}

/// Lints one symbolic schedule: FDX003 (FIFO depth), FDX004 (halo seam
/// coverage) and FDX010 (steady-state underflow/deadlock).
pub fn lint_plan(plan: &PlanSpec) -> LintReport {
    let mut report = LintReport::new();

    for block in &plan.blocks {
        if block.height() > plan.fifo_depth {
            report.push(
                Diagnostic::new(
                    DiagCode::FifoDepthExceeded,
                    "fifo_depth",
                    format!(
                        "row block of {} output rows exceeds the {}-entry sub-FIFO: \
                         each batch pushes one nFIFO and one pFIFO entry per output \
                         row, so pushes outrun the next batch's pops by {}",
                        block.height(),
                        plan.fifo_depth,
                        block.height() - plan.fifo_depth
                    ),
                )
                .suggest(format!(
                    "split the strip into blocks of at most {} rows, or deepen the \
                     FIFOs to {} entries",
                    plan.fifo_depth,
                    block.height()
                )),
            );
            break; // one witness per plan is enough
        }
    }

    // Halo seam coverage: batches must tile the columns contiguously and
    // fit the chain, so each pFIFO push pairs with exactly one HaloAdder
    // completion in the following batch.
    for batch in &plan.batches {
        if batch.active() > plan.width {
            report.push(
                Diagnostic::new(
                    DiagCode::HaloSeamUncovered,
                    "width",
                    format!(
                        "column batch [{}, {}) is {} columns wide but the chain has \
                         only {} PEs: columns beyond the chain have no PE and no \
                         HaloAdder input",
                        batch.c0,
                        batch.c1,
                        batch.active(),
                        plan.width
                    ),
                )
                .suggest(format!("cap batch width at {} columns", plan.width)),
            );
            break;
        }
    }
    for w in plan.batches.windows(2) {
        if w[0].c1 != w[1].c0 {
            let kind = if w[0].c1 < w[1].c0 { "gap" } else { "overlap" };
            report.push(
                Diagnostic::new(
                    DiagCode::HaloSeamUncovered,
                    "batches",
                    format!(
                        "{kind} between column batches [{}, {}) and [{}, {}): the \
                         HaloAdder completes column {} with the next batch's first \
                         partial, which this schedule never provides",
                        w[0].c0,
                        w[0].c1,
                        w[1].c0,
                        w[1].c1,
                        w[0].c1 - 1
                    ),
                )
                .suggest("make consecutive batches contiguous (next.c0 == prev.c1)".to_string()),
            );
            break;
        }
    }
    if let Some(last) = plan.batches.last() {
        if last.c1 < plan.cols {
            report.push(
                Diagnostic::new(
                    DiagCode::HaloSeamUncovered,
                    "batches",
                    format!(
                        "batches end at column {} but the grid has {} columns: the \
                         final pFIFO entries are never completed and columns \
                         [{}, {}) are never computed",
                        last.c1, plan.cols, last.c1, plan.cols
                    ),
                )
                .suggest(format!("extend the batch sequence to column {}", plan.cols)),
            );
        }
    }

    // Steady-state schedule: the first batch must start at column 0 —
    // any batch with c0 > 0 pops `h` nFIFO and `h` pFIFO entries that
    // only a predecessor batch can have pushed. With no predecessor the
    // pop underflows, which interlocked hardware expresses as deadlock.
    match plan.batches.first() {
        Some(first) if first.c0 > 0 => {
            report.push(
                Diagnostic::new(
                    DiagCode::ScheduleUnderflow,
                    "batches",
                    format!(
                        "first batch starts at column {}: its first PE pops nFIFO \
                         and its HaloAdder pops pFIFO, but no earlier batch pushed \
                         — the steady-state schedule deadlocks on an empty FIFO",
                        first.c0
                    ),
                )
                .suggest("start the batch sequence at column 0".to_string()),
            );
        }
        Some(_) => {}
        None => {
            report.push(
                Diagnostic::new(
                    DiagCode::ScheduleUnderflow,
                    "batches",
                    "the schedule has no column batches: the chain never runs and \
                     the solve never terminates"
                        .to_string(),
                )
                .suggest("derive batches with mapping::col_batches".to_string()),
            );
        }
    }

    report
}

/// The full elaboration-time analysis of a deployment. Runs every check
/// that applies; later (plan-level) checks are skipped once an earlier
/// Error makes their inputs meaningless.
pub fn lint(target: &LintTarget) -> LintReport {
    let config = &target.config;
    let mut report = lint_config(config);

    // FDX007 — without an interior there is nothing to derive.
    if target.rows < 3 || target.cols < 3 {
        report.push(
            Diagnostic::new(
                DiagCode::GridTooSmall,
                "grid",
                format!(
                    "{}x{} grid has no interior to iterate on",
                    target.rows, target.cols
                ),
            )
            .suggest("use a grid of at least 3x3 points".to_string()),
        );
    }

    // FDX002 — an explicit decomposition must fit the physical array.
    if let Some(elastic) = target.elastic {
        let legal = elastic.subarrays > 0
            && elastic.pe_count() == config.pe_count()
            && config.pe_rows > 0
            && config.pe_rows.is_multiple_of(elastic.subarrays);
        if !legal {
            report.push(
                Diagnostic::new(
                    DiagCode::ElasticMismatch,
                    "elastic",
                    format!(
                        "decomposition {elastic} does not fit the {}x{} array: legal \
                         options are s chains of (pe_rows/s)*pe_cols PEs for each \
                         divisor s of pe_rows",
                        config.pe_rows, config.pe_cols
                    ),
                )
                .suggest(format!(
                    "pick a divisor s of {} and width {}*pe_cols/s",
                    config.pe_rows, config.pe_rows
                )),
            );
        }
    }

    // Everything below needs a structurally sound config + grid.
    if report.has_errors() {
        return report;
    }

    let elastic = target
        .elastic
        .unwrap_or_else(|| ElasticConfig::plan(config, target.rows, target.cols));

    let strips = row_strips(target.rows, elastic.subarrays);
    let interior_rows = target.rows - 2;

    // FDX006 — dead subarrays / idle columns.
    if strips.len() < elastic.subarrays {
        report.push(
            Diagnostic::new(
                DiagCode::DeadSubarrays,
                "elastic",
                format!(
                    "{} of {} subarrays have no row strip ({} interior rows): they \
                     idle for the whole solve",
                    elastic.subarrays - strips.len(),
                    elastic.subarrays,
                    interior_rows
                ),
            )
            .suggest(format!(
                "use at most {interior_rows} subarrays for this grid"
            )),
        );
    }
    if elastic.width > target.cols {
        report.push(
            Diagnostic::new(
                DiagCode::DeadSubarrays,
                "elastic",
                format!(
                    "chain width {} exceeds the grid's {} columns: {} PEs per chain \
                     never receive a column",
                    elastic.width,
                    target.cols,
                    elastic.width - target.cols
                ),
            )
            .suggest("prefer a decomposition with more, narrower chains".to_string()),
        );
    }

    // FDX012 — halo-dominated strips. Each strip streams height + 2 input
    // rows for height output rows; under 3 output rows the halo share of
    // the traffic reaches 50% and beyond.
    if strips.len() > 1 && strips.iter().any(|s| s.height() < 3) {
        let thin = strips.iter().filter(|s| s.height() < 3).count();
        let min_height = strips.iter().map(RowRange::height).min().unwrap_or(0);
        report.push(
            Diagnostic::new(
                DiagCode::HaloDominatedStrips,
                "elastic",
                format!(
                    "{thin} of {} row strips have fewer than 3 output rows (min {min_height}):                      each streams height + 2 rows, so halo rows dominate their SRAM traffic",
                    strips.len()
                ),
            )
            .suggest(format!(
                "use at most {} subarrays so every strip keeps at least 3 rows",
                (interior_rows / 3).max(1)
            )),
        );
    }

    // FDX005 — per-cycle port demand vs bank count. All strips run in
    // lock-step, so a full batch issues width * active-subarrays
    // concurrent accesses.
    let concurrent = elastic.width.min(target.cols) * strips.len();
    if concurrent > config.buffer_banks {
        let factor = concurrent as f64 / config.buffer_banks as f64;
        report.push(
            Diagnostic::new(
                DiagCode::BankOversubscribed,
                "buffer_banks",
                format!(
                    "full batches issue {} concurrent accesses against {} \
                     single-ported banks: every tile stalls by {:.2}x",
                    concurrent, config.buffer_banks, factor
                ),
            )
            .suggest(format!(
                "provision {concurrent} banks, or accept the {factor:.2}x stall"
            )),
        );
    }

    // Plan-level checks per strip (FDX003/FDX004/FDX010). Mapping-derived
    // plans are constructed to pass; this is the shared path with
    // hand-built plans, and it keeps the soundness argument honest.
    let mut plan_report = LintReport::new();
    for strip in &strips {
        let plan = PlanSpec::derive(config, &elastic, *strip, target.cols);
        plan_report = lint_plan(&plan);
        if !plan_report.is_clean() {
            break;
        }
    }
    report.merge(plan_report);

    // FDX008 — Hybrid forwarding is unavailable at seams.
    if matches!(target.method, HwUpdateMethod::Hybrid) {
        let depth = elastic.sub_fifo_depth(config);
        let multiple_blocks = strips.iter().any(|s| s.height() > depth);
        let multiple_batches = target.cols > elastic.width;
        let multiple_strips = strips.len() > 1;
        if multiple_blocks || multiple_batches || multiple_strips {
            let mut seams: Vec<&str> = Vec::new();
            if multiple_strips {
                seams.push("row-strip boundaries");
            }
            if multiple_blocks {
                seams.push("row-block boundaries");
            }
            if multiple_batches {
                seams.push("column-batch seams");
            }
            report.push(
                Diagnostic::new(
                    DiagCode::HybridSeamFallback,
                    "method",
                    format!(
                        "Hybrid forwarding is unavailable at {}: those points use \
                         Jacobi operands, slightly slowing convergence",
                        seams.join(", ")
                    ),
                )
                .suggest(
                    "a monolithic chain with FIFO depth >= the interior height has \
                     no seams"
                        .to_string(),
                ),
            );
        }
    }

    // FDX009 — off-chip residency / bandwidth bound.
    if !config.grid_fits_on_chip(target.rows, target.cols) {
        let est = iteration_estimate(config, &elastic, target.rows, target.cols, false);
        let bound = if est.is_bandwidth_bound() {
            format!(
                "DRAM streaming dominates ({} DRAM vs {} compute cycles/iteration)",
                est.dram_cycles, est.compute_cycles
            )
        } else {
            format!(
                "compute still dominates ({} compute vs {} DRAM cycles/iteration)",
                est.compute_cycles, est.dram_cycles
            )
        };
        report.push(
            Diagnostic::new(
                DiagCode::OffChipResident,
                "buffer_depth",
                format!(
                    "{}x{} grid ({} elements) exceeds the {}-element buffers: every \
                     iteration streams DRAM; {bound}",
                    target.rows,
                    target.cols,
                    target.rows * target.cols,
                    config.buffer_capacity_elements()
                ),
            )
            .suggest(
                "larger buffers keep the grid resident; otherwise provision DRAM \
                 bandwidth to match"
                    .to_string(),
            ),
        );
    }

    // FDX014 — the assembled Krylov system outgrows off-chip storage.
    // Any rung that assembles CSR (the differential oracle, the baseline
    // Krylov solvers) pays values + column indices + row pointers for
    // every interior unknown; the matrix-free operator path pays nothing.
    let footprint = fdm::sparse::csr_footprint_bytes(target.rows, target.cols);
    let capacity = config.dram().capacity_bytes();
    if footprint > capacity {
        let gib = |b: u64| b as f64 / (1u64 << 30) as f64;
        report.push(
            Diagnostic::new(
                DiagCode::KrylovFootprintExceedsDram,
                "grid",
                format!(
                    "assembling the {}x{} grid's CSR system needs {:.2} GiB against \
                     {:.2} GiB of modeled DRAM: an assembled Krylov solve cannot be \
                     resident off chip",
                    target.rows,
                    target.cols,
                    gib(footprint),
                    gib(capacity)
                ),
            )
            .suggest(
                "use the matrix-free operator path (StencilOp / KrylovEngine), which \
                 assembles no matrix"
                    .to_string(),
            ),
        );
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_target() -> LintTarget {
        LintTarget::planned(FdmaxConfig::paper_default(), 24, 24, HwUpdateMethod::Jacobi)
    }

    #[test]
    fn paper_default_on_small_grid_has_no_errors() {
        let report = lint(&default_target());
        assert!(!report.has_errors(), "unexpected errors: {report}");
        // 64 PEs on 32 banks: the paper's own design warns by design.
        assert!(report.has(DiagCode::BankOversubscribed));
    }

    #[test]
    fn zero_parameter_is_fdx001() {
        let mut t = default_target();
        t.config.fifo_depth = 0;
        let report = lint(&t);
        assert!(report.has_errors());
        assert!(report.has(DiagCode::ZeroParameter));
        let d = report.errors().next().unwrap();
        assert_eq!(d.field, "fifo_depth");
        assert!(d.suggestion.is_some());
    }

    #[test]
    fn tiny_grid_is_fdx007() {
        let mut t = default_target();
        t.rows = 2;
        let report = lint(&t);
        assert!(report.has(DiagCode::GridTooSmall));
        assert!(report.has_errors());
    }

    #[test]
    fn bad_elastic_is_fdx002() {
        let mut t = default_target();
        t.elastic = Some(ElasticConfig {
            subarrays: 3,
            width: 24,
        });
        let report = lint(&t);
        assert!(report.has(DiagCode::ElasticMismatch));
    }

    #[test]
    fn dead_subarrays_is_fdx006_warn() {
        let mut t = default_target();
        t.rows = 5; // 3 interior rows, 8 subarrays
        t.elastic = Some(ElasticConfig {
            subarrays: 8,
            width: 8,
        });
        let report = lint(&t);
        assert!(report.has(DiagCode::DeadSubarrays));
        assert!(!report.has_errors(), "dead subarrays are a warning");
    }

    #[test]
    fn thin_strips_are_fdx012_warn() {
        let mut t = default_target();
        t.rows = 10; // 8 interior rows over 8 subarrays: 1-row strips
        t.elastic = Some(ElasticConfig {
            subarrays: 8,
            width: 8,
        });
        let report = lint(&t);
        assert!(report.has(DiagCode::HaloDominatedStrips));
        assert!(!report.has_errors(), "halo-dominated strips are a warning");
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code == DiagCode::HaloDominatedStrips)
            .unwrap();
        assert!(d.suggestion.is_some());
    }

    #[test]
    fn coarse_strips_do_not_trip_fdx012() {
        // One strip (no halo exchange at all) and strips of >= 3 rows
        // both stay silent.
        let mut t = default_target();
        t.rows = 50;
        t.elastic = Some(ElasticConfig {
            subarrays: 1,
            width: 64,
        });
        assert!(!lint(&t).has(DiagCode::HaloDominatedStrips));
        t.elastic = Some(ElasticConfig {
            subarrays: 8,
            width: 8,
        });
        // 48 interior rows / 8 strips = 6 rows each.
        assert!(!lint(&t).has(DiagCode::HaloDominatedStrips));
    }

    #[test]
    fn oversized_block_is_fdx003() {
        let plan = PlanSpec {
            width: 4,
            fifo_depth: 4,
            cols: 8,
            blocks: vec![RowRange {
                out_lo: 1,
                out_hi: 11,
            }],
            batches: col_batches(8, 4),
        };
        let report = lint_plan(&plan);
        assert!(report.has(DiagCode::FifoDepthExceeded));
        assert!(report.has_errors());
    }

    #[test]
    fn seam_gap_is_fdx004() {
        let plan = PlanSpec {
            width: 4,
            fifo_depth: 64,
            cols: 12,
            blocks: vec![RowRange {
                out_lo: 1,
                out_hi: 5,
            }],
            batches: vec![ColBatch { c0: 0, c1: 4 }, ColBatch { c0: 6, c1: 12 }],
        };
        let report = lint_plan(&plan);
        assert!(report.has(DiagCode::HaloSeamUncovered));
    }

    #[test]
    fn missing_head_batch_is_fdx010() {
        let plan = PlanSpec {
            width: 4,
            fifo_depth: 64,
            cols: 12,
            blocks: vec![RowRange {
                out_lo: 1,
                out_hi: 5,
            }],
            batches: vec![ColBatch { c0: 4, c1: 8 }, ColBatch { c0: 8, c1: 12 }],
        };
        let report = lint_plan(&plan);
        assert!(report.has(DiagCode::ScheduleUnderflow));
    }

    #[test]
    fn hybrid_seams_are_fdx008_info() {
        let t = LintTarget::planned(
            FdmaxConfig::paper_default(),
            200,
            200,
            HwUpdateMethod::Hybrid,
        );
        let report = lint(&t);
        assert!(report.has(DiagCode::HybridSeamFallback));
        assert!(!report.has_errors());
    }

    #[test]
    fn off_chip_grid_is_fdx009_info() {
        let t = LintTarget::planned(
            FdmaxConfig::paper_default(),
            200,
            200,
            HwUpdateMethod::Jacobi,
        );
        let report = lint(&t);
        assert!(report.has(DiagCode::OffChipResident));
        assert_eq!(
            report
                .diagnostics()
                .iter()
                .find(|d| d.code == DiagCode::OffChipResident)
                .unwrap()
                .severity(),
            Severity::Info
        );
    }

    #[test]
    fn oversized_krylov_assembly_is_fdx014_warn() {
        let cfg = FdmaxConfig::paper_default();
        let big = LintTarget::planned(cfg, 8192, 8192, HwUpdateMethod::Jacobi);
        let report = lint(&big);
        let diag = report
            .diagnostics()
            .iter()
            .find(|d| d.code == DiagCode::KrylovFootprintExceedsDram)
            .expect("an 8192^2 CSR system cannot fit 4 GiB of DRAM");
        assert_eq!(diag.severity(), Severity::Warn, "avoidable, not fatal");
        assert!(diag.message.contains("GiB"));
        assert!(diag.suggestion.as_deref().unwrap().contains("matrix-free"));

        // Below the capacity threshold (~7000^2 at 4 GiB) nothing fires.
        let small = LintTarget::planned(cfg, 6000, 6000, HwUpdateMethod::Jacobi);
        assert!(!lint(&small).has(DiagCode::KrylovFootprintExceedsDram));
    }

    #[test]
    fn overcommitted_service_is_fdx011_warn() {
        let report = lint_service(&ServiceSpec {
            queue_capacity: 16,
            max_job_iterations: 1_000,
            deadline_iterations: 4_000,
            checkpoint_every: None,
            journal_dir: None,
        });
        assert!(report.has(DiagCode::ServiceOvercommitted));
        assert!(!report.has_errors(), "an overcommit is a warning");
        let d = &report.diagnostics()[0];
        assert!(d.message.contains("16000"));
        assert!(d.suggestion.as_deref().unwrap().contains("16000"));

        // A sizing that honours the invariant is clean.
        let clean = lint_service(&ServiceSpec {
            queue_capacity: 16,
            max_job_iterations: 1_000,
            deadline_iterations: 16_000,
            checkpoint_every: None,
            journal_dir: None,
        });
        assert!(clean.is_clean());
    }

    #[test]
    fn unreachable_checkpoint_cadence_is_fdx013_warn() {
        let spec = ServiceSpec {
            queue_capacity: 4,
            max_job_iterations: 1_000,
            deadline_iterations: 4_000,
            checkpoint_every: Some(4_000),
            journal_dir: Some("/tmp/journal-a".to_string()),
        };
        let report = lint_service(&spec);
        assert!(report.has(DiagCode::DurabilityMisconfigured));
        assert!(!report.has_errors(), "an unreachable cadence is a warning");

        // A reachable cadence — or an explicit 0 (disabled) — is clean.
        for every in [Some(64), Some(0), None] {
            let clean = lint_service(&ServiceSpec {
                checkpoint_every: every,
                ..spec.clone()
            });
            assert!(!clean.has(DiagCode::DurabilityMisconfigured), "{every:?}");
        }
    }

    #[test]
    fn shared_journal_dir_is_fdx013_error() {
        let spec = |dir: &str| ServiceSpec {
            queue_capacity: 4,
            max_job_iterations: 1_000,
            deadline_iterations: 4_000,
            checkpoint_every: Some(64),
            journal_dir: Some(dir.to_string()),
        };
        let fleet = [
            spec("/var/fdmax/a"),
            spec("/var/fdmax/b"),
            spec("/var/fdmax/a"),
        ];
        let report = lint_service_fleet(&fleet);
        assert!(report.has(DiagCode::DurabilityMisconfigured));
        assert!(report.has_errors(), "a journal collision corrupts recovery");
        assert_eq!(report.errors().count(), 1, "one collision, one error");

        // Distinct directories (or no durability at all) are clean.
        let distinct = [spec("/var/fdmax/a"), spec("/var/fdmax/b")];
        assert!(lint_service_fleet(&distinct).is_clean());
    }

    #[test]
    fn codes_are_stable_and_parse_back() {
        for code in ALL_CODES {
            assert_eq!(DiagCode::parse(code.as_str()), Some(code));
            assert!(code.as_str().starts_with("FDX0"));
            assert!(!code.title().is_empty());
        }
        assert_eq!(DiagCode::parse("FDX999"), None);
    }

    #[test]
    fn every_code_has_a_real_explanation() {
        // `fdmax-lint --explain` and the SARIF rule table print the same
        // per-code documentation the rustdoc comments carry; a code with
        // an empty or placeholder doc would ship an unexplained refusal.
        for code in ALL_CODES {
            let text = code.explanation();
            assert!(!text.trim().is_empty(), "{code} has no explanation");
            assert!(
                text.trim_start().starts_with(code.as_str()),
                "{code}'s explanation must lead with its own code for --explain"
            );
            assert!(
                text.split_whitespace().count() >= 8,
                "{code}'s explanation is a stub: {text:?}"
            );
        }
    }

    #[test]
    fn report_display_and_queries() {
        let clean = LintReport::new();
        assert!(clean.is_clean());
        assert!(clean.is_empty());
        assert_eq!(clean.worst(), None);
        assert_eq!(clean.to_string(), "lint clean");

        let mut t = default_target();
        t.config.pe_rows = 0;
        let report = lint(&t);
        assert_eq!(report.worst(), Some(Severity::Error));
        assert!(!report.is_empty());
        assert!(report.to_string().contains("FDX001"));
        assert!(Severity::Error > Severity::Warn && Severity::Warn > Severity::Info);
    }
}
