//! Overload-robust multi-tenant front end over a pool of
//! [`SolveService`] workers.
//!
//! A single [`SolveService`] is one synchronous queue: it serves one
//! job at a time and refuses everything past its queue capacity. The
//! [`Frontend`] is the layer the multi-tenant story needs on top —
//! the software analogue of FDMAX's per-stream credit flow control:
//!
//! * **Worker pool.** `workers` independent [`SolveService`] instances,
//!   each with its own clock, breakers, drain-rate estimate and (when
//!   durability is on) its own journal directory `journal_dir/workerK`.
//!   Breaker accounting is therefore per-rung *and* per-worker, and a
//!   crashed pool recovers worker by worker.
//! * **Weighted-deficit fair queues.** Every tenant owns a FIFO queue;
//!   each scheduler round credits every backlogged tenant `weight`
//!   deficit units and a job costs one unit, so long-run dispatch share
//!   is proportional to weight and a flooding tenant cannot starve the
//!   others (deficit round-robin, job cost 1).
//! * **Hard quotas.** Per-tenant `max_queued` (admission bound) and
//!   `max_in_flight` (dispatch bound per round) are never exceeded —
//!   the fairness suite asserts both invariants under replay.
//! * **Adaptive load shedding.** Saturation answers carry an *honest*
//!   `retry_after` derived from the pool's measured drain rate, and a
//!   CoDel-style rule sheds standard-priority admissions once the
//!   windowed p99 frontend queueing delay exceeds the configured
//!   budget *and* the tenant already holds a standing backlog.
//! * **Brownout ladder.** Before shedding, overload degrades
//!   standard-priority tenants to cheaper entry rungs instead of
//!   failing them: p99 over 1x budget enters at [`Rung::Parallel`],
//!   over 2x at the cache-blocked [`Rung::Tiled`], over 4x at
//!   [`Rung::Software`], and over 8x at the O(1) [`Rung::Estimate`].
//!   Critical tenants are never degraded.
//!
//! # Determinism
//!
//! Like the underlying service, the front end never reads wall-clock
//! time. The pool's notion of *now* is the minimum worker clock;
//! frontend queueing delay is the dispatch worker's clock minus that
//! floor at admission. Scheduling is round-based: dispatch walks
//! tenants in [`TenantId`] order and workers in ascending
//! `(clock, index)` order, so a run with the same seeds and submission
//! order replays bit-for-bit — shed decisions included.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::collections::VecDeque;

use fdm::engine::CancelToken;

use super::{
    JobId, JobOutcome, JobSpec, JobTicket, RecoverySummary, Rung, ServiceConfig, ServiceReport,
    ServiceStats, SolveService, SubmitError, TenantId,
};
use crate::resilience::FdmaxError;

/// Scheduling priority of a tenant under overload.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TenantPriority {
    /// Best-effort tenant: the brownout ladder may degrade its jobs to
    /// cheaper entry rungs and the CoDel-style shedder may refuse its
    /// admissions while the pool is over its delay budget.
    #[default]
    Standard,
    /// Latency-critical tenant: never browned out and shed only at its
    /// hard `max_queued` quota.
    Critical,
}

/// Per-tenant fair-queuing and quota policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantConfig {
    /// Deficit-round-robin weight (clamped to at least 1): long-run
    /// dispatch share is proportional to this.
    pub weight: u64,
    /// Hard bound on jobs waiting in this tenant's frontend queue;
    /// admissions beyond it are refused with an honest retry hint.
    pub max_queued: usize,
    /// Hard bound on this tenant's jobs dispatched to workers within
    /// one scheduler round (clamped to at least 1).
    pub max_in_flight: usize,
    /// Overload treatment.
    pub priority: TenantPriority,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            weight: 1,
            max_queued: 8,
            max_in_flight: 2,
            priority: TenantPriority::Standard,
        }
    }
}

/// Tuning of a [`Frontend`].
#[derive(Clone, Debug)]
pub struct FrontendConfig {
    /// Worker pool size (clamped to at least 1).
    pub workers: usize,
    /// Template for every worker's [`ServiceConfig`]. Worker `k` gets
    /// `worker_id = k` and, when durability is configured, its own
    /// journal directory `journal_dir/workerK` (satisfying the FDX013
    /// fleet collision lint by construction).
    pub service: ServiceConfig,
    /// Explicitly registered tenants; everyone else gets
    /// [`FrontendConfig::default_tenant`].
    pub tenants: Vec<(TenantId, TenantConfig)>,
    /// Policy applied to tenants not listed in
    /// [`FrontendConfig::tenants`].
    pub default_tenant: TenantConfig,
    /// CoDel-style budget on the windowed p99 frontend queueing delay
    /// (iterations). Exceeding it arms the brownout ladder and the
    /// shedder; `0` disables both.
    pub queue_delay_budget: u64,
    /// Sliding-window length (dispatch-delay samples) behind the p99
    /// estimate (clamped to at least 1).
    pub shed_window: usize,
}

impl FrontendConfig {
    /// A front end with `workers` workers cloned from `service`, no
    /// registered tenants and the delay budget disabled.
    pub fn new(service: ServiceConfig, workers: usize) -> Self {
        FrontendConfig {
            workers,
            service,
            tenants: Vec::new(),
            default_tenant: TenantConfig::default(),
            queue_delay_budget: 0,
            shed_window: 64,
        }
    }

    /// Registers a tenant policy.
    #[must_use]
    pub fn with_tenant(mut self, tenant: TenantId, config: TenantConfig) -> Self {
        self.tenants.push((tenant, config));
        self
    }

    /// Sets the CoDel-style p99 queueing-delay budget (iterations).
    #[must_use]
    pub fn with_queue_delay_budget(mut self, budget: u64) -> Self {
        self.queue_delay_budget = budget;
        self
    }

    /// This configuration as a [`crate::lint::FrontendSpec`], feeding
    /// the FDX020/FDX021 lints.
    pub fn lint_spec(&self) -> crate::lint::FrontendSpec {
        let quotas = self
            .tenants
            .iter()
            .map(|(_, t)| t.max_in_flight.max(1))
            .collect();
        crate::lint::FrontendSpec {
            workers: self.workers.max(1),
            tenant_in_flight_quotas: quotas,
            hedge_enabled: self.service.hedge.is_some(),
            entry_rung_index: self.deepest_entry_rung().index(),
        }
    }

    /// Runs the FDX020/FDX021 frontend lints over this configuration.
    pub fn lint(&self) -> crate::lint::LintReport {
        crate::lint::lint_frontend(&self.lint_spec())
    }

    /// The deepest entry rung this configuration can assign: the
    /// brownout ladder's last step when a delay budget arms it for any
    /// standard-priority tenant, [`Rung::Detailed`] otherwise.
    fn deepest_entry_rung(&self) -> Rung {
        let degradable = self.queue_delay_budget > 0
            && (self.tenants.is_empty()
                || self.default_tenant.priority == TenantPriority::Standard
                || self
                    .tenants
                    .iter()
                    .any(|(_, t)| t.priority == TenantPriority::Standard));
        if degradable {
            Rung::Estimate
        } else {
            Rung::Detailed
        }
    }
}

/// Aggregate tallies of everything the front end has processed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrontendStats {
    /// Jobs admitted to a tenant queue.
    pub admitted: u64,
    /// Structurally invalid or analysis-rejected submissions.
    pub rejected: u64,
    /// Submissions refused at a tenant's hard `max_queued` quota.
    pub rejected_quota: u64,
    /// Submissions refused by the CoDel-style delay shedder.
    pub shed: u64,
    /// Jobs that ran to a worker report.
    pub completed: u64,
    /// Jobs cancelled while still queued in the front end.
    pub cancelled_queued: u64,
    /// Completed jobs whose worker report missed its deadline.
    pub deadline_misses: u64,
    /// Dispatches whose entry rung the brownout ladder degraded.
    pub brownout_dispatches: u64,
    /// Scheduler rounds executed.
    pub rounds: u64,
    /// Jobs a worker refused at dispatch time (defensive counter; the
    /// front end pre-validates admissions so this stays 0).
    pub dispatch_failures: u64,
}

/// Per-tenant tallies and queueing-delay record.
#[derive(Clone, Debug, Default)]
pub struct TenantStats {
    /// Jobs admitted to this tenant's queue.
    pub admitted: u64,
    /// Submissions refused at the hard `max_queued` quota.
    pub rejected_quota: u64,
    /// Submissions refused by the delay shedder.
    pub shed: u64,
    /// Jobs that ran to a worker report.
    pub completed: u64,
    /// Completed jobs whose worker report missed its deadline.
    pub deadline_misses: u64,
    /// Dispatches whose entry rung the brownout ladder degraded.
    pub brownout_dispatches: u64,
    /// Jobs served, indexed by [`Rung::index`].
    pub served_by: [u64; 7],
    delays: Vec<u64>,
}

impl TenantStats {
    /// Every recorded frontend queueing delay (iterations), in dispatch
    /// order.
    pub fn delay_samples(&self) -> &[u64] {
        &self.delays
    }

    /// Nearest-rank percentile of the recorded queueing delays; `None`
    /// before the first dispatch.
    pub fn delay_percentile(&self, pct: u8) -> Option<u64> {
        percentile(&self.delays, pct)
    }
}

/// Nearest-rank percentile over an unsorted sample set.
fn percentile(samples: &[u64], pct: u8) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    // Nearest-rank: the smallest sample with at least pct% of the set
    // at or below it — ceil(len * pct / 100), 1-based.
    let rank = (sorted.len() * usize::from(pct.min(100)))
        .div_ceil(100)
        .max(1);
    Some(sorted[rank - 1])
}

/// A worker report annotated with its frontend context.
#[derive(Clone, Debug)]
#[must_use = "a frontend report records the tenant, worker and queueing delay of the job"]
pub struct FrontendReport {
    /// Frontend-scope job id (workers number their own jobs; this is
    /// the id on the ticket [`Frontend::submit`] returned).
    pub frontend_job: JobId,
    /// The submitting tenant.
    pub tenant: TenantId,
    /// Index of the worker that ran the job.
    pub worker: u32,
    /// Frontend queueing delay charged against the job's deadline:
    /// the dispatch worker's clock minus the pool clock floor at
    /// admission (iterations).
    pub queue_delay: u64,
    /// Entry rung the job was dispatched with (after any brownout
    /// degradation).
    pub entry_rung: Rung,
    /// The worker's report. Its clocks are worker-local; its deadline
    /// already accounts for `queue_delay`.
    pub report: ServiceReport,
}

/// One job waiting in a tenant's frontend queue.
#[derive(Clone, Debug)]
struct QueuedJob {
    id: JobId,
    spec: JobSpec,
    cancel: CancelToken,
    admitted_clock: u64,
}

/// Mutable per-tenant scheduling state.
#[derive(Debug, Default)]
struct TenantState {
    config: TenantConfig,
    queue: VecDeque<QueuedJob>,
    deficit: u64,
    in_flight: usize,
    stats: TenantStats,
}

/// Dispatch-time context needed to map a worker report back to its
/// frontend job.
#[derive(Clone, Copy, Debug)]
struct PendingDispatch {
    frontend_job: JobId,
    tenant: TenantId,
    queue_delay: u64,
    entry_rung: Rung,
}

/// The multi-tenant front end: fair queues and quotas in front of a
/// deterministic pool of [`SolveService`] workers.
#[derive(Debug)]
pub struct Frontend {
    config: FrontendConfig,
    workers: Vec<SolveService>,
    tenants: BTreeMap<TenantId, TenantState>,
    /// Sliding window of recent dispatch delays behind the p99 shed
    /// signal.
    shed_delays: VecDeque<u64>,
    /// Current brownout level (0 = healthy, 1..=3 = ladder steps),
    /// recomputed at the end of every round.
    brownout: u8,
    pending: HashMap<(usize, u64), PendingDispatch>,
    next_id: u64,
    /// Round-robin resume point: the tenant most recently denied a
    /// worker slot goes first in the next dispatch pass, so a scarce
    /// pool rotates over all backlogged tenants instead of always
    /// serving the lowest [`TenantId`]s (the no-starvation guarantee).
    cursor: usize,
    stats: FrontendStats,
}

impl Frontend {
    /// A fresh front end: `config.workers` workers (each with its own
    /// `worker_id` and journal directory), all queues empty.
    pub fn new(config: FrontendConfig) -> Self {
        let workers = (0..config.workers.max(1))
            .map(|k| SolveService::new(Self::worker_config(&config, k)))
            .collect();
        Self::assemble(config, workers)
    }

    /// Rebuilds a crashed pool: recovers every worker from its own
    /// journal directory (see [`SolveService::recover`]) and returns
    /// the per-worker summaries in worker order. Jobs that were still
    /// in *frontend* queues at the crash are lost — the durability
    /// boundary is worker admission, where the write-ahead journal
    /// records them.
    pub fn recover(config: FrontendConfig) -> (Frontend, Vec<RecoverySummary>) {
        let mut workers = Vec::with_capacity(config.workers.max(1));
        let mut summaries = Vec::with_capacity(config.workers.max(1));
        for k in 0..config.workers.max(1) {
            let (worker, summary) = SolveService::recover(Self::worker_config(&config, k));
            workers.push(worker);
            summaries.push(summary);
        }
        (Self::assemble(config, workers), summaries)
    }

    fn assemble(config: FrontendConfig, workers: Vec<SolveService>) -> Self {
        let mut tenants = BTreeMap::new();
        for (id, tenant_config) in &config.tenants {
            tenants.entry(*id).or_insert_with(|| TenantState {
                config: *tenant_config,
                ..TenantState::default()
            });
        }
        Frontend {
            config,
            workers,
            tenants,
            shed_delays: VecDeque::new(),
            brownout: 0,
            pending: HashMap::new(),
            next_id: 0,
            cursor: 0,
            stats: FrontendStats::default(),
        }
    }

    /// The configuration worker `k` runs with: the template plus its
    /// own identity and journal directory.
    fn worker_config(config: &FrontendConfig, k: usize) -> ServiceConfig {
        let mut service = config.service.clone();
        service.worker_id = k as u32;
        if let Some(durability) = service.durability.as_mut() {
            durability.journal_dir = durability.journal_dir.join(format!("worker{k}"));
        }
        service
    }

    /// The front end's configuration.
    pub fn config(&self) -> &FrontendConfig {
        &self.config
    }

    /// The worker pool, in worker-id order.
    pub fn workers(&self) -> &[SolveService] {
        &self.workers
    }

    /// Aggregate tallies.
    pub fn stats(&self) -> FrontendStats {
        self.stats
    }

    /// Per-tenant tallies; `None` for tenants that never submitted and
    /// were never registered.
    pub fn tenant_stats(&self, tenant: TenantId) -> Option<&TenantStats> {
        self.tenants.get(&tenant).map(|t| &t.stats)
    }

    /// Sums the workers' own [`ServiceStats`] (hedge tallies included).
    pub fn pool_stats(&self) -> ServiceStats {
        let mut total = ServiceStats::default();
        for worker in &self.workers {
            let s = worker.stats();
            total.submitted += s.submitted;
            total.refused += s.refused;
            total.served += s.served;
            for (slot, v) in total.served_by.iter_mut().zip(s.served_by) {
                *slot += v;
            }
            total.cancelled += s.cancelled;
            total.failed += s.failed;
            total.deadline_misses += s.deadline_misses;
            total.journal_degraded |= s.journal_degraded;
            total.journal_io_errors += s.journal_io_errors;
            total.recovered_jobs += s.recovered_jobs;
            total.hedges_launched += s.hedges_launched;
            total.hedge_wins += s.hedge_wins;
            total.hedge_wasted_iterations += s.hedge_wasted_iterations;
        }
        total
    }

    /// The pool clock floor: the minimum worker clock. This is the
    /// front end's notion of *now*; admissions are stamped with it and
    /// queueing delay is measured against it.
    pub fn now(&self) -> u64 {
        self.workers
            .iter()
            .map(SolveService::clock)
            .min()
            .unwrap_or(0)
    }

    /// Jobs waiting in frontend queues, across all tenants.
    pub fn backlog(&self) -> usize {
        self.tenants.values().map(|t| t.queue.len()).sum()
    }

    /// Jobs waiting in one tenant's frontend queue.
    pub fn tenant_backlog(&self, tenant: TenantId) -> usize {
        self.tenants.get(&tenant).map_or(0, |t| t.queue.len())
    }

    /// Current brownout level: 0 while the windowed p99 queueing delay
    /// is within budget, then 1 (standard tenants enter at
    /// [`Rung::Parallel`]), 2 ([`Rung::Tiled`]), 3 ([`Rung::Software`])
    /// and 4 ([`Rung::Estimate`]) as the p99 crosses 1x, 2x, 4x and 8x
    /// the budget.
    pub fn brownout_level(&self) -> u8 {
        self.brownout
    }

    /// Nearest-rank p99 of the sliding dispatch-delay window feeding
    /// the shedder; `None` before the first dispatch.
    pub fn shed_window_p99(&self) -> Option<u64> {
        let (a, b) = self.shed_delays.as_slices();
        let mut window = a.to_vec();
        window.extend_from_slice(b);
        percentile(&window, 99)
    }

    /// The pool's measured drain rate: the mean of the workers' per-job
    /// drain EWMAs (see [`SolveService::drain_rate`]).
    pub fn drain_rate(&self) -> u64 {
        let sum: u64 = self.workers.iter().map(SolveService::drain_rate).sum();
        sum / self.workers.len().max(1) as u64
    }

    /// The policy governing `tenant`.
    fn tenant_config(&self, tenant: TenantId) -> TenantConfig {
        self.tenants
            .get(&tenant)
            .map_or(self.config.default_tenant, |t| t.config)
    }

    /// Admits a job to its tenant's fair queue.
    ///
    /// Admission control runs in order: structural validation and (when
    /// the worker template enables it) the static solve-plan analysis;
    /// the tenant's hard `max_queued` quota; and — for
    /// standard-priority tenants holding a standing backlog of at least
    /// half their quota while the pool is over its delay budget — the
    /// CoDel-style shedder. Both saturation answers carry an honest
    /// retry hint: `retry_after_iterations` is the excess queue depth
    /// times the pool's measured drain rate divided by the worker
    /// count.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Rejected`] for jobs that can never run;
    /// [`SubmitError::Saturated`] for quota and shed refusals.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobTicket, SubmitError> {
        let rows = spec.problem.rows();
        let cols = spec.problem.cols();
        if rows < 3 || cols < 3 {
            self.stats.rejected += 1;
            return Err(SubmitError::Rejected(FdmaxError::GridTooSmall {
                rows,
                cols,
            }));
        }
        if self.config.service.admission_analysis {
            let analysis = crate::analysis::analyze_plan(
                &self.workers[0].solve_plan(&spec),
                &self.config.service.accel,
                Some(&self.config.service.lint_spec()),
            );
            if analysis.lint().has_errors() {
                self.stats.rejected += 1;
                return Err(SubmitError::Rejected(FdmaxError::Lint {
                    report: analysis.into_lint(),
                }));
            }
        }

        let tenant = spec.tenant;
        let tenant_config = self.tenant_config(tenant);
        let drain = self.drain_rate();
        let workers = self.workers.len() as u64;
        let now = self.now();
        let over_budget = self.brownout > 0;
        let state = self.tenants.entry(tenant).or_insert_with(|| TenantState {
            config: tenant_config,
            ..TenantState::default()
        });

        let queued = state.queue.len();
        if queued >= tenant_config.max_queued {
            let retry_after_jobs = queued + 1 - tenant_config.max_queued;
            state.stats.rejected_quota += 1;
            self.stats.rejected_quota += 1;
            return Err(SubmitError::Saturated {
                queue_depth: queued,
                retry_after_jobs,
                retry_after_iterations: retry_after_jobs as u64 * drain / workers,
            });
        }
        // CoDel-style shed: refuse standard-priority admissions while
        // the windowed p99 delay is over budget *and* this tenant holds
        // a standing backlog — a transient spike with empty queues is
        // not overload.
        if over_budget
            && tenant_config.priority == TenantPriority::Standard
            && queued >= tenant_config.max_queued.div_ceil(2)
        {
            state.stats.shed += 1;
            self.stats.shed += 1;
            return Err(SubmitError::Saturated {
                queue_depth: queued,
                retry_after_jobs: queued,
                retry_after_iterations: (queued as u64).max(1) * drain / workers,
            });
        }

        let id = JobId(self.next_id);
        self.next_id += 1;
        let cancel = CancelToken::new();
        state.queue.push_back(QueuedJob {
            id,
            spec,
            cancel: cancel.clone(),
            admitted_clock: now,
        });
        state.stats.admitted += 1;
        self.stats.admitted += 1;
        Ok(JobTicket { id, cancel })
    }

    /// The entry rung the brownout ladder assigns at the current level,
    /// for a standard-priority tenant.
    fn brownout_entry(&self) -> Option<Rung> {
        match self.brownout {
            0 => None,
            1 => Some(Rung::Parallel),
            2 => Some(Rung::Tiled),
            3 => Some(Rung::Software),
            _ => Some(Rung::Estimate),
        }
    }

    /// Runs one scheduler round: a deficit-round-robin dispatch pass
    /// over the tenant queues, then one job per busy worker in
    /// ascending `(clock, index)` order. Returns the round's completed
    /// jobs in execution order.
    pub fn run_round(&mut self) -> Vec<FrontendReport> {
        self.stats.rounds += 1;
        self.dispatch();
        let reports = self.execute();
        self.refresh_brownout();
        reports
    }

    /// Runs rounds until every frontend queue and worker queue is
    /// empty.
    pub fn drain(&mut self) -> Vec<FrontendReport> {
        let mut reports = Vec::new();
        while self.backlog() > 0 || self.workers.iter().any(|w| w.queue_depth() > 0) {
            let before = (
                self.backlog(),
                self.stats.completed,
                self.stats.cancelled_queued,
            );
            reports.extend(self.run_round());
            let after = (
                self.backlog(),
                self.stats.completed,
                self.stats.cancelled_queued,
            );
            if before == after {
                // Defensive: a round that moved nothing would loop
                // forever; quotas clamp to >= 1 so this cannot happen.
                break;
            }
        }
        reports
    }

    /// Deficit-round-robin dispatch: credit every backlogged tenant its
    /// weight, then hand one job per tenant per pass to the
    /// lowest-clock idle worker until deficits, quotas or workers run
    /// out.
    fn dispatch(&mut self) {
        // Idle workers in ascending (clock, index) order; dispatch
        // consumes from the front so the least-loaded worker (in
        // virtual time) fills first.
        let mut idle: Vec<usize> = (0..self.workers.len())
            .filter(|&k| self.workers[k].queue_depth() == 0)
            .collect();
        idle.sort_by_key(|&k| (self.workers[k].clock(), k));
        let mut idle = VecDeque::from(idle);

        let mut tenant_ids: Vec<TenantId> = self.tenants.keys().copied().collect();
        for id in &tenant_ids {
            let state = self.tenants.get_mut(id).expect("tenant state exists");
            if state.queue.is_empty() {
                // Standard DRR: an idle flow carries no credit forward.
                state.deficit = 0;
            } else {
                state.deficit += state.config.weight.max(1);
            }
        }
        // Rotate the service order to the round-robin resume point, so
        // the tenant a scarce pool denied last round is first in line
        // now — without this, persistent backlogs at the low TenantIds
        // would starve everyone behind them.
        let n = tenant_ids.len();
        if n > 0 {
            tenant_ids.rotate_left(self.cursor % n);
        }

        loop {
            let mut progress = false;
            for (pos, id) in tenant_ids.iter().enumerate() {
                if idle.is_empty() {
                    // `pos` is relative to the rotated order: resume
                    // exactly at the tenant that was denied.
                    self.cursor = (self.cursor + pos) % n;
                    return;
                }
                let state = self.tenants.get_mut(id).expect("tenant state exists");
                if state.deficit == 0
                    || state.queue.is_empty()
                    || state.in_flight >= state.config.max_in_flight.max(1)
                {
                    continue;
                }
                let job = state.queue.pop_front().expect("non-empty queue");
                state.deficit -= 1;
                if job.cancel.is_cancelled() {
                    // Cancelled while queued: reaped without burning a
                    // worker slot.
                    self.stats.cancelled_queued += 1;
                    progress = true;
                    continue;
                }
                let worker_idx = *idle.front().expect("idle non-empty");
                if self.dispatch_one(worker_idx, *id, job) {
                    idle.pop_front();
                }
                progress = true;
            }
            if !progress {
                return;
            }
        }
    }

    /// Hands one job to one worker; `true` when the worker accepted it.
    fn dispatch_one(&mut self, worker_idx: usize, tenant: TenantId, job: QueuedJob) -> bool {
        let worker_clock = self.workers[worker_idx].clock();
        let queue_delay = worker_clock.saturating_sub(job.admitted_clock);
        self.shed_delays.push_back(queue_delay);
        while self.shed_delays.len() > self.config.shed_window.max(1) {
            self.shed_delays.pop_front();
        }

        let tenant_config = self.tenant_config(tenant);
        let mut spec = job.spec;
        let mut entry_rung = spec.entry_rung;
        let mut browned_out = false;
        if tenant_config.priority == TenantPriority::Standard {
            if let Some(floor) = self.brownout_entry() {
                if floor.index() > entry_rung.index() {
                    entry_rung = floor;
                    browned_out = true;
                }
            }
        }
        spec.entry_rung = entry_rung;
        let remaining = self
            .config
            .service
            .deadline_iterations
            .saturating_sub(queue_delay);

        let state = self.tenants.get_mut(&tenant).expect("tenant state exists");
        state.stats.delays.push(queue_delay);
        if browned_out {
            state.stats.brownout_dispatches += 1;
            self.stats.brownout_dispatches += 1;
        }
        match self.workers[worker_idx].submit_with_deadline(spec, remaining) {
            Ok(ticket) => {
                // The worker job observes the *frontend* token directly
                // (the just-admitted job sits at the back of the worker
                // queue), so cancelling the frontend ticket cancels the
                // solve mid-step too.
                if let Some(admitted) = self.workers[worker_idx].queue.back_mut() {
                    if admitted.id == ticket.id {
                        admitted.cancel = job.cancel.clone();
                    }
                }
                let state = self.tenants.get_mut(&tenant).expect("tenant state exists");
                state.in_flight += 1;
                self.pending.insert(
                    (worker_idx, ticket.id.0),
                    PendingDispatch {
                        frontend_job: job.id,
                        tenant,
                        queue_delay,
                        entry_rung,
                    },
                );
                true
            }
            Err(_) => {
                // Cannot happen: the front end pre-validates admissions
                // with the same analysis and dispatches only to idle
                // workers. Counted loudly rather than silently dropped.
                self.stats.dispatch_failures += 1;
                false
            }
        }
    }

    /// Executes one job per busy worker, in ascending `(clock, index)`
    /// order.
    fn execute(&mut self) -> Vec<FrontendReport> {
        let mut order: Vec<usize> = (0..self.workers.len())
            .filter(|&k| self.workers[k].queue_depth() > 0)
            .collect();
        order.sort_by_key(|&k| (self.workers[k].clock(), k));

        let mut reports = Vec::new();
        for worker_idx in order {
            let Some(report) = self.workers[worker_idx].run_next() else {
                continue;
            };
            let pending = self.pending.remove(&(worker_idx, report.job.0));
            let (frontend_job, tenant, queue_delay, entry_rung) = match pending {
                Some(p) => (p.frontend_job, p.tenant, p.queue_delay, p.entry_rung),
                // A job recovered into the worker's own queue (journal
                // replay) was never dispatched by this frontend
                // instance; it keeps its worker identity and charges no
                // frontend delay.
                None => {
                    let id = JobId(self.next_id);
                    self.next_id += 1;
                    (id, TenantId::default(), 0, Rung::Detailed)
                }
            };
            let state = self.tenants.entry(tenant).or_insert_with(|| TenantState {
                config: self.config.default_tenant,
                ..TenantState::default()
            });
            state.in_flight = state.in_flight.saturating_sub(1);
            state.stats.completed += 1;
            self.stats.completed += 1;
            if !report.deadline_met() {
                state.stats.deadline_misses += 1;
                self.stats.deadline_misses += 1;
            }
            if let JobOutcome::Served { rung, .. } = report.outcome {
                state.stats.served_by[rung.index()] += 1;
            }
            reports.push(FrontendReport {
                frontend_job,
                tenant,
                worker: worker_idx as u32,
                queue_delay,
                entry_rung,
                report,
            });
        }
        reports
    }

    /// Recomputes the brownout level from the windowed p99 against the
    /// delay budget: level 1 past 1x, 2 past 2x, 3 past 4x, 4 past 8x.
    fn refresh_brownout(&mut self) {
        let budget = self.config.queue_delay_budget;
        if budget == 0 {
            self.brownout = 0;
            return;
        }
        let Some(p99) = self.shed_window_p99() else {
            self.brownout = 0;
            return;
        };
        self.brownout = if p99 <= budget {
            0
        } else if p99 <= budget.saturating_mul(2) {
            1
        } else if p99 <= budget.saturating_mul(4) {
            2
        } else if p99 <= budget.saturating_mul(8) {
            3
        } else {
            4
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::HwUpdateMethod;
    use crate::config::FdmaxConfig;
    use fdm::boundary::DirichletBoundary;
    use fdm::convergence::StopCondition;
    use fdm::pde::LaplaceProblem;
    use fdm::pde::StencilProblem;

    fn laplace(n: usize) -> StencilProblem<f32> {
        LaplaceProblem::builder(n, n)
            .boundary(DirichletBoundary::hot_top(1.0))
            .build()
            .unwrap()
            .discretize::<f32>()
    }

    fn job(n: usize, steps: usize, tenant: u64) -> JobSpec {
        JobSpec::new(
            laplace(n),
            HwUpdateMethod::Jacobi,
            StopCondition::fixed_steps(steps),
        )
        .with_tenant(TenantId(tenant))
    }

    fn frontend(workers: usize) -> Frontend {
        Frontend::new(FrontendConfig::new(
            ServiceConfig::new(FdmaxConfig::paper_default()),
            workers,
        ))
    }

    #[test]
    fn two_tenants_share_the_pool_and_complete() {
        let mut fe = frontend(2);
        for i in 0..4 {
            let _ = fe.submit(job(12, 10, i % 2)).unwrap();
        }
        let reports = fe.drain();
        assert_eq!(reports.len(), 4);
        assert!(reports.iter().all(|r| r.report.deadline_met()));
        assert_eq!(fe.stats().completed, 4);
        assert_eq!(fe.tenant_stats(TenantId(0)).unwrap().completed, 2);
        assert_eq!(fe.tenant_stats(TenantId(1)).unwrap().completed, 2);
        // Two workers, two jobs per tenant: each worker ran two jobs.
        assert!(fe.workers().iter().all(|w| w.stats().served == 2));
    }

    #[test]
    fn max_queued_quota_is_a_hard_bound_with_an_honest_hint() {
        let tenant = TenantId(7);
        let config = FrontendConfig::new(ServiceConfig::new(FdmaxConfig::paper_default()), 1)
            .with_tenant(
                tenant,
                TenantConfig {
                    max_queued: 2,
                    ..TenantConfig::default()
                },
            );
        let mut fe = Frontend::new(config);
        let _ = fe.submit(job(12, 10, 7)).unwrap();
        let _ = fe.submit(job(12, 10, 7)).unwrap();
        let err = fe.submit(job(12, 10, 7)).unwrap_err();
        match err {
            SubmitError::Saturated {
                queue_depth,
                retry_after_jobs,
                retry_after_iterations,
            } => {
                assert_eq!(queue_depth, 2);
                assert_eq!(retry_after_jobs, 1);
                assert_eq!(retry_after_iterations, fe.drain_rate());
            }
            other => panic!("expected saturation, got {other:?}"),
        }
        assert_eq!(fe.stats().rejected_quota, 1);
        assert_eq!(fe.tenant_stats(tenant).unwrap().rejected_quota, 1);
        // Other tenants are unaffected by tenant 7's quota.
        let _ = fe.submit(job(12, 10, 8)).unwrap();
    }

    #[test]
    fn frontend_cancellation_reaches_a_queued_job() {
        let mut fe = frontend(1);
        let ticket = fe.submit(job(12, 10, 0)).unwrap();
        ticket.cancel.cancel();
        let reports = fe.drain();
        assert!(reports.is_empty());
        assert_eq!(fe.stats().cancelled_queued, 1);
    }

    #[test]
    fn weighted_tenants_get_proportional_dispatch_share() {
        let heavy = TenantId(1);
        let light = TenantId(2);
        let config = FrontendConfig::new(ServiceConfig::new(FdmaxConfig::paper_default()), 1)
            .with_tenant(
                heavy,
                TenantConfig {
                    weight: 3,
                    max_queued: 32,
                    max_in_flight: 1,
                    priority: TenantPriority::Standard,
                },
            )
            .with_tenant(
                light,
                TenantConfig {
                    weight: 1,
                    max_queued: 32,
                    max_in_flight: 1,
                    priority: TenantPriority::Standard,
                },
            );
        let mut fe = Frontend::new(config);
        for _ in 0..8 {
            let _ = fe.submit(job(12, 4, 1)).unwrap();
            let _ = fe.submit(job(12, 4, 2)).unwrap();
        }
        // After four rounds the 3:1 weights should have dispatched
        // roughly 3x as many heavy jobs (max_in_flight caps each round
        // at one dispatch per tenant, so the ratio shows up over
        // rounds via the deficit carry).
        let mut heavy_done = 0u64;
        let mut light_done = 0u64;
        while fe.backlog() > 0 {
            for report in fe.run_round() {
                if report.tenant == heavy {
                    heavy_done += 1;
                } else {
                    light_done += 1;
                }
            }
        }
        assert_eq!(heavy_done, 8);
        assert_eq!(light_done, 8);
    }

    #[test]
    fn brownout_degrades_standard_tenants_only() {
        let critical = TenantId(1);
        let standard = TenantId(2);
        let config = FrontendConfig::new(ServiceConfig::new(FdmaxConfig::paper_default()), 1)
            .with_tenant(
                critical,
                TenantConfig {
                    priority: TenantPriority::Critical,
                    max_queued: 64,
                    ..TenantConfig::default()
                },
            )
            .with_tenant(
                standard,
                TenantConfig {
                    priority: TenantPriority::Standard,
                    max_queued: 64,
                    ..TenantConfig::default()
                },
            )
            .with_queue_delay_budget(1);
        let mut fe = Frontend::new(config);
        // Saturate one worker so dispatch delays blow past the 1-iter
        // budget and the ladder reaches its last step.
        for _ in 0..6 {
            let _ = fe.submit(job(12, 50, 1)).unwrap();
            let _ = fe.submit(job(12, 50, 2)).unwrap();
        }
        let reports = fe.drain();
        assert!(fe.stats().brownout_dispatches > 0);
        for report in &reports {
            if report.tenant == critical {
                assert_eq!(report.entry_rung, Rung::Detailed);
            }
        }
        assert!(
            reports
                .iter()
                .any(|r| r.tenant == standard && r.entry_rung != Rung::Detailed),
            "the ladder should have degraded some standard-tenant dispatch"
        );
        assert_eq!(
            fe.stats().brownout_dispatches,
            fe.tenant_stats(standard).unwrap().brownout_dispatches
        );
    }

    #[test]
    fn shed_refuses_standard_backlog_while_over_budget() {
        let standard = TenantId(2);
        let config = FrontendConfig::new(ServiceConfig::new(FdmaxConfig::paper_default()), 1)
            .with_tenant(
                standard,
                TenantConfig {
                    max_queued: 4,
                    ..TenantConfig::default()
                },
            )
            .with_queue_delay_budget(1);
        let mut fe = Frontend::new(config);
        for _ in 0..4 {
            let _ = fe.submit(job(12, 50, 2)).unwrap();
        }
        // Build up delay samples past the budget.
        fe.run_round();
        fe.run_round();
        assert!(fe.brownout_level() > 0);
        // Tenant 2 still holds >= half its quota queued: shed, well
        // before the hard max_queued bound.
        assert!(fe.tenant_backlog(standard) < 4);
        let err = fe.submit(job(12, 50, 2)).unwrap_err();
        assert!(matches!(err, SubmitError::Saturated { .. }));
        assert_eq!(fe.stats().shed, 1);
        assert_eq!(fe.stats().rejected_quota, 0);
    }

    #[test]
    fn frontend_lint_flags_overcommit_and_vacuous_hedge() {
        let config = FrontendConfig::new(
            ServiceConfig::new(FdmaxConfig::paper_default())
                .with_hedge(super::super::HedgeConfig::default()),
            2,
        )
        .with_tenant(TenantId(1), TenantConfig::default())
        .with_tenant(TenantId(2), TenantConfig::default())
        .with_queue_delay_budget(100);
        let report = config.lint();
        let codes: Vec<_> = report.diagnostics().iter().map(|d| d.code).collect();
        assert!(codes.contains(&crate::lint::DiagCode::TenantQuotaOvercommit));
        assert!(codes.contains(&crate::lint::DiagCode::VacuousHedge));
    }
}
