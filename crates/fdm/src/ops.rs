//! Composable matrix-free stencil operators — one operator algebra under
//! the sweeps, the Krylov solvers and multigrid.
//!
//! The FDMAX array is a single hardware substrate that many update
//! methods time-share; this module is the software mirror of that idea.
//! Every solver in the crate composes the same small set of matrix-free
//! operations instead of hand-rolling its own loops:
//!
//! * [`StencilOp::apply`] — `A·u` through the stencil, no assembled
//!   matrix anywhere (`A = I - S` for constant coefficients, the
//!   flux-form finite-volume operator for variable coefficients);
//! * [`StencilOp::residual_axpy`] — the fused `r = b - A·u` plus
//!   `||r||²` in one pass over the grid (the PE's DIFF register,
//!   expressed as an operator);
//! * [`restrict`] / [`prolong_add`] — multigrid's full-weighting
//!   restriction and bilinear prolongation;
//! * [`dot`] / [`norm`] / [`axpy`] / [`fold_partials`] — vector algebra
//!   with *fixed-order* folding, so residual histories are reproducible
//!   bit-for-bit regardless of which engine produced them.
//!
//! Everything is built on the row-slice kernels of [`crate::kernels`];
//! the hand-indexed `(i, j)` loops live *here and only here*, so the
//! solver layers above ([`crate::solver::krylov`],
//! [`crate::solver::multigrid`], the engines) contain none.
//!
//! # Coefficient fields: variable-coefficient PDEs as a data plug-in
//!
//! [`CoefficientField`] abstracts what the operator's entries are:
//!
//! * [`CoefficientField::Constant`] — one [`FivePointStencil`]; the
//!   operator is exactly the crate's fixed-point `A = I - S` with a unit
//!   diagonal, bit-compatible with the assembled
//!   [`CsrMatrix`](crate::sparse::CsrMatrix) route and the PE model.
//! * [`CoefficientField::PerAxis`] — one weight per vertical face row
//!   and per horizontal face column (separable coefficients, graded
//!   meshes). Lowered to per-cell faces at construction.
//! * [`CoefficientField::PerCell`] — full face-weight grids: `w_v[(i, j)]`
//!   weighs the face between cells `(i, j)` and `(i + 1, j)`, and
//!   `w_h[(i, j)]` the face between `(i, j)` and `(i, j + 1)`. The
//!   diagonal is the sum of each cell's four face weights, so the
//!   operator is symmetric positive definite whenever every face weight
//!   is positive — plain CG solves variable-coefficient Poisson problems
//!   with **no new solver code**.
//!
//! # Which identities are bit-exact
//!
//! * Per-point values of [`StencilOp::residual_axpy`] equal
//!   [`crate::stencil::fixed_point_residual`] bit-for-bit (same canonical
//!   order), and [`StencilOp::apply`] is its exact negation at `b = 0`.
//! * Norms fold per-row f64 partials in ascending row order — the same
//!   contract as [`crate::engine::ParallelSweepEngine`] — so they are
//!   thread-count-invariant, but *not* bit-identical to a flat
//!   element-order sum.
//! * Matrix-free vs assembled-CSR operator application agrees to
//!   rounding (different summation orders), which the equivalence suite
//!   checks differentially; converged solutions agree to solver
//!   tolerance.

use crate::grid::Grid2D;
use crate::kernels;
use crate::pde::{OffsetField, ProblemError, StencilProblem};
use crate::precision::Scalar;
use crate::stencil::FivePointStencil;

/// What the operator's coefficients are — the data plug-in that turns
/// one solver stack into a family of PDEs. See the module docs for the
/// face-weight convention.
#[derive(Clone, Debug)]
pub enum CoefficientField<T> {
    /// One stencil for the whole grid: the fixed-point operator
    /// `A = I - S` (unit diagonal).
    Constant(FivePointStencil<T>),
    /// Separable face weights: `vertical[i]` weighs every face between
    /// rows `i` and `i + 1`, `horizontal[j]` every face between columns
    /// `j` and `j + 1`. Flux-form operator (diagonal = face-weight sum).
    PerAxis {
        /// Per-row vertical face weights, length `rows` (last unused).
        vertical: Vec<T>,
        /// Per-column horizontal face weights, length `cols` (last
        /// unused).
        horizontal: Vec<T>,
    },
    /// Fully general per-cell face weights (flux form).
    PerCell {
        /// `w_v[(i, j)]` weighs the face between `(i, j)` and
        /// `(i + 1, j)`; the last row is unused.
        w_v: Grid2D<T>,
        /// `w_h[(i, j)]` weighs the face between `(i, j)` and
        /// `(i, j + 1)`; the last column is unused.
        w_h: Grid2D<T>,
    },
}

impl<T: Scalar> CoefficientField<T> {
    /// Builds per-cell face weights for the diffusion operator
    /// `-∇·(κ∇u)` on the unit square with an `rows x cols` grid:
    /// `κ` is sampled at each face midpoint and scaled by `1/dy²`
    /// (vertical faces) or `1/dx²` (horizontal faces).
    ///
    /// Any strictly positive `κ` yields a symmetric positive definite
    /// operator, so conjugate gradients applies unchanged.
    pub fn diffusion(rows: usize, cols: usize, kappa: impl Fn(f64, f64) -> f64) -> Self {
        let dx = 1.0 / (cols.max(2) - 1) as f64;
        let dy = 1.0 / (rows.max(2) - 1) as f64;
        let w_v = Grid2D::from_fn(rows, cols, |i, j| {
            let x = j as f64 * dx;
            let y = (i as f64 + 0.5) * dy;
            T::from_f64(kappa(x, y) / (dy * dy))
        });
        let w_h = Grid2D::from_fn(rows, cols, |i, j| {
            let x = (j as f64 + 0.5) * dx;
            let y = i as f64 * dy;
            T::from_f64(kappa(x, y) / (dx * dx))
        });
        CoefficientField::PerCell { w_v, w_h }
    }
}

/// The operator's lowered internal form: constant stays symbolic (two
/// scalar weights beat two grids), per-axis/per-cell become face grids.
#[derive(Clone, Debug)]
enum OpKind<T> {
    Constant(FivePointStencil<T>),
    Flux { w_v: Grid2D<T>, w_h: Grid2D<T> },
}

/// A matrix-free stencil operator on an `rows x cols` grid.
///
/// `apply`/`residual_axpy` touch interior points only; the callers own
/// the boundary ring (Dirichlet data on solution grids, zeros on Krylov
/// direction grids and multigrid error grids).
#[derive(Clone, Debug)]
pub struct StencilOp<T> {
    rows: usize,
    cols: usize,
    kind: OpKind<T>,
    /// One zero row, lent to the flux kernels when the offset is absent.
    zeros: Vec<T>,
}

impl<T: Scalar> StencilOp<T> {
    /// Builds the operator for a coefficient field.
    ///
    /// # Errors
    ///
    /// [`ProblemError::GridTooSmall`] when the grid has no interior,
    /// [`ProblemError::ShapeMismatch`] when a per-axis/per-cell field's
    /// dimensions do not match the grid.
    pub fn new(rows: usize, cols: usize, coeff: CoefficientField<T>) -> Result<Self, ProblemError> {
        if rows < 3 || cols < 3 {
            return Err(ProblemError::GridTooSmall { rows, cols });
        }
        let kind = match coeff {
            CoefficientField::Constant(stencil) => OpKind::Constant(stencil),
            CoefficientField::PerAxis {
                vertical,
                horizontal,
            } => {
                if vertical.len() != rows || horizontal.len() != cols {
                    return Err(ProblemError::ShapeMismatch {
                        expected: (rows, cols),
                        got: (vertical.len(), horizontal.len()),
                    });
                }
                let w_v = Grid2D::from_fn(rows, cols, |i, _| vertical[i]);
                let w_h = Grid2D::from_fn(rows, cols, |_, j| horizontal[j]);
                OpKind::Flux { w_v, w_h }
            }
            CoefficientField::PerCell { w_v, w_h } => {
                if w_v.rows() != rows
                    || w_v.cols() != cols
                    || w_h.rows() != rows
                    || w_h.cols() != cols
                {
                    return Err(ProblemError::ShapeMismatch {
                        expected: (rows, cols),
                        got: (w_v.rows(), w_v.cols()),
                    });
                }
                OpKind::Flux { w_v, w_h }
            }
        };
        Ok(StencilOp {
            rows,
            cols,
            kind,
            zeros: vec![T::ZERO; cols],
        })
    }

    /// The constant-coefficient operator `A = I - S` of a problem's
    /// stencil (any problem kind — the operator ignores the offset).
    ///
    /// # Panics
    ///
    /// Panics when the problem grid has no interior.
    #[must_use]
    pub fn from_problem(problem: &StencilProblem<T>) -> Self {
        StencilOp::new(
            problem.rows(),
            problem.cols(),
            CoefficientField::Constant(problem.stencil),
        )
        .expect("a built problem always has an interior")
    }

    /// Grid rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` for the constant-coefficient (`A = I - S`) form.
    #[must_use]
    pub fn is_constant(&self) -> bool {
        matches!(self.kind, OpKind::Constant(_))
    }

    /// `A·u` into `out` (interior only; `out`'s ring is never touched).
    ///
    /// # Panics
    ///
    /// Panics when `u` or `out` do not match the operator's dimensions.
    pub fn apply(&self, u: &Grid2D<T>, out: &mut Grid2D<T>) {
        self.check_dims(u);
        self.check_dims(out);
        for i in 1..self.rows - 1 {
            let (up, mid, down) = (u.row(i - 1), u.row(i), u.row(i + 1));
            match &self.kind {
                OpKind::Constant(s) => {
                    kernels::apply_row(s, up, mid, down, out.row_mut(i));
                }
                OpKind::Flux { w_v, w_h } => {
                    kernels::flux_apply_row(
                        w_v.row(i - 1),
                        w_v.row(i),
                        w_h.row(i),
                        up,
                        mid,
                        down,
                        out.row_mut(i),
                    );
                }
            }
        }
    }

    /// Fused residual: writes `r = b - A·u` into `r`'s interior and
    /// returns `||r||²` as per-row f64 partials folded in ascending row
    /// order. The right-hand side `b` comes from the problem-level
    /// offset field (`prev` backs the wave equation's history term on
    /// the constant path).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches, and on a `ScaledPrevField` offset
    /// for a variable-coefficient (flux) operator — those are
    /// steady-state only.
    pub fn residual_axpy(
        &self,
        offset: &OffsetField<T>,
        prev: Option<&Grid2D<T>>,
        u: &Grid2D<T>,
        r: &mut Grid2D<T>,
    ) -> f64 {
        self.check_dims(u);
        self.check_dims(r);
        let mut norm2 = 0.0f64;
        for i in 1..self.rows - 1 {
            let (up, mid, down) = (u.row(i - 1), u.row(i), u.row(i + 1));
            let partial = match &self.kind {
                OpKind::Constant(s) => kernels::residual_row(
                    s,
                    up,
                    mid,
                    down,
                    kernels::OffsetRow::for_row(offset, prev, i),
                    r.row_mut(i),
                ),
                OpKind::Flux { w_v, w_h } => {
                    let b = match offset {
                        OffsetField::None => self.zeros.as_slice(),
                        OffsetField::Static(c) => c.row(i),
                        OffsetField::ScaledPrevField { .. } => {
                            panic!("variable-coefficient operators are steady-state only")
                        }
                    };
                    kernels::flux_residual_row(
                        w_v.row(i - 1),
                        w_v.row(i),
                        w_h.row(i),
                        up,
                        mid,
                        down,
                        b,
                        r.row_mut(i),
                    )
                }
            };
            norm2 += partial;
        }
        norm2
    }

    /// `||b - A·u||²` without materialising the residual field (one
    /// scratch row).
    #[must_use]
    pub fn residual_norm2(
        &self,
        offset: &OffsetField<T>,
        prev: Option<&Grid2D<T>>,
        u: &Grid2D<T>,
    ) -> f64 {
        self.check_dims(u);
        let mut scratch = vec![T::ZERO; self.cols];
        let mut norm2 = 0.0f64;
        for i in 1..self.rows - 1 {
            let (up, mid, down) = (u.row(i - 1), u.row(i), u.row(i + 1));
            let partial = match &self.kind {
                OpKind::Constant(s) => kernels::residual_row(
                    s,
                    up,
                    mid,
                    down,
                    kernels::OffsetRow::for_row(offset, prev, i),
                    &mut scratch,
                ),
                OpKind::Flux { w_v, w_h } => {
                    let b = match offset {
                        OffsetField::None => self.zeros.as_slice(),
                        OffsetField::Static(c) => c.row(i),
                        OffsetField::ScaledPrevField { .. } => {
                            panic!("variable-coefficient operators are steady-state only")
                        }
                    };
                    kernels::flux_residual_row(
                        w_v.row(i - 1),
                        w_v.row(i),
                        w_h.row(i),
                        up,
                        mid,
                        down,
                        b,
                        &mut scratch,
                    )
                }
            };
            norm2 += partial;
        }
        norm2
    }

    /// The operator's diagonal as a grid (ring filled with ones so a
    /// Jacobi preconditioner can divide anywhere): `1 - w_s` for the
    /// constant form, the face-weight sum for the flux form.
    #[must_use]
    pub fn diagonal(&self) -> Grid2D<T> {
        match &self.kind {
            OpKind::Constant(s) => {
                let d = T::ONE - s.w_s;
                let mut g = Grid2D::filled(self.rows, self.cols, T::ONE);
                for i in 1..self.rows - 1 {
                    for v in &mut g.row_mut(i)[1..self.cols - 1] {
                        *v = d;
                    }
                }
                g
            }
            OpKind::Flux { w_v, w_h } => Grid2D::from_fn(self.rows, self.cols, |i, j| {
                if i == 0 || j == 0 || i == self.rows - 1 || j == self.cols - 1 {
                    T::ONE
                } else {
                    (w_v[(i - 1, j)] + w_v[(i, j)]) + (w_h[(i, j - 1)] + w_h[(i, j)])
                }
            }),
        }
    }

    /// The right-hand side of the interior linear system `A·x = b` with
    /// the grid's Dirichlet ring folded in: `b = c + (coupling to the
    /// boundary values)`, zero ring. Evaluated in f64 — this feeds the
    /// Krylov solvers, which iterate in f64 regardless of the problem's
    /// storage precision.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches or a `ScaledPrevField` offset (no
    /// steady-state system exists for time-stepped problems).
    #[must_use]
    pub fn dirichlet_rhs(&self, offset: &OffsetField<T>, boundary: &Grid2D<T>) -> Grid2D<f64> {
        self.check_dims(boundary);
        let rows = self.rows;
        let cols = self.cols;
        let mut b = Grid2D::zeros(rows, cols);
        for i in 1..rows - 1 {
            for j in 1..cols - 1 {
                let mut v = match offset {
                    OffsetField::None => 0.0,
                    OffsetField::Static(c) => c[(i, j)].to_f64(),
                    OffsetField::ScaledPrevField { .. } => {
                        panic!("no steady-state right-hand side for a time-dependent offset")
                    }
                };
                match &self.kind {
                    OpKind::Constant(s) => {
                        if i == 1 {
                            v += s.w_v.to_f64() * boundary[(0, j)].to_f64();
                        }
                        if i == rows - 2 {
                            v += s.w_v.to_f64() * boundary[(rows - 1, j)].to_f64();
                        }
                        if j == 1 {
                            v += s.w_h.to_f64() * boundary[(i, 0)].to_f64();
                        }
                        if j == cols - 2 {
                            v += s.w_h.to_f64() * boundary[(i, cols - 1)].to_f64();
                        }
                    }
                    OpKind::Flux { w_v, w_h } => {
                        if i == 1 {
                            v += w_v[(0, j)].to_f64() * boundary[(0, j)].to_f64();
                        }
                        if i == rows - 2 {
                            v += w_v[(rows - 2, j)].to_f64() * boundary[(rows - 1, j)].to_f64();
                        }
                        if j == 1 {
                            v += w_h[(i, 0)].to_f64() * boundary[(i, 0)].to_f64();
                        }
                        if j == cols - 2 {
                            v += w_h[(i, cols - 2)].to_f64() * boundary[(i, cols - 1)].to_f64();
                        }
                    }
                }
                b[(i, j)] = v;
            }
        }
        b
    }

    fn check_dims(&self, g: &Grid2D<T>) {
        assert_eq!(
            (g.rows(), g.cols()),
            (self.rows, self.cols),
            "operator/grid dimension mismatch"
        );
    }
}

// ------------------------------------------------------------------
// Fixed-order vector algebra (f64 Krylov space).
// ------------------------------------------------------------------

/// Dot product with a strict left-to-right fold — the fixed order every
/// Krylov path shares, so iteration histories are reproducible.
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// L2 norm via [`dot`] (same fold order).
#[must_use]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x`, element order.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y = x + beta * y`, element order (the CG direction update).
pub fn xpby(x: &[f64], beta: f64, y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "xpby length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + beta * *yi;
    }
}

/// Folds per-row (or per-band) f64 partial sums in ascending order — the
/// one fold the serial sweeps, [`crate::engine::ParallelSweepEngine`] and
/// the operator layer all share, which is what makes residual histories
/// thread-count-invariant bit for bit.
#[must_use]
pub fn fold_partials(partials: &[f64]) -> f64 {
    fold_partials_from(0.0, partials)
}

/// [`fold_partials`] continued from a running total — for multi-phase
/// sweeps (checkerboard) whose serial accumulator never resets between
/// phases. `fold_partials_from(acc, p)` reproduces `for v in p { acc += v }`
/// exactly, so phase boundaries introduce no regrouping.
#[must_use]
pub fn fold_partials_from(acc: f64, partials: &[f64]) -> f64 {
    let mut total = acc;
    for &v in partials {
        total += v;
    }
    total
}

// ------------------------------------------------------------------
// Grid embedding / flattening between solver spaces.
// ------------------------------------------------------------------

/// Clones `frame` and overwrites its interior with `values` (converted
/// through f64) — scatters a Krylov iterate back onto its Dirichlet
/// ring.
#[must_use]
pub fn embed_interior<S: Scalar, T: Scalar>(values: &Grid2D<S>, frame: &Grid2D<T>) -> Grid2D<T> {
    assert_eq!(
        (values.rows(), values.cols()),
        (frame.rows(), frame.cols()),
        "embed dimension mismatch"
    );
    let mut out = frame.clone();
    for i in out.interior_rows() {
        let src = values.row(i);
        let dst = out.row_mut(i);
        let hi = src.len() - 1;
        for (d, s) in dst[1..hi].iter_mut().zip(&src[1..hi]) {
            *d = T::from_f64(s.to_f64());
        }
    }
    out
}

/// The interior of a grid as a flat row-major vector (the classic
/// Krylov unknown ordering, matching the assembled CSR system).
#[must_use]
pub fn interior_to_vec(g: &Grid2D<f64>) -> Vec<f64> {
    let cols = g.cols();
    let mut out = Vec::with_capacity(g.rows().saturating_sub(2) * cols.saturating_sub(2));
    for i in g.interior_rows() {
        out.extend_from_slice(&g.row(i)[1..cols - 1]);
    }
    out
}

// ------------------------------------------------------------------
// Inter-grid transfer operators (multigrid).
// ------------------------------------------------------------------

/// Full-weighting restriction onto the `(n+1)/2` grid (boundary zero):
/// centre `1/4`, edges `1/8`, corners `1/16`. Adjoint (up to the factor
/// 4 grid-transfer scaling) of [`prolong_add`].
#[must_use]
pub fn restrict<T: Scalar>(fine: &Grid2D<T>) -> Grid2D<T> {
    let rc = fine.rows().div_ceil(2);
    let cc = fine.cols().div_ceil(2);
    let quarter = T::from_f64(0.25);
    let eighth = T::from_f64(0.125);
    let sixteenth = T::from_f64(0.0625);
    let mut coarse = Grid2D::zeros(rc, cc);
    for i in 1..rc - 1 {
        for j in 1..cc - 1 {
            let (fi, fj) = (2 * i, 2 * j);
            let centre = quarter * fine[(fi, fj)];
            let edges = eighth
                * (fine[(fi - 1, fj)]
                    + fine[(fi + 1, fj)]
                    + fine[(fi, fj - 1)]
                    + fine[(fi, fj + 1)]);
            let corners = sixteenth
                * (fine[(fi - 1, fj - 1)]
                    + fine[(fi - 1, fj + 1)]
                    + fine[(fi + 1, fj - 1)]
                    + fine[(fi + 1, fj + 1)]);
            coarse[(i, j)] = centre + edges + corners;
        }
    }
    coarse
}

/// Bilinear prolongation: adds the interpolated coarse correction onto
/// the fine grid's interior. Out-of-range coarse neighbours read as zero
/// (the error grids' homogeneous boundary).
pub fn prolong_add<T: Scalar>(coarse: &Grid2D<T>, fine: &mut Grid2D<T>) {
    let half = T::from_f64(0.5);
    let quarter = T::from_f64(0.25);
    let (rc, cc) = (coarse.rows(), coarse.cols());
    let at = |i: isize, j: isize| -> T {
        if i < 0 || j < 0 || i as usize >= rc || j as usize >= cc {
            T::ZERO
        } else {
            coarse[(i as usize, j as usize)]
        }
    };
    for i in 1..fine.rows() - 1 {
        for j in 1..fine.cols() - 1 {
            let (ci, cj) = ((i / 2) as isize, (j / 2) as isize);
            let add = match (i % 2, j % 2) {
                (0, 0) => at(ci, cj),
                (1, 0) => half * (at(ci, cj) + at(ci + 1, cj)),
                (0, 1) => half * (at(ci, cj) + at(ci, cj + 1)),
                _ => quarter * (at(ci, cj) + at(ci + 1, cj) + at(ci, cj + 1) + at(ci + 1, cj + 1)),
            };
            fine[(i, j)] = fine[(i, j)] + add;
        }
    }
}

/// `u += e` on the interior, row slices.
pub fn add_assign_interior<T: Scalar>(u: &mut Grid2D<T>, e: &Grid2D<T>) {
    assert_eq!(
        (u.rows(), u.cols()),
        (e.rows(), e.cols()),
        "add dimension mismatch"
    );
    let cols = u.cols();
    for i in u.interior_rows() {
        let src = e.row(i);
        for (d, s) in u.row_mut(i)[1..cols - 1].iter_mut().zip(&src[1..cols - 1]) {
            *d = *d + *s;
        }
    }
}

/// Scales every element of a grid in place.
pub fn scale<T: Scalar>(g: &mut Grid2D<T>, factor: T) {
    for v in g.as_mut_slice() {
        *v = factor * *v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::DirichletBoundary;
    use crate::pde::{LaplaceProblem, PoissonProblem};
    use crate::sparse::StencilSystem;

    fn laplace(n: usize) -> StencilProblem<f64> {
        LaplaceProblem::builder(n, n)
            .boundary(DirichletBoundary::sine_top(1.0))
            .build()
            .unwrap()
            .discretize::<f64>()
    }

    #[test]
    fn constant_apply_matches_assembled_spmv_to_rounding() {
        let sp = laplace(12);
        let sys = StencilSystem::assemble(&sp).unwrap();
        let op = StencilOp::from_problem(&sp);
        // An arbitrary zero-ring iterate.
        let u = Grid2D::from_fn(12, 12, |i, j| {
            if i == 0 || j == 0 || i == 11 || j == 11 {
                0.0
            } else {
                ((i * 7 + j * 3) % 11) as f64 * 0.125 - 0.5
            }
        });
        let mut au = Grid2D::zeros(12, 12);
        op.apply(&u, &mut au);
        let flat = interior_to_vec(&u);
        let csr = sys.matrix.spmv(&flat);
        for (a, b) in interior_to_vec(&au).iter().zip(&csr) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn residual_axpy_matches_b_minus_apply() {
        let sp = PoissonProblem::builder(10, 10)
            .source_fn(|x, y| x - y)
            .build()
            .unwrap()
            .discretize::<f64>();
        let op = StencilOp::from_problem(&sp);
        let u = Grid2D::from_fn(10, 10, |i, j| (i + 2 * j) as f64 * 0.01);
        let mut r = Grid2D::zeros(10, 10);
        let norm2 = op.residual_axpy(&sp.offset, None, &u, &mut r);
        let mut au = Grid2D::zeros(10, 10);
        op.apply(&u, &mut au);
        let b = match &sp.offset {
            crate::pde::OffsetField::Static(c) => c.clone(),
            _ => unreachable!("poisson offset is static"),
        };
        let mut want2 = 0.0f64;
        for i in 1..9 {
            // Reproduce the kernel's within-row lane fold (interior
            // element k lands in lane k % SIMD_LANES), then the per-row
            // partials fold in ascending row order.
            let mut acc = [0.0f64; crate::kernels::SIMD_LANES];
            for j in 1..9 {
                let want = b[(i, j)] - au[(i, j)];
                assert!((r[(i, j)] - want).abs() < 1e-12);
                acc[(j - 1) % crate::kernels::SIMD_LANES] += r[(i, j)] * r[(i, j)];
            }
            want2 += crate::kernels::fold_lanes(acc);
        }
        assert_eq!(norm2.to_bits(), want2.to_bits(), "per-row ascending fold");
        assert_eq!(
            op.residual_norm2(&sp.offset, None, &u).to_bits(),
            norm2.to_bits()
        );
    }

    #[test]
    fn per_axis_lowers_to_per_cell() {
        let vertical = vec![0.5f64, 0.25, 0.75, 0.125, 0.0];
        let horizontal = vec![0.1f64, 0.2, 0.3, 0.4, 0.0];
        let pa = StencilOp::new(
            5,
            5,
            CoefficientField::PerAxis {
                vertical: vertical.clone(),
                horizontal: horizontal.clone(),
            },
        )
        .unwrap();
        let pc = StencilOp::new(
            5,
            5,
            CoefficientField::PerCell {
                w_v: Grid2D::from_fn(5, 5, |i, _| vertical[i]),
                w_h: Grid2D::from_fn(5, 5, |_, j| horizontal[j]),
            },
        )
        .unwrap();
        let u = Grid2D::from_fn(5, 5, |i, j| (i * 5 + j) as f64 * 0.1);
        let mut a = Grid2D::zeros(5, 5);
        let mut b = Grid2D::zeros(5, 5);
        pa.apply(&u, &mut a);
        pc.apply(&u, &mut b);
        assert_eq!(a.diff_max(&b), 0.0);
    }

    #[test]
    fn flux_operator_is_symmetric() {
        // <A·u, v> == <u, A·v> for random-ish zero-ring fields.
        let coeff = CoefficientField::diffusion(9, 9, |x, y| 1.0 + 2.0 * x + y * y);
        let op = StencilOp::new(9, 9, coeff).unwrap();
        let zr = |f: fn(usize, usize) -> f64| {
            Grid2D::from_fn(9, 9, move |i, j| {
                if i == 0 || j == 0 || i == 8 || j == 8 {
                    0.0
                } else {
                    f(i, j)
                }
            })
        };
        let u = zr(|i, j| ((i * 13 + j * 5) % 7) as f64 - 3.0);
        let v = zr(|i, j| ((i * 3 + j * 11) % 5) as f64 * 0.5 - 1.0);
        let mut au = Grid2D::zeros(9, 9);
        let mut av = Grid2D::zeros(9, 9);
        op.apply(&u, &mut au);
        op.apply(&v, &mut av);
        let lhs = dot(au.as_slice(), v.as_slice());
        let rhs = dot(u.as_slice(), av.as_slice());
        assert!(
            (lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn dirichlet_rhs_matches_assembled_rhs() {
        let sp = laplace(9);
        let sys = StencilSystem::assemble(&sp).unwrap();
        let op = StencilOp::from_problem(&sp);
        let b = op.dirichlet_rhs(&sp.offset, &sp.initial);
        let flat = interior_to_vec(&b);
        assert_eq!(flat.len(), sys.rhs.len());
        for (got, want) in flat.iter().zip(&sys.rhs) {
            assert!((got - want).abs() < 1e-15, "{got} vs {want}");
        }
    }

    #[test]
    fn operator_construction_validates_shapes() {
        assert!(matches!(
            StencilOp::new(
                2,
                8,
                CoefficientField::Constant(FivePointStencil::new(0.25f64, 0.25, 0.0))
            ),
            Err(ProblemError::GridTooSmall { rows: 2, cols: 8 })
        ));
        assert!(matches!(
            StencilOp::new(
                5,
                5,
                CoefficientField::PerAxis {
                    vertical: vec![0.1f64; 4],
                    horizontal: vec![0.1; 5],
                }
            ),
            Err(ProblemError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn fold_and_vector_algebra_orders() {
        let a = [1e16, 1.0, -1e16, 1.0];
        // Left-to-right: (1e16 + 1) loses the 1, then cancels, then + 1.
        assert_eq!(fold_partials(&a), 1.0);
        assert_eq!(dot(&a, &[1.0, 1.0, 1.0, 1.0]), 1.0);
        let mut y = [1.0, 2.0];
        axpy(0.5, &[2.0, 4.0], &mut y);
        assert_eq!(y, [2.0, 4.0]);
        xpby(&[1.0, 1.0], 0.5, &mut y);
        assert_eq!(y, [2.0, 3.0]);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn embed_and_flatten_round_trip() {
        let frame = Grid2D::filled(4, 5, 9.0f32);
        let values = Grid2D::from_fn(4, 5, |i, j| (i * 5 + j) as f64);
        let g = embed_interior(&values, &frame);
        for j in 0..5 {
            assert_eq!(g[(0, j)], 9.0, "ring preserved");
            assert_eq!(g[(3, j)], 9.0, "ring preserved");
        }
        assert_eq!(g[(1, 1)], 6.0);
        assert_eq!(g[(2, 3)], 13.0);
        let flat = interior_to_vec(&values);
        assert_eq!(flat, vec![6.0, 7.0, 8.0, 11.0, 12.0, 13.0]);
    }

    #[test]
    fn restrict_and_prolong_preserve_constants() {
        // Mirrors the multigrid transfer contract: restriction of a
        // constant-3 interior is 3 away from the boundary.
        let mut fine = Grid2D::zeros(17, 17);
        for i in 1..16 {
            for j in 1..16 {
                fine[(i, j)] = 3.0f64;
            }
        }
        let coarse = restrict(&fine);
        assert_eq!(coarse.rows(), 9);
        assert!((coarse[(4, 4)] - 3.0).abs() < 1e-12);
        let mut out = Grid2D::<f64>::zeros(17, 17);
        prolong_add(&Grid2D::zeros(9, 9), &mut out);
        assert_eq!(out.norm_l2(), 0.0);
    }

    #[test]
    fn add_assign_and_scale_touch_expected_elements() {
        let mut u = Grid2D::filled(4, 4, 1.0f64);
        let e = Grid2D::filled(4, 4, 2.0f64);
        add_assign_interior(&mut u, &e);
        assert_eq!(u[(1, 1)], 3.0);
        assert_eq!(u[(0, 0)], 1.0, "ring untouched");
        scale(&mut u, 2.0);
        assert_eq!(u[(1, 1)], 6.0);
        assert_eq!(u[(0, 0)], 2.0, "scale is whole-grid");
    }
}
