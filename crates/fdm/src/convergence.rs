//! Stop conditions and residual tracking.
//!
//! The paper's stop condition (§2.2.5): iteration stops when the L2 norm of
//! `U^{k+1} - U^k` drops below a threshold. FDMAX evaluates this on-chip
//! (per-PE DIFF logic + the ECU); CPUs evaluate it in software. Either way
//! the same [`StopCondition`] describes it.

use crate::pde::RunMode;
use core::fmt;

/// Error returned by [`StopCondition::try_tolerance`] for a threshold
/// that can never be crossed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InvalidTolerance {
    /// The rejected threshold.
    pub tolerance: f64,
}

impl fmt::Display for InvalidTolerance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tolerance must be positive and finite, got {}",
            self.tolerance
        )
    }
}

impl std::error::Error for InvalidTolerance {}

/// When to stop iterating.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StopCondition {
    /// Threshold on `||U^{k+1} - U^k||_2`; `None` means run a fixed number
    /// of steps (time-dependent equations).
    tolerance: Option<f64>,
    /// Hard iteration cap (or the exact step count when `tolerance` is
    /// `None`).
    max_iterations: usize,
}

impl StopCondition {
    /// Stop when the update norm drops below `tolerance`, giving up after
    /// `max_iterations`.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not positive and finite;
    /// [`StopCondition::try_tolerance`] is the non-panicking variant.
    pub fn tolerance(tolerance: f64, max_iterations: usize) -> Self {
        match Self::try_tolerance(tolerance, max_iterations) {
            Ok(s) => s,
            Err(_) => panic!("tolerance must be positive and finite"),
        }
    }

    /// Fallible variant of [`StopCondition::tolerance`].
    ///
    /// # Errors
    ///
    /// Returns [`InvalidTolerance`] when `tolerance` is not positive and
    /// finite.
    pub fn try_tolerance(tolerance: f64, max_iterations: usize) -> Result<Self, InvalidTolerance> {
        if !(tolerance > 0.0 && tolerance.is_finite()) {
            return Err(InvalidTolerance { tolerance });
        }
        Ok(StopCondition {
            tolerance: Some(tolerance),
            max_iterations,
        })
    }

    /// Run exactly `steps` iterations (time stepping).
    pub fn fixed_steps(steps: usize) -> Self {
        StopCondition {
            tolerance: None,
            max_iterations: steps,
        }
    }

    /// Derives the stop condition a [`RunMode`] describes.
    pub fn from_mode(mode: &RunMode) -> Self {
        match *mode {
            RunMode::Converge {
                tolerance,
                max_iterations,
            } => StopCondition::tolerance(tolerance, max_iterations),
            RunMode::FixedSteps(steps) => StopCondition::fixed_steps(steps),
        }
    }

    /// The same condition with the iteration cap clamped to `cap`
    /// (services clamp admitted jobs to their per-job budget).
    pub fn clamped(&self, cap: usize) -> Self {
        StopCondition {
            tolerance: self.tolerance,
            max_iterations: self.max_iterations.min(cap),
        }
    }

    /// The tolerance, when convergence-driven.
    pub fn tolerance_value(&self) -> Option<f64> {
        self.tolerance
    }

    /// The iteration cap / step count.
    pub fn max_iterations(&self) -> usize {
        self.max_iterations
    }

    /// Decides whether iteration should stop after observing an update norm.
    ///
    /// `iteration` is 1-based (the number of completed sweeps).
    pub fn should_stop(&self, iteration: usize, update_norm: f64) -> bool {
        if iteration >= self.max_iterations {
            return true;
        }
        match self.tolerance {
            Some(tol) => update_norm <= tol,
            None => false,
        }
    }

    /// Whether a run that stopped at `iteration` with `update_norm`
    /// actually met its goal (tolerance reached, or all steps completed).
    pub fn is_met(&self, iteration: usize, update_norm: f64) -> bool {
        match self.tolerance {
            Some(tol) => update_norm <= tol,
            None => iteration >= self.max_iterations,
        }
    }
}

impl fmt::Display for StopCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.tolerance {
            Some(tol) => write!(f, "||dU|| <= {tol:e} (cap {})", self.max_iterations),
            None => write!(f, "{} fixed steps", self.max_iterations),
        }
    }
}

/// Per-iteration record of the update norm `||U^{k+1} - U^k||_2`.
///
/// This is the series plotted in Fig. 1 of the paper.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResidualHistory {
    norms: Vec<f64>,
}

impl ResidualHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the update norm of one completed iteration.
    pub fn push(&mut self, norm: f64) {
        self.norms.push(norm);
    }

    /// Number of recorded iterations.
    pub fn len(&self) -> usize {
        self.norms.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.norms.is_empty()
    }

    /// The update norm of iteration `k` (0-based).
    pub fn get(&self, k: usize) -> Option<f64> {
        self.norms.get(k).copied()
    }

    /// The last recorded norm.
    pub fn last(&self) -> Option<f64> {
        self.norms.last().copied()
    }

    /// All recorded norms in iteration order.
    pub fn as_slice(&self) -> &[f64] {
        &self.norms
    }

    /// Norms divided by the first norm — the "normalized residual" series
    /// of Fig. 1. Empty history yields an empty vector.
    pub fn normalized(&self) -> Vec<f64> {
        match self.norms.first().copied() {
            Some(first) if first > 0.0 => self.norms.iter().map(|n| n / first).collect(),
            _ => self.norms.clone(),
        }
    }

    /// First iteration (1-based) whose *normalized* residual drops to or
    /// below `level`, or `None` if never reached.
    pub fn iterations_to_reach(&self, level: f64) -> Option<usize> {
        self.normalized()
            .iter()
            .position(|&n| n <= level)
            .map(|k| k + 1)
    }

    /// Discards every norm recorded after iteration `len` (keeps the
    /// first `len` entries). Used when a solve rolls back to a
    /// checkpoint: the replayed iterations re-record their norms.
    pub fn truncate(&mut self, len: usize) {
        self.norms.truncate(len);
    }

    /// Checks the tail of the series for the two failure signatures the
    /// recovery layer reacts to:
    ///
    /// * a non-finite norm (NaN/Inf — numerical blow-up or silent data
    ///   corruption reaching the ECU), reported immediately;
    /// * sustained growth: the latest norm exceeds `growth_factor` times
    ///   the norm `window` iterations earlier (only meaningful once at
    ///   least `window + 1` norms exist).
    ///
    /// Returns `None` while the series looks healthy.
    pub fn detect_divergence(&self, window: usize, growth_factor: f64) -> Option<Divergence> {
        let last = self.norms.last().copied()?;
        if !last.is_finite() {
            return Some(Divergence::NonFinite {
                iteration: self.norms.len(),
            });
        }
        if window == 0 || self.norms.len() <= window {
            return None;
        }
        let earlier = self.norms[self.norms.len() - 1 - window];
        if earlier.is_finite() && last > earlier * growth_factor {
            return Some(Divergence::Growing {
                iteration: self.norms.len(),
                ratio: if earlier > 0.0 {
                    last / earlier
                } else {
                    f64::INFINITY
                },
            });
        }
        None
    }

    /// Checks the tail of the series for *lack of progress*: the latest
    /// norm has not decayed below `min_decay` times the norm `window`
    /// iterations earlier. With `min_decay = 1.0` this flags any window
    /// over which the residual failed to strictly decrease — the
    /// signature of a wedged engine or a solve orbiting its fixed point
    /// without approaching it.
    ///
    /// Non-finite norms are [`detect_divergence`](Self::detect_divergence)'s
    /// business and never reported here. Returns the 1-based iteration
    /// ending the stalled window, or `None` while the series makes
    /// progress (or is still shorter than `window + 1`).
    pub fn detect_stall(&self, window: usize, min_decay: f64) -> Option<usize> {
        if window == 0 || self.norms.len() <= window {
            return None;
        }
        let last = self.norms.last().copied()?;
        let earlier = self.norms[self.norms.len() - 1 - window];
        if !last.is_finite() || !earlier.is_finite() {
            return None;
        }
        (last >= earlier * min_decay).then_some(self.norms.len())
    }
}

/// A failure signature found in a [`ResidualHistory`] tail.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Divergence {
    /// The update norm became NaN or infinite at `iteration` (1-based).
    NonFinite {
        /// Iteration whose norm is non-finite.
        iteration: usize,
    },
    /// The update norm grew by `ratio` over the detection window ending
    /// at `iteration`.
    Growing {
        /// Iteration at the end of the growth window.
        iteration: usize,
        /// Growth of the norm across the window.
        ratio: f64,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::NonFinite { iteration } => {
                write!(f, "non-finite update norm at iteration {iteration}")
            }
            Divergence::Growing { iteration, ratio } => {
                write!(f, "update norm grew {ratio:.2}x by iteration {iteration}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pde::RunMode;

    #[test]
    fn tolerance_stop() {
        let s = StopCondition::tolerance(1e-3, 100);
        assert!(!s.should_stop(5, 1e-2));
        assert!(s.should_stop(5, 1e-3));
        assert!(s.should_stop(100, 1.0), "cap always stops");
        assert!(s.is_met(5, 1e-4));
        assert!(!s.is_met(100, 1.0), "hitting the cap is not convergence");
    }

    #[test]
    fn fixed_steps_stop() {
        let s = StopCondition::fixed_steps(10);
        assert!(!s.should_stop(9, 0.0));
        assert!(s.should_stop(10, 123.0));
        assert!(s.is_met(10, 123.0), "completing all steps is success");
        assert!(!s.is_met(9, 0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tolerance_panics() {
        let _ = StopCondition::tolerance(0.0, 10);
    }

    #[test]
    fn from_mode_round_trip() {
        let s = StopCondition::from_mode(&RunMode::Converge {
            tolerance: 1e-5,
            max_iterations: 42,
        });
        assert_eq!(s.tolerance_value(), Some(1e-5));
        assert_eq!(s.max_iterations(), 42);

        let s = StopCondition::from_mode(&RunMode::FixedSteps(7));
        assert_eq!(s.tolerance_value(), None);
        assert_eq!(s.max_iterations(), 7);
    }

    #[test]
    fn history_normalization() {
        let mut h = ResidualHistory::new();
        for n in [8.0, 4.0, 2.0, 1.0] {
            h.push(n);
        }
        assert_eq!(h.len(), 4);
        assert_eq!(h.last(), Some(1.0));
        assert_eq!(h.normalized(), vec![1.0, 0.5, 0.25, 0.125]);
        assert_eq!(h.iterations_to_reach(0.5), Some(2));
        assert_eq!(h.iterations_to_reach(0.01), None);
        assert_eq!(h.get(2), Some(2.0));
    }

    #[test]
    fn history_empty_and_zero_first() {
        let h = ResidualHistory::new();
        assert!(h.is_empty());
        assert!(h.normalized().is_empty());
        let mut h = ResidualHistory::new();
        h.push(0.0);
        h.push(0.0);
        assert_eq!(h.normalized(), vec![0.0, 0.0], "zero first norm left as-is");
    }

    #[test]
    fn try_tolerance_rejects_bad_thresholds() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = StopCondition::try_tolerance(bad, 10).unwrap_err();
            assert!(err.to_string().contains("positive and finite"));
        }
        let ok = StopCondition::try_tolerance(1e-6, 10).unwrap();
        assert_eq!(ok, StopCondition::tolerance(1e-6, 10));
    }

    #[test]
    fn truncate_rolls_the_series_back() {
        let mut h = ResidualHistory::new();
        for n in [8.0, 4.0, 2.0, 1.0] {
            h.push(n);
        }
        h.truncate(2);
        assert_eq!(h.as_slice(), &[8.0, 4.0]);
        h.truncate(5);
        assert_eq!(h.len(), 2, "truncate past the end is a no-op");
    }

    #[test]
    fn divergence_detects_non_finite() {
        let mut h = ResidualHistory::new();
        h.push(1.0);
        assert_eq!(h.detect_divergence(4, 10.0), None);
        h.push(f64::NAN);
        assert_eq!(
            h.detect_divergence(4, 10.0),
            Some(Divergence::NonFinite { iteration: 2 })
        );
        let mut h = ResidualHistory::new();
        h.push(f64::INFINITY);
        assert!(matches!(
            h.detect_divergence(4, 10.0),
            Some(Divergence::NonFinite { iteration: 1 })
        ));
    }

    #[test]
    fn divergence_detects_sustained_growth() {
        let mut h = ResidualHistory::new();
        for n in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
            h.push(n);
        }
        // Over a window of 4, 32 / 2 = 16x > 10x.
        let d = h.detect_divergence(4, 10.0).expect("growth detected");
        match d {
            Divergence::Growing { iteration, ratio } => {
                assert_eq!(iteration, 6);
                assert!((ratio - 16.0).abs() < 1e-12);
            }
            other => panic!("expected Growing, got {other:?}"),
        }
        assert!(d.to_string().contains("grew"));
        // A converging series never trips the detector.
        let mut h = ResidualHistory::new();
        for n in [8.0, 4.0, 2.0, 1.0, 0.5, 0.25] {
            h.push(n);
        }
        assert_eq!(h.detect_divergence(4, 10.0), None);
        // Window zero disables growth detection.
        let mut h = ResidualHistory::new();
        for n in [1.0, 100.0] {
            h.push(n);
        }
        assert_eq!(h.detect_divergence(0, 10.0), None);
    }

    #[test]
    fn display_formats() {
        assert!(StopCondition::tolerance(1e-4, 9)
            .to_string()
            .contains("1e-4"));
        assert!(StopCondition::fixed_steps(3)
            .to_string()
            .contains("3 fixed"));
    }
}
