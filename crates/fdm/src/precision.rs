//! Scalar abstraction and software-emulated half precision.
//!
//! The FDMAX paper motivates its choice of 32-bit floats with a convergence
//! study (Fig. 1a) comparing float16, float32 and float64 on the Laplace
//! equation. To reproduce that study without external dependencies this
//! module provides [`F16`], a software IEEE 754 binary16 emulation whose
//! arithmetic is performed in f32 and rounded back to half precision
//! (round-to-nearest-even) after every operation — the same behaviour a
//! native FP16 ALU exhibits.
//!
//! The [`Scalar`] trait abstracts over `F16`, `f32` and `f64` so every
//! solver in this crate can run at any of the three precisions.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, Div, Mul, Neg, Sub};

/// Floating-point scalar usable by all FDM solvers.
///
/// Implemented for [`f32`], [`f64`] and the emulated [`F16`]. The trait
/// deliberately exposes only the operations the solvers need, so adding a
/// new precision (e.g. bfloat16) means implementing one small impl block.
///
/// # Example
///
/// ```
/// use fdm::precision::Scalar;
///
/// fn hypot<T: Scalar>(a: T, b: T) -> T {
///     (a * a + b * b).sqrt()
/// }
/// assert!((hypot(3.0f64, 4.0f64) - 5.0).abs() < 1e-12);
/// ```
pub trait Scalar:
    Copy
    + PartialEq
    + PartialOrd
    + fmt::Debug
    + fmt::Display
    + Default
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + Sum
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Short human-readable name of the format (`"f16"`, `"f32"`, `"f64"`).
    const NAME: &'static str;
    /// Size of one element in bytes as stored by hardware.
    const BYTES: usize;
    /// The format's machine epsilon (the gap between 1 and the next
    /// representable value), widened to `f64`. Feeds the FDX016
    /// precision-floor analysis: update norms plateau around
    /// `MACHINE_EPSILON * scale` instead of decaying to zero.
    const MACHINE_EPSILON: f64;

    /// Converts from `f64`, rounding to this precision.
    fn from_f64(x: f64) -> Self;
    /// Widens to `f64` exactly.
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Returns `true` when the value is neither infinite nor NaN.
    fn is_finite(self) -> bool;
    /// The raw IEEE 754 bit pattern, zero-extended to 64 bits.
    ///
    /// Unlike `to_f64`, this is lossless for *every* value — NaN sign
    /// and payload included — which is what binary serialization needs.
    fn to_bits_u64(self) -> u64;
    /// Reconstructs a value from `to_bits_u64` output.
    ///
    /// Bits above the format's width are ignored, so
    /// `from_bits_u64(x.to_bits_u64())` is the identity for any `x`.
    fn from_bits_u64(bits: u64) -> Self;
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NAME: &'static str = "f32";
    const BYTES: usize = 4;
    const MACHINE_EPSILON: f64 = f32::EPSILON as f64;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline]
    fn to_bits_u64(self) -> u64 {
        u64::from(self.to_bits())
    }
    #[inline]
    fn from_bits_u64(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NAME: &'static str = "f64";
    const BYTES: usize = 8;
    const MACHINE_EPSILON: f64 = f64::EPSILON;

    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn to_bits_u64(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_bits_u64(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

/// Software-emulated IEEE 754 binary16 (half precision) value.
///
/// Arithmetic converts both operands to `f32`, computes in `f32`, then
/// rounds the result back to binary16 with round-to-nearest-even — the
/// rounding a hardware FP16 unit performs. Subnormals, infinities and NaN
/// round-trip correctly.
///
/// # Example
///
/// ```
/// use fdm::precision::F16;
///
/// let third = F16::from_f32(1.0 / 3.0);
/// // binary16 has ~3.3 decimal digits; 1/3 rounds to 0.33325195.
/// assert!((third.to_f32() - 1.0 / 3.0).abs() < 1e-3);
/// ```
#[derive(Clone, Copy, Default, PartialEq)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3c00);
    /// Smallest positive normal value (2^-14).
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7bff);
    /// Machine epsilon (2^-10).
    pub const EPSILON: F16 = F16(0x1400);

    /// Creates an `F16` from raw binary16 bits.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw binary16 bits.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to binary16 with round-to-nearest-even.
    pub fn from_f32(value: f32) -> Self {
        F16(f32_to_f16_bits(value))
    }

    /// Widens to `f32` exactly (every binary16 value is representable).
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }
}

/// Converts f32 bits to f16 bits with round-to-nearest-even.
fn f32_to_f16_bits(value: f32) -> u16 {
    let x = value.to_bits();
    let sign = ((x >> 16) & 0x8000) as u16;
    let exp = ((x >> 23) & 0xff) as i32;
    let mant = x & 0x007f_ffff;

    if exp == 0xff {
        // Infinity or NaN. Preserve NaN-ness with a quiet-bit payload.
        return if mant != 0 {
            sign | 0x7e00
        } else {
            sign | 0x7c00
        };
    }

    // Re-bias the exponent from f32 (127) to f16 (15).
    let unbiased = exp - 127;
    let f16_exp = unbiased + 15;

    if f16_exp >= 0x1f {
        // Overflow: round to infinity.
        return sign | 0x7c00;
    }

    if f16_exp <= 0 {
        // Result is subnormal in f16 (or underflows to zero).
        if f16_exp < -10 {
            // Too small even for the largest subnormal: flush to zero.
            return sign;
        }
        // Add the implicit leading one, then shift right far enough that the
        // exponent becomes the minimum; round to nearest even on the way.
        let mant = mant | 0x0080_0000;
        let shift = (14 - f16_exp) as u32;
        let halfway = 1u32 << (shift - 1);
        let mask = (1u32 << shift) - 1;
        let mut out = mant >> shift;
        let rem = mant & mask;
        if rem > halfway || (rem == halfway && out & 1 == 1) {
            out += 1; // may carry into the exponent field, which is correct
        }
        return sign | out as u16;
    }

    // Normal result: keep the top 10 mantissa bits, round-to-nearest-even.
    let mut out_exp = f16_exp as u32;
    let mut out_mant = mant >> 13;
    let rem = mant & 0x1fff;
    if rem > 0x1000 || (rem == 0x1000 && out_mant & 1 == 1) {
        out_mant += 1;
        if out_mant == 0x400 {
            out_mant = 0;
            out_exp += 1;
            if out_exp >= 0x1f {
                return sign | 0x7c00;
            }
        }
    }
    sign | ((out_exp as u16) << 10) | out_mant as u16
}

/// Converts f16 bits to an exactly-equal f32.
fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = (bits >> 10) & 0x1f;
    let mant = (bits & 0x3ff) as u32;

    if exp == 0 {
        // Zero or subnormal: value = mant * 2^-24.
        let magnitude = mant as f32 * f32::from_bits(0x3380_0000); // 2^-24
        return if sign != 0 { -magnitude } else { magnitude };
    }
    if exp == 0x1f {
        return if mant != 0 {
            f32::NAN
        } else if sign != 0 {
            f32::NEG_INFINITY
        } else {
            f32::INFINITY
        };
    }
    f32::from_bits(sign | ((exp as u32 + 112) << 23) | (mant << 13))
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl Add for F16 {
    type Output = F16;
    #[inline]
    fn add(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl Sub for F16 {
    type Output = F16;
    #[inline]
    fn sub(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl Mul for F16 {
    type Output = F16;
    #[inline]
    fn mul(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl Div for F16 {
    type Output = F16;
    #[inline]
    fn div(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() / rhs.to_f32())
    }
}

impl Neg for F16 {
    type Output = F16;
    #[inline]
    fn neg(self) -> F16 {
        F16(self.0 ^ 0x8000)
    }
}

impl Sum for F16 {
    fn sum<I: Iterator<Item = F16>>(iter: I) -> F16 {
        iter.fold(F16::ZERO, |acc, x| acc + x)
    }
}

impl From<f32> for F16 {
    fn from(value: f32) -> Self {
        F16::from_f32(value)
    }
}

impl From<F16> for f32 {
    fn from(value: F16) -> Self {
        value.to_f32()
    }
}

impl Scalar for F16 {
    const ZERO: Self = F16::ZERO;
    const ONE: Self = F16::ONE;
    const NAME: &'static str = "f16";
    const BYTES: usize = 2;
    const MACHINE_EPSILON: f64 = 9.765625e-4; // 2^-10: 10 mantissa bits

    #[inline]
    fn from_f64(x: f64) -> Self {
        F16::from_f32(x as f32)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }
    #[inline]
    fn abs(self) -> Self {
        F16(self.0 & 0x7fff)
    }
    #[inline]
    fn sqrt(self) -> Self {
        F16::from_f32(self.to_f32().sqrt())
    }
    #[inline]
    fn is_finite(self) -> bool {
        (self.0 >> 10) & 0x1f != 0x1f
    }
    #[inline]
    fn to_bits_u64(self) -> u64 {
        u64::from(self.to_bits())
    }
    #[inline]
    fn from_bits_u64(bits: u64) -> Self {
        F16::from_bits(bits as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_bits_round_trip_is_lossless_for_every_pattern() {
        // Exhaustive over f16; targeted extremes for f32/f64, including
        // the NaN sign/payload patterns that a `to_f64` detour destroys.
        for bits in 0u64..=0xFFFF {
            assert_eq!(F16::from_bits_u64(bits).to_bits_u64(), bits);
        }
        for bits in [
            0u64,
            0x8000_0000, // -0.0
            0x0000_0001, // smallest subnormal
            0x007F_FFFF, // largest subnormal
            0x7F7F_FFFF, // f32::MAX
            0x7F80_0000, // +inf
            0xFF80_0000, // -inf
            0x7FC0_1234, // quiet NaN with payload
            0xFFA0_0001, // signalling NaN, negative
        ] {
            assert_eq!(<f32 as Scalar>::from_bits_u64(bits).to_bits_u64(), bits);
        }
        for bits in [
            0u64,
            0x8000_0000_0000_0000, // -0.0
            0x0000_0000_0000_0001, // smallest subnormal
            0x000F_FFFF_FFFF_FFFF, // largest subnormal
            0x7FEF_FFFF_FFFF_FFFF, // f64::MAX
            0x7FF0_0000_0000_0000, // +inf
            0xFFF0_0000_0000_0000, // -inf
            0x7FF8_0000_0000_BEEF, // quiet NaN with payload
            0xFFF4_0000_0000_0001, // signalling NaN, negative
        ] {
            assert_eq!(<f64 as Scalar>::from_bits_u64(bits).to_bits_u64(), bits);
        }
    }

    #[test]
    fn f16_exact_small_integers_round_trip() {
        for i in -2048i32..=2048 {
            let h = F16::from_f32(i as f32);
            assert_eq!(h.to_f32(), i as f32, "integer {i} must be exact in f16");
        }
    }

    #[test]
    fn f16_one_and_constants() {
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 6.103_515_6e-5);
        assert_eq!(F16::EPSILON.to_f32(), 9.765_625e-4);
    }

    #[test]
    fn f16_round_to_nearest_even() {
        // 2048 + 1 = 2049 is not representable (spacing is 2 there);
        // it must round to even mantissa -> 2048.
        let x = F16::from_f32(2049.0);
        assert_eq!(x.to_f32(), 2048.0);
        // 2050 is exact; 2051 rounds up to 2052 (even mantissa).
        assert_eq!(F16::from_f32(2051.0).to_f32(), 2052.0);
    }

    #[test]
    fn f16_overflow_to_infinity() {
        assert!(!F16::from_f32(1e6).is_finite());
        assert!(!F16::from_f32(65520.0).is_finite());
        // Largest value that still rounds to MAX rather than infinity.
        assert_eq!(F16::from_f32(65519.0).to_f32(), 65504.0);
    }

    #[test]
    fn f16_subnormals() {
        let tiny = 2.0f32.powi(-24); // smallest positive subnormal
        assert_eq!(F16::from_f32(tiny).to_f32(), tiny);
        let half_tiny = 2.0f32.powi(-25); // ties to even -> zero
        assert_eq!(F16::from_f32(half_tiny).to_f32(), 0.0);
        let almost = 2.0f32.powi(-25) * 1.5; // rounds up to the smallest subnormal
        assert_eq!(F16::from_f32(almost).to_f32(), tiny);
    }

    #[test]
    fn f16_negative_and_neg_op() {
        let x = F16::from_f32(-3.5);
        assert_eq!(x.to_f32(), -3.5);
        assert_eq!((-x).to_f32(), 3.5);
        assert_eq!(x.abs().to_f32(), 3.5);
    }

    #[test]
    fn f16_nan_and_infinity_round_trip() {
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
        assert_eq!(F16::from_f32(f32::INFINITY).to_f32(), f32::INFINITY);
        assert_eq!(F16::from_f32(f32::NEG_INFINITY).to_f32(), f32::NEG_INFINITY);
    }

    #[test]
    fn f16_arithmetic_rounds_each_operation() {
        // 1 + eps/2 == 1 in f16, unlike f32.
        let one = F16::ONE;
        let half_eps = F16::from_f32(F16::EPSILON.to_f32() / 2.0);
        assert_eq!(one + half_eps, one);
        // But 1 + eps is representable.
        assert!((one + F16::EPSILON).to_f32() > 1.0);
    }

    #[test]
    fn f16_all_bit_patterns_round_trip_through_f32() {
        // Every finite f16 must convert to f32 and back to identical bits.
        for bits in 0u16..=u16::MAX {
            let h = F16::from_bits(bits);
            if !Scalar::is_finite(h) {
                continue;
            }
            let back = F16::from_f32(h.to_f32());
            // +0 and -0 both preserved.
            assert_eq!(back.to_bits(), bits, "bits {bits:#06x} failed round trip");
        }
    }

    #[test]
    fn scalar_trait_f32_f64_basics() {
        assert_eq!(f32::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(f64::from_f64(1.5), 1.5);
        assert_eq!(<f32 as Scalar>::NAME, "f32");
        assert_eq!(<f64 as Scalar>::BYTES, 8);
        assert_eq!(<F16 as Scalar>::BYTES, 2);
    }

    #[test]
    fn scalar_sum_matches_fold() {
        let xs = [1.0f32, 2.0, 3.0, 4.0];
        let s: f32 = xs.iter().copied().sum();
        assert_eq!(s, 10.0);
        let hs: F16 = xs.iter().map(|&x| F16::from_f32(x)).sum();
        assert_eq!(hs.to_f32(), 10.0);
    }
}
