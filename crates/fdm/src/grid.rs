//! Dense 2-D grid storage.
//!
//! All FDM state in this workspace lives in [`Grid2D`]: the solution field
//! `U^k`, the offset field `B`, and boundary snapshots. The grid is stored
//! row-major; row index `i` walks the vertical (y) direction and column
//! index `j` the horizontal (x) direction, matching the paper's
//! `u_{i,j}` notation.

use crate::precision::Scalar;
use core::fmt;

/// A dense, row-major `rows x cols` grid of scalars.
///
/// # Example
///
/// ```
/// use fdm::grid::Grid2D;
///
/// let mut g = Grid2D::<f64>::zeros(3, 4);
/// g[(1, 2)] = 7.0;
/// assert_eq!(g[(1, 2)], 7.0);
/// assert_eq!(g.rows(), 3);
/// assert_eq!(g.cols(), 4);
/// ```
#[derive(Clone, PartialEq)]
pub struct Grid2D<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Grid2D<T> {
    /// Creates a grid filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` is zero or overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, T::ZERO)
    }

    /// Creates a grid with every element set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` is zero or overflows `usize`.
    pub fn filled(rows: usize, cols: usize, value: T) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("grid dimensions overflow usize");
        assert!(len > 0, "grid must have at least one element");
        Grid2D {
            rows,
            cols,
            data: vec![value; len],
        }
    }

    /// Creates a grid from a function of the (row, col) index.
    ///
    /// # Example
    ///
    /// ```
    /// use fdm::grid::Grid2D;
    /// let g = Grid2D::from_fn(2, 2, |i, j| (i * 10 + j) as f32);
    /// assert_eq!(g[(1, 1)], 11.0);
    /// ```
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut g = Grid2D::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                g[(i, j)] = f(i, j);
            }
        }
        g
    }

    /// Creates a grid taking ownership of a row-major vector.
    ///
    /// # Errors
    ///
    /// Returns the vector back if its length is not `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, Vec<T>> {
        if data.len() != rows * cols || data.is_empty() {
            return Err(data);
        }
        Ok(Grid2D { rows, cols, data })
    }

    /// Number of rows (vertical / y extent).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (horizontal / x extent).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always `false`: grids are constructed non-empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Borrow the row-major backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the row-major backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the grid and returns the backing vector.
    #[inline]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Returns element `(i, j)` or `None` when out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Option<&T> {
        if i < self.rows && j < self.cols {
            Some(&self.data[i * self.cols + j])
        } else {
            None
        }
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    #[must_use]
    pub fn row(&self, i: usize) -> &[T] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[inline]
    #[must_use]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The range of interior row indices, `1..rows - 1` — the rows a
    /// sweep updates. Empty for grids with fewer than 3 rows.
    ///
    /// # Example
    ///
    /// ```
    /// use fdm::grid::Grid2D;
    /// let g = Grid2D::<f64>::zeros(5, 4);
    /// assert_eq!(g.interior_rows(), 1..4);
    /// assert!(Grid2D::<f64>::zeros(2, 4).interior_rows().is_empty());
    /// ```
    #[inline]
    #[must_use]
    pub fn interior_rows(&self) -> core::ops::Range<usize> {
        debug_assert!(self.rows * self.cols == self.data.len(), "shape desync");
        1..self.rows.saturating_sub(1).max(1)
    }

    /// Iterates over `(i, j, value)` triples in row-major order.
    pub fn iter_indexed(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(k, &v)| (k / cols, k % cols, v))
    }

    /// Returns `true` when `(i, j)` lies on the outermost ring of the grid.
    #[inline]
    pub fn is_boundary(&self, i: usize, j: usize) -> bool {
        i == 0 || j == 0 || i + 1 == self.rows || j + 1 == self.cols
    }

    /// Number of interior (non-boundary) points; zero for grids thinner
    /// than 3 in either dimension.
    #[inline]
    pub fn interior_len(&self) -> usize {
        self.rows.saturating_sub(2) * self.cols.saturating_sub(2)
    }

    /// Element-wise conversion to a different scalar precision.
    ///
    /// # Example
    ///
    /// ```
    /// use fdm::grid::Grid2D;
    /// use fdm::precision::F16;
    /// let g = Grid2D::<f64>::filled(2, 2, 0.1);
    /// let h: Grid2D<F16> = g.convert();
    /// assert!((h[(0, 0)].to_f32() - 0.1).abs() < 1e-3);
    /// ```
    pub fn convert<U: Scalar>(&self) -> Grid2D<U> {
        Grid2D {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| U::from_f64(v.to_f64())).collect(),
        }
    }

    /// L2 norm of the element-wise difference with `other`, computed in f64.
    ///
    /// This is the quantity the paper's stop condition compares against a
    /// threshold (Section 2.2.5).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn diff_l2(&self, other: &Grid2D<T>) -> f64 {
        assert_eq!(self.rows, other.rows, "row count mismatch");
        assert_eq!(self.cols, other.cols, "column count mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = a.to_f64() - b.to_f64();
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Maximum absolute element-wise difference with `other`, in f64.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn diff_max(&self, other: &Grid2D<T>) -> f64 {
        assert_eq!(self.rows, other.rows, "row count mismatch");
        assert_eq!(self.cols, other.cols, "column count mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// L2 norm of all elements, computed in f64.
    pub fn norm_l2(&self) -> f64 {
        self.data
            .iter()
            .map(|&a| {
                let v = a.to_f64();
                v * v
            })
            .sum::<f64>()
            .sqrt()
    }
}

impl<T> core::ops::Index<(usize, usize)> for Grid2D<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl<T> core::ops::IndexMut<(usize, usize)> for Grid2D<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl<T: fmt::Debug> fmt::Debug for Grid2D<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Grid2D {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            write!(f, "  ")?;
            let show_cols = self.cols.min(8);
            for j in 0..show_cols {
                write!(f, "{:10.4?} ", self.data[i * self.cols + j])?;
            }
            if self.cols > show_cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precision::F16;

    #[test]
    fn zeros_and_indexing() {
        let mut g = Grid2D::<f32>::zeros(4, 5);
        assert_eq!(g.len(), 20);
        assert_eq!(g[(3, 4)], 0.0);
        g[(2, 3)] = 1.5;
        assert_eq!(g[(2, 3)], 1.5);
        assert_eq!(*g.get(2, 3).unwrap(), 1.5);
        assert!(g.get(4, 0).is_none());
        assert!(g.get(0, 5).is_none());
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let g = Grid2D::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(g.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(g.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Grid2D::from_vec(2, 2, vec![1.0f32; 4]).is_ok());
        assert!(Grid2D::from_vec(2, 2, vec![1.0f32; 3]).is_err());
        assert!(Grid2D::<f32>::from_vec(0, 0, vec![]).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn zero_size_panics() {
        let _ = Grid2D::<f32>::zeros(0, 4);
    }

    #[test]
    fn boundary_classification() {
        let g = Grid2D::<f64>::zeros(4, 4);
        assert!(g.is_boundary(0, 2));
        assert!(g.is_boundary(3, 1));
        assert!(g.is_boundary(1, 0));
        assert!(g.is_boundary(2, 3));
        assert!(!g.is_boundary(1, 1));
        assert!(!g.is_boundary(2, 2));
        assert_eq!(g.interior_len(), 4);
    }

    #[test]
    fn interior_len_degenerate() {
        assert_eq!(Grid2D::<f32>::zeros(2, 10).interior_len(), 0);
        assert_eq!(Grid2D::<f32>::zeros(1, 1).interior_len(), 0);
        assert_eq!(Grid2D::<f32>::zeros(3, 3).interior_len(), 1);
    }

    #[test]
    fn diff_norms() {
        let a = Grid2D::<f64>::filled(2, 2, 1.0);
        let b = Grid2D::<f64>::filled(2, 2, 2.0);
        assert!((a.diff_l2(&b) - 2.0).abs() < 1e-12); // sqrt(4 * 1)
        assert_eq!(a.diff_max(&b), 1.0);
        assert!((b.norm_l2() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn convert_roundtrip_precision() {
        let g = Grid2D::from_fn(3, 3, |i, j| (i + j) as f64 * 0.25);
        let h: Grid2D<F16> = g.convert();
        let back: Grid2D<f64> = h.convert();
        // Quarter multiples up to 1.0 are exact in f16.
        assert_eq!(g, back);
    }

    #[test]
    fn iter_indexed_covers_all() {
        let g = Grid2D::from_fn(3, 2, |i, j| (i * 2 + j) as f32);
        let collected: Vec<_> = g.iter_indexed().collect();
        assert_eq!(collected.len(), 6);
        assert_eq!(collected[0], (0, 0, 0.0));
        assert_eq!(collected[5], (2, 1, 5.0));
    }

    #[test]
    fn row_mut_writes_through() {
        let mut g = Grid2D::<f32>::zeros(2, 3);
        g.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(g[(1, 2)], 3.0);
        assert_eq!(g[(0, 2)], 0.0);
    }

    #[test]
    fn interior_rows_ranges() {
        assert_eq!(Grid2D::<f32>::zeros(5, 3).interior_rows(), 1..4);
        assert_eq!(Grid2D::<f32>::zeros(3, 3).interior_rows(), 1..2);
        assert!(Grid2D::<f32>::zeros(2, 3).interior_rows().is_empty());
        assert!(Grid2D::<f32>::zeros(1, 3).interior_rows().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        let g = Grid2D::<f32>::zeros(2, 2);
        let _ = g.row(2);
    }
}
