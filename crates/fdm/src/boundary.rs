//! Dirichlet boundary conditions.
//!
//! The paper's benchmarks are "specified with the Dirichlet Boundary
//! Conditions" (§6.3): the values of `u` on the outermost ring of the grid
//! are known and fixed for the whole solve. [`DirichletBoundary`] describes
//! those edge values; [`DirichletBoundary::apply`] stamps them onto a grid.

use crate::grid::Grid2D;
use crate::precision::Scalar;

/// Value profile along one edge of the grid.
///
/// The profile is evaluated with a normalized coordinate `t in [0, 1]`
/// running along the edge (left-to-right for horizontal edges,
/// top-to-bottom for vertical edges).
#[derive(Clone, Debug, PartialEq)]
pub enum EdgeProfile {
    /// A constant value along the whole edge.
    Constant(f64),
    /// Linear ramp from `start` (t = 0) to `end` (t = 1).
    Ramp {
        /// Value at the beginning of the edge.
        start: f64,
        /// Value at the end of the edge.
        end: f64,
    },
    /// A half sine bump: `amplitude * sin(pi * t)`.
    ///
    /// Vanishes at both corners, which keeps Dirichlet data continuous when
    /// the adjacent edges are zero — the setup of the classic separable
    /// Laplace benchmark.
    SineBump {
        /// Peak value reached at the middle of the edge.
        amplitude: f64,
    },
    /// Sampled values, linearly interpolated along the edge.
    ///
    /// An empty sample list behaves like `Constant(0.0)`.
    Samples(Vec<f64>),
}

impl EdgeProfile {
    /// Evaluates the profile at normalized coordinate `t in [0, 1]`.
    pub fn eval(&self, t: f64) -> f64 {
        let t = t.clamp(0.0, 1.0);
        match self {
            EdgeProfile::Constant(v) => *v,
            EdgeProfile::Ramp { start, end } => start + (end - start) * t,
            EdgeProfile::SineBump { amplitude } => amplitude * (core::f64::consts::PI * t).sin(),
            EdgeProfile::Samples(samples) => match samples.len() {
                0 => 0.0,
                1 => samples[0],
                n => {
                    let x = t * (n - 1) as f64;
                    let k = (x.floor() as usize).min(n - 2);
                    let frac = x - k as f64;
                    samples[k] * (1.0 - frac) + samples[k + 1] * frac
                }
            },
        }
    }
}

impl Default for EdgeProfile {
    fn default() -> Self {
        EdgeProfile::Constant(0.0)
    }
}

/// Dirichlet data for the four edges of a rectangular grid.
///
/// Corners belong to the horizontal (top/bottom) edges, which are applied
/// last, so a corner takes the top/bottom value — an arbitrary but fixed
/// convention shared by every solver and the accelerator model.
///
/// # Example
///
/// ```
/// use fdm::boundary::{DirichletBoundary, EdgeProfile};
/// use fdm::grid::Grid2D;
///
/// let bc = DirichletBoundary::zero().with_top(EdgeProfile::Constant(1.0));
/// let mut g = Grid2D::<f64>::zeros(4, 4);
/// bc.apply(&mut g);
/// assert_eq!(g[(0, 2)], 1.0); // top edge
/// assert_eq!(g[(3, 2)], 0.0); // bottom edge
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DirichletBoundary {
    top: EdgeProfile,
    bottom: EdgeProfile,
    left: EdgeProfile,
    right: EdgeProfile,
}

impl DirichletBoundary {
    /// All four edges held at zero.
    pub fn zero() -> Self {
        Self::default()
    }

    /// All four edges held at `value`.
    pub fn uniform(value: f64) -> Self {
        let p = EdgeProfile::Constant(value);
        DirichletBoundary {
            top: p.clone(),
            bottom: p.clone(),
            left: p.clone(),
            right: p,
        }
    }

    /// Top edge at `value`, the other three at zero — the "heated lid"
    /// configuration used throughout the examples.
    pub fn hot_top(value: f64) -> Self {
        Self::zero().with_top(EdgeProfile::Constant(value))
    }

    /// Top edge carries a sine bump of the given amplitude, others zero.
    ///
    /// This is the separable Laplace benchmark with the closed-form solution
    /// `u(x, y) = A sin(pi x) sinh(pi (1 - y)) / sinh(pi)` (with `y` growing
    /// downward along rows).
    pub fn sine_top(amplitude: f64) -> Self {
        Self::zero().with_top(EdgeProfile::SineBump { amplitude })
    }

    /// Replaces the top-edge profile.
    pub fn with_top(mut self, profile: EdgeProfile) -> Self {
        self.top = profile;
        self
    }

    /// Replaces the bottom-edge profile.
    pub fn with_bottom(mut self, profile: EdgeProfile) -> Self {
        self.bottom = profile;
        self
    }

    /// Replaces the left-edge profile.
    pub fn with_left(mut self, profile: EdgeProfile) -> Self {
        self.left = profile;
        self
    }

    /// Replaces the right-edge profile.
    pub fn with_right(mut self, profile: EdgeProfile) -> Self {
        self.right = profile;
        self
    }

    /// Borrow the top-edge profile.
    pub fn top(&self) -> &EdgeProfile {
        &self.top
    }

    /// Borrow the bottom-edge profile.
    pub fn bottom(&self) -> &EdgeProfile {
        &self.bottom
    }

    /// Borrow the left-edge profile.
    pub fn left(&self) -> &EdgeProfile {
        &self.left
    }

    /// Borrow the right-edge profile.
    pub fn right(&self) -> &EdgeProfile {
        &self.right
    }

    /// Stamps the boundary values onto the outer ring of `grid`.
    ///
    /// Values are computed in f64 and rounded to the grid's precision, so a
    /// given boundary produces bit-identical rings at every precision used
    /// in the Fig. 1(a) study (modulo the per-precision rounding itself).
    pub fn apply<T: Scalar>(&self, grid: &mut Grid2D<T>) {
        let (rows, cols) = (grid.rows(), grid.cols());
        let tc = |j: usize| -> f64 {
            if cols <= 1 {
                0.0
            } else {
                j as f64 / (cols - 1) as f64
            }
        };
        let tr = |i: usize| -> f64 {
            if rows <= 1 {
                0.0
            } else {
                i as f64 / (rows - 1) as f64
            }
        };
        // Vertical edges first so corners end up owned by top/bottom.
        for i in 0..rows {
            grid[(i, 0)] = T::from_f64(self.left.eval(tr(i)));
            grid[(i, cols - 1)] = T::from_f64(self.right.eval(tr(i)));
        }
        for j in 0..cols {
            grid[(0, j)] = T::from_f64(self.top.eval(tc(j)));
            grid[(rows - 1, j)] = T::from_f64(self.bottom.eval(tc(j)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_edges() {
        let bc = DirichletBoundary::uniform(2.5);
        let mut g = Grid2D::<f64>::zeros(3, 3);
        bc.apply(&mut g);
        for (i, j, v) in g.iter_indexed() {
            if g.is_boundary(i, j) {
                assert_eq!(v, 2.5);
            } else {
                assert_eq!(v, 0.0);
            }
        }
    }

    #[test]
    fn corners_owned_by_top_bottom() {
        let bc = DirichletBoundary::zero()
            .with_left(EdgeProfile::Constant(5.0))
            .with_top(EdgeProfile::Constant(1.0))
            .with_bottom(EdgeProfile::Constant(2.0));
        let mut g = Grid2D::<f64>::zeros(4, 4);
        bc.apply(&mut g);
        assert_eq!(g[(0, 0)], 1.0, "top-left corner takes the top value");
        assert_eq!(g[(3, 0)], 2.0, "bottom-left corner takes the bottom value");
        assert_eq!(g[(1, 0)], 5.0, "left edge interior keeps the left value");
    }

    #[test]
    fn ramp_profile() {
        let p = EdgeProfile::Ramp {
            start: 0.0,
            end: 10.0,
        };
        assert_eq!(p.eval(0.0), 0.0);
        assert_eq!(p.eval(0.5), 5.0);
        assert_eq!(p.eval(1.0), 10.0);
        assert_eq!(p.eval(2.0), 10.0, "clamped above 1");
        assert_eq!(p.eval(-1.0), 0.0, "clamped below 0");
    }

    #[test]
    fn sine_bump_vanishes_at_corners() {
        let p = EdgeProfile::SineBump { amplitude: 3.0 };
        assert!(p.eval(0.0).abs() < 1e-12);
        assert!(p.eval(1.0).abs() < 1e-12);
        assert!((p.eval(0.5) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn samples_interpolate() {
        let p = EdgeProfile::Samples(vec![0.0, 1.0, 0.0]);
        assert_eq!(p.eval(0.0), 0.0);
        assert_eq!(p.eval(0.25), 0.5);
        assert_eq!(p.eval(0.5), 1.0);
        assert_eq!(p.eval(0.75), 0.5);
        assert_eq!(p.eval(1.0), 0.0);
        assert_eq!(EdgeProfile::Samples(vec![]).eval(0.3), 0.0);
        assert_eq!(EdgeProfile::Samples(vec![4.0]).eval(0.9), 4.0);
    }

    #[test]
    fn apply_is_precision_consistent() {
        use crate::precision::F16;
        let bc = DirichletBoundary::sine_top(1.0);
        let mut g64 = Grid2D::<f64>::zeros(8, 8);
        let mut g16 = Grid2D::<F16>::zeros(8, 8);
        bc.apply(&mut g64);
        bc.apply(&mut g16);
        for j in 0..8 {
            let expect = F16::from_f32(g64[(0, j)] as f32);
            assert_eq!(g16[(0, j)], expect);
        }
    }
}
