//! 3-D FDM substrate (extension beyond the paper).
//!
//! The paper's FDMAX is a 2-D engine, while some prior accelerators
//! (Table 2: Mu et al. \[33\]) support small fixed 3-D grids. This module
//! provides the 3-D numerics — [`Grid3D`], the seven-point stencil, a
//! Jacobi sweep and the 3-D Laplace benchmark — so the accelerator-side
//! plane-sweep mapping (`fdmax::volume`) can be built and validated:
//!
//! * a direct textbook seven-point sweep ([`jacobi3d_sweep`]) is the
//!   numerical ground truth;
//! * a **plane-pass** formulation ([`plane_pass_sweep`]) computes the
//!   same update as two 2-D five-point passes per z-plane — pass 1 folds
//!   the z-coupling `w_z·(u[z-1] + u[z+1])` into an offset plane, pass 2
//!   is the ordinary in-plane stencil with that offset. This is exactly
//!   what the FDMAX array executes (the coupling rides through the
//!   `OffsetBuffer`), so the hardware simulation is tested bit-for-bit
//!   against this software reference.

use crate::grid::Grid2D;
use crate::pde::OffsetField;
use crate::precision::Scalar;
use crate::solver::sweep_jacobi;
use crate::stencil::FivePointStencil;
use core::fmt;

/// A dense `planes x rows x cols` volume, plane-major.
#[derive(Clone, PartialEq)]
pub struct Grid3D<T> {
    planes: usize,
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Grid3D<T> {
    /// Creates a volume filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(planes: usize, rows: usize, cols: usize) -> Self {
        assert!(planes > 0 && rows > 0 && cols > 0, "empty volume");
        Grid3D {
            planes,
            rows,
            cols,
            data: vec![T::ZERO; planes * rows * cols],
        }
    }

    /// Creates a volume from a function of `(z, i, j)`.
    pub fn from_fn(
        planes: usize,
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize, usize) -> T,
    ) -> Self {
        let mut g = Self::zeros(planes, rows, cols);
        for z in 0..planes {
            for i in 0..rows {
                for j in 0..cols {
                    g[(z, i, j)] = f(z, i, j);
                }
            }
        }
        g
    }

    /// Number of z-planes.
    pub fn planes(&self) -> usize {
        self.planes
    }

    /// Rows per plane.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns per plane.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always `false` (volumes are constructed non-empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Copies plane `z` into a [`Grid2D`].
    ///
    /// # Panics
    ///
    /// Panics if `z` is out of bounds.
    pub fn plane(&self, z: usize) -> Grid2D<T> {
        assert!(z < self.planes, "plane {z} out of bounds");
        let start = z * self.rows * self.cols;
        Grid2D::from_vec(
            self.rows,
            self.cols,
            self.data[start..start + self.rows * self.cols].to_vec(),
        )
        .expect("plane dimensions are consistent")
    }

    /// Overwrites plane `z` from a [`Grid2D`].
    ///
    /// # Panics
    ///
    /// Panics if `z` is out of bounds or shapes differ.
    pub fn set_plane(&mut self, z: usize, plane: &Grid2D<T>) {
        assert!(z < self.planes, "plane {z} out of bounds");
        assert_eq!(plane.rows(), self.rows, "plane shape mismatch");
        assert_eq!(plane.cols(), self.cols, "plane shape mismatch");
        let start = z * self.rows * self.cols;
        self.data[start..start + self.rows * self.cols].copy_from_slice(plane.as_slice());
    }

    /// `true` when `(z, i, j)` lies on the volume's outer shell.
    pub fn is_boundary(&self, z: usize, i: usize, j: usize) -> bool {
        z == 0
            || i == 0
            || j == 0
            || z + 1 == self.planes
            || i + 1 == self.rows
            || j + 1 == self.cols
    }

    /// Maximum absolute element-wise difference with `other`, in f64.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn diff_max(&self, other: &Grid3D<T>) -> f64 {
        assert_eq!(self.planes, other.planes);
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// Element-wise precision conversion.
    pub fn convert<U: Scalar>(&self) -> Grid3D<U> {
        Grid3D {
            planes: self.planes,
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| U::from_f64(v.to_f64())).collect(),
        }
    }
}

impl<T> core::ops::Index<(usize, usize, usize)> for Grid3D<T> {
    type Output = T;
    #[inline]
    fn index(&self, (z, i, j): (usize, usize, usize)) -> &T {
        &self.data[(z * self.rows + i) * self.cols + j]
    }
}

impl<T> core::ops::IndexMut<(usize, usize, usize)> for Grid3D<T> {
    #[inline]
    fn index_mut(&mut self, (z, i, j): (usize, usize, usize)) -> &mut T {
        &mut self.data[(z * self.rows + i) * self.cols + j]
    }
}

impl<T: fmt::Debug> fmt::Debug for Grid3D<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Grid3D {}x{}x{} ({} elements)",
            self.planes,
            self.rows,
            self.cols,
            self.data.len()
        )
    }
}

/// Weights of the seven-point stencil
/// `u' = w_v·(N+S) + w_h·(W+E) + w_z·(U+D) + w_s·u + b`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SevenPointStencil<T> {
    /// In-plane vertical weight (rows `i±1`).
    pub w_v: T,
    /// In-plane horizontal weight (columns `j±1`).
    pub w_h: T,
    /// Cross-plane weight (planes `z±1`).
    pub w_z: T,
    /// Centre weight.
    pub w_s: T,
}

impl<T: Scalar> SevenPointStencil<T> {
    /// The 3-D Laplace Jacobi weights at uniform spacing: all six
    /// neighbours at 1/6.
    pub fn laplace_uniform() -> Self {
        let sixth = T::from_f64(1.0 / 6.0);
        SevenPointStencil {
            w_v: sixth,
            w_h: sixth,
            w_z: sixth,
            w_s: T::ZERO,
        }
    }

    /// The in-plane five-point part (pass 2 of the plane-pass scheme).
    pub fn in_plane(&self) -> FivePointStencil<T> {
        FivePointStencil::new(self.w_v, self.w_h, self.w_s)
    }

    /// The coupling stencil of pass 1: a degenerate five-point stencil
    /// whose only active operand is the centre (`w_s = w_z`); running it
    /// over plane `z-1` with plane `z+1` as a `ScaledPrevField` offset
    /// yields `w_z·u[z-1] + w_z·u[z+1]`.
    pub fn coupling_pass(&self) -> FivePointStencil<T> {
        FivePointStencil::new(T::ZERO, T::ZERO, self.w_z)
    }
}

/// One direct (textbook) 3-D Jacobi sweep: `next = stencil(cur)` over the
/// interior; returns the f64 sum of squared updates.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn jacobi3d_sweep<T: Scalar>(
    stencil: &SevenPointStencil<T>,
    cur: &Grid3D<T>,
    next: &mut Grid3D<T>,
) -> f64 {
    assert_eq!(cur.planes, next.planes);
    assert_eq!(cur.rows, next.rows);
    assert_eq!(cur.cols, next.cols);
    let mut diff2 = 0.0f64;
    for z in 1..cur.planes - 1 {
        for i in 1..cur.rows - 1 {
            for j in 1..cur.cols - 1 {
                let out = stencil.w_v * (cur[(z, i - 1, j)] + cur[(z, i + 1, j)])
                    + stencil.w_h * (cur[(z, i, j - 1)] + cur[(z, i, j + 1)])
                    + stencil.w_z * (cur[(z - 1, i, j)] + cur[(z + 1, i, j)])
                    + stencil.w_s * cur[(z, i, j)];
                let d = out.to_f64() - cur[(z, i, j)].to_f64();
                diff2 += d * d;
                next[(z, i, j)] = out;
            }
        }
    }
    diff2
}

/// One plane-pass 3-D Jacobi sweep: per interior plane, pass 1 computes
/// the coupling offset with [`SevenPointStencil::coupling_pass`], pass 2
/// applies the in-plane stencil with that offset — both through the
/// crate's canonical 2-D [`sweep_jacobi`], which is what makes the
/// FDMAX plane-sweep simulation bit-exact against this function.
///
/// Returns the f64 sum of squared updates (pass 2's DIFF).
pub fn plane_pass_sweep<T: Scalar>(
    stencil: &SevenPointStencil<T>,
    cur: &Grid3D<T>,
    next: &mut Grid3D<T>,
) -> f64 {
    assert_eq!(cur.planes, next.planes);
    assert_eq!(cur.rows, next.rows);
    assert_eq!(cur.cols, next.cols);
    let coupling_stencil = stencil.coupling_pass();
    let in_plane = stencil.in_plane();
    let mut diff2 = 0.0f64;
    for z in 1..cur.planes - 1 {
        let below = cur.plane(z - 1);
        let above = cur.plane(z + 1);
        let plane = cur.plane(z);
        // Pass 1: coupling = w_z*u[z-1] + w_z*u[z+1] (interior only; the
        // coupling plane's ring stays zero, matching the discarded
        // boundary outputs of the hardware pass).
        let mut coupling = Grid2D::zeros(cur.rows, cur.cols);
        sweep_jacobi(
            &coupling_stencil,
            &OffsetField::ScaledPrevField { scale: stencil.w_z },
            &below,
            Some(&above),
            &mut coupling,
        );
        // Pass 2: the ordinary five-point stencil with the coupling as a
        // static offset.
        let mut out = plane.clone();
        diff2 += sweep_jacobi(
            &in_plane,
            &OffsetField::Static(coupling),
            &plane,
            None,
            &mut out,
        );
        next.set_plane(z, &out);
    }
    diff2
}

/// Exact 3-D Laplace solution on the unit cube with
/// `u = sin(pi x)·sin(pi y)` on the `z = 0` face and zero elsewhere:
/// `u = sin(pi x)·sin(pi y)·sinh(sqrt(2) pi (1 - z)) / sinh(sqrt(2) pi)`.
pub fn laplace3d_sine_face(planes: usize, rows: usize, cols: usize) -> Grid3D<f64> {
    use core::f64::consts::PI;
    let s2pi = 2.0f64.sqrt() * PI;
    Grid3D::from_fn(planes, rows, cols, |z, i, j| {
        let zz = z as f64 / (planes - 1) as f64;
        let y = i as f64 / (rows - 1) as f64;
        let x = j as f64 / (cols - 1) as f64;
        (PI * x).sin() * (PI * y).sin() * (s2pi * (1.0 - zz)).sinh() / s2pi.sinh()
    })
}

/// The 3-D Laplace benchmark: zero interior, the exact solution's
/// boundary shell (sine bump on the `z = 0` face).
pub fn laplace3d_benchmark<T: Scalar>(planes: usize, rows: usize, cols: usize) -> Grid3D<T> {
    let exact = laplace3d_sine_face(planes, rows, cols);
    Grid3D::from_fn(planes, rows, cols, |z, i, j| {
        if exact.is_boundary(z, i, j) {
            T::from_f64(exact[(z, i, j)])
        } else {
            T::ZERO
        }
    })
}

/// FTCS weights for the 3-D heat equation at uniform spacing `h`:
/// `w = alpha·dt/h²` on all six neighbours, `w_s = 1 - 6w`.
///
/// # Panics
///
/// Panics if the step violates the 3-D FTCS stability bound
/// `alpha·dt/h² <= 1/6`.
pub fn heat3d_stencil<T: Scalar>(alpha: f64, dt: f64, h: f64) -> SevenPointStencil<T> {
    let r = alpha * dt / (h * h);
    assert!(
        r > 0.0 && r <= 1.0 / 6.0 + 1e-12,
        "3D FTCS unstable: alpha*dt/h^2 = {r} > 1/6"
    );
    SevenPointStencil {
        w_v: T::from_f64(r),
        w_h: T::from_f64(r),
        w_z: T::from_f64(r),
        w_s: T::from_f64(1.0 - 6.0 * r),
    }
}

/// Exact single-mode solution of the 3-D heat equation with zero
/// boundary and initial condition `sin(pi x)·sin(pi y)·sin(pi z)`:
/// `u(t) = sin(pi x)·sin(pi y)·sin(pi z)·exp(-3 alpha pi² t)`.
pub fn heat3d_mode_decay(
    planes: usize,
    rows: usize,
    cols: usize,
    alpha: f64,
    t: f64,
) -> Grid3D<f64> {
    use core::f64::consts::PI;
    let decay = (-3.0 * alpha * PI * PI * t).exp();
    Grid3D::from_fn(planes, rows, cols, |z, i, j| {
        let zz = z as f64 / (planes - 1) as f64;
        let y = i as f64 / (rows - 1) as f64;
        let x = j as f64 / (cols - 1) as f64;
        decay * (PI * x).sin() * (PI * y).sin() * (PI * zz).sin()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid3d_indexing_and_planes() {
        let mut g = Grid3D::<f32>::zeros(3, 4, 5);
        assert_eq!(g.len(), 60);
        g[(2, 3, 4)] = 7.0;
        assert_eq!(g[(2, 3, 4)], 7.0);
        let p = g.plane(2);
        assert_eq!(p[(3, 4)], 7.0);
        let mut q = Grid2D::zeros(4, 5);
        q[(1, 1)] = 3.0;
        g.set_plane(0, &q);
        assert_eq!(g[(0, 1, 1)], 3.0);
        assert_eq!(g[(1, 1, 1)], 0.0, "other planes untouched");
    }

    #[test]
    fn boundary_shell_classification() {
        let g = Grid3D::<f64>::zeros(3, 3, 3);
        assert!(g.is_boundary(0, 1, 1));
        assert!(g.is_boundary(2, 1, 1));
        assert!(g.is_boundary(1, 0, 1));
        assert!(g.is_boundary(1, 1, 2));
        assert!(!g.is_boundary(1, 1, 1));
    }

    #[test]
    fn plane_pass_equals_direct_seven_point() {
        // Same update, different summation order: equal within f32 eps
        // at f64, exactly equal values at f64 precision within 1e-15.
        let stencil = SevenPointStencil::<f64>::laplace_uniform();
        let cur = Grid3D::from_fn(6, 7, 8, |z, i, j| {
            ((z * 31 + i * 17 + j * 7) % 13) as f64 * 0.1
        });
        let mut direct = cur.clone();
        let mut planes = cur.clone();
        let d1 = jacobi3d_sweep(&stencil, &cur, &mut direct);
        let d2 = plane_pass_sweep(&stencil, &cur, &mut planes);
        assert!(direct.diff_max(&planes) < 1e-14, "formulations diverge");
        assert!((d1 - d2).abs() < 1e-10 * d1.max(1.0));
    }

    #[test]
    fn laplace3d_converges_to_separable_solution() {
        let n = 17;
        let stencil = SevenPointStencil::<f64>::laplace_uniform();
        let mut cur = laplace3d_benchmark::<f64>(n, n, n);
        let mut next = cur.clone();
        for _ in 0..2_000 {
            jacobi3d_sweep(&stencil, &cur, &mut next);
            core::mem::swap(&mut cur, &mut next);
        }
        let exact = laplace3d_sine_face(n, n, n);
        let err = cur.diff_max(&exact);
        assert!(err < 6e-3, "3D Laplace error {err} too large");
    }

    #[test]
    fn constant_volume_is_a_fixed_point() {
        let stencil = SevenPointStencil::<f32>::laplace_uniform();
        // All-ones with all-ones boundary: 6 * (1/6) = 1 (modulo f32
        // rounding of 1/6 — use a value robust to it: sum of six sixths
        // of 1.0 in f32 is not exactly 1, so check the diff is tiny).
        let cur = Grid3D::from_fn(5, 5, 5, |_, _, _| 1.0f32);
        let mut next = cur.clone();
        let d2 = jacobi3d_sweep(&stencil, &cur, &mut next);
        assert!(d2 < 1e-12, "constant field should be (nearly) fixed: {d2}");
    }

    #[test]
    fn stencil_pass_decomposition() {
        let s = SevenPointStencil {
            w_v: 0.1f32,
            w_h: 0.2,
            w_z: 0.3,
            w_s: 0.4,
        };
        let ip = s.in_plane();
        assert_eq!((ip.w_v, ip.w_h, ip.w_s), (0.1, 0.2, 0.4));
        let cp = s.coupling_pass();
        assert_eq!((cp.w_v, cp.w_h, cp.w_s), (0.0, 0.0, 0.3));
    }

    #[test]
    fn convert_round_trips_representable_values() {
        let g = Grid3D::from_fn(3, 3, 3, |z, i, j| (z + i + j) as f64 * 0.25);
        let g32: Grid3D<f32> = g.convert();
        let back: Grid3D<f64> = g32.convert();
        assert_eq!(g, back);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn plane_bounds_checked() {
        let g = Grid3D::<f32>::zeros(2, 2, 2);
        let _ = g.plane(2);
    }

    #[test]
    fn heat3d_tracks_mode_decay() {
        let n = 13;
        let h = 1.0 / (n - 1) as f64;
        let alpha = 0.05;
        let dt = 0.8 * h * h / (6.0 * alpha); // inside the 1/6 bound
        let stencil: SevenPointStencil<f64> = heat3d_stencil(alpha, dt, h);
        let mut cur = heat3d_mode_decay(n, n, n, alpha, 0.0);
        let mut next = cur.clone();
        let steps = 150;
        for _ in 0..steps {
            jacobi3d_sweep(&stencil, &cur, &mut next);
            core::mem::swap(&mut cur, &mut next);
        }
        let exact = heat3d_mode_decay(n, n, n, alpha, dt * steps as f64);
        let err = cur.diff_max(&exact);
        assert!(err < 2e-2, "3D heat error {err}");
        // The field genuinely decayed.
        assert!(exact[(n / 2, n / 2, n / 2)] < 0.7);
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn heat3d_rejects_unstable_steps() {
        let _: SevenPointStencil<f64> = heat3d_stencil(1.0, 1.0, 1.0);
    }

    #[test]
    fn heat3d_plane_pass_matches_direct() {
        let n = 9;
        let stencil: SevenPointStencil<f64> = heat3d_stencil(0.1, 0.2, 1.0);
        let cur = Grid3D::from_fn(n, n, n, |z, i, j| ((z + 2 * i + 3 * j) % 5) as f64 * 0.2);
        let mut a = cur.clone();
        let mut b = cur.clone();
        jacobi3d_sweep(&stencil, &cur, &mut a);
        plane_pass_sweep(&stencil, &cur, &mut b);
        assert!(a.diff_max(&b) < 1e-14);
    }
}
