//! Benchmark workload generators.
//!
//! The paper evaluates FDMAX on the four equations of Table 1 "specified
//! with the Dirichlet Boundary Conditions … all grid values at zero as the
//! initial conditions" (§6.3), on grid sizes from 100x100 to 10Kx10K.
//! [`benchmark_problem`] builds exactly those configurations; the random
//! generators add fuzzable variety for property-based tests.

use crate::boundary::{DirichletBoundary, EdgeProfile};
use crate::grid::Grid2D;
use crate::pde::{
    HeatProblem, LaplaceProblem, PdeKind, PoissonProblem, ProblemError, StencilProblem, WaveProblem,
};
use crate::precision::Scalar;
use detrng::DetRng;

/// Grid sizes the paper sweeps in its evaluation (§6.3).
pub const PAPER_GRID_SIZES: [usize; 3] = [100, 1_000, 10_000];

/// Default stop tolerance used by the steady-state benchmarks.
pub const DEFAULT_TOLERANCE: f64 = 1e-4;

/// Default number of time steps used by the Heat/Wave benchmarks.
pub const DEFAULT_TIME_STEPS: usize = 1_000;

/// Builds the paper's benchmark configuration of `kind` on an `n x n`
/// grid, at precision `T`.
///
/// * Laplace/Poisson: zero initial interior, heated (sine-bump) top edge,
///   unit-square spacing, tolerance `1e-4`.
/// * Poisson additionally has a centred Gaussian sink.
/// * Heat: stable FTCS step, `steps` time steps, hot top edge.
/// * Wave: CFL-safe step, `steps` time steps, plucked (Gaussian bump)
///   initial displacement.
///
/// # Errors
///
/// Returns [`ProblemError`] if `n < 3`.
pub fn benchmark_problem<T: Scalar>(
    kind: PdeKind,
    n: usize,
    steps: usize,
) -> Result<StencilProblem<T>, ProblemError> {
    let h = 1.0 / (n.max(2) - 1) as f64;
    match kind {
        PdeKind::Laplace => Ok(LaplaceProblem::builder(n, n)
            .spacing(h, h)
            .boundary(DirichletBoundary::sine_top(1.0))
            .stop(DEFAULT_TOLERANCE, 10_000_000)
            .build()?
            .discretize()),
        PdeKind::Poisson => Ok(PoissonProblem::builder(n, n)
            .spacing(h, h)
            .boundary(DirichletBoundary::sine_top(1.0))
            .source_fn(|x, y| {
                let dx = x - 0.5;
                let dy = y - 0.5;
                -40.0 * (-((dx * dx + dy * dy) / 0.02)).exp()
            })
            .stop(DEFAULT_TOLERANCE, 10_000_000)
            .build()?
            .discretize()),
        PdeKind::Heat => {
            let alpha = 1.0;
            let dt = 0.2 * h * h / alpha; // r_x + r_y = 0.4 <= 0.5
            Ok(HeatProblem::builder(n, n)
                .spacing(h, h)
                .alpha(alpha)
                .time(dt, steps)
                .boundary(DirichletBoundary::hot_top(1.0))
                .build()?
                .discretize())
        }
        PdeKind::Wave => {
            let c = 1.0;
            let dt = 0.5 * h / c; // r_X + r_Y = 0.5 <= 1
            Ok(WaveProblem::builder(n, n)
                .spacing(h, h)
                .wave_speed(c)
                .time(dt, steps)
                .initial_fn(|x, y| {
                    let dx = x - 0.5;
                    let dy = y - 0.5;
                    (-((dx * dx + dy * dy) / 0.01)).exp()
                })
                .build()?
                .discretize())
        }
    }
}

/// A random Dirichlet boundary with edge values drawn from `[-mag, mag]`.
pub fn random_boundary(rng: &mut DetRng, mag: f64) -> DirichletBoundary {
    let edge = |rng: &mut DetRng| -> EdgeProfile {
        match rng.gen_range(0, 3) {
            0 => EdgeProfile::Constant(rng.gen_f64(-mag, mag)),
            1 => EdgeProfile::Ramp {
                start: rng.gen_f64(-mag, mag),
                end: rng.gen_f64(-mag, mag),
            },
            _ => EdgeProfile::SineBump {
                amplitude: rng.gen_f64(-mag, mag),
            },
        }
    };
    DirichletBoundary::zero()
        .with_top(edge(rng))
        .with_bottom(edge(rng))
        .with_left(edge(rng))
        .with_right(edge(rng))
}

/// A random grid with values drawn uniformly from `[-mag, mag]`.
pub fn random_grid<T: Scalar>(rng: &mut DetRng, rows: usize, cols: usize, mag: f64) -> Grid2D<T> {
    Grid2D::from_fn(rows, cols, |_, _| T::from_f64(rng.gen_f64(-mag, mag)))
}

/// A random steady-state (Laplace or Poisson) problem for fuzzing.
///
/// Dimensions are drawn from `[4, max_dim]`; Poisson gets a random smooth
/// source.
pub fn random_elliptic_problem<T: Scalar>(rng: &mut DetRng, max_dim: usize) -> StencilProblem<T> {
    let rows = rng.gen_range_inclusive(4, max_dim.max(4));
    let cols = rng.gen_range_inclusive(4, max_dim.max(4));
    let boundary = random_boundary(rng, 1.0);
    if rng.gen_bool(0.5) {
        LaplaceProblem::builder(rows, cols)
            .boundary(boundary)
            .build()
            .expect("generated dims are valid")
            .discretize()
    } else {
        let amp = rng.gen_f64(0.0, 4.0);
        let fx = rng.gen_range(1, 4) as f64;
        let fy = rng.gen_range(1, 4) as f64;
        PoissonProblem::builder(rows, cols)
            .boundary(boundary)
            .source_fn(move |x, y| {
                amp * (core::f64::consts::PI * fx * x).sin()
                    * (core::f64::consts::PI * fy * y).cos()
            })
            .build()
            .expect("generated dims are valid")
            .discretize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_problems_build_for_all_kinds() {
        for kind in PdeKind::ALL {
            let sp = benchmark_problem::<f32>(kind, 32, 10).unwrap();
            assert_eq!(sp.kind, kind);
            assert_eq!(sp.rows(), 32);
            assert_eq!(sp.cols(), 32);
        }
    }

    #[test]
    fn benchmark_rejects_tiny_grid() {
        assert!(benchmark_problem::<f32>(PdeKind::Laplace, 2, 1).is_err());
    }

    #[test]
    fn heat_and_wave_benchmarks_are_stable() {
        // Stability guards inside the builders would reject otherwise.
        for n in [16usize, 100, 500] {
            assert!(benchmark_problem::<f64>(PdeKind::Heat, n, 5).is_ok());
            assert!(benchmark_problem::<f64>(PdeKind::Wave, n, 5).is_ok());
        }
    }

    #[test]
    fn random_generators_are_deterministic_per_seed() {
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(7);
        let ga: Grid2D<f64> = random_grid(&mut a, 5, 5, 2.0);
        let gb: Grid2D<f64> = random_grid(&mut b, 5, 5, 2.0);
        assert_eq!(ga, gb);
        let pa: StencilProblem<f32> = random_elliptic_problem(&mut a, 12);
        let pb: StencilProblem<f32> = random_elliptic_problem(&mut b, 12);
        assert_eq!(pa.rows(), pb.rows());
        assert_eq!(pa.initial, pb.initial);
    }

    #[test]
    fn random_elliptic_problems_solve() {
        use crate::convergence::StopCondition;
        use crate::solver::{solve, UpdateMethod};
        let mut rng = DetRng::seed_from_u64(42);
        for _ in 0..5 {
            let sp: StencilProblem<f64> = random_elliptic_problem(&mut rng, 16);
            let r = solve(
                &sp,
                UpdateMethod::GaussSeidel,
                &StopCondition::tolerance(1e-8, 500_000),
            );
            assert!(r.converged(), "random problem failed to converge");
        }
    }

    #[test]
    fn random_grid_respects_magnitude() {
        let mut rng = DetRng::seed_from_u64(1);
        let g: Grid2D<f64> = random_grid(&mut rng, 8, 8, 0.5);
        for (_, _, v) in g.iter_indexed() {
            assert!(v.abs() <= 0.5);
        }
    }
}
