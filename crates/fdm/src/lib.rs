//! Finite Difference Method (FDM) numerics substrate for the FDMAX
//! reproduction.
//!
//! This crate provides everything the accelerator model and the baseline
//! platform models need that is *pure numerics*:
//!
//! * dense 2-D [`grid::Grid2D`] storage with Dirichlet boundary handling,
//! * PDE problem definitions ([`pde`]) for the four benchmark equations of
//!   the paper (Laplace, Poisson, Heat, Wave) and their FDM discretization
//!   into the five-point stencil abstraction of Eq. (11),
//! * the canonical [`stencil`] evaluation whose floating-point operation
//!   order is shared bit-for-bit with the cycle-accurate PE model,
//! * software iterative solvers ([`solver`]): Jacobi, Gauss-Seidel, Hybrid,
//!   Checkerboard (red-black) and SOR,
//! * a matrix-free stencil-operator algebra ([`ops`]): [`ops::StencilOp`]
//!   applies `A = I - S` through the row kernels with constant, per-axis or
//!   per-cell [`ops::CoefficientField`] coefficients, plus fused residuals
//!   and multigrid grid transfers,
//! * Krylov-space solvers (CG, Jacobi-preconditioned PCG, BiCG-STAB) running
//!   matrix-free on that algebra by default ([`solver::krylov`]), with CSR
//!   assembly ([`sparse`]) kept as the differential oracle and to derive the
//!   iteration counts of the `MemAccel` and Alrescha baselines,
//! * residual/stop-condition machinery ([`convergence`]),
//! * the unified solve-engine layer ([`engine`]): the [`engine::SolveEngine`]
//!   trait and the generic [`engine::Session`] driver every backend
//!   (software, hardware model, analytic) runs through,
//! * a software-emulated IEEE half precision type ([`precision::F16`]) for
//!   the Fig. 1(a) precision study,
//! * analytic reference solutions ([`analytic`]) and benchmark workload
//!   generators ([`workload`]).
//!
//! # Example
//!
//! Solve the Laplace equation on a 64x64 grid with a heated top edge:
//!
//! ```
//! use fdm::prelude::*;
//!
//! let problem = LaplaceProblem::builder(64, 64)
//!     .boundary(DirichletBoundary::hot_top(1.0))
//!     .build()
//!     .expect("valid problem");
//! let stencil_problem = problem.discretize::<f64>();
//! let result = solve(
//!     &stencil_problem,
//!     UpdateMethod::Jacobi,
//!     &StopCondition::tolerance(1e-6, 100_000),
//! );
//! assert!(result.converged());
//! ```

pub mod analytic;
pub mod boundary;
pub mod convergence;
pub mod engine;
pub mod grid;
pub mod io;
pub mod kernels;
pub mod ops;
pub mod pde;
pub mod precision;
pub mod solver;
pub mod sparse;
pub mod stencil;
pub mod theory;
pub mod tiled;
pub mod volume;
pub mod workload;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::boundary::DirichletBoundary;
    pub use crate::convergence::{ResidualHistory, StopCondition};
    pub use crate::engine::{
        Budget, CancelToken, ParallelSweepEngine, ResiliencePolicy, Session, SolveEngine,
        StepOutcome, SweepEngine,
    };
    pub use crate::grid::Grid2D;
    pub use crate::ops::{CoefficientField, StencilOp};
    pub use crate::tiled::TiledSweepEngine;
    pub use crate::pde::{
        HeatProblem, LaplaceProblem, PdeKind, PoissonProblem, StencilProblem, WaveProblem,
    };
    pub use crate::precision::{Scalar, F16};
    pub use crate::solver::krylov::KrylovEngine;
    pub use crate::solver::{solve, SolveResult, UpdateMethod};
    pub use crate::stencil::FivePointStencil;
}
