//! Temporal wavefront tiling: fuse k sweeps per cache pass.
//!
//! `BENCH_solver.json` proves the sweep path is memory-bound — more
//! threads cannot help, only arithmetic intensity can. A plain sweep
//! streams the whole grid through DRAM once per sweep (~12 bytes per
//! lattice-point update for an f32 Jacobi pass with write-allocate
//! traffic); [`TiledSweepEngine`] instead advances the solve `k` sweeps
//! per pass over the grid, so the grid is streamed once per *k* sweeps
//! and the per-sweep DRAM traffic drops by ~`k`×.
//!
//! # The wavefront
//!
//! A fused epoch of `e` sweeps is decomposed into `S` *sub-levels*
//! (`S = e` Jacobi sweeps, or `S = 2e` checkerboard phases — each phase
//! is a pure 3-row map because a phase only reads the opposite parity,
//! which it never writes). Level `ℓ` consumes level `ℓ-1`'s rows
//! `r-1..=r+1` to produce its row `r`, so the levels advance down the
//! grid as a skew-1 wavefront: at pipeline position `p`, level `ℓ`
//! computes row `p - (ℓ-1)`, levels ascending. Each intermediate level
//! keeps only a 5-row ring buffer of its most recent output rows —
//! everything in flight fits in cache — while level 0 reads the shared
//! `cur` grid and the final level writes the shared `next` grid:
//!
//! ```text
//!   position p:   level 1 computes row p        (from cur)
//!                 level 2 computes row p-1      (from level 1's ring)
//!                 level 3 computes row p-2      (from level 2's ring)
//!                 ...
//!                 level S computes row p-(S-1)  (into next)
//! ```
//!
//! The wave equation's history term threads through the same pipeline:
//! sweep `s` reads the field two sweep-levels back, which is always
//! still resident in the 5-row rings.
//!
//! # Composing with the strip decomposition
//!
//! Tiling composes with [`ParallelSweepEngine`]'s banding: the interior
//! is split with [`crate::kernels::row_bands_with_min`] (`min_height =
//! k`, so no band is narrower than the halo it must skew across), and
//! each band runs the full pipeline privately, recomputing a k-deep
//! *trapezoid* of halo rows (level `ℓ` extends `S - ℓ` rows past the
//! band on each side) from the shared `cur` instead of synchronising
//! per sweep. Only owned rows are written to `next` or recorded in the
//! diff² buffer, so bands stay write-disjoint and the result is
//! *independent of the band count* — the redundant halo arithmetic is
//! the price paid for k× less DRAM traffic and zero mid-epoch
//! synchronisation ([`TiledSweepEngine::redundant_halo_rows_per_epoch`]
//! reports it; the FDX022 lint rejects geometries where it dominates).
//!
//! # Residual-history and bit-identity semantics
//!
//! One [`SolveEngine::step`] is one *epoch* of
//! `e = min(k, cap - iterations)` fused sweeps:
//! [`SolveEngine::iterations`] advances by `e`, and the reported norm is
//! the *last* fused sweep's — residual histories are epoch-granular, so
//! tolerance stops are detected at epoch boundaries (the iteration cap
//! truncates the final epoch, so a budget is never overshot). Because
//! every row is produced by the same [`crate::kernels`] row kernels in
//! the same order as the serial [`SweepEngine`], and per-(sweep, row)
//! diff² partials are folded in exactly the serial order at epoch end,
//! the grids *and* per-epoch norms are bit-identical to the serial
//! engine's at the same sweep counts — at any band count. With `k = 1`
//! the engine degenerates to the serial schedule exactly, history
//! included. The equivalence tests nevertheless state the contract the
//! ROADMAP allows (≤1e-12 relative for f64) so future tile schedules
//! may regroup within an epoch.
//!
//! [`ParallelSweepEngine`]: crate::engine::ParallelSweepEngine
//! [`SweepEngine`]: crate::engine::SweepEngine
//! [`SolveEngine::step`]: crate::engine::SolveEngine::step
//! [`SolveEngine::iterations`]: crate::engine::SolveEngine::iterations

use crate::engine::{restore_sweep_state, EngineStateImage, SolveEngine, StepOutcome};
use crate::grid::Grid2D;
use crate::kernels::{checkerboard_row, jacobi_row, row_bands_with_min, OffsetRow};
use crate::pde::{OffsetField, StencilProblem};
use crate::precision::Scalar;
use crate::solver::UpdateMethod;
use core::ops::Range;

/// Ring depth per intermediate level: the stencil needs 3 rows of the
/// level below, and the wave history reaches at most 4 levels back in
/// the checkerboard pipeline (`2s-4` phases), whose newest row then
/// leads the consumer by 4 — so 5 resident rows always cover every read.
const RING: usize = 5;

/// Snapshot of the tiled engine's rotating buffers (same shape as the
/// serial sweep checkpoint).
#[derive(Clone, Debug)]
struct TiledCheckpoint<T> {
    cur: Grid2D<T>,
    next: Grid2D<T>,
    prev: Option<Grid2D<T>>,
    iterations: usize,
}

/// Temporal wavefront tiling over row-block strips: a [`SolveEngine`]
/// whose every step fuses up to `tile_depth` Jacobi or checkerboard
/// sweeps into one cache pass. See the [module docs](self) for the
/// pipeline, banding and bit-identity contracts.
#[derive(Debug)]
pub struct TiledSweepEngine<'p, T: Scalar> {
    problem: &'p StencilProblem<T>,
    method: UpdateMethod,
    tile_depth: usize,
    threads: usize,
    cap: Option<usize>,
    cur: Grid2D<T>,
    next: Grid2D<T>,
    prev: Option<Grid2D<T>>,
    /// Staging buffer for the wave history: the epoch's second-to-last
    /// sub-level materialises its owned rows here, and the epoch-end
    /// rotation swaps it into `prev`.
    prev_stage: Option<Grid2D<T>>,
    uses_prev: bool,
    iterations: usize,
    saved: Option<TiledCheckpoint<T>>,
    /// Interior row bands (halo-aware: no band narrower than the tile
    /// depth), fixed at construction.
    bands: Vec<Range<usize>>,
    /// Per-(row, sub-level) diff² partials, row-major with the epoch's
    /// level count as stride; folded in serial sweep order at epoch end.
    diff2: Vec<f64>,
}

impl<'p, T: Scalar> TiledSweepEngine<'p, T> {
    /// `true` when `method` has a tiled schedule: the data-parallel
    /// sweeps (Jacobi, checkerboard). The ordered sweeps (Gauss-Seidel,
    /// SOR, Hybrid) carry a loop dependency across rows that the
    /// wavefront cannot legally reorder.
    #[must_use]
    pub fn supports(method: UpdateMethod) -> bool {
        matches!(method, UpdateMethod::Jacobi | UpdateMethod::Checkerboard)
    }

    /// Prepares a tiled sweep engine fusing up to `tile_depth` sweeps
    /// per epoch, strip-parallel over at most `threads` bands.
    ///
    /// # Panics
    ///
    /// Panics when `method` is not tileable (see
    /// [`TiledSweepEngine::supports`]), when `tile_depth` is zero, or
    /// when a `ScaledPrevField` offset (wave equation) comes without
    /// `prev_initial`.
    pub fn new(
        problem: &'p StencilProblem<T>,
        method: UpdateMethod,
        tile_depth: usize,
        threads: usize,
    ) -> Self {
        assert!(
            Self::supports(method),
            "temporal tiling requires a data-parallel sweep (Jacobi or checkerboard), got {method:?}"
        );
        assert!(tile_depth >= 1, "tile depth must be at least 1");
        let cur = problem.initial.clone();
        let next = cur.clone();
        let prev = problem.prev_initial.clone();
        let uses_prev = matches!(problem.offset, OffsetField::ScaledPrevField { .. });
        if uses_prev {
            assert!(
                prev.is_some(),
                "a ScaledPrevField offset requires prev_initial"
            );
        }
        // The staging buffer carries `cur`'s boundary ring (the ring the
        // post-first-sweep history field provably has), not
        // `prev_initial`'s.
        let prev_stage = uses_prev.then(|| cur.clone());
        let bands = row_bands_with_min(cur.rows(), threads.max(1), tile_depth);
        let levels_max = match method {
            UpdateMethod::Checkerboard => 2 * tile_depth,
            _ => tile_depth,
        };
        let diff2 = vec![0.0; cur.rows() * levels_max];
        TiledSweepEngine {
            problem,
            method,
            tile_depth,
            threads: threads.max(1),
            cap: None,
            cur,
            next,
            prev,
            prev_stage,
            uses_prev,
            iterations: 0,
            saved: None,
            bands,
            diff2,
        }
    }

    /// Caps total iterations: the final epoch truncates to
    /// `cap - iterations` fused sweeps so the engine lands exactly on
    /// the cap (a tolerance budget or service deadline) instead of
    /// overshooting by up to `tile_depth - 1` sweeps.
    #[must_use]
    pub fn with_iteration_cap(mut self, cap: usize) -> Self {
        self.cap = Some(cap);
        self
    }

    /// The current field `U^k`.
    pub fn solution(&self) -> &Grid2D<T> {
        &self.cur
    }

    /// Consumes the engine, returning the final field.
    pub fn into_solution(self) -> Grid2D<T> {
        self.cur
    }

    /// The update method being swept.
    pub fn method(&self) -> UpdateMethod {
        self.method
    }

    /// The configured fused-sweep depth `k`.
    pub fn tile_depth(&self) -> usize {
        self.tile_depth
    }

    /// The requested worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The halo-aware band plan actually swept.
    pub fn bands(&self) -> &[Range<usize>] {
        &self.bands
    }

    /// Fused sweeps the next epoch will execute.
    fn epoch_len(&self) -> usize {
        match self.cap {
            Some(c) if c > self.iterations => self.tile_depth.min(c - self.iterations),
            Some(_) => 1,
            None => self.tile_depth,
        }
    }

    /// Sub-levels of an `e`-sweep epoch: one per Jacobi sweep, two per
    /// checkerboard sweep (one per parity phase).
    fn levels_for(&self, e: usize) -> usize {
        match self.method {
            UpdateMethod::Checkerboard => 2 * e,
            _ => e,
        }
    }

    /// Row-slots each full-depth epoch computes *beyond* the owned
    /// interior — the trapezoid halo recomputation the strips pay to
    /// avoid per-sweep synchronisation. This is the quantity the FDX022
    /// geometry lint bounds: when it reaches the useful work
    /// (`interior × levels`), the halo has consumed the interior.
    #[must_use]
    pub fn redundant_halo_rows_per_epoch(&self) -> usize {
        let rows = self.cur.rows();
        let s = self.levels_for(self.tile_depth);
        let mut redundant = 0usize;
        for band in &self.bands {
            for l in 1..=s {
                let lo = band.start.saturating_sub(s - l).max(1);
                let hi = (band.end + (s - l)).min(rows - 1);
                redundant += (hi - lo) - band.len();
            }
        }
        redundant
    }

    /// One fused epoch of `e` sweeps. Returns the *last* sweep's diff²,
    /// folded in the exact serial accumulation order.
    fn step_epoch(&mut self, e: usize) -> f64 {
        let (rows, cols) = (self.cur.rows(), self.cur.cols());
        if self.bands.is_empty() {
            return 0.0;
        }
        let s = self.levels_for(e);
        // Sub-level whose field becomes the epoch's history (`prev`):
        // the field after sweep e-1, i.e. level e-1 (Jacobi) or phase
        // 2e-2 (checkerboard). Level 0 is `cur` itself.
        let stage_level = if self.uses_prev {
            match self.method {
                UpdateMethod::Checkerboard => 2 * e - 2,
                _ => e - 1,
            }
        } else {
            usize::MAX
        };
        if self.uses_prev {
            let stage = self.prev_stage.as_mut().expect("wave carries a stage");
            if stage_level == 0 {
                stage.as_mut_slice().copy_from_slice(self.cur.as_slice());
            } else {
                // Keep the stage's boundary rows in lock-step with `cur`
                // (bands only write owned interior rows).
                let w = cols;
                stage.as_mut_slice()[..w].copy_from_slice(&self.cur.as_slice()[..w]);
                stage.as_mut_slice()[(rows - 1) * w..]
                    .copy_from_slice(&self.cur.as_slice()[(rows - 1) * w..]);
            }
        }

        // Split the shared outputs into per-band chunks: `next`'s owned
        // interior rows, the stage's owned rows, and the diff² slots.
        let problem = self.problem;
        let method = self.method;
        let uses_stage = self.uses_prev && stage_level > 0;
        let prev = self.prev.as_ref();
        let cur = &self.cur;
        let mut out_rem = &mut self.next.as_mut_slice()[cols..(rows - 1) * cols];
        let mut stage_rem: &mut [T] = match (uses_stage, self.prev_stage.as_mut()) {
            (true, Some(stage)) => &mut stage.as_mut_slice()[cols..(rows - 1) * cols],
            _ => &mut [],
        };
        let mut d_rem = &mut self.diff2[s..(rows - 1) * s];
        #[allow(clippy::type_complexity)]
        let mut work: Vec<(Range<usize>, &mut [T], Option<&mut [T]>, &mut [f64])> =
            Vec::with_capacity(self.bands.len());
        for band in &self.bands {
            let h = band.len();
            let tmp = core::mem::take(&mut out_rem);
            let (out, rest) = tmp.split_at_mut(h * cols);
            out_rem = rest;
            let stage = if uses_stage {
                let tmp = core::mem::take(&mut stage_rem);
                let (chunk, rest) = tmp.split_at_mut(h * cols);
                stage_rem = rest;
                Some(chunk)
            } else {
                None
            };
            let tmp = core::mem::take(&mut d_rem);
            let (d, rest) = tmp.split_at_mut(h * s);
            d_rem = rest;
            work.push((band.clone(), out, stage, d));
        }
        let run = |band: Range<usize>,
                   out: &mut [T],
                   stage: Option<&mut [T]>,
                   d: &mut [f64]| {
            band_pipeline(
                problem,
                method,
                s,
                stage_level,
                cur,
                prev,
                band,
                out,
                stage,
                d,
            );
        };
        if work.len() == 1 {
            let (band, out, stage, d) = work.pop().expect("one band");
            run(band, out, stage, d);
        } else {
            let run = &run;
            std::thread::scope(|sc| {
                for (band, out, stage, d) in work {
                    sc.spawn(move || run(band, out, stage, d));
                }
            });
        }

        // Fold the last fused sweep's per-row partials in the serial
        // accumulation order (checkerboard: all phase-0 rows ascending,
        // then all phase-1 rows).
        let flat = &self.diff2;
        let mut total = 0.0f64;
        match self.method {
            UpdateMethod::Checkerboard => {
                for r in 1..rows - 1 {
                    total += flat[r * s + (s - 2)];
                }
                for r in 1..rows - 1 {
                    total += flat[r * s + (s - 1)];
                }
            }
            _ => {
                for r in 1..rows - 1 {
                    total += flat[r * s + (s - 1)];
                }
            }
        }

        // Epoch-end rotation: prev <- field after sweep e-1, cur <-
        // field after sweep e (exactly the serial rotation, batched).
        if self.uses_prev {
            core::mem::swap(
                self.prev.as_mut().expect("checked in new"),
                self.prev_stage.as_mut().expect("wave carries a stage"),
            );
        }
        core::mem::swap(&mut self.cur, &mut self.next);
        total
    }
}

/// One band's wavefront pipeline over a full epoch: `s` sub-levels of
/// 5-row rings, positions advancing down the band's trapezoid (owned
/// rows plus the `s - ℓ`-deep halo each level needs), levels ascending
/// within a position. Writes owned rows of the final level into `out`,
/// owned rows of `stage_level` into `stage`, and owned diff² partials
/// into `d` (stride `s`).
#[allow(clippy::too_many_arguments)]
fn band_pipeline<T: Scalar>(
    problem: &StencilProblem<T>,
    method: UpdateMethod,
    s: usize,
    stage_level: usize,
    cur: &Grid2D<T>,
    prev: Option<&Grid2D<T>>,
    band: Range<usize>,
    out: &mut [T],
    mut stage: Option<&mut [T]>,
    d: &mut [f64],
) {
    let (rows, cols) = (cur.rows(), cur.cols());
    let (lo, hi) = (band.start, band.end);
    // Level ℓ computes rows [lvl_lo(ℓ), lvl_hi(ℓ)): the owned range
    // widened by the `s - ℓ` rows the levels above still need.
    let lvl_lo = |l: usize| lo.saturating_sub(s - l).max(1);
    let lvl_hi = |l: usize| (hi + (s - l)).min(rows - 1);
    let mut rings: Vec<Vec<T>> = (1..s).map(|_| vec![T::ZERO; RING * cols]).collect();
    let p_min = lvl_lo(1);
    let p_max = hi - 1 + (s - 1);
    for p in p_min..=p_max {
        for l in 1..=s {
            let Some(r) = (p + 1).checked_sub(l) else {
                break; // deeper levels start even later
            };
            if r < lvl_lo(l) || r >= lvl_hi(l) {
                continue;
            }
            // Split the rings so levels below ℓ are readable while ℓ's
            // own ring (or the shared outputs) is writable.
            let (lower, upper) = rings.split_at_mut(l - 1);
            let row_at = |m: usize, rr: usize| -> &[T] {
                if rr == 0 || rr == rows - 1 || m == 0 {
                    cur.row(rr)
                } else {
                    &lower[m - 1][(rr % RING) * cols..][..cols]
                }
            };
            let up = row_at(l - 1, r - 1);
            let mid = row_at(l - 1, r);
            let down = row_at(l - 1, r + 1);
            // The offset row: static offsets repeat per sweep; the wave
            // history reads the field two *sweep*-levels back, still
            // resident in the rings (or `cur`/`prev` at the pipe inlet).
            let b = match &problem.offset {
                OffsetField::None => OffsetRow::None,
                OffsetField::Static(c) => OffsetRow::Static(c.row(r)),
                OffsetField::ScaledPrevField { scale } => {
                    let hist_level = match method {
                        // Phase ℓ belongs to sweep ceil(ℓ/2), which
                        // reads the field after sweep s-2: phase level
                        // 2·ceil(ℓ/2) - 4.
                        UpdateMethod::Checkerboard => (l.div_ceil(2) * 2).checked_sub(4),
                        // Sweep ℓ reads the field after sweep ℓ-2.
                        _ => l.checked_sub(2),
                    };
                    let hist = match hist_level {
                        None => prev.expect("checked in new").row(r),
                        Some(0) => cur.row(r),
                        Some(m) => row_at(m, r),
                    };
                    OffsetRow::Scaled {
                        scale: *scale,
                        prev: hist,
                    }
                }
            };
            let owned = r >= lo && r < hi;
            // Output row: the final level writes the shared `next`
            // chunk; intermediate levels write their ring slot.
            let diff = if l == s {
                let row = &mut out[(r - lo) * cols..][..cols];
                compute_row(problem, method, l, r, up, mid, down, b, row)
            } else {
                let slot_start = (r % RING) * cols;
                let slot = &mut upper[0][slot_start..slot_start + cols];
                let diff = compute_row(problem, method, l, r, up, mid, down, b, slot);
                if owned && l == stage_level {
                    let stage = stage.as_mut().expect("stage level implies a stage");
                    stage[(r - lo) * cols..][..cols].copy_from_slice(slot);
                }
                diff
            };
            if owned {
                d[(r - lo) * s + (l - 1)] = diff;
            }
        }
    }
}

/// Computes one sub-level row into `row_out` (full row: boundary columns
/// pass through from the input, interior via the shared row kernels) and
/// returns its diff² partial.
#[allow(clippy::too_many_arguments)]
fn compute_row<T: Scalar>(
    problem: &StencilProblem<T>,
    method: UpdateMethod,
    level: usize,
    r: usize,
    up: &[T],
    mid: &[T],
    down: &[T],
    b: OffsetRow<'_, T>,
    row_out: &mut [T],
) -> f64 {
    let n = mid.len();
    match method {
        UpdateMethod::Checkerboard => {
            // A checkerboard phase is a pure map of the previous phase:
            // copy the row, then update this phase's parity in place.
            // Phase ℓ has parity (ℓ-1) % 2, and the row's first interior
            // column of that parity follows the serial sweep's rule.
            row_out.copy_from_slice(mid);
            let parity = (level - 1) % 2;
            let start = if (r + parity) % 2 == 1 { 1 } else { 2 };
            checkerboard_row(&problem.stencil, up, row_out, down, b, start)
        }
        _ => {
            // Jacobi: boundary columns pass through, interior via the
            // lane-folded row kernel.
            row_out[0] = mid[0];
            row_out[n - 1] = mid[n - 1];
            jacobi_row(&problem.stencil, up, mid, down, b, row_out)
        }
    }
}

impl<T: Scalar> SolveEngine for TiledSweepEngine<'_, T> {
    /// One epoch of `min(tile_depth, cap - iterations)` fused sweeps.
    /// The norm is the last fused sweep's and
    /// [`iterations`](SolveEngine::iterations) advances by the epoch
    /// length, so residual histories are epoch-granular.
    fn step(&mut self) -> StepOutcome {
        let e = self.epoch_len();
        let diff2 = self.step_epoch(e);
        self.iterations += e;
        StepOutcome::clean(diff2.sqrt())
    }

    fn iterations(&self) -> usize {
        self.iterations
    }

    fn supports_checkpoint(&self) -> bool {
        true
    }

    fn checkpoint(&mut self) {
        self.saved = Some(TiledCheckpoint {
            cur: self.cur.clone(),
            next: self.next.clone(),
            prev: self.prev.clone(),
            iterations: self.iterations,
        });
    }

    fn rollback(&mut self) -> bool {
        match &self.saved {
            Some(ckpt) => {
                self.cur.as_mut_slice().copy_from_slice(ckpt.cur.as_slice());
                self.next
                    .as_mut_slice()
                    .copy_from_slice(ckpt.next.as_slice());
                match (&mut self.prev, &ckpt.prev) {
                    (Some(dst), Some(src)) => dst.as_mut_slice().copy_from_slice(src.as_slice()),
                    (dst, src) => *dst = src.clone(),
                }
                self.iterations = ckpt.iterations;
                true
            }
            None => false,
        }
    }

    fn export_state(&self) -> Option<EngineStateImage> {
        Some(EngineStateImage::capture(
            self.iterations,
            &self.cur,
            self.prev.as_ref(),
        ))
    }

    fn restore_state(&mut self, image: &EngineStateImage) -> bool {
        // `prev_stage` carries no state across epochs (owned rows and
        // boundary ring are rewritten every epoch), so the shared sweep
        // restore covers everything.
        let ok = restore_sweep_state(
            image,
            &mut self.cur,
            &mut self.next,
            &mut self.prev,
            &mut self.iterations,
        );
        if ok {
            self.saved = None;
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::DirichletBoundary;
    use crate::engine::SweepEngine;
    use crate::pde::{LaplaceProblem, PdeKind, RunMode, WaveProblem};
    use crate::stencil::FivePointStencil;

    fn laplace(rows: usize, cols: usize) -> StencilProblem<f64> {
        LaplaceProblem::builder(rows, cols)
            .boundary(DirichletBoundary::hot_top(1.0))
            .build()
            .unwrap()
            .discretize::<f64>()
    }

    fn wave(n: usize) -> StencilProblem<f64> {
        WaveProblem::builder(n, n)
            .time(0.5, 8)
            .build()
            .unwrap()
            .discretize::<f64>()
    }

    /// A non-square problem built from parts so the test controls the
    /// exact interior shape.
    fn from_parts(rows: usize, cols: usize) -> StencilProblem<f64> {
        StencilProblem {
            kind: PdeKind::Heat,
            stencil: FivePointStencil::new(0.2, 0.2, 0.15),
            offset: OffsetField::None,
            initial: Grid2D::from_fn(rows, cols, |i, j| ((i * 31 + j * 7) % 13) as f64 * 0.1),
            prev_initial: None,
            mode: RunMode::FixedSteps(8),
        }
    }

    fn assert_bits_equal(a: &Grid2D<f64>, b: &Grid2D<f64>, what: &str) {
        for (idx, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {idx}: {x} vs {y}");
        }
    }

    /// Serial sweeps `n` times, returning the final grid and last norm.
    fn serial_reference(
        sp: &StencilProblem<f64>,
        method: UpdateMethod,
        sweeps: usize,
    ) -> (Grid2D<f64>, f64) {
        let mut eng = SweepEngine::new(sp, method);
        let mut last = 0.0;
        for _ in 0..sweeps {
            last = eng.step().norm.expect("sweep engines report norms");
        }
        (eng.into_solution(), last)
    }

    #[test]
    fn tiled_epochs_match_serial_sweeps_bitwise() {
        for sp in [laplace(16, 16), from_parts(9, 23), from_parts(3, 12)] {
            for method in [UpdateMethod::Jacobi, UpdateMethod::Checkerboard] {
                for k in [1usize, 2, 3, 4] {
                    for threads in [1usize, 2, 5] {
                        let mut tiled = TiledSweepEngine::new(&sp, method, k, threads);
                        let epochs = 3;
                        let mut last = 0.0;
                        for _ in 0..epochs {
                            last = tiled.step().norm.expect("tiled steps report norms");
                        }
                        assert_eq!(tiled.iterations(), k * epochs);
                        let what = format!(
                            "{method:?} {}x{} k={k} threads={threads}",
                            sp.rows(),
                            sp.cols()
                        );
                        let (want, want_norm) = serial_reference(&sp, method, k * epochs);
                        assert_eq!(last.to_bits(), want_norm.to_bits(), "{what}: norm");
                        assert_bits_equal(tiled.solution(), &want, &what);
                    }
                }
            }
        }
    }

    #[test]
    fn tiled_wave_history_threads_through_the_pipeline() {
        let sp = wave(12);
        for method in [UpdateMethod::Jacobi, UpdateMethod::Checkerboard] {
            for k in [1usize, 2, 4] {
                for threads in [1usize, 3] {
                    let mut tiled = TiledSweepEngine::new(&sp, method, k, threads);
                    for _ in 0..2 {
                        tiled.step();
                    }
                    let (want, _) = serial_reference(&sp, method, 2 * k);
                    let what = format!("wave {method:?} k={k} threads={threads}");
                    assert_bits_equal(tiled.solution(), &want, &what);
                }
            }
        }
    }

    #[test]
    fn iteration_cap_truncates_the_final_epoch() {
        let sp = laplace(12, 12);
        let mut tiled = TiledSweepEngine::new(&sp, UpdateMethod::Jacobi, 4, 2).with_iteration_cap(10);
        let counts: Vec<usize> = (0..3)
            .map(|_| {
                tiled.step();
                tiled.iterations()
            })
            .collect();
        // 4 + 4 + 2: the last epoch truncates to land exactly on the cap.
        assert_eq!(counts, vec![4, 8, 10]);
        let (want, _) = serial_reference(&sp, UpdateMethod::Jacobi, 10);
        assert_bits_equal(tiled.solution(), &want, "capped epochs");
    }

    #[test]
    fn checkpoint_rollback_and_state_image_round_trip() {
        let sp = wave(10);
        let mut tiled = TiledSweepEngine::new(&sp, UpdateMethod::Jacobi, 2, 2);
        tiled.step();
        tiled.checkpoint();
        let at_ckpt = tiled.solution().clone();
        let image = tiled.export_state().expect("tiled engines export state");
        tiled.step();
        assert!(tiled.rollback());
        assert_eq!(tiled.iterations(), 2);
        assert_bits_equal(tiled.solution(), &at_ckpt, "rollback");

        let mut fresh = TiledSweepEngine::new(&sp, UpdateMethod::Jacobi, 2, 2);
        assert!(fresh.restore_state(&image));
        assert_eq!(fresh.iterations(), 2);
        fresh.step();
        tiled.step();
        assert_bits_equal(tiled.solution(), fresh.solution(), "restore + step");
    }

    #[test]
    fn bands_respect_the_tile_halo_and_redundancy_is_reported() {
        // 19 rows / 17 interior: 7 plain bands would be thinner than a
        // k=4 halo; the tiled engine must coarsen the split instead.
        let sp = laplace(19, 8);
        let tiled = TiledSweepEngine::new(&sp, UpdateMethod::Jacobi, 4, 7);
        assert!(tiled.bands().iter().all(|b| b.len() >= 4));
        assert!(tiled.bands().len() <= 7);
        // A single band pays no halo recomputation; more bands do.
        let single = TiledSweepEngine::new(&sp, UpdateMethod::Jacobi, 4, 1);
        assert_eq!(single.redundant_halo_rows_per_epoch(), 0);
        assert!(tiled.redundant_halo_rows_per_epoch() > 0);
    }

    #[test]
    #[should_panic(expected = "temporal tiling requires a data-parallel sweep")]
    fn ordered_sweeps_are_rejected() {
        let sp = laplace(8, 8);
        let _ = TiledSweepEngine::new(&sp, UpdateMethod::GaussSeidel, 2, 1);
    }
}
