//! The unified solve-engine layer.
//!
//! Every backend in the FDMAX stack — the software sweeps in
//! [`crate::solver`], multigrid, the hardware-semantics reference, the
//! cycle-accurate simulator, the analytic performance estimator and the
//! baseline platform models — iterates the same outer loop: run one step,
//! record the update norm, evaluate the [`StopCondition`], optionally
//! detect trouble and roll back to a checkpoint. This module factors that
//! loop out once:
//!
//! * [`SolveEngine`] is the backend contract: one [`step`](SolveEngine::step)
//!   advances the solve by one iteration (or one analytic macro-step) and
//!   reports an optional update norm plus any hardware fault;
//! * [`Session`] is the single generic driver owning stop-condition
//!   evaluation, the [`ResidualHistory`], divergence detection, and
//!   checkpoint/rollback per [`ResiliencePolicy`];
//! * [`SweepEngine`] adapts the software relaxation sweeps to the trait.
//!
//! Hardware-side engines (cycle-accurate simulator, reference semantics,
//! analytic estimator) live in the `fdmax` core crate and implement the
//! same trait.

use crate::convergence::{Divergence, ResidualHistory, StopCondition};
use crate::grid::Grid2D;
use crate::pde::{OffsetField, StencilProblem};
use crate::precision::Scalar;
use crate::solver::{
    sweep_checkerboard, sweep_gauss_seidel, sweep_hybrid, sweep_jacobi, sweep_sor, UpdateMethod,
};
use core::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A hardware fault surfaced by one engine step, for the driver's
/// recovery machinery to act on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepFault {
    /// Parity flagged corrupted buffer data during the step.
    CorruptionDetected,
    /// A DMA block transfer failed permanently during the step.
    DmaFailed,
}

/// What one [`SolveEngine::step`] produced.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepOutcome {
    /// The update norm `||U^{k+1} - U^k||_2` of the completed iteration,
    /// or `None` for analytic engines that advance without computing a
    /// field (nothing is recorded in the history then).
    pub norm: Option<f64>,
    /// A fault the step detected, if any.
    pub fault: Option<StepFault>,
}

impl StepOutcome {
    /// A fault-free step that produced an update norm.
    pub fn clean(norm: f64) -> Self {
        StepOutcome {
            norm: Some(norm),
            fault: None,
        }
    }

    /// A fault-free step with no norm (analytic macro-steps).
    pub fn silent() -> Self {
        StepOutcome {
            norm: None,
            fault: None,
        }
    }
}

/// Why a resilient [`Session`] gave up.
///
/// The `fdmax` core crate converts these into its `FdmaxError` surface.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EngineError {
    /// The update norm became NaN or infinite and no recovery was
    /// possible (or allowed).
    NonFinite {
        /// Iteration (1-based) whose norm went non-finite.
        iteration: usize,
    },
    /// The update norm grew persistently and no recovery was possible.
    Diverged {
        /// Iteration at the end of the growth window.
        iteration: usize,
        /// Growth ratio over the detection window.
        ratio: f64,
    },
    /// Parity flagged corrupted buffer data and no rollback was possible
    /// (or allowed).
    CorruptionDetected {
        /// Iteration (1-based) during which parity fired.
        iteration: usize,
    },
    /// A DMA block transfer failed permanently (retry budget exhausted).
    DmaFailed {
        /// Iteration during which the transfer gave up.
        iteration: usize,
    },
    /// Rollback-and-retry was attempted `attempts` times without a clean
    /// run.
    RetriesExhausted {
        /// Recovery attempts performed.
        attempts: u32,
        /// Iteration of the checkpoint every retry rolled back to — the
        /// last state known to be good.
        checkpoint_iteration: usize,
    },
    /// The job's [`CancelToken`] was triggered between steps.
    Cancelled {
        /// Iterations completed when the cancellation was observed.
        iteration: usize,
    },
    /// The [`Budget`]'s iteration or wall-clock deadline ran out before
    /// the stop condition was satisfied.
    DeadlineExceeded {
        /// Iterations completed when the budget ran out.
        iteration: usize,
    },
    /// The [`Budget`]'s watchdog found the residual series making no
    /// progress over its window.
    Stalled {
        /// Iteration (1-based) ending the stalled window.
        iteration: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NonFinite { iteration } => {
                write!(f, "update norm became non-finite at iteration {iteration}")
            }
            EngineError::Diverged { iteration, ratio } => write!(
                f,
                "solve diverged (norm grew {ratio:.2}x) by iteration {iteration}"
            ),
            EngineError::CorruptionDetected { iteration } => write!(
                f,
                "parity detected buffer corruption at iteration {iteration}"
            ),
            EngineError::DmaFailed { iteration } => {
                write!(
                    f,
                    "DMA transfer failed permanently at iteration {iteration}"
                )
            }
            EngineError::RetriesExhausted {
                attempts,
                checkpoint_iteration,
            } => {
                write!(
                    f,
                    "recovery failed after {attempts} rollback attempts to the \
                     checkpoint at iteration {checkpoint_iteration}"
                )
            }
            EngineError::Cancelled { iteration } => {
                write!(f, "solve cancelled after {iteration} iterations")
            }
            EngineError::DeadlineExceeded { iteration } => {
                write!(f, "budget deadline exceeded after {iteration} iterations")
            }
            EngineError::Stalled { iteration } => {
                write!(f, "watchdog: no residual progress by iteration {iteration}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// How a resilient [`Session`] checkpoints, detects trouble and recovers.
///
/// The two `allow_*` flags are consumed by orchestration layers *above*
/// the session (the accelerator's method/software fallback chain); the
/// session itself acts on the checkpoint/retry/divergence knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResiliencePolicy {
    /// Take a checkpoint every this many iterations (0 disables
    /// checkpointing, so any detected fault is fatal).
    pub checkpoint_interval: usize,
    /// Rollback-and-retry attempts *per checkpoint window* before
    /// escalating to a fallback (or giving up); reaching the next
    /// checkpoint renews the allowance.
    pub max_retries: u32,
    /// Window for residual-growth detection (0 disables growth checks;
    /// NaN/Inf are always checked).
    pub divergence_window: usize,
    /// Growth over the window that counts as divergence.
    pub divergence_factor: f64,
    /// Allow Hybrid to fall back to the Jacobi datapath once retries are
    /// exhausted.
    pub allow_method_fallback: bool,
    /// Allow the final fallback to the `fdm` software solver.
    pub allow_software_fallback: bool,
}

impl ResiliencePolicy {
    /// No checkpoints, no retries, no fallbacks: the first detected
    /// fault is a structured error.
    #[must_use]
    pub fn strict() -> Self {
        ResiliencePolicy {
            checkpoint_interval: 0,
            max_retries: 0,
            divergence_window: 0,
            divergence_factor: 1e3,
            allow_method_fallback: false,
            allow_software_fallback: false,
        }
    }
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            checkpoint_interval: 64,
            max_retries: 8,
            divergence_window: 32,
            divergence_factor: 1e3,
            allow_method_fallback: true,
            allow_software_fallback: true,
        }
    }
}

/// A shared cooperative-cancellation handle.
///
/// Cloning yields another handle to the *same* flag: a supervisor keeps
/// one clone and hands another to the [`Budget`] of a running
/// [`Session`]; triggering [`cancel`](CancelToken::cancel) makes the
/// session return [`EngineError::Cancelled`] before its next step.
/// Cancellation is one-way — there is deliberately no `reset`.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-triggered token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Triggers the cancellation. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// `true` once any clone of this token was cancelled.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Hard bounds on one [`Session`] run, checked by the driver between
/// steps — the hook the `fdmax` service layer threads its per-job
/// deadlines, cancellation and watchdog through.
///
/// Unlike a [`ResiliencePolicy`], budget violations are *terminal*:
/// rolling back to a checkpoint cannot recover time already spent, so
/// the session returns the structured error immediately.
///
/// All checks default to disabled; [`Budget::default`] never fires.
#[derive(Clone, Debug)]
#[must_use]
pub struct Budget {
    /// Maximum engine steps this run may execute (`None` = unlimited).
    /// Counted in *executed* steps, so rollback replays burn budget too;
    /// the check runs before each step, which means the deadline is
    /// never overshot by even one iteration.
    pub deadline_iterations: Option<usize>,
    /// Wall-clock ceiling measured from the start of
    /// [`Session::run`] (`None` = unlimited). Coarse by design — the
    /// clock is polled between steps.
    pub max_wall: Option<Duration>,
    /// Cooperative cancellation flag, polled before each step.
    pub cancel: Option<CancelToken>,
    /// Watchdog window (in iterations) for
    /// [`ResidualHistory::detect_stall`]; 0 disables the watchdog.
    pub stall_window: usize,
    /// Decay the residual must achieve over `stall_window` iterations to
    /// count as progress (see [`ResidualHistory::detect_stall`]).
    pub stall_min_decay: f64,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            deadline_iterations: None,
            max_wall: None,
            cancel: None,
            stall_window: 0,
            stall_min_decay: 1.0,
        }
    }
}

impl Budget {
    /// A budget with every check disabled.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Bounds the run to at most `steps` executed engine steps.
    pub fn deadline(steps: usize) -> Self {
        Budget {
            deadline_iterations: Some(steps),
            ..Self::default()
        }
    }

    /// Adds a wall-clock ceiling.
    pub fn with_wall_clock(mut self, ceiling: Duration) -> Self {
        self.max_wall = Some(ceiling);
        self
    }

    /// Attaches a cooperative-cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Arms the stall watchdog: the run fails with
    /// [`EngineError::Stalled`] when the residual decays by less than
    /// `min_decay` over any `window` consecutive iterations.
    pub fn with_stall_watchdog(mut self, window: usize, min_decay: f64) -> Self {
        self.stall_window = window;
        self.stall_min_decay = min_decay;
        self
    }

    /// `true` when no check is armed (the default).
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.deadline_iterations.is_none()
            && self.max_wall.is_none()
            && self.cancel.is_none()
            && self.stall_window == 0
    }
}

/// A portable, scalar-erased image of a solve engine's resumable state.
///
/// `cur`/`prev` hold raw IEEE 754 bit patterns
/// ([`Scalar::to_bits_u64`]), so an image round-trips bit-exactly
/// through serialization at any precision — NaN payloads included.
/// Produced by [`SolveEngine::export_state`], consumed by
/// [`SolveEngine::restore_state`], and persisted by the service layer's
/// durability journal for crash recovery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineStateImage {
    /// Grid height.
    pub rows: usize,
    /// Grid width.
    pub cols: usize,
    /// Scalar width in bytes ([`Scalar::BYTES`]), a format check on
    /// restore.
    pub scalar_bytes: u8,
    /// Completed iterations at capture time.
    pub iterations: usize,
    /// Bit patterns of the current field `U^k`, row-major.
    pub cur: Vec<u64>,
    /// Bit patterns of the previous field `U^{k-1}` (wave history), when
    /// the engine carries one.
    pub prev: Option<Vec<u64>>,
}

impl EngineStateImage {
    /// Captures an image of `cur` (and optionally `prev`) at `iterations`.
    pub fn capture<T: Scalar>(
        iterations: usize,
        cur: &Grid2D<T>,
        prev: Option<&Grid2D<T>>,
    ) -> Self {
        let to_bits = |g: &Grid2D<T>| g.as_slice().iter().map(|v| v.to_bits_u64()).collect();
        EngineStateImage {
            rows: cur.rows(),
            cols: cur.cols(),
            scalar_bytes: T::BYTES as u8,
            iterations,
            cur: to_bits(cur),
            prev: prev.map(to_bits),
        }
    }

    /// Rebuilds the current field as a typed grid; `None` when the
    /// scalar width or element count disagrees with the header.
    pub fn cur_grid<T: Scalar>(&self) -> Option<Grid2D<T>> {
        self.grid_from(&self.cur)
    }

    /// Rebuilds the previous field, when one was captured.
    pub fn prev_grid<T: Scalar>(&self) -> Option<Grid2D<T>> {
        self.prev.as_ref().and_then(|p| self.grid_from(p))
    }

    fn grid_from<T: Scalar>(&self, bits: &[u64]) -> Option<Grid2D<T>> {
        if self.scalar_bytes as usize != T::BYTES
            || Some(bits.len()) != self.rows.checked_mul(self.cols)
        {
            return None;
        }
        let data = bits.iter().map(|&b| T::from_bits_u64(b)).collect();
        Grid2D::from_vec(self.rows, self.cols, data).ok()
    }
}

/// Shared restore path for the double-buffered sweep engines: validates
/// the image shape, rewrites `cur`/`prev` from the stored bits and
/// mirrors `cur` into `next` (double-buffered sweeps only ever rewrite
/// the interior of `next`, so its boundary ring must match `cur`; the
/// stale interior is fully overwritten before the next read).
pub(crate) fn restore_sweep_state<T: Scalar>(
    image: &EngineStateImage,
    cur: &mut Grid2D<T>,
    next: &mut Grid2D<T>,
    prev: &mut Option<Grid2D<T>>,
    iterations: &mut usize,
) -> bool {
    if image.scalar_bytes as usize != T::BYTES
        || image.rows != cur.rows()
        || image.cols != cur.cols()
        || image.cur.len() != cur.as_slice().len()
        || image.prev.is_some() != prev.is_some()
        || image
            .prev
            .as_ref()
            .zip(prev.as_ref())
            .is_some_and(|(src, dst)| src.len() != dst.as_slice().len())
    {
        return false;
    }
    for (dst, &bits) in cur.as_mut_slice().iter_mut().zip(&image.cur) {
        *dst = T::from_bits_u64(bits);
    }
    next.as_mut_slice().copy_from_slice(cur.as_slice());
    if let (Some(dst), Some(src)) = (prev.as_mut(), image.prev.as_ref()) {
        for (d, &bits) in dst.as_mut_slice().iter_mut().zip(src) {
            *d = T::from_bits_u64(bits);
        }
    }
    *iterations = image.iterations;
    true
}

/// One solve backend: anything that can advance a solve by one step.
///
/// The driver ([`Session`]) calls [`begin`](SolveEngine::begin) once,
/// then [`step`](SolveEngine::step) until the stop condition is
/// satisfied (rolling back via [`rollback`](SolveEngine::rollback) when
/// the policy demands it), then [`finish`](SolveEngine::finish) once on
/// a clean exit. Engines that model I/O charge their boot/drain traffic
/// in `begin`/`finish`.
pub trait SolveEngine {
    /// Advances the solve by one iteration (or one analytic macro-step).
    fn step(&mut self) -> StepOutcome;

    /// Completed iterations so far.
    fn iterations(&self) -> usize;

    /// Whether [`checkpoint`](SolveEngine::checkpoint)/
    /// [`rollback`](SolveEngine::rollback) actually snapshot state.
    fn supports_checkpoint(&self) -> bool {
        false
    }

    /// Snapshots the solve state for a later rollback.
    fn checkpoint(&mut self) {}

    /// Restores the last checkpoint; returns `false` when none exists.
    fn rollback(&mut self) -> bool {
        false
    }

    /// One-time setup before the first step (e.g. boot DMA traffic).
    fn begin(&mut self) {}

    /// One-time teardown after a clean run (e.g. drain DMA traffic).
    fn finish(&mut self) {}

    /// Exports a resumable image of the solve state, or `None` when the
    /// engine cannot resume from an image (e.g. it owns mid-stream RNG
    /// state, like the fault-injected detailed simulator — such engines
    /// recover by deterministic replay from iteration 0 instead).
    fn export_state(&self) -> Option<EngineStateImage> {
        None
    }

    /// Restores state captured by
    /// [`export_state`](SolveEngine::export_state) on the *same
    /// problem*. Returns `false` — leaving the engine untouched — when
    /// the image's shape or scalar width disagrees, or the engine does
    /// not support restoration.
    fn restore_state(&mut self, image: &EngineStateImage) -> bool {
        let _ = image;
        false
    }
}

impl<E: SolveEngine + ?Sized> SolveEngine for &mut E {
    fn step(&mut self) -> StepOutcome {
        (**self).step()
    }
    fn iterations(&self) -> usize {
        (**self).iterations()
    }
    fn supports_checkpoint(&self) -> bool {
        (**self).supports_checkpoint()
    }
    fn checkpoint(&mut self) {
        (**self).checkpoint();
    }
    fn rollback(&mut self) -> bool {
        (**self).rollback()
    }
    fn begin(&mut self) {
        (**self).begin();
    }
    fn finish(&mut self) {
        (**self).finish();
    }
    fn export_state(&self) -> Option<EngineStateImage> {
        (**self).export_state()
    }
    fn restore_state(&mut self, image: &EngineStateImage) -> bool {
        (**self).restore_state(image)
    }
}

/// The single generic solve driver.
///
/// A session owns the outer iteration loop every backend used to
/// hand-roll: stop-condition evaluation, residual-history bookkeeping,
/// and — when a [`ResiliencePolicy`] is attached — divergence detection
/// plus checkpoint/rollback/retry.
///
/// # Example
///
/// ```
/// use fdm::prelude::*;
/// use fdm::engine::{Session, SweepEngine};
///
/// let problem = LaplaceProblem::builder(32, 32)
///     .boundary(DirichletBoundary::hot_top(1.0))
///     .build()
///     .expect("valid problem")
///     .discretize::<f64>();
/// let engine = SweepEngine::new(&problem, UpdateMethod::Jacobi);
/// let mut session = Session::new(engine, StopCondition::tolerance(1e-6, 100_000));
/// let met = session.run().expect("healthy problem, finite norms");
/// assert!(met);
/// assert!(!session.history().is_empty());
/// ```
pub struct Session<'cb, E: SolveEngine> {
    engine: E,
    stop: StopCondition,
    policy: Option<ResiliencePolicy>,
    budget: Budget,
    history: ResidualHistory,
    executed: usize,
    /// Absolute-iteration period of the state sink (0 = never).
    sink_interval: usize,
    /// Observer handed a fresh [`EngineStateImage`] every
    /// `sink_interval` iterations — the durability layer's checkpoint
    /// hook. Runs on the *absolute* iteration count, so a resumed
    /// session keeps the same snapshot schedule as an uninterrupted one.
    sink: Option<StateSink<'cb>>,
    /// In-flight loop state carried across [`Session::run_for`] slices;
    /// `None` when no run is in progress.
    in_flight: Option<LoopState>,
}

/// Loop bookkeeping that survives a cooperative yield: the retry budget,
/// the rollback checkpoint coordinates and the wall-clock anchor all
/// belong to one *run*, not to one slice of it.
#[derive(Clone, Copy, Debug)]
struct LoopState {
    retries: u32,
    has_checkpoint: bool,
    ckpt_history_len: usize,
    ckpt_iteration: usize,
    wall_start: Option<Instant>,
}

/// What one [`Session::run_for`] slice produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionPoll {
    /// The run terminated; the payload is whether the stop condition's
    /// goal was met (the value [`Session::run`] would have returned).
    Done(bool),
    /// The slice's step allowance ran out before the run terminated.
    /// Call [`Session::run_for`] again to continue — the loop state
    /// (retry budget, checkpoints, budget clocks) carries over exactly.
    Yielded,
}

/// Boxed observer for [`Session::with_state_sink`].
type StateSink<'cb> = Box<dyn FnMut(&EngineStateImage) + 'cb>;

impl<E: SolveEngine + fmt::Debug> fmt::Debug for Session<'_, E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("engine", &self.engine)
            .field("stop", &self.stop)
            .field("policy", &self.policy)
            .field("budget", &self.budget)
            .field("history", &self.history)
            .field("executed", &self.executed)
            .field("sink_interval", &self.sink_interval)
            .field("sink", &self.sink.as_ref().map(|_| "FnMut(..)"))
            .finish()
    }
}

impl<'cb, E: SolveEngine> Session<'cb, E> {
    /// A plain session: no checkpoints, no divergence checks, no budget.
    pub fn new(engine: E, stop: StopCondition) -> Self {
        Session {
            engine,
            stop,
            policy: None,
            budget: Budget::unlimited(),
            history: ResidualHistory::new(),
            executed: 0,
            sink_interval: 0,
            sink: None,
            in_flight: None,
        }
    }

    /// Attaches a periodic state observer: every `interval` completed
    /// iterations (absolute count, so resumed runs keep the schedule)
    /// the engine's [`SolveEngine::export_state`] image is handed to
    /// `sink`. Engines that export `None` never fire the sink. An
    /// `interval` of 0 disables the sink.
    #[must_use]
    pub fn with_state_sink(
        mut self,
        interval: usize,
        sink: impl FnMut(&EngineStateImage) + 'cb,
    ) -> Self {
        self.sink_interval = interval;
        self.sink = Some(Box::new(sink));
        self
    }

    /// Attaches a resilience policy: the driver will checkpoint, watch
    /// for divergence/faults and roll back per the policy.
    #[must_use]
    pub fn with_policy(mut self, policy: ResiliencePolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Attaches a [`Budget`]: deadlines, cancellation and the stall
    /// watchdog are checked between steps, and a violation terminates
    /// the run with the matching structured error.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The engine being driven.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Mutable access to the engine being driven.
    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// Per-iteration update norms recorded so far.
    pub fn history(&self) -> &ResidualHistory {
        &self.history
    }

    /// Steps actually executed by the last [`Session::run`] — the budget
    /// currency. Unlike [`SolveEngine::iterations`], rollback replays
    /// count here: work discarded by a rollback was still performed.
    pub fn steps_executed(&self) -> usize {
        self.executed
    }

    /// Consumes the session, returning the engine and the recorded
    /// history.
    pub fn into_parts(self) -> (E, ResidualHistory) {
        (self.engine, self.history)
    }

    /// Drives the engine until the stop condition is satisfied.
    ///
    /// Returns `Ok(met)` — whether the stop condition's goal was met
    /// (tolerance reached, or all fixed steps completed).
    ///
    /// # Errors
    ///
    /// Always, policy or not: [`EngineError::NonFinite`] when an update
    /// norm comes back NaN/Inf and no policy is attached to recover from
    /// it (NaN never satisfies an ordered tolerance comparison, so
    /// without this check a poisoned solve would silently spin to
    /// `max_iterations`).
    ///
    /// With a policy attached, the first unrecoverable trouble: a fault
    /// or divergence with no checkpoint to roll back to
    /// ([`EngineError::NonFinite`], [`EngineError::Diverged`],
    /// [`EngineError::CorruptionDetected`], [`EngineError::DmaFailed`]),
    /// or [`EngineError::RetriesExhausted`] once the retry budget runs
    /// out.
    ///
    /// With a budget attached, [`EngineError::Cancelled`],
    /// [`EngineError::DeadlineExceeded`] or [`EngineError::Stalled`];
    /// budget violations are terminal and never roll back (a checkpoint
    /// cannot refund spent time).
    ///
    /// On `Err` the engine's `finish` hook is *not* invoked (a failed
    /// solve does not drain its solution).
    pub fn run(&mut self) -> Result<bool, EngineError> {
        self.in_flight = None; // a fresh run, even after a partial run_for
        loop {
            match self.run_for(usize::MAX)? {
                SessionPoll::Done(met) => return Ok(met),
                SessionPoll::Yielded => {}
            }
        }
    }

    /// Cooperative-yield variant of [`Session::run`]: drives the engine
    /// for at most `max_steps` further steps, then yields control back
    /// to the caller with [`SessionPoll::Yielded`] if the run has not
    /// terminated yet.
    ///
    /// The first call begins the run (engine `begin` hook, initial
    /// policy checkpoint); subsequent calls continue it with the loop
    /// state — retry budget, rollback checkpoint, deadline and
    /// wall-clock anchors — carried over exactly, so a run executed in
    /// slices is bit-identical to one executed by a single
    /// [`Session::run`]. This is the primitive the solve service's
    /// hedged attempts interleave on: two sessions advance in
    /// alternating virtual-time slices and the first to finish cancels
    /// the other.
    ///
    /// [`Session::steps_executed`] accumulates across slices of one run
    /// and resets when a new run begins.
    ///
    /// # Errors
    ///
    /// Exactly the error surface of [`Session::run`]; an error ends the
    /// in-flight run (the next call starts a fresh one).
    pub fn run_for(&mut self, max_steps: usize) -> Result<SessionPoll, EngineError> {
        if self.in_flight.is_none() {
            self.engine.begin();
            let wall_start = self.budget.max_wall.map(|_| Instant::now());
            let mut state = LoopState {
                retries: 0,
                has_checkpoint: false,
                ckpt_history_len: self.history.len(),
                ckpt_iteration: self.engine.iterations(),
                wall_start,
            };
            if let Some(p) = &self.policy {
                if p.checkpoint_interval > 0 && self.engine.supports_checkpoint() {
                    self.engine.checkpoint();
                    state.has_checkpoint = true;
                    state.ckpt_history_len = self.history.len();
                    state.ckpt_iteration = self.engine.iterations();
                }
            }
            self.executed = 0;
            self.in_flight = Some(state);
        }
        match self.run_slice(max_steps) {
            Ok(SessionPoll::Yielded) => Ok(SessionPoll::Yielded),
            Ok(SessionPoll::Done(met)) => {
                self.in_flight = None;
                Ok(SessionPoll::Done(met))
            }
            Err(e) => {
                self.in_flight = None;
                Err(e)
            }
        }
    }

    /// One slice of the driver loop; `self.in_flight` must be `Some`.
    fn run_slice(&mut self, max_steps: usize) -> Result<SessionPoll, EngineError> {
        let mut state = self.in_flight.take().unwrap_or(LoopState {
            retries: 0,
            has_checkpoint: false,
            ckpt_history_len: 0,
            ckpt_iteration: 0,
            wall_start: None,
        });
        let result = self.slice_loop(max_steps, &mut state);
        self.in_flight = Some(state);
        result
    }

    /// The driver loop body shared by every slice of a run.
    #[allow(clippy::too_many_lines)]
    fn slice_loop(
        &mut self,
        max_steps: usize,
        state: &mut LoopState,
    ) -> Result<SessionPoll, EngineError> {
        let max = self.stop.max_iterations();
        let mut slice_steps = 0usize;
        let mut met = false;
        while self.engine.iterations() < max {
            if slice_steps >= max_steps {
                return Ok(SessionPoll::Yielded);
            }
            // Budget gate, *before* the step: a job never exceeds its
            // deadline, and a cancelled job does no further work.
            {
                let iteration = self.engine.iterations();
                let b = &self.budget;
                if b.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                    return Err(EngineError::Cancelled { iteration });
                }
                if b.deadline_iterations.is_some_and(|d| self.executed >= d) {
                    return Err(EngineError::DeadlineExceeded { iteration });
                }
                if let (Some(ceiling), Some(start)) = (b.max_wall, state.wall_start) {
                    if start.elapsed() >= ceiling {
                        return Err(EngineError::DeadlineExceeded { iteration });
                    }
                }
            }

            let iter_before = self.engine.iterations();
            let out = self.engine.step();
            self.executed += 1;
            slice_steps += 1;
            if let Some(norm) = out.norm {
                self.history.push(norm);
            }
            let iteration = self.engine.iterations();

            if let Some(p) = &self.policy {
                let trouble = match out.fault {
                    Some(StepFault::DmaFailed) => Some(EngineError::DmaFailed { iteration }),
                    Some(StepFault::CorruptionDetected) => {
                        Some(EngineError::CorruptionDetected { iteration })
                    }
                    None => match self
                        .history
                        .detect_divergence(p.divergence_window, p.divergence_factor)
                    {
                        Some(Divergence::NonFinite { iteration }) => {
                            Some(EngineError::NonFinite { iteration })
                        }
                        Some(Divergence::Growing { iteration, ratio }) => {
                            Some(EngineError::Diverged { iteration, ratio })
                        }
                        None => None,
                    },
                };
                if let Some(err) = trouble {
                    if !state.has_checkpoint {
                        return Err(err);
                    }
                    if state.retries >= p.max_retries {
                        return Err(EngineError::RetriesExhausted {
                            attempts: state.retries,
                            checkpoint_iteration: state.ckpt_iteration,
                        });
                    }
                    state.retries += 1;
                    self.engine.rollback();
                    self.history.truncate(state.ckpt_history_len);
                    continue;
                }
            } else if out.norm.is_some_and(|n| !n.is_finite()) {
                // No policy to recover through: a non-finite norm would
                // slip past every ordered comparison below, so surface it
                // as a structured error instead of spinning to the cap.
                return Err(EngineError::NonFinite { iteration });
            }

            if self.budget.stall_window > 0 {
                if let Some(at) = self
                    .history
                    .detect_stall(self.budget.stall_window, self.budget.stall_min_decay)
                {
                    return Err(EngineError::Stalled { iteration: at });
                }
            }

            let norm = out.norm.unwrap_or(f64::INFINITY);
            if self.stop.should_stop(iteration, norm) {
                met = self.stop.is_met(iteration, norm);
                break;
            }

            // Interval firings use *crossing* semantics so multi-sweep
            // steps (the tiled engine advances `iterations` by a whole
            // epoch) still fire when a step jumps over an interval
            // multiple. Stride-1 engines behave exactly as before.
            let crossed = |interval: usize| iteration / interval > iter_before / interval;

            if let Some(p) = &self.policy {
                if p.checkpoint_interval > 0
                    && self.engine.supports_checkpoint()
                    && crossed(p.checkpoint_interval)
                {
                    self.engine.checkpoint();
                    state.has_checkpoint = true;
                    state.ckpt_history_len = self.history.len();
                    state.ckpt_iteration = iteration;
                    // The budget bounds retries per checkpoint window:
                    // making it this far means real progress, so the
                    // allowance renews.
                    state.retries = 0;
                }
            }

            if self.sink_interval > 0 && crossed(self.sink_interval) {
                if let Some(sink) = &mut self.sink {
                    if let Some(image) = self.engine.export_state() {
                        sink(&image);
                    }
                }
            }
        }
        if self.engine.iterations() == max {
            met = self
                .stop
                .is_met(max, self.history.last().unwrap_or(f64::INFINITY));
        }

        self.engine.finish();
        Ok(SessionPoll::Done(met))
    }
}

/// Copies `cur`'s Dirichlet boundary ring (top/bottom rows, left/right
/// columns) into `next`.
///
/// The sweeps only write interior points, so a double-buffered write
/// target must already carry the right ring. For two-buffer rotations
/// that holds by construction, but the wave equation's *three*-buffer
/// rotation cycles `prev_initial`'s buffer back in as the write target
/// every other sweep — without this refresh its ring would leak into
/// the solution whenever `prev_initial` disagrees with `initial` on the
/// boundary (the numerics never read those cells; only the rotation
/// exposes them). A bitwise no-op when the rings agree.
fn refresh_boundary_ring<T: Scalar>(next: &mut Grid2D<T>, cur: &Grid2D<T>) {
    let (rows, cols) = (cur.rows(), cur.cols());
    if rows == 0 || cols == 0 {
        return;
    }
    let src = cur.as_slice();
    let dst = next.as_mut_slice();
    dst[..cols].copy_from_slice(&src[..cols]);
    dst[(rows - 1) * cols..].copy_from_slice(&src[(rows - 1) * cols..]);
    for i in 1..rows.saturating_sub(1) {
        dst[i * cols] = src[i * cols];
        dst[i * cols + cols - 1] = src[i * cols + cols - 1];
    }
}

/// A snapshot of a [`SweepEngine`]'s rotating buffers.
#[derive(Clone, Debug)]
struct SweepCheckpoint<T> {
    cur: Grid2D<T>,
    next: Grid2D<T>,
    prev: Option<Grid2D<T>>,
    iterations: usize,
}

/// The software relaxation sweeps as a [`SolveEngine`].
///
/// One step is one sweep of the chosen [`UpdateMethod`] with the
/// canonical stencil evaluation order (bit-exact with the hardware
/// model's f32 arithmetic). Buffers rotate by pointer swap; the only
/// per-iteration copy is the `prev` snapshot the wave equation's
/// in-place methods need, kept in a reused scratch buffer.
#[derive(Debug)]
pub struct SweepEngine<'p, T: Scalar> {
    problem: &'p StencilProblem<T>,
    method: UpdateMethod,
    cur: Grid2D<T>,
    next: Grid2D<T>,
    prev: Option<Grid2D<T>>,
    scratch: Option<Grid2D<T>>,
    uses_prev: bool,
    iterations: usize,
    saved: Option<SweepCheckpoint<T>>,
}

impl<'p, T: Scalar> SweepEngine<'p, T> {
    /// Prepares a sweep engine on `problem`.
    ///
    /// # Panics
    ///
    /// Panics when an SOR factor lies outside `(0, 2)`, or when a
    /// `ScaledPrevField` offset (wave equation) comes without
    /// `prev_initial`.
    pub fn new(problem: &'p StencilProblem<T>, method: UpdateMethod) -> Self {
        if let UpdateMethod::Sor { omega } = method {
            assert!(
                omega > 0.0 && omega < 2.0,
                "SOR requires omega in (0, 2), got {omega}"
            );
        }
        let cur = problem.initial.clone();
        let next = cur.clone();
        let prev = problem.prev_initial.clone();
        let uses_prev = matches!(problem.offset, OffsetField::ScaledPrevField { .. });
        if uses_prev {
            assert!(
                prev.is_some(),
                "a ScaledPrevField offset requires prev_initial"
            );
        }
        SweepEngine {
            problem,
            method,
            cur,
            next,
            prev,
            scratch: None,
            uses_prev,
            iterations: 0,
            saved: None,
        }
    }

    /// The current field `U^k`.
    pub fn solution(&self) -> &Grid2D<T> {
        &self.cur
    }

    /// Consumes the engine, returning the final field.
    pub fn into_solution(self) -> Grid2D<T> {
        self.cur
    }

    /// The update method being swept.
    pub fn method(&self) -> UpdateMethod {
        self.method
    }
}

impl<T: Scalar> SolveEngine for SweepEngine<'_, T> {
    fn step(&mut self) -> StepOutcome {
        let problem = self.problem;
        // The wave rotation cycles `prev_initial`'s buffer in as the
        // write target: re-pin its boundary ring to the solution's.
        if self.uses_prev && matches!(self.method, UpdateMethod::Jacobi | UpdateMethod::Hybrid) {
            refresh_boundary_ring(&mut self.next, &self.cur);
        }
        let diff2 = match self.method {
            UpdateMethod::Jacobi => sweep_jacobi(
                &problem.stencil,
                &problem.offset,
                &self.cur,
                self.prev.as_ref(),
                &mut self.next,
            ),
            UpdateMethod::Hybrid => sweep_hybrid(
                &problem.stencil,
                &problem.offset,
                &self.cur,
                self.prev.as_ref(),
                &mut self.next,
            ),
            UpdateMethod::GaussSeidel | UpdateMethod::Checkerboard | UpdateMethod::Sor { .. } => {
                // In-place sweeps: when the wave history is live, keep the
                // pre-sweep field in a reused scratch buffer (no
                // per-iteration allocation) and rotate it into `prev`.
                if self.uses_prev {
                    match &mut self.scratch {
                        Some(s) => s.as_mut_slice().copy_from_slice(self.cur.as_slice()),
                        None => self.scratch = Some(self.cur.clone()),
                    }
                }
                let d = match self.method {
                    UpdateMethod::GaussSeidel => sweep_gauss_seidel(
                        &problem.stencil,
                        &problem.offset,
                        &mut self.cur,
                        self.prev.as_ref(),
                    ),
                    UpdateMethod::Checkerboard => sweep_checkerboard(
                        &problem.stencil,
                        &problem.offset,
                        &mut self.cur,
                        self.prev.as_ref(),
                    ),
                    UpdateMethod::Sor { omega } => sweep_sor(
                        &problem.stencil,
                        &problem.offset,
                        &mut self.cur,
                        self.prev.as_ref(),
                        omega,
                    ),
                    _ => unreachable!("outer match restricts to in-place methods"),
                };
                if self.uses_prev {
                    core::mem::swap(
                        self.prev.as_mut().expect("checked in new"),
                        self.scratch.as_mut().expect("filled above"),
                    );
                }
                d
            }
        };

        // Double-buffered methods rotate cur/next (and prev for the wave
        // equation); in-place methods already updated `cur` above.
        if matches!(self.method, UpdateMethod::Jacobi | UpdateMethod::Hybrid) {
            if self.uses_prev {
                core::mem::swap(&mut self.cur, self.prev.as_mut().expect("checked in new"));
            }
            core::mem::swap(&mut self.cur, &mut self.next);
        }

        self.iterations += 1;
        StepOutcome::clean(diff2.sqrt())
    }

    fn iterations(&self) -> usize {
        self.iterations
    }

    fn supports_checkpoint(&self) -> bool {
        true
    }

    fn checkpoint(&mut self) {
        self.saved = Some(SweepCheckpoint {
            cur: self.cur.clone(),
            next: self.next.clone(),
            prev: self.prev.clone(),
            iterations: self.iterations,
        });
    }

    fn rollback(&mut self) -> bool {
        match &self.saved {
            Some(ckpt) => {
                self.cur.as_mut_slice().copy_from_slice(ckpt.cur.as_slice());
                self.next
                    .as_mut_slice()
                    .copy_from_slice(ckpt.next.as_slice());
                match (&mut self.prev, &ckpt.prev) {
                    (Some(dst), Some(src)) => dst.as_mut_slice().copy_from_slice(src.as_slice()),
                    (dst, src) => *dst = src.clone(),
                }
                self.iterations = ckpt.iterations;
                true
            }
            None => false,
        }
    }

    fn export_state(&self) -> Option<EngineStateImage> {
        Some(EngineStateImage::capture(
            self.iterations,
            &self.cur,
            self.prev.as_ref(),
        ))
    }

    fn restore_state(&mut self, image: &EngineStateImage) -> bool {
        let ok = restore_sweep_state(
            image,
            &mut self.cur,
            &mut self.next,
            &mut self.prev,
            &mut self.iterations,
        );
        if ok {
            self.saved = None;
        }
        ok
    }
}

/// Strip-parallel software sweeps: the software analogue of FDMAX's
/// elastic `1×(C·k)` subarray chains.
///
/// The grid interior is decomposed into contiguous row bands
/// ([`crate::kernels::row_bands`]), one per worker, exactly as the elastic
/// reconfiguration assigns row strips to chained subarrays; the rows
/// adjacent to a band boundary play the role of the `HaloAdders`' one-row
/// halo exchange. Bands run on [`std::thread::scope`] — no runtime
/// dependency — and each band records its per-row diff² partials into a
/// row-indexed buffer that is folded *in ascending row order* after the
/// join. Because every row partial is produced by the same
/// [`crate::kernels`] row kernel the serial [`SweepEngine`] drives, and the
/// fold order equals the serial accumulation order, Jacobi and
/// checkerboard results — grids *and* residual histories — are
/// bit-identical to the serial engine at any thread count.
///
/// * **Jacobi** parallelises trivially: every output row depends only on
///   the previous iterate.
/// * **Checkerboard** parallelises exactly: a phase-`p` update at
///   `(i, j)` reads only opposite-parity neighbours, which the running
///   phase never writes, so pre-phase halo snapshots stay valid for the
///   whole phase and band-local reads match what a serial ascending
///   sweep would have seen.
/// * **Hybrid, Gauss-Seidel and SOR** carry a loop dependency across
///   rows; they fall back to the serial kernels (still one band) so the
///   engine stays a drop-in replacement for every [`UpdateMethod`].
#[derive(Debug)]
pub struct ParallelSweepEngine<'p, T: Scalar> {
    problem: &'p StencilProblem<T>,
    method: UpdateMethod,
    threads: usize,
    cur: Grid2D<T>,
    next: Grid2D<T>,
    prev: Option<Grid2D<T>>,
    scratch: Option<Grid2D<T>>,
    uses_prev: bool,
    iterations: usize,
    saved: Option<SweepCheckpoint<T>>,
    /// Interior row bands, recomputed once at construction.
    bands: Vec<core::ops::Range<usize>>,
    /// Per-row diff² partials, folded in ascending row order after a
    /// parallel sweep (index = absolute row).
    row_diff2: Vec<f64>,
    /// Pre-phase snapshots of the row above / below each band, refreshed
    /// per checkerboard phase (the `HaloAdder` analogue).
    halo_up: Vec<Vec<T>>,
    halo_down: Vec<Vec<T>>,
}

impl<'p, T: Scalar> ParallelSweepEngine<'p, T> {
    /// Prepares a strip-parallel sweep engine on `problem` with at most
    /// `threads` worker bands (clamped to at least 1 and at most the
    /// interior height).
    ///
    /// # Panics
    ///
    /// Same conditions as [`SweepEngine::new`].
    pub fn new(problem: &'p StencilProblem<T>, method: UpdateMethod, threads: usize) -> Self {
        if let UpdateMethod::Sor { omega } = method {
            assert!(
                omega > 0.0 && omega < 2.0,
                "SOR requires omega in (0, 2), got {omega}"
            );
        }
        let cur = problem.initial.clone();
        let next = cur.clone();
        let prev = problem.prev_initial.clone();
        let uses_prev = matches!(problem.offset, OffsetField::ScaledPrevField { .. });
        if uses_prev {
            assert!(
                prev.is_some(),
                "a ScaledPrevField offset requires prev_initial"
            );
        }
        let threads = threads.max(1);
        let bands = if matches!(method, UpdateMethod::Jacobi | UpdateMethod::Checkerboard) {
            crate::kernels::row_bands(cur.rows(), threads)
        } else {
            // Serial-fallback methods keep a single band.
            crate::kernels::row_bands(cur.rows(), 1)
        };
        let (halo_up, halo_down) = if matches!(method, UpdateMethod::Checkerboard) {
            (
                bands.iter().map(|_| vec![T::ZERO; cur.cols()]).collect(),
                bands.iter().map(|_| vec![T::ZERO; cur.cols()]).collect(),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        let row_diff2 = vec![0.0; cur.rows()];
        ParallelSweepEngine {
            problem,
            method,
            threads,
            cur,
            next,
            prev,
            scratch: None,
            uses_prev,
            iterations: 0,
            saved: None,
            bands,
            row_diff2,
            halo_up,
            halo_down,
        }
    }

    /// The current field `U^k`.
    pub fn solution(&self) -> &Grid2D<T> {
        &self.cur
    }

    /// Consumes the engine, returning the final field.
    pub fn into_solution(self) -> Grid2D<T> {
        self.cur
    }

    /// The update method being swept.
    pub fn method(&self) -> UpdateMethod {
        self.method
    }

    /// The requested worker count (bands actually used may be fewer on
    /// short grids).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The band plan actually swept: ascending, disjoint, contiguous
    /// interior row ranges. The static race certifier
    /// (`fdmax::analysis`) re-derives and certifies exactly this
    /// geometry.
    pub fn bands(&self) -> &[core::ops::Range<usize>] {
        &self.bands
    }

    /// One parallel Jacobi sweep: bands write disjoint chunks of `next`
    /// and disjoint chunks of the diff² buffer; the fold after the join
    /// runs in ascending row order, matching the serial accumulation.
    fn step_jacobi_parallel(&mut self) -> f64 {
        let problem = self.problem;
        let stencil = &problem.stencil;
        let offset = &problem.offset;
        let prev = self.prev.as_ref();
        let cur = &self.cur;
        let (rows, cols) = (cur.rows(), cur.cols());
        if self.bands.is_empty() {
            return 0.0;
        }
        let mut out_rem = &mut self.next.as_mut_slice()[cols..(rows - 1) * cols];
        let mut d_rem = &mut self.row_diff2[1..rows - 1];
        let mut work: Vec<(core::ops::Range<usize>, &mut [T], &mut [f64])> =
            Vec::with_capacity(self.bands.len());
        for band in &self.bands {
            let h = band.len();
            let tmp = core::mem::take(&mut out_rem);
            let (out, rest) = tmp.split_at_mut(h * cols);
            out_rem = rest;
            let tmp = core::mem::take(&mut d_rem);
            let (d, rest) = tmp.split_at_mut(h);
            d_rem = rest;
            work.push((band.clone(), out, d));
        }
        let run_band = |band: core::ops::Range<usize>, out: &mut [T], d: &mut [f64]| {
            for (r, i) in band.enumerate() {
                let b = crate::kernels::OffsetRow::for_row(offset, prev, i);
                d[r] = crate::kernels::jacobi_row(
                    stencil,
                    cur.row(i - 1),
                    cur.row(i),
                    cur.row(i + 1),
                    b,
                    &mut out[r * cols..(r + 1) * cols],
                );
            }
        };
        if work.len() == 1 {
            let (band, out, d) = work.pop().expect("one band");
            run_band(band, out, d);
        } else {
            let run_band = &run_band;
            std::thread::scope(|s| {
                for (band, out, d) in work {
                    s.spawn(move || run_band(band, out, d));
                }
            });
        }
        crate::ops::fold_partials(&self.row_diff2[1..rows - 1])
    }

    /// One parallel checkerboard sweep, two phases. Per phase: snapshot
    /// band-edge halo rows, update all bands concurrently in place, then
    /// fold the phase's per-row partials ascending — the exact serial
    /// order `phase-0 rows 1..n, phase-1 rows 1..n`.
    fn step_checkerboard_parallel(&mut self) -> f64 {
        let problem = self.problem;
        let stencil = &problem.stencil;
        let offset = &problem.offset;
        let (rows, cols) = (self.cur.rows(), self.cur.cols());
        if self.bands.is_empty() {
            return 0.0;
        }
        let mut total = 0.0f64;
        for parity in [0usize, 1] {
            // Pre-phase halo snapshots: valid for the whole phase because
            // a phase only writes its own parity and only reads the other.
            for (k, band) in self.bands.iter().enumerate() {
                self.halo_up[k].copy_from_slice(self.cur.row(band.start - 1));
                self.halo_down[k].copy_from_slice(self.cur.row(band.end));
            }
            let prev = self.prev.as_ref();
            let mut field_rem = &mut self.cur.as_mut_slice()[cols..(rows - 1) * cols];
            let mut d_rem = &mut self.row_diff2[1..rows - 1];
            #[allow(clippy::type_complexity)]
            let mut work: Vec<(
                core::ops::Range<usize>,
                &mut [T],
                &mut [f64],
                &[T],
                &[T],
            )> = Vec::with_capacity(self.bands.len());
            for (k, band) in self.bands.iter().enumerate() {
                let h = band.len();
                let tmp = core::mem::take(&mut field_rem);
                let (chunk, rest) = tmp.split_at_mut(h * cols);
                field_rem = rest;
                let tmp = core::mem::take(&mut d_rem);
                let (d, rest) = tmp.split_at_mut(h);
                d_rem = rest;
                work.push((band.clone(), chunk, d, &self.halo_up[k], &self.halo_down[k]));
            }
            let run_band = |band: core::ops::Range<usize>,
                            chunk: &mut [T],
                            d: &mut [f64],
                            up_halo: &[T],
                            down_halo: &[T]| {
                let h = band.len();
                for r in 0..h {
                    let i = band.start + r;
                    let b = crate::kernels::OffsetRow::for_row(offset, prev, i);
                    let start = if (i + parity) % 2 == 1 { 1 } else { 2 };
                    let (head, rest) = chunk.split_at_mut(r * cols);
                    let (mid, tail) = rest.split_at_mut(cols);
                    let up: &[T] = if r == 0 {
                        up_halo
                    } else {
                        &head[(r - 1) * cols..]
                    };
                    let down: &[T] = if r + 1 == h { down_halo } else { &tail[..cols] };
                    d[r] = crate::kernels::checkerboard_row(stencil, up, mid, down, b, start);
                }
            };
            if work.len() == 1 {
                let (band, chunk, d, hu, hd) = work.pop().expect("one band");
                run_band(band, chunk, d, hu, hd);
            } else {
                let run_band = &run_band;
                std::thread::scope(|s| {
                    for (band, chunk, d, hu, hd) in work {
                        s.spawn(move || run_band(band, chunk, d, hu, hd));
                    }
                });
            }
            total = crate::ops::fold_partials_from(total, &self.row_diff2[1..rows - 1]);
        }
        total
    }
}

impl<T: Scalar> SolveEngine for ParallelSweepEngine<'_, T> {
    fn step(&mut self) -> StepOutcome {
        let problem = self.problem;
        // Same ring re-pin as the serial engine: the wave rotation
        // cycles `prev_initial`'s buffer in as the write target.
        if self.uses_prev && matches!(self.method, UpdateMethod::Jacobi | UpdateMethod::Hybrid) {
            refresh_boundary_ring(&mut self.next, &self.cur);
        }
        let diff2 = match self.method {
            UpdateMethod::Jacobi => self.step_jacobi_parallel(),
            UpdateMethod::Hybrid => sweep_hybrid(
                &problem.stencil,
                &problem.offset,
                &self.cur,
                self.prev.as_ref(),
                &mut self.next,
            ),
            UpdateMethod::GaussSeidel | UpdateMethod::Checkerboard | UpdateMethod::Sor { .. } => {
                if self.uses_prev {
                    match &mut self.scratch {
                        Some(s) => s.as_mut_slice().copy_from_slice(self.cur.as_slice()),
                        None => self.scratch = Some(self.cur.clone()),
                    }
                }
                let d = match self.method {
                    UpdateMethod::GaussSeidel => sweep_gauss_seidel(
                        &problem.stencil,
                        &problem.offset,
                        &mut self.cur,
                        self.prev.as_ref(),
                    ),
                    UpdateMethod::Checkerboard => self.step_checkerboard_parallel(),
                    UpdateMethod::Sor { omega } => sweep_sor(
                        &problem.stencil,
                        &problem.offset,
                        &mut self.cur,
                        self.prev.as_ref(),
                        omega,
                    ),
                    _ => unreachable!("outer match restricts to in-place methods"),
                };
                if self.uses_prev {
                    core::mem::swap(
                        self.prev.as_mut().expect("checked in new"),
                        self.scratch.as_mut().expect("filled above"),
                    );
                }
                d
            }
        };

        if matches!(self.method, UpdateMethod::Jacobi | UpdateMethod::Hybrid) {
            if self.uses_prev {
                core::mem::swap(&mut self.cur, self.prev.as_mut().expect("checked in new"));
            }
            core::mem::swap(&mut self.cur, &mut self.next);
        }

        self.iterations += 1;
        StepOutcome::clean(diff2.sqrt())
    }

    fn iterations(&self) -> usize {
        self.iterations
    }

    fn supports_checkpoint(&self) -> bool {
        true
    }

    fn checkpoint(&mut self) {
        self.saved = Some(SweepCheckpoint {
            cur: self.cur.clone(),
            next: self.next.clone(),
            prev: self.prev.clone(),
            iterations: self.iterations,
        });
    }

    fn rollback(&mut self) -> bool {
        match &self.saved {
            Some(ckpt) => {
                self.cur.as_mut_slice().copy_from_slice(ckpt.cur.as_slice());
                self.next
                    .as_mut_slice()
                    .copy_from_slice(ckpt.next.as_slice());
                match (&mut self.prev, &ckpt.prev) {
                    (Some(dst), Some(src)) => dst.as_mut_slice().copy_from_slice(src.as_slice()),
                    (dst, src) => *dst = src.clone(),
                }
                self.iterations = ckpt.iterations;
                true
            }
            None => false,
        }
    }

    fn export_state(&self) -> Option<EngineStateImage> {
        Some(EngineStateImage::capture(
            self.iterations,
            &self.cur,
            self.prev.as_ref(),
        ))
    }

    fn restore_state(&mut self, image: &EngineStateImage) -> bool {
        // Bands, halos and the diff² buffer are per-sweep scratch that
        // every step rebuilds; only the rotating field buffers carry
        // state across iterations.
        let ok = restore_sweep_state(
            image,
            &mut self.cur,
            &mut self.next,
            &mut self.prev,
            &mut self.iterations,
        );
        if ok {
            self.saved = None;
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::DirichletBoundary;
    use crate::pde::LaplaceProblem;
    use crate::solver::solve;

    fn laplace(n: usize) -> StencilProblem<f64> {
        LaplaceProblem::builder(n, n)
            .boundary(DirichletBoundary::hot_top(1.0))
            .build()
            .unwrap()
            .discretize::<f64>()
    }

    #[test]
    fn session_matches_the_solve_entry_point() {
        let sp = laplace(16);
        let stop = StopCondition::tolerance(1e-8, 50_000);
        let mut session = Session::new(SweepEngine::new(&sp, UpdateMethod::Jacobi), stop);
        let met = session.run().unwrap();
        let sw = solve(&sp, UpdateMethod::Jacobi, &stop);
        assert_eq!(met, sw.converged());
        let (engine, history) = session.into_parts();
        assert_eq!(engine.iterations(), sw.iterations());
        assert_eq!(engine.solution(), sw.solution());
        assert_eq!(history.as_slice(), sw.history().as_slice());
    }

    #[test]
    fn zero_steps_is_trivially_met_for_fixed_mode_only() {
        let sp = laplace(8);
        let mut fixed = Session::new(
            SweepEngine::new(&sp, UpdateMethod::Jacobi),
            StopCondition::fixed_steps(0),
        );
        assert!(fixed.run().unwrap());
        let mut tol = Session::new(
            SweepEngine::new(&sp, UpdateMethod::Jacobi),
            StopCondition::tolerance(1e-8, 0),
        );
        assert!(!tol.run().unwrap());
    }

    #[test]
    fn borrowed_engines_drive_too() {
        let sp = laplace(8);
        let mut engine = SweepEngine::new(&sp, UpdateMethod::Jacobi);
        let mut session = Session::new(&mut engine, StopCondition::fixed_steps(3));
        assert!(session.run().unwrap());
        drop(session);
        assert_eq!(engine.iterations(), 3);
    }

    #[test]
    fn policy_detects_divergence_without_checkpoints() {
        // An engine that fabricates a growing norm series.
        struct Exploding {
            iterations: usize,
        }
        impl SolveEngine for Exploding {
            fn step(&mut self) -> StepOutcome {
                self.iterations += 1;
                StepOutcome::clean(10f64.powi(self.iterations as i32))
            }
            fn iterations(&self) -> usize {
                self.iterations
            }
        }
        let mut session = Session::new(Exploding { iterations: 0 }, StopCondition::fixed_steps(50))
            .with_policy(ResiliencePolicy {
                checkpoint_interval: 0,
                divergence_window: 2,
                divergence_factor: 10.0,
                ..ResiliencePolicy::default()
            });
        let err = session.run().unwrap_err();
        assert!(matches!(err, EngineError::Diverged { .. }));
    }

    #[test]
    fn retries_exhaust_into_a_structured_error() {
        // Every step reports corruption; rollback never helps.
        struct AlwaysCorrupt {
            iterations: usize,
        }
        impl SolveEngine for AlwaysCorrupt {
            fn step(&mut self) -> StepOutcome {
                self.iterations += 1;
                StepOutcome {
                    norm: Some(1.0),
                    fault: Some(StepFault::CorruptionDetected),
                }
            }
            fn iterations(&self) -> usize {
                self.iterations
            }
            fn supports_checkpoint(&self) -> bool {
                true
            }
            fn rollback(&mut self) -> bool {
                self.iterations -= 1;
                true
            }
        }
        let mut session = Session::new(
            AlwaysCorrupt { iterations: 0 },
            StopCondition::fixed_steps(10),
        )
        .with_policy(ResiliencePolicy {
            max_retries: 3,
            ..ResiliencePolicy::default()
        });
        assert_eq!(
            session.run().unwrap_err(),
            EngineError::RetriesExhausted {
                attempts: 3,
                checkpoint_iteration: 0
            }
        );
    }

    #[test]
    fn sweep_engine_checkpoint_round_trips() {
        let sp = laplace(12);
        let mut engine = SweepEngine::new(&sp, UpdateMethod::Jacobi);
        for _ in 0..3 {
            engine.step();
        }
        engine.checkpoint();
        let at_ckpt = engine.solution().clone();
        for _ in 0..4 {
            engine.step();
        }
        assert_ne!(engine.solution(), &at_ckpt);
        assert!(engine.rollback());
        assert_eq!(engine.solution(), &at_ckpt);
        assert_eq!(engine.iterations(), 3);
    }

    #[test]
    fn parallel_sweep_engine_is_bit_identical_to_serial() {
        let sp = laplace(17);
        for method in [UpdateMethod::Jacobi, UpdateMethod::Checkerboard] {
            for threads in [1usize, 2, 4, 7] {
                let mut serial = SweepEngine::new(&sp, method);
                let mut par = ParallelSweepEngine::new(&sp, method, threads);
                assert_eq!(par.threads(), threads.max(1));
                for step in 0..12 {
                    let a = serial.step().norm.unwrap();
                    let b = par.step().norm.unwrap();
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "norm diverged at step {step} ({method:?}, {threads} threads)"
                    );
                }
                let (s, p) = (serial.solution(), par.solution());
                for i in 0..s.rows() {
                    for j in 0..s.cols() {
                        assert_eq!(s[(i, j)].to_bits(), p[(i, j)].to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_sweep_engine_checkpoint_round_trips() {
        let sp = laplace(12);
        let mut engine = ParallelSweepEngine::new(&sp, UpdateMethod::Checkerboard, 3);
        for _ in 0..3 {
            engine.step();
        }
        engine.checkpoint();
        let at_ckpt = engine.solution().clone();
        for _ in 0..4 {
            engine.step();
        }
        assert_ne!(engine.solution(), &at_ckpt);
        assert!(engine.rollback());
        assert_eq!(engine.solution(), &at_ckpt);
        assert_eq!(engine.iterations(), 3);
    }

    #[test]
    fn engine_errors_display() {
        assert!(EngineError::NonFinite { iteration: 7 }
            .to_string()
            .contains("iteration 7"));
        assert!(EngineError::Diverged {
            iteration: 9,
            ratio: 12.5
        }
        .to_string()
        .contains("12.5"));
        assert!(EngineError::DmaFailed { iteration: 3 }
            .to_string()
            .contains("DMA"));
        assert!(EngineError::CorruptionDetected { iteration: 2 }
            .to_string()
            .contains("parity"));
        let e = EngineError::RetriesExhausted {
            attempts: 4,
            checkpoint_iteration: 64,
        };
        assert!(e.to_string().contains("4 rollback"));
        assert!(e.to_string().contains("iteration 64"));
        assert!(EngineError::Cancelled { iteration: 5 }
            .to_string()
            .contains("cancelled"));
        assert!(EngineError::DeadlineExceeded { iteration: 6 }
            .to_string()
            .contains("deadline"));
        assert!(EngineError::Stalled { iteration: 8 }
            .to_string()
            .contains("iteration 8"));
    }

    /// An engine whose norm turns NaN at a chosen iteration.
    struct Poisoned {
        iterations: usize,
        nan_at: usize,
    }
    impl SolveEngine for Poisoned {
        fn step(&mut self) -> StepOutcome {
            self.iterations += 1;
            if self.iterations >= self.nan_at {
                StepOutcome::clean(f64::NAN)
            } else {
                StepOutcome::clean(1.0 / self.iterations as f64)
            }
        }
        fn iterations(&self) -> usize {
            self.iterations
        }
    }

    #[test]
    fn nan_without_policy_is_a_structured_error_not_a_spin() {
        // Regression: NaN never satisfies `norm <= tol`, so before the
        // unconditional check a policy-less session looped to the cap.
        let mut session = Session::new(
            Poisoned {
                iterations: 0,
                nan_at: 4,
            },
            StopCondition::tolerance(1e-12, 1_000_000),
        );
        assert_eq!(
            session.run().unwrap_err(),
            EngineError::NonFinite { iteration: 4 }
        );
        assert_eq!(session.engine().iterations(), 4, "failed fast, no spin");
    }

    #[test]
    fn infinity_without_policy_also_errors() {
        struct Inf {
            iterations: usize,
        }
        impl SolveEngine for Inf {
            fn step(&mut self) -> StepOutcome {
                self.iterations += 1;
                StepOutcome::clean(f64::INFINITY)
            }
            fn iterations(&self) -> usize {
                self.iterations
            }
        }
        let mut session = Session::new(Inf { iterations: 0 }, StopCondition::fixed_steps(100));
        assert_eq!(
            session.run().unwrap_err(),
            EngineError::NonFinite { iteration: 1 }
        );
    }

    #[test]
    fn deadline_is_never_overshot() {
        let sp = laplace(16);
        let mut session = Session::new(
            SweepEngine::new(&sp, UpdateMethod::Jacobi),
            StopCondition::tolerance(1e-30, 100_000),
        )
        .with_budget(Budget::deadline(7));
        assert_eq!(
            session.run().unwrap_err(),
            EngineError::DeadlineExceeded { iteration: 7 }
        );
        assert_eq!(session.engine().iterations(), 7, "checked before the step");
    }

    #[test]
    fn deadline_beyond_the_stop_never_fires() {
        let sp = laplace(8);
        let mut session = Session::new(
            SweepEngine::new(&sp, UpdateMethod::Jacobi),
            StopCondition::fixed_steps(5),
        )
        .with_budget(Budget::deadline(1_000));
        assert!(session.run().unwrap());
    }

    #[test]
    fn cancellation_stops_the_run_cooperatively() {
        // The token is triggered before the run even starts: zero steps.
        let sp = laplace(8);
        let token = CancelToken::new();
        token.cancel();
        let mut session = Session::new(
            SweepEngine::new(&sp, UpdateMethod::Jacobi),
            StopCondition::fixed_steps(50),
        )
        .with_budget(Budget::unlimited().with_cancel(token.clone()));
        assert_eq!(
            session.run().unwrap_err(),
            EngineError::Cancelled { iteration: 0 }
        );
        assert!(token.is_cancelled());
        assert_eq!(session.engine().iterations(), 0, "no further work");
    }

    #[test]
    fn mid_run_cancellation_observed_between_steps() {
        // An engine that trips its own token after 3 steps, standing in
        // for an external supervisor.
        struct SelfCancelling {
            iterations: usize,
            token: CancelToken,
        }
        impl SolveEngine for SelfCancelling {
            fn step(&mut self) -> StepOutcome {
                self.iterations += 1;
                if self.iterations == 3 {
                    self.token.cancel();
                }
                StepOutcome::clean(1.0)
            }
            fn iterations(&self) -> usize {
                self.iterations
            }
        }
        let token = CancelToken::new();
        let mut session = Session::new(
            SelfCancelling {
                iterations: 0,
                token: token.clone(),
            },
            StopCondition::fixed_steps(100),
        )
        .with_budget(Budget::unlimited().with_cancel(token));
        assert_eq!(
            session.run().unwrap_err(),
            EngineError::Cancelled { iteration: 3 }
        );
    }

    #[test]
    fn stall_watchdog_flags_a_wedged_engine() {
        struct Wedged {
            iterations: usize,
        }
        impl SolveEngine for Wedged {
            fn step(&mut self) -> StepOutcome {
                self.iterations += 1;
                StepOutcome::clean(0.5) // never changes: no progress
            }
            fn iterations(&self) -> usize {
                self.iterations
            }
        }
        let mut session = Session::new(
            Wedged { iterations: 0 },
            StopCondition::tolerance(1e-9, 10_000),
        )
        .with_budget(Budget::unlimited().with_stall_watchdog(8, 1.0));
        assert_eq!(
            session.run().unwrap_err(),
            EngineError::Stalled { iteration: 9 }
        );
    }

    #[test]
    fn stall_watchdog_passes_a_converging_solve() {
        let sp = laplace(12);
        let mut session = Session::new(
            SweepEngine::new(&sp, UpdateMethod::Jacobi),
            StopCondition::tolerance(1e-8, 50_000),
        )
        .with_budget(Budget::unlimited().with_stall_watchdog(16, 1.0));
        assert!(session.run().unwrap(), "strictly decreasing norms pass");
    }

    #[test]
    fn wall_clock_ceiling_of_zero_fires_immediately() {
        let sp = laplace(8);
        let mut session = Session::new(
            SweepEngine::new(&sp, UpdateMethod::Jacobi),
            StopCondition::fixed_steps(50),
        )
        .with_budget(Budget::unlimited().with_wall_clock(std::time::Duration::ZERO));
        assert!(matches!(
            session.run().unwrap_err(),
            EngineError::DeadlineExceeded { iteration: 0 }
        ));
    }

    #[test]
    fn budget_constructors_compose() {
        assert!(Budget::unlimited().is_unlimited());
        assert!(Budget::default().is_unlimited());
        let b = Budget::deadline(10)
            .with_cancel(CancelToken::new())
            .with_stall_watchdog(4, 0.99);
        assert!(!b.is_unlimited());
        assert_eq!(b.deadline_iterations, Some(10));
        assert_eq!(b.stall_window, 4);
    }

    fn grids_bit_equal<T: Scalar>(a: &Grid2D<T>, b: &Grid2D<T>) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| x.to_bits_u64() == y.to_bits_u64())
    }

    #[test]
    fn export_restore_resumes_bit_identically() {
        // Every method, including the wave equation's prev-carrying
        // update: stop at k, export, restore into a *fresh* engine,
        // finish — the final field must match an uninterrupted run bit
        // for bit.
        let wave = crate::workload::benchmark_problem::<f64>(crate::pde::PdeKind::Wave, 12, 20)
            .expect("benchmark problem");
        let laplace = laplace(12);
        for sp in [&laplace, &wave] {
            for method in [
                UpdateMethod::Jacobi,
                UpdateMethod::Hybrid,
                UpdateMethod::GaussSeidel,
                UpdateMethod::Checkerboard,
                UpdateMethod::Sor { omega: 1.5 },
            ] {
                let mut full = SweepEngine::new(sp, method);
                for _ in 0..20 {
                    full.step();
                }

                let mut head = SweepEngine::new(sp, method);
                for _ in 0..7 {
                    head.step();
                }
                let image = head.export_state().expect("sweep engines export");
                assert_eq!(image.iterations, 7);
                let mut tail = SweepEngine::new(sp, method);
                assert!(tail.restore_state(&image), "restore on the same problem");
                assert_eq!(tail.iterations(), 7);
                for _ in 0..13 {
                    tail.step();
                }
                assert!(
                    grids_bit_equal(full.solution(), tail.solution()),
                    "{method:?} resumed run diverged"
                );
            }
        }
    }

    #[test]
    fn parallel_engine_export_restore_matches_serial() {
        let sp = laplace(14);
        for method in [UpdateMethod::Jacobi, UpdateMethod::Checkerboard] {
            let mut serial = SweepEngine::new(&sp, method);
            for _ in 0..16 {
                serial.step();
            }
            let mut head = ParallelSweepEngine::new(&sp, method, 3);
            for _ in 0..5 {
                head.step();
            }
            let image = head.export_state().expect("parallel engines export");
            let mut tail = ParallelSweepEngine::new(&sp, method, 3);
            assert!(tail.restore_state(&image));
            for _ in 0..11 {
                tail.step();
            }
            assert!(
                grids_bit_equal(serial.solution(), tail.solution()),
                "{method:?} parallel resume diverged from serial"
            );
        }
    }

    #[test]
    fn restore_rejects_mismatched_images() {
        let sp = laplace(8);
        let other = laplace(10);
        let image = SweepEngine::new(&other, UpdateMethod::Jacobi)
            .export_state()
            .unwrap();
        let mut engine = SweepEngine::new(&sp, UpdateMethod::Jacobi);
        assert!(!engine.restore_state(&image), "wrong shape must refuse");
        assert_eq!(engine.iterations(), 0);

        let mut f32_image = SweepEngine::new(&sp, UpdateMethod::Jacobi)
            .export_state()
            .unwrap();
        f32_image.scalar_bytes = 4;
        assert!(!engine.restore_state(&f32_image), "wrong width must refuse");

        // The image helpers mirror the same checks.
        assert!(image.cur_grid::<f64>().is_some());
        assert!(image.cur_grid::<f32>().is_none());
        assert!(image.prev_grid::<f64>().is_none(), "laplace has no prev");
    }

    #[test]
    fn state_sink_fires_on_schedule_and_images_resume() {
        let sp = laplace(10);
        let mut images: Vec<EngineStateImage> = Vec::new();
        let mut session = Session::new(
            SweepEngine::new(&sp, UpdateMethod::Jacobi),
            StopCondition::fixed_steps(10),
        )
        .with_state_sink(4, |img| images.push(img.clone()));
        session.run().unwrap();
        let full = session.into_parts().0.into_solution();
        assert_eq!(
            images.iter().map(|i| i.iterations).collect::<Vec<_>>(),
            vec![4, 8],
            "sink fires on absolute multiples of the interval"
        );

        // Resuming from the last sink image reproduces the full run.
        let mut tail = SweepEngine::new(&sp, UpdateMethod::Jacobi);
        assert!(tail.restore_state(&images[1]));
        let mut resumed = Session::new(&mut tail, StopCondition::fixed_steps(10));
        resumed.run().unwrap();
        assert_eq!(resumed.steps_executed(), 2, "only the remaining steps run");
        drop(resumed);
        assert!(grids_bit_equal(&full, tail.solution()));
    }
}
