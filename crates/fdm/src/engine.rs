//! The unified solve-engine layer.
//!
//! Every backend in the FDMAX stack — the software sweeps in
//! [`crate::solver`], multigrid, the hardware-semantics reference, the
//! cycle-accurate simulator, the analytic performance estimator and the
//! baseline platform models — iterates the same outer loop: run one step,
//! record the update norm, evaluate the [`StopCondition`], optionally
//! detect trouble and roll back to a checkpoint. This module factors that
//! loop out once:
//!
//! * [`SolveEngine`] is the backend contract: one [`step`](SolveEngine::step)
//!   advances the solve by one iteration (or one analytic macro-step) and
//!   reports an optional update norm plus any hardware fault;
//! * [`Session`] is the single generic driver owning stop-condition
//!   evaluation, the [`ResidualHistory`], divergence detection, and
//!   checkpoint/rollback per [`ResiliencePolicy`];
//! * [`SweepEngine`] adapts the software relaxation sweeps to the trait.
//!
//! Hardware-side engines (cycle-accurate simulator, reference semantics,
//! analytic estimator) live in the `fdmax` core crate and implement the
//! same trait.

use crate::convergence::{Divergence, ResidualHistory, StopCondition};
use crate::grid::Grid2D;
use crate::pde::{OffsetField, StencilProblem};
use crate::precision::Scalar;
use crate::solver::{
    sweep_checkerboard, sweep_gauss_seidel, sweep_hybrid, sweep_jacobi, sweep_sor, UpdateMethod,
};
use core::fmt;

/// A hardware fault surfaced by one engine step, for the driver's
/// recovery machinery to act on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepFault {
    /// Parity flagged corrupted buffer data during the step.
    CorruptionDetected,
    /// A DMA block transfer failed permanently during the step.
    DmaFailed,
}

/// What one [`SolveEngine::step`] produced.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepOutcome {
    /// The update norm `||U^{k+1} - U^k||_2` of the completed iteration,
    /// or `None` for analytic engines that advance without computing a
    /// field (nothing is recorded in the history then).
    pub norm: Option<f64>,
    /// A fault the step detected, if any.
    pub fault: Option<StepFault>,
}

impl StepOutcome {
    /// A fault-free step that produced an update norm.
    pub fn clean(norm: f64) -> Self {
        StepOutcome {
            norm: Some(norm),
            fault: None,
        }
    }

    /// A fault-free step with no norm (analytic macro-steps).
    pub fn silent() -> Self {
        StepOutcome {
            norm: None,
            fault: None,
        }
    }
}

/// Why a resilient [`Session`] gave up.
///
/// The `fdmax` core crate converts these into its `FdmaxError` surface.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EngineError {
    /// The update norm became NaN or infinite and no recovery was
    /// possible (or allowed).
    NonFinite {
        /// Iteration (1-based) whose norm went non-finite.
        iteration: usize,
    },
    /// The update norm grew persistently and no recovery was possible.
    Diverged {
        /// Iteration at the end of the growth window.
        iteration: usize,
        /// Growth ratio over the detection window.
        ratio: f64,
    },
    /// Parity flagged corrupted buffer data and no rollback was possible
    /// (or allowed).
    CorruptionDetected {
        /// Iteration (1-based) during which parity fired.
        iteration: usize,
    },
    /// A DMA block transfer failed permanently (retry budget exhausted).
    DmaFailed {
        /// Iteration during which the transfer gave up.
        iteration: usize,
    },
    /// Rollback-and-retry was attempted `attempts` times without a clean
    /// run.
    RetriesExhausted {
        /// Recovery attempts performed.
        attempts: u32,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NonFinite { iteration } => {
                write!(f, "update norm became non-finite at iteration {iteration}")
            }
            EngineError::Diverged { iteration, ratio } => write!(
                f,
                "solve diverged (norm grew {ratio:.2}x) by iteration {iteration}"
            ),
            EngineError::CorruptionDetected { iteration } => write!(
                f,
                "parity detected buffer corruption at iteration {iteration}"
            ),
            EngineError::DmaFailed { iteration } => {
                write!(
                    f,
                    "DMA transfer failed permanently at iteration {iteration}"
                )
            }
            EngineError::RetriesExhausted { attempts } => {
                write!(f, "recovery failed after {attempts} rollback attempts")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// How a resilient [`Session`] checkpoints, detects trouble and recovers.
///
/// The two `allow_*` flags are consumed by orchestration layers *above*
/// the session (the accelerator's method/software fallback chain); the
/// session itself acts on the checkpoint/retry/divergence knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResiliencePolicy {
    /// Take a checkpoint every this many iterations (0 disables
    /// checkpointing, so any detected fault is fatal).
    pub checkpoint_interval: usize,
    /// Rollback-and-retry attempts *per checkpoint window* before
    /// escalating to a fallback (or giving up); reaching the next
    /// checkpoint renews the allowance.
    pub max_retries: u32,
    /// Window for residual-growth detection (0 disables growth checks;
    /// NaN/Inf are always checked).
    pub divergence_window: usize,
    /// Growth over the window that counts as divergence.
    pub divergence_factor: f64,
    /// Allow Hybrid to fall back to the Jacobi datapath once retries are
    /// exhausted.
    pub allow_method_fallback: bool,
    /// Allow the final fallback to the `fdm` software solver.
    pub allow_software_fallback: bool,
}

impl ResiliencePolicy {
    /// No checkpoints, no retries, no fallbacks: the first detected
    /// fault is a structured error.
    pub fn strict() -> Self {
        ResiliencePolicy {
            checkpoint_interval: 0,
            max_retries: 0,
            divergence_window: 0,
            divergence_factor: 1e3,
            allow_method_fallback: false,
            allow_software_fallback: false,
        }
    }
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            checkpoint_interval: 64,
            max_retries: 8,
            divergence_window: 32,
            divergence_factor: 1e3,
            allow_method_fallback: true,
            allow_software_fallback: true,
        }
    }
}

/// One solve backend: anything that can advance a solve by one step.
///
/// The driver ([`Session`]) calls [`begin`](SolveEngine::begin) once,
/// then [`step`](SolveEngine::step) until the stop condition is
/// satisfied (rolling back via [`rollback`](SolveEngine::rollback) when
/// the policy demands it), then [`finish`](SolveEngine::finish) once on
/// a clean exit. Engines that model I/O charge their boot/drain traffic
/// in `begin`/`finish`.
pub trait SolveEngine {
    /// Advances the solve by one iteration (or one analytic macro-step).
    fn step(&mut self) -> StepOutcome;

    /// Completed iterations so far.
    fn iterations(&self) -> usize;

    /// Whether [`checkpoint`](SolveEngine::checkpoint)/
    /// [`rollback`](SolveEngine::rollback) actually snapshot state.
    fn supports_checkpoint(&self) -> bool {
        false
    }

    /// Snapshots the solve state for a later rollback.
    fn checkpoint(&mut self) {}

    /// Restores the last checkpoint; returns `false` when none exists.
    fn rollback(&mut self) -> bool {
        false
    }

    /// One-time setup before the first step (e.g. boot DMA traffic).
    fn begin(&mut self) {}

    /// One-time teardown after a clean run (e.g. drain DMA traffic).
    fn finish(&mut self) {}
}

impl<E: SolveEngine + ?Sized> SolveEngine for &mut E {
    fn step(&mut self) -> StepOutcome {
        (**self).step()
    }
    fn iterations(&self) -> usize {
        (**self).iterations()
    }
    fn supports_checkpoint(&self) -> bool {
        (**self).supports_checkpoint()
    }
    fn checkpoint(&mut self) {
        (**self).checkpoint();
    }
    fn rollback(&mut self) -> bool {
        (**self).rollback()
    }
    fn begin(&mut self) {
        (**self).begin();
    }
    fn finish(&mut self) {
        (**self).finish();
    }
}

/// The single generic solve driver.
///
/// A session owns the outer iteration loop every backend used to
/// hand-roll: stop-condition evaluation, residual-history bookkeeping,
/// and — when a [`ResiliencePolicy`] is attached — divergence detection
/// plus checkpoint/rollback/retry.
///
/// # Example
///
/// ```
/// use fdm::prelude::*;
/// use fdm::engine::{Session, SweepEngine};
///
/// let problem = LaplaceProblem::builder(32, 32)
///     .boundary(DirichletBoundary::hot_top(1.0))
///     .build()
///     .expect("valid problem")
///     .discretize::<f64>();
/// let engine = SweepEngine::new(&problem, UpdateMethod::Jacobi);
/// let mut session = Session::new(engine, StopCondition::tolerance(1e-6, 100_000));
/// let met = session.run().expect("no policy, cannot fail");
/// assert!(met);
/// assert!(!session.history().is_empty());
/// ```
#[derive(Debug)]
pub struct Session<E: SolveEngine> {
    engine: E,
    stop: StopCondition,
    policy: Option<ResiliencePolicy>,
    history: ResidualHistory,
}

impl<E: SolveEngine> Session<E> {
    /// A plain session: no checkpoints, no divergence checks, never
    /// fails.
    pub fn new(engine: E, stop: StopCondition) -> Self {
        Session {
            engine,
            stop,
            policy: None,
            history: ResidualHistory::new(),
        }
    }

    /// Attaches a resilience policy: the driver will checkpoint, watch
    /// for divergence/faults and roll back per the policy.
    pub fn with_policy(mut self, policy: ResiliencePolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// The engine being driven.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Mutable access to the engine being driven.
    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// Per-iteration update norms recorded so far.
    pub fn history(&self) -> &ResidualHistory {
        &self.history
    }

    /// Consumes the session, returning the engine and the recorded
    /// history.
    pub fn into_parts(self) -> (E, ResidualHistory) {
        (self.engine, self.history)
    }

    /// Drives the engine until the stop condition is satisfied.
    ///
    /// Returns `Ok(met)` — whether the stop condition's goal was met
    /// (tolerance reached, or all fixed steps completed). Without a
    /// policy this never returns `Err`.
    ///
    /// # Errors
    ///
    /// With a policy attached, the first unrecoverable trouble: a fault
    /// or divergence with no checkpoint to roll back to
    /// ([`EngineError::NonFinite`], [`EngineError::Diverged`],
    /// [`EngineError::CorruptionDetected`], [`EngineError::DmaFailed`]),
    /// or [`EngineError::RetriesExhausted`] once the retry budget runs
    /// out. On `Err` the engine's `finish` hook is *not* invoked (a
    /// failed solve does not drain its solution).
    pub fn run(&mut self) -> Result<bool, EngineError> {
        self.engine.begin();

        let max = self.stop.max_iterations();
        let mut retries = 0u32;
        let mut has_checkpoint = false;
        let mut ckpt_history_len = self.history.len();
        if let Some(p) = &self.policy {
            if p.checkpoint_interval > 0 && self.engine.supports_checkpoint() {
                self.engine.checkpoint();
                has_checkpoint = true;
                ckpt_history_len = self.history.len();
            }
        }

        let mut met = false;
        while self.engine.iterations() < max {
            let out = self.engine.step();
            if let Some(norm) = out.norm {
                self.history.push(norm);
            }
            let iteration = self.engine.iterations();

            if let Some(p) = &self.policy {
                let trouble = match out.fault {
                    Some(StepFault::DmaFailed) => Some(EngineError::DmaFailed { iteration }),
                    Some(StepFault::CorruptionDetected) => {
                        Some(EngineError::CorruptionDetected { iteration })
                    }
                    None => match self
                        .history
                        .detect_divergence(p.divergence_window, p.divergence_factor)
                    {
                        Some(Divergence::NonFinite { iteration }) => {
                            Some(EngineError::NonFinite { iteration })
                        }
                        Some(Divergence::Growing { iteration, ratio }) => {
                            Some(EngineError::Diverged { iteration, ratio })
                        }
                        None => None,
                    },
                };
                if let Some(err) = trouble {
                    if !has_checkpoint {
                        return Err(err);
                    }
                    if retries >= p.max_retries {
                        return Err(EngineError::RetriesExhausted { attempts: retries });
                    }
                    retries += 1;
                    self.engine.rollback();
                    self.history.truncate(ckpt_history_len);
                    continue;
                }
            }

            let norm = out.norm.unwrap_or(f64::INFINITY);
            if self.stop.should_stop(iteration, norm) {
                met = self.stop.is_met(iteration, norm);
                break;
            }

            if let Some(p) = &self.policy {
                if p.checkpoint_interval > 0
                    && self.engine.supports_checkpoint()
                    && iteration.is_multiple_of(p.checkpoint_interval)
                {
                    self.engine.checkpoint();
                    has_checkpoint = true;
                    ckpt_history_len = self.history.len();
                    // The budget bounds retries per checkpoint window:
                    // making it this far means real progress, so the
                    // allowance renews.
                    retries = 0;
                }
            }
        }
        if self.engine.iterations() == max {
            met = self
                .stop
                .is_met(max, self.history.last().unwrap_or(f64::INFINITY));
        }

        self.engine.finish();
        Ok(met)
    }
}

/// A snapshot of a [`SweepEngine`]'s rotating buffers.
#[derive(Clone, Debug)]
struct SweepCheckpoint<T> {
    cur: Grid2D<T>,
    next: Grid2D<T>,
    prev: Option<Grid2D<T>>,
    iterations: usize,
}

/// The software relaxation sweeps as a [`SolveEngine`].
///
/// One step is one sweep of the chosen [`UpdateMethod`] with the
/// canonical stencil evaluation order (bit-exact with the hardware
/// model's f32 arithmetic). Buffers rotate by pointer swap; the only
/// per-iteration copy is the `prev` snapshot the wave equation's
/// in-place methods need, kept in a reused scratch buffer.
#[derive(Debug)]
pub struct SweepEngine<'p, T: Scalar> {
    problem: &'p StencilProblem<T>,
    method: UpdateMethod,
    cur: Grid2D<T>,
    next: Grid2D<T>,
    prev: Option<Grid2D<T>>,
    scratch: Option<Grid2D<T>>,
    uses_prev: bool,
    iterations: usize,
    saved: Option<SweepCheckpoint<T>>,
}

impl<'p, T: Scalar> SweepEngine<'p, T> {
    /// Prepares a sweep engine on `problem`.
    ///
    /// # Panics
    ///
    /// Panics when an SOR factor lies outside `(0, 2)`, or when a
    /// `ScaledPrevField` offset (wave equation) comes without
    /// `prev_initial`.
    pub fn new(problem: &'p StencilProblem<T>, method: UpdateMethod) -> Self {
        if let UpdateMethod::Sor { omega } = method {
            assert!(
                omega > 0.0 && omega < 2.0,
                "SOR requires omega in (0, 2), got {omega}"
            );
        }
        let cur = problem.initial.clone();
        let next = cur.clone();
        let prev = problem.prev_initial.clone();
        let uses_prev = matches!(problem.offset, OffsetField::ScaledPrevField { .. });
        if uses_prev {
            assert!(
                prev.is_some(),
                "a ScaledPrevField offset requires prev_initial"
            );
        }
        SweepEngine {
            problem,
            method,
            cur,
            next,
            prev,
            scratch: None,
            uses_prev,
            iterations: 0,
            saved: None,
        }
    }

    /// The current field `U^k`.
    pub fn solution(&self) -> &Grid2D<T> {
        &self.cur
    }

    /// Consumes the engine, returning the final field.
    pub fn into_solution(self) -> Grid2D<T> {
        self.cur
    }

    /// The update method being swept.
    pub fn method(&self) -> UpdateMethod {
        self.method
    }
}

impl<T: Scalar> SolveEngine for SweepEngine<'_, T> {
    fn step(&mut self) -> StepOutcome {
        let problem = self.problem;
        let diff2 = match self.method {
            UpdateMethod::Jacobi => sweep_jacobi(
                &problem.stencil,
                &problem.offset,
                &self.cur,
                self.prev.as_ref(),
                &mut self.next,
            ),
            UpdateMethod::Hybrid => sweep_hybrid(
                &problem.stencil,
                &problem.offset,
                &self.cur,
                self.prev.as_ref(),
                &mut self.next,
            ),
            UpdateMethod::GaussSeidel | UpdateMethod::Checkerboard | UpdateMethod::Sor { .. } => {
                // In-place sweeps: when the wave history is live, keep the
                // pre-sweep field in a reused scratch buffer (no
                // per-iteration allocation) and rotate it into `prev`.
                if self.uses_prev {
                    match &mut self.scratch {
                        Some(s) => s.as_mut_slice().copy_from_slice(self.cur.as_slice()),
                        None => self.scratch = Some(self.cur.clone()),
                    }
                }
                let d = match self.method {
                    UpdateMethod::GaussSeidel => sweep_gauss_seidel(
                        &problem.stencil,
                        &problem.offset,
                        &mut self.cur,
                        self.prev.as_ref(),
                    ),
                    UpdateMethod::Checkerboard => sweep_checkerboard(
                        &problem.stencil,
                        &problem.offset,
                        &mut self.cur,
                        self.prev.as_ref(),
                    ),
                    UpdateMethod::Sor { omega } => sweep_sor(
                        &problem.stencil,
                        &problem.offset,
                        &mut self.cur,
                        self.prev.as_ref(),
                        omega,
                    ),
                    _ => unreachable!("outer match restricts to in-place methods"),
                };
                if self.uses_prev {
                    core::mem::swap(
                        self.prev.as_mut().expect("checked in new"),
                        self.scratch.as_mut().expect("filled above"),
                    );
                }
                d
            }
        };

        // Double-buffered methods rotate cur/next (and prev for the wave
        // equation); in-place methods already updated `cur` above.
        if matches!(self.method, UpdateMethod::Jacobi | UpdateMethod::Hybrid) {
            if self.uses_prev {
                core::mem::swap(&mut self.cur, self.prev.as_mut().expect("checked in new"));
            }
            core::mem::swap(&mut self.cur, &mut self.next);
        }

        self.iterations += 1;
        StepOutcome::clean(diff2.sqrt())
    }

    fn iterations(&self) -> usize {
        self.iterations
    }

    fn supports_checkpoint(&self) -> bool {
        true
    }

    fn checkpoint(&mut self) {
        self.saved = Some(SweepCheckpoint {
            cur: self.cur.clone(),
            next: self.next.clone(),
            prev: self.prev.clone(),
            iterations: self.iterations,
        });
    }

    fn rollback(&mut self) -> bool {
        match &self.saved {
            Some(ckpt) => {
                self.cur.as_mut_slice().copy_from_slice(ckpt.cur.as_slice());
                self.next
                    .as_mut_slice()
                    .copy_from_slice(ckpt.next.as_slice());
                match (&mut self.prev, &ckpt.prev) {
                    (Some(dst), Some(src)) => dst.as_mut_slice().copy_from_slice(src.as_slice()),
                    (dst, src) => *dst = src.clone(),
                }
                self.iterations = ckpt.iterations;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::DirichletBoundary;
    use crate::pde::LaplaceProblem;
    use crate::solver::solve;

    fn laplace(n: usize) -> StencilProblem<f64> {
        LaplaceProblem::builder(n, n)
            .boundary(DirichletBoundary::hot_top(1.0))
            .build()
            .unwrap()
            .discretize::<f64>()
    }

    #[test]
    fn session_matches_the_solve_entry_point() {
        let sp = laplace(16);
        let stop = StopCondition::tolerance(1e-8, 50_000);
        let mut session = Session::new(SweepEngine::new(&sp, UpdateMethod::Jacobi), stop);
        let met = session.run().unwrap();
        let sw = solve(&sp, UpdateMethod::Jacobi, &stop);
        assert_eq!(met, sw.converged());
        let (engine, history) = session.into_parts();
        assert_eq!(engine.iterations(), sw.iterations());
        assert_eq!(engine.solution(), sw.solution());
        assert_eq!(history.as_slice(), sw.history().as_slice());
    }

    #[test]
    fn zero_steps_is_trivially_met_for_fixed_mode_only() {
        let sp = laplace(8);
        let mut fixed = Session::new(
            SweepEngine::new(&sp, UpdateMethod::Jacobi),
            StopCondition::fixed_steps(0),
        );
        assert!(fixed.run().unwrap());
        let mut tol = Session::new(
            SweepEngine::new(&sp, UpdateMethod::Jacobi),
            StopCondition::tolerance(1e-8, 0),
        );
        assert!(!tol.run().unwrap());
    }

    #[test]
    fn borrowed_engines_drive_too() {
        let sp = laplace(8);
        let mut engine = SweepEngine::new(&sp, UpdateMethod::Jacobi);
        let mut session = Session::new(&mut engine, StopCondition::fixed_steps(3));
        assert!(session.run().unwrap());
        drop(session);
        assert_eq!(engine.iterations(), 3);
    }

    #[test]
    fn policy_detects_divergence_without_checkpoints() {
        // An engine that fabricates a growing norm series.
        struct Exploding {
            iterations: usize,
        }
        impl SolveEngine for Exploding {
            fn step(&mut self) -> StepOutcome {
                self.iterations += 1;
                StepOutcome::clean(10f64.powi(self.iterations as i32))
            }
            fn iterations(&self) -> usize {
                self.iterations
            }
        }
        let mut session = Session::new(Exploding { iterations: 0 }, StopCondition::fixed_steps(50))
            .with_policy(ResiliencePolicy {
                checkpoint_interval: 0,
                divergence_window: 2,
                divergence_factor: 10.0,
                ..ResiliencePolicy::default()
            });
        let err = session.run().unwrap_err();
        assert!(matches!(err, EngineError::Diverged { .. }));
    }

    #[test]
    fn retries_exhaust_into_a_structured_error() {
        // Every step reports corruption; rollback never helps.
        struct AlwaysCorrupt {
            iterations: usize,
        }
        impl SolveEngine for AlwaysCorrupt {
            fn step(&mut self) -> StepOutcome {
                self.iterations += 1;
                StepOutcome {
                    norm: Some(1.0),
                    fault: Some(StepFault::CorruptionDetected),
                }
            }
            fn iterations(&self) -> usize {
                self.iterations
            }
            fn supports_checkpoint(&self) -> bool {
                true
            }
            fn rollback(&mut self) -> bool {
                self.iterations -= 1;
                true
            }
        }
        let mut session = Session::new(
            AlwaysCorrupt { iterations: 0 },
            StopCondition::fixed_steps(10),
        )
        .with_policy(ResiliencePolicy {
            max_retries: 3,
            ..ResiliencePolicy::default()
        });
        assert_eq!(
            session.run().unwrap_err(),
            EngineError::RetriesExhausted { attempts: 3 }
        );
    }

    #[test]
    fn sweep_engine_checkpoint_round_trips() {
        let sp = laplace(12);
        let mut engine = SweepEngine::new(&sp, UpdateMethod::Jacobi);
        for _ in 0..3 {
            engine.step();
        }
        engine.checkpoint();
        let at_ckpt = engine.solution().clone();
        for _ in 0..4 {
            engine.step();
        }
        assert_ne!(engine.solution(), &at_ckpt);
        assert!(engine.rollback());
        assert_eq!(engine.solution(), &at_ckpt);
        assert_eq!(engine.iterations(), 3);
    }

    #[test]
    fn engine_errors_display() {
        assert!(EngineError::NonFinite { iteration: 7 }
            .to_string()
            .contains("iteration 7"));
        assert!(EngineError::Diverged {
            iteration: 9,
            ratio: 12.5
        }
        .to_string()
        .contains("12.5"));
        assert!(EngineError::DmaFailed { iteration: 3 }
            .to_string()
            .contains("DMA"));
        assert!(EngineError::CorruptionDetected { iteration: 2 }
            .to_string()
            .contains("parity"));
        assert!(EngineError::RetriesExhausted { attempts: 4 }
            .to_string()
            .contains("4 rollback"));
    }
}
