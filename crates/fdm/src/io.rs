//! Grid import/export: CSV for analysis pipelines, PGM for quick visual
//! inspection of solution fields, and a checksummed binary snapshot
//! format for durability (bit-exact for every value, NaN payloads
//! included).
//!
//! # Which format preserves what
//!
//! * **CSV** (`write_csv`/`read_csv`) uses Rust's shortest-exact float
//!   formatting, so every *finite* value — subnormals, negative zero,
//!   extreme exponents — round-trips bit-exactly. NaN sign and payload
//!   do **not** survive (everything prints as `NaN`), and there is no
//!   integrity check, so a truncated or hand-edited file can parse as a
//!   different grid.
//! * **Snapshot** (`write_snapshot`/`read_snapshot`) stores raw IEEE 754
//!   bit patterns behind a versioned header and a trailing CRC-32:
//!   lossless for *all* values and torn/corrupt files are rejected
//!   rather than silently misread. Durability (checkpoint persistence
//!   and crash recovery) always goes through this format.

use crate::grid::Grid2D;
use crate::precision::Scalar;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// CRC-32 lookup table (reflected polynomial 0xEDB88320, the zlib/PNG
/// variant), generated at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (ISO-HDLC / zlib) of `data`.
///
/// Used to checksum grid snapshots and, by the service layer, journal
/// records. Matches the widely deployed `crc32` everyone can verify
/// with external tooling.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Magic bytes opening every binary grid snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"FDMXSNAP";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u16 = 1;
/// Fixed-size snapshot header length in bytes: magic, version, scalar
/// tag, reserved byte, rows, cols.
pub const SNAPSHOT_HEADER_BYTES: usize = 8 + 2 + 1 + 1 + 8 + 8;

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Serializes a grid to the versioned binary snapshot format.
///
/// Layout (all integers little-endian):
///
/// ```text
/// magic "FDMXSNAP" | version u16 | scalar-width u8 | reserved u8 |
/// rows u64 | cols u64 | rows*cols elements (raw bits, T::BYTES each) |
/// crc32 u32 over everything before it
/// ```
///
/// The element payload is the raw IEEE 754 bit pattern of each value,
/// so the round trip through [`read_snapshot`] is bit-exact for every
/// representable value, including NaN signs and payloads.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_snapshot<T: Scalar, W: Write>(grid: &Grid2D<T>, writer: W) -> io::Result<()> {
    let mut buf = Vec::with_capacity(SNAPSHOT_HEADER_BYTES + grid.as_slice().len() * T::BYTES + 4);
    buf.extend_from_slice(&SNAPSHOT_MAGIC);
    buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    buf.push(T::BYTES as u8);
    buf.push(0);
    buf.extend_from_slice(&(grid.rows() as u64).to_le_bytes());
    buf.extend_from_slice(&(grid.cols() as u64).to_le_bytes());
    for v in grid.as_slice() {
        buf.extend_from_slice(&v.to_bits_u64().to_le_bytes()[..T::BYTES]);
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    let mut w = BufWriter::new(writer);
    w.write_all(&buf)?;
    w.flush()
}

/// Deserializes a grid written by [`write_snapshot`].
///
/// # Errors
///
/// Returns `InvalidData` when the header is malformed, the scalar width
/// does not match `T`, the payload is truncated, or the trailing CRC
/// disagrees with the content; propagates I/O errors from the reader.
pub fn read_snapshot<T: Scalar, R: Read>(reader: R) -> io::Result<Grid2D<T>> {
    let mut buf = Vec::new();
    BufReader::new(reader).read_to_end(&mut buf)?;
    if buf.len() < SNAPSHOT_HEADER_BYTES + 4 {
        return Err(bad_data(format!("snapshot too short: {} bytes", buf.len())));
    }
    let (body, crc_bytes) = buf.split_at(buf.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte split"));
    let actual = crc32(body);
    if stored != actual {
        return Err(bad_data(format!(
            "snapshot checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    if body[..8] != SNAPSHOT_MAGIC {
        return Err(bad_data("snapshot magic mismatch"));
    }
    let version = u16::from_le_bytes([body[8], body[9]]);
    if version != SNAPSHOT_VERSION {
        return Err(bad_data(format!("unsupported snapshot version {version}")));
    }
    let width = body[10] as usize;
    if width != T::BYTES {
        return Err(bad_data(format!(
            "snapshot holds {width}-byte scalars, expected {}-byte {}",
            T::BYTES,
            T::NAME
        )));
    }
    let rows = u64::from_le_bytes(body[12..20].try_into().expect("8 bytes")) as usize;
    let cols = u64::from_le_bytes(body[20..28].try_into().expect("8 bytes")) as usize;
    let payload = &body[SNAPSHOT_HEADER_BYTES..];
    let expected = rows
        .checked_mul(cols)
        .and_then(|n| n.checked_mul(T::BYTES))
        .ok_or_else(|| bad_data("snapshot dimensions overflow"))?;
    if payload.len() != expected {
        return Err(bad_data(format!(
            "snapshot payload is {} bytes, header promises {expected}",
            payload.len()
        )));
    }
    let mut data = Vec::with_capacity(rows * cols);
    for chunk in payload.chunks_exact(T::BYTES) {
        let mut le = [0u8; 8];
        le[..T::BYTES].copy_from_slice(chunk);
        data.push(T::from_bits_u64(u64::from_le_bytes(le)));
    }
    Grid2D::from_vec(rows, cols, data).map_err(|_| bad_data("inconsistent snapshot shape"))
}

/// Writes a grid as comma-separated rows with full round-trip precision.
///
/// Values are written via Rust's shortest-exact float formatting, so
/// `read_csv` recovers them bit-exactly (after the precision's own
/// rounding).
///
/// The writer can be anything `Write`; pass `&mut file` to keep using the
/// file afterwards.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_csv<T: Scalar, W: Write>(grid: &Grid2D<T>, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for i in 0..grid.rows() {
        let row = grid.row(i);
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                w.write_all(b",")?;
            }
            write!(w, "{}", v.to_f64())?;
        }
        w.write_all(b"\n")?;
    }
    w.flush()
}

/// Reads a grid from comma-separated rows.
///
/// # Errors
///
/// Returns `InvalidData` for ragged rows, unparsable numbers or empty
/// input; propagates I/O errors from the reader.
pub fn read_csv<T: Scalar, R: Read>(reader: R) -> io::Result<Grid2D<T>> {
    let r = BufReader::new(reader);
    let mut data: Vec<T> = Vec::new();
    let mut cols: Option<usize> = None;
    let mut rows = 0usize;
    for line in r.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut count = 0usize;
        for field in line.split(',') {
            let v: f64 = field.trim().parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad number {field:?}: {e}"),
                )
            })?;
            data.push(T::from_f64(v));
            count += 1;
        }
        match cols {
            None => cols = Some(count),
            Some(c) if c != count => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("ragged csv: row {rows} has {count} fields, expected {c}"),
                ));
            }
            _ => {}
        }
        rows += 1;
    }
    let cols = cols.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty csv"))?;
    Grid2D::from_vec(rows, cols, data)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "inconsistent csv shape"))
}

/// Writes a grid as a binary PGM (P5) image, mapping `[lo, hi]` linearly
/// to `[0, 255]` (values outside the range saturate).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Panics
///
/// Panics if `lo >= hi` or either bound is not finite.
pub fn write_pgm<T: Scalar, W: Write>(
    grid: &Grid2D<T>,
    writer: W,
    lo: f64,
    hi: f64,
) -> io::Result<()> {
    assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad pgm range");
    let mut w = BufWriter::new(writer);
    writeln!(w, "P5")?;
    writeln!(w, "{} {}", grid.cols(), grid.rows())?;
    writeln!(w, "255")?;
    let scale = 255.0 / (hi - lo);
    for i in 0..grid.rows() {
        let bytes: Vec<u8> = grid
            .row(i)
            .iter()
            .map(|v| ((v.to_f64() - lo) * scale).clamp(0.0, 255.0).round() as u8)
            .collect();
        w.write_all(&bytes)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precision::F16;

    fn sample() -> Grid2D<f64> {
        Grid2D::from_fn(3, 4, |i, j| (i as f64 - 1.0) * 0.5 + j as f64 * 0.125)
    }

    #[test]
    fn csv_round_trip_f64() {
        let g = sample();
        let mut buf = Vec::new();
        write_csv(&g, &mut buf).unwrap();
        let back: Grid2D<f64> = read_csv(&buf[..]).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn csv_round_trip_f32_and_f16() {
        let g32: Grid2D<f32> = sample().convert();
        let mut buf = Vec::new();
        write_csv(&g32, &mut buf).unwrap();
        let back: Grid2D<f32> = read_csv(&buf[..]).unwrap();
        assert_eq!(g32, back);

        let g16: Grid2D<F16> = sample().convert();
        let mut buf = Vec::new();
        write_csv(&g16, &mut buf).unwrap();
        let back: Grid2D<F16> = read_csv(&buf[..]).unwrap();
        assert_eq!(g16, back);
    }

    #[test]
    fn csv_rejects_ragged_and_garbage() {
        let err = read_csv::<f64, _>("1,2\n3\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = read_csv::<f64, _>("1,abc\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad number"));
        let err = read_csv::<f64, _>("".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("empty"));
    }

    #[test]
    fn csv_skips_blank_lines_and_trims() {
        let back: Grid2D<f64> = read_csv("1, 2\n\n 3 ,4\n".as_bytes()).unwrap();
        assert_eq!(back.rows(), 2);
        assert_eq!(back[(1, 0)], 3.0);
    }

    #[test]
    fn pgm_header_and_saturation() {
        let g = Grid2D::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
        let mut buf = Vec::new();
        write_pgm(&g, &mut buf, 0.0, 2.0).unwrap();
        let text = String::from_utf8_lossy(&buf[..12]).to_string();
        assert!(text.starts_with("P5\n2 2\n255\n"));
        let pixels = &buf[buf.len() - 4..];
        assert_eq!(pixels[0], 0); // 0.0 -> 0
        assert_eq!(pixels[1], 128); // 1.0 -> 127.5 rounds to 128
        assert_eq!(pixels[2], 255); // 2.0 -> 255
        assert_eq!(pixels[3], 255); // 3.0 saturates
    }

    #[test]
    #[should_panic(expected = "bad pgm range")]
    fn pgm_rejects_inverted_range() {
        let g = Grid2D::<f64>::zeros(2, 2);
        let _ = write_pgm(&g, Vec::new(), 1.0, 0.0);
    }

    // --- binary snapshot format ---

    /// Bit-level grid equality: `PartialEq` treats NaN as unequal, the
    /// snapshot contract is about bit patterns.
    fn assert_bits_eq<T: Scalar>(a: &Grid2D<T>, b: &Grid2D<T>) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits_u64(), y.to_bits_u64(), "bit mismatch");
        }
    }

    /// Adversarial f64 bit patterns: zeros of both signs, subnormals,
    /// extreme exponents, infinities and NaNs with payloads.
    const EXTREME_F64_BITS: [u64; 12] = [
        0x0000_0000_0000_0000, // +0.0
        0x8000_0000_0000_0000, // -0.0
        0x0000_0000_0000_0001, // smallest subnormal
        0x000F_FFFF_FFFF_FFFF, // largest subnormal
        0x0010_0000_0000_0000, // smallest normal
        0x7FEF_FFFF_FFFF_FFFF, // f64::MAX
        0x3FF0_0000_0000_0001, // 1.0 + ulp
        0xBFF0_0000_0000_0000, // -1.0
        0x7FF0_0000_0000_0000, // +inf
        0xFFF0_0000_0000_0000, // -inf
        0x7FF8_0000_0000_BEEF, // quiet NaN with payload
        0xFFF4_0000_0000_0001, // signalling NaN, negative
    ];

    fn extreme_grid_f64() -> Grid2D<f64> {
        Grid2D::from_fn(3, 4, |i, j| f64::from_bits(EXTREME_F64_BITS[i * 4 + j]))
    }

    fn extreme_grid_f32() -> Grid2D<f32> {
        const BITS: [u32; 12] = [
            0x0000_0000,
            0x8000_0000, // -0.0
            0x0000_0001, // smallest subnormal
            0x007F_FFFF, // largest subnormal
            0x0080_0000, // smallest normal
            0x7F7F_FFFF, // f32::MAX
            0x3F80_0001, // 1.0 + ulp
            0xBF80_0000, // -1.0
            0x7F80_0000, // +inf
            0xFF80_0000, // -inf
            0x7FC0_1234, // quiet NaN with payload
            0xFFA0_0001, // signalling NaN, negative
        ];
        Grid2D::from_fn(3, 4, |i, j| f32::from_bits(BITS[i * 4 + j]))
    }

    #[test]
    fn snapshot_round_trip_is_bit_exact_for_every_pattern() {
        let g64 = extreme_grid_f64();
        let mut buf = Vec::new();
        write_snapshot(&g64, &mut buf).unwrap();
        assert_bits_eq(&g64, &read_snapshot::<f64, _>(&buf[..]).unwrap());

        let g32 = extreme_grid_f32();
        let mut buf = Vec::new();
        write_snapshot(&g32, &mut buf).unwrap();
        assert_bits_eq(&g32, &read_snapshot::<f32, _>(&buf[..]).unwrap());

        // Exhaustive over all 65536 f16 bit patterns, NaN space included.
        let g16 = Grid2D::from_fn(256, 256, |i, j| F16::from_bits((i * 256 + j) as u16));
        let mut buf = Vec::new();
        write_snapshot(&g16, &mut buf).unwrap();
        assert_bits_eq(&g16, &read_snapshot::<F16, _>(&buf[..]).unwrap());
    }

    #[test]
    fn snapshot_detects_truncation_and_corruption() {
        let g = sample();
        let mut buf = Vec::new();
        write_snapshot(&g, &mut buf).unwrap();

        // Any truncation point must be rejected, never misread.
        for cut in 0..buf.len() {
            let err = read_snapshot::<f64, _>(&buf[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
        }
        // Any single flipped byte must fail the CRC (or a header check).
        for pos in 0..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 0x40;
            let err = read_snapshot::<f64, _>(&bad[..]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "flip at {pos}");
        }
    }

    #[test]
    fn snapshot_rejects_scalar_width_and_version_mismatch() {
        let g32: Grid2D<f32> = sample().convert();
        let mut buf = Vec::new();
        write_snapshot(&g32, &mut buf).unwrap();
        let err = read_snapshot::<f64, _>(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("expected 8-byte f64"), "{err}");

        // Bump the version (and fix up the CRC so only the version is
        // wrong).
        let mut bumped = buf.clone();
        bumped[8] = 2;
        let body_len = bumped.len() - 4;
        let crc = crc32(&bumped[..body_len]).to_le_bytes();
        bumped[body_len..].copy_from_slice(&crc);
        let err = read_snapshot::<f32, _>(&bumped[..]).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn snapshot_handles_minimal_grid_and_rejects_empty_header() {
        let g = Grid2D::<f32>::zeros(1, 1);
        let mut buf = Vec::new();
        write_snapshot(&g, &mut buf).unwrap();
        let back: Grid2D<f32> = read_snapshot(&buf[..]).unwrap();
        assert_eq!((back.rows(), back.cols()), (1, 1));

        // A well-checksummed header claiming a 0x0 grid is still invalid:
        // Grid2D has no empty state.
        let mut empty = Vec::new();
        empty.extend_from_slice(&SNAPSHOT_MAGIC);
        empty.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        empty.push(4);
        empty.push(0);
        empty.extend_from_slice(&0u64.to_le_bytes());
        empty.extend_from_slice(&0u64.to_le_bytes());
        let crc = crc32(&empty).to_le_bytes();
        empty.extend_from_slice(&crc);
        let err = read_snapshot::<f32, _>(&empty[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard CRC-32/ISO-HDLC check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    /// The satellite fix pinned: finite extremes (subnormals, negative
    /// zero, extreme exponents) survive the CSV text round trip
    /// bit-exactly thanks to shortest-exact formatting. NaN payloads do
    /// not — that is what the binary snapshot is for.
    #[test]
    fn csv_round_trip_is_bit_exact_for_finite_extremes() {
        let finite64 = Grid2D::from_fn(2, 4, |i, j| {
            let v = f64::from_bits(EXTREME_F64_BITS[i * 4 + j]);
            if v.is_finite() {
                v
            } else {
                0.0
            }
        });
        let mut buf = Vec::new();
        write_csv(&finite64, &mut buf).unwrap();
        assert_bits_eq(&finite64, &read_csv::<f64, _>(&buf[..]).unwrap());
        // Negative zero keeps its sign through the text round trip.
        assert_eq!(
            read_csv::<f64, _>("-0\n".as_bytes()).unwrap()[(0, 0)].to_bits(),
            (-0.0f64).to_bits()
        );

        let finite32 = {
            let g = extreme_grid_f32();
            Grid2D::from_fn(g.rows(), g.cols(), |i, j| {
                if g[(i, j)].is_finite() {
                    g[(i, j)]
                } else {
                    0.0
                }
            })
        };
        let mut buf = Vec::new();
        write_csv(&finite32, &mut buf).unwrap();
        assert_bits_eq(&finite32, &read_csv::<f32, _>(&buf[..]).unwrap());
    }
}
