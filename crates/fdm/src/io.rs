//! Grid import/export: CSV for analysis pipelines, PGM for quick visual
//! inspection of solution fields.

use crate::grid::Grid2D;
use crate::precision::Scalar;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// Writes a grid as comma-separated rows with full round-trip precision.
///
/// Values are written via Rust's shortest-exact float formatting, so
/// `read_csv` recovers them bit-exactly (after the precision's own
/// rounding).
///
/// The writer can be anything `Write`; pass `&mut file` to keep using the
/// file afterwards.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_csv<T: Scalar, W: Write>(grid: &Grid2D<T>, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for i in 0..grid.rows() {
        let row = grid.row(i);
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                w.write_all(b",")?;
            }
            write!(w, "{}", v.to_f64())?;
        }
        w.write_all(b"\n")?;
    }
    w.flush()
}

/// Reads a grid from comma-separated rows.
///
/// # Errors
///
/// Returns `InvalidData` for ragged rows, unparsable numbers or empty
/// input; propagates I/O errors from the reader.
pub fn read_csv<T: Scalar, R: Read>(reader: R) -> io::Result<Grid2D<T>> {
    let r = BufReader::new(reader);
    let mut data: Vec<T> = Vec::new();
    let mut cols: Option<usize> = None;
    let mut rows = 0usize;
    for line in r.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut count = 0usize;
        for field in line.split(',') {
            let v: f64 = field.trim().parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad number {field:?}: {e}"),
                )
            })?;
            data.push(T::from_f64(v));
            count += 1;
        }
        match cols {
            None => cols = Some(count),
            Some(c) if c != count => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("ragged csv: row {rows} has {count} fields, expected {c}"),
                ));
            }
            _ => {}
        }
        rows += 1;
    }
    let cols = cols.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty csv"))?;
    Grid2D::from_vec(rows, cols, data)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "inconsistent csv shape"))
}

/// Writes a grid as a binary PGM (P5) image, mapping `[lo, hi]` linearly
/// to `[0, 255]` (values outside the range saturate).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Panics
///
/// Panics if `lo >= hi` or either bound is not finite.
pub fn write_pgm<T: Scalar, W: Write>(
    grid: &Grid2D<T>,
    writer: W,
    lo: f64,
    hi: f64,
) -> io::Result<()> {
    assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad pgm range");
    let mut w = BufWriter::new(writer);
    writeln!(w, "P5")?;
    writeln!(w, "{} {}", grid.cols(), grid.rows())?;
    writeln!(w, "255")?;
    let scale = 255.0 / (hi - lo);
    for i in 0..grid.rows() {
        let bytes: Vec<u8> = grid
            .row(i)
            .iter()
            .map(|v| ((v.to_f64() - lo) * scale).clamp(0.0, 255.0).round() as u8)
            .collect();
        w.write_all(&bytes)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precision::F16;

    fn sample() -> Grid2D<f64> {
        Grid2D::from_fn(3, 4, |i, j| (i as f64 - 1.0) * 0.5 + j as f64 * 0.125)
    }

    #[test]
    fn csv_round_trip_f64() {
        let g = sample();
        let mut buf = Vec::new();
        write_csv(&g, &mut buf).unwrap();
        let back: Grid2D<f64> = read_csv(&buf[..]).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn csv_round_trip_f32_and_f16() {
        let g32: Grid2D<f32> = sample().convert();
        let mut buf = Vec::new();
        write_csv(&g32, &mut buf).unwrap();
        let back: Grid2D<f32> = read_csv(&buf[..]).unwrap();
        assert_eq!(g32, back);

        let g16: Grid2D<F16> = sample().convert();
        let mut buf = Vec::new();
        write_csv(&g16, &mut buf).unwrap();
        let back: Grid2D<F16> = read_csv(&buf[..]).unwrap();
        assert_eq!(g16, back);
    }

    #[test]
    fn csv_rejects_ragged_and_garbage() {
        let err = read_csv::<f64, _>("1,2\n3\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = read_csv::<f64, _>("1,abc\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad number"));
        let err = read_csv::<f64, _>("".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("empty"));
    }

    #[test]
    fn csv_skips_blank_lines_and_trims() {
        let back: Grid2D<f64> = read_csv("1, 2\n\n 3 ,4\n".as_bytes()).unwrap();
        assert_eq!(back.rows(), 2);
        assert_eq!(back[(1, 0)], 3.0);
    }

    #[test]
    fn pgm_header_and_saturation() {
        let g = Grid2D::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
        let mut buf = Vec::new();
        write_pgm(&g, &mut buf, 0.0, 2.0).unwrap();
        let text = String::from_utf8_lossy(&buf[..12]).to_string();
        assert!(text.starts_with("P5\n2 2\n255\n"));
        let pixels = &buf[buf.len() - 4..];
        assert_eq!(pixels[0], 0); // 0.0 -> 0
        assert_eq!(pixels[1], 128); // 1.0 -> 127.5 rounds to 128
        assert_eq!(pixels[2], 255); // 2.0 -> 255
        assert_eq!(pixels[3], 255); // 3.0 saturates
    }

    #[test]
    #[should_panic(expected = "bad pgm range")]
    fn pgm_rejects_inverted_range() {
        let g = Grid2D::<f64>::zeros(2, 2);
        let _ = write_pgm(&g, Vec::new(), 1.0, 0.0);
    }
}
