//! Closed-form reference solutions for validating the numerical solvers.
//!
//! Each function samples an exact solution of one of the benchmark PDEs on
//! the unit square at the grid points, so tests can check that the FDM
//! solutions converge to the truth at the expected discretization order.
//!
//! Coordinate convention matches the rest of the crate: row `i` is the
//! vertical coordinate `y = i/(rows-1)` growing downward, column `j` is
//! `x = j/(cols-1)`.

use crate::grid::Grid2D;
use core::f64::consts::PI;

/// Exact solution of the Laplace equation on the unit square with
/// `u = A·sin(pi·x)` on the top edge (`y = 0`) and zero on the other three:
/// `u(x, y) = A·sin(pi x)·sinh(pi (1 - y)) / sinh(pi)`.
///
/// This matches [`crate::boundary::DirichletBoundary::sine_top`].
pub fn laplace_sine_top(rows: usize, cols: usize, amplitude: f64) -> Grid2D<f64> {
    Grid2D::from_fn(rows, cols, |i, j| {
        let y = i as f64 / (rows - 1) as f64;
        let x = j as f64 / (cols - 1) as f64;
        amplitude * (PI * x).sin() * (PI * (1.0 - y)).sinh() / PI.sinh()
    })
}

/// Manufactured Poisson solution: `u*(x, y) = sin(pi x)·sin(pi y)` solves
/// `∇²u = b` with `b(x, y) = -2 pi² sin(pi x) sin(pi y)` and zero
/// Dirichlet boundary.
///
/// Returns `(u_exact, b_source)` sampled on the grid.
pub fn poisson_manufactured(rows: usize, cols: usize) -> (Grid2D<f64>, Grid2D<f64>) {
    let u = Grid2D::from_fn(rows, cols, |i, j| {
        let y = i as f64 / (rows - 1) as f64;
        let x = j as f64 / (cols - 1) as f64;
        (PI * x).sin() * (PI * y).sin()
    });
    let b = Grid2D::from_fn(rows, cols, |i, j| {
        let y = i as f64 / (rows - 1) as f64;
        let x = j as f64 / (cols - 1) as f64;
        -2.0 * PI * PI * (PI * x).sin() * (PI * y).sin()
    });
    (u, b)
}

/// Exact solution of the heat equation with zero boundary and initial
/// condition `sin(pi x)·sin(pi y)`:
/// `u(x, y, t) = sin(pi x)·sin(pi y)·exp(-2 alpha pi² t)`.
pub fn heat_mode_decay(rows: usize, cols: usize, alpha: f64, t: f64) -> Grid2D<f64> {
    let decay = (-2.0 * alpha * PI * PI * t).exp();
    Grid2D::from_fn(rows, cols, |i, j| {
        let y = i as f64 / (rows - 1) as f64;
        let x = j as f64 / (cols - 1) as f64;
        decay * (PI * x).sin() * (PI * y).sin()
    })
}

/// Exact standing-wave solution of the wave equation with zero boundary,
/// initial displacement `sin(pi x)·sin(pi y)` and zero initial velocity:
/// `u(x, y, t) = sin(pi x)·sin(pi y)·cos(sqrt(2) pi c t)`.
pub fn wave_standing_mode(rows: usize, cols: usize, c: f64, t: f64) -> Grid2D<f64> {
    let osc = (2.0f64.sqrt() * PI * c * t).cos();
    Grid2D::from_fn(rows, cols, |i, j| {
        let y = i as f64 / (rows - 1) as f64;
        let x = j as f64 / (cols - 1) as f64;
        osc * (PI * x).sin() * (PI * y).sin()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::DirichletBoundary;
    use crate::convergence::StopCondition;
    use crate::pde::{HeatProblem, LaplaceProblem, PoissonProblem, WaveProblem};
    use crate::solver::{solve, solve_default, UpdateMethod};

    #[test]
    fn laplace_fdm_matches_separable_solution() {
        let n = 33;
        let h = 1.0 / (n - 1) as f64;
        let p = LaplaceProblem::builder(n, n)
            .spacing(h, h)
            .boundary(DirichletBoundary::sine_top(1.0))
            .build()
            .unwrap();
        let sp = p.discretize::<f64>();
        let r = solve(
            &sp,
            UpdateMethod::GaussSeidel,
            &StopCondition::tolerance(1e-12, 1_000_000),
        );
        let exact = laplace_sine_top(n, n, 1.0);
        let err = r.solution().diff_max(&exact);
        // Second-order scheme: O(h^2) ~ 1e-3 at h = 1/32.
        assert!(err < 3e-3, "Laplace error too large: {err}");
    }

    #[test]
    fn laplace_error_shrinks_at_second_order() {
        let errs: Vec<f64> = [17usize, 33]
            .iter()
            .map(|&n| {
                let h = 1.0 / (n - 1) as f64;
                let p = LaplaceProblem::builder(n, n)
                    .spacing(h, h)
                    .boundary(DirichletBoundary::sine_top(1.0))
                    .build()
                    .unwrap();
                let sp = p.discretize::<f64>();
                let r = solve(
                    &sp,
                    UpdateMethod::GaussSeidel,
                    &StopCondition::tolerance(1e-13, 2_000_000),
                );
                r.solution().diff_max(&laplace_sine_top(n, n, 1.0))
            })
            .collect();
        let rate = errs[0] / errs[1];
        assert!(
            rate > 3.0 && rate < 5.0,
            "halving h should quarter the error, got rate {rate} ({errs:?})"
        );
    }

    #[test]
    fn poisson_fdm_matches_manufactured_solution() {
        let n = 33;
        let h = 1.0 / (n - 1) as f64;
        let (exact, source) = poisson_manufactured(n, n);
        let p = PoissonProblem::builder(n, n)
            .spacing(h, h)
            .source(source)
            .build()
            .unwrap();
        let sp = p.discretize::<f64>();
        let r = solve(
            &sp,
            UpdateMethod::GaussSeidel,
            &StopCondition::tolerance(1e-12, 1_000_000),
        );
        let err = r.solution().diff_max(&exact);
        assert!(err < 5e-3, "Poisson error too large: {err}");
    }

    #[test]
    fn heat_fdm_tracks_mode_decay() {
        let n = 21;
        let h = 1.0 / (n - 1) as f64;
        let alpha = 0.05;
        let dt = 0.4 * h * h / alpha / 4.0; // comfortably stable
        let steps = 200;
        let p = HeatProblem::builder(n, n)
            .spacing(h, h)
            .alpha(alpha)
            .time(dt, steps)
            .initial_fn(|x, y| (PI * x).sin() * (PI * y).sin())
            .build()
            .unwrap();
        let sp = p.discretize::<f64>();
        let r = solve_default(&sp, UpdateMethod::Jacobi);
        let exact = heat_mode_decay(n, n, alpha, dt * steps as f64);
        let err = r.solution().diff_max(&exact);
        assert!(err < 2e-2, "Heat error too large: {err}");
    }

    #[test]
    fn wave_fdm_tracks_standing_mode() {
        let n = 33;
        let h = 1.0 / (n - 1) as f64;
        let c = 1.0;
        let dt = 0.25 * h / c; // CFL ratio well below 1
        let steps = 64;
        let p = WaveProblem::builder(n, n)
            .spacing(h, h)
            .wave_speed(c)
            .time(dt, steps)
            .initial_fn(|x, y| (PI * x).sin() * (PI * y).sin())
            .build()
            .unwrap();
        let sp = p.discretize::<f64>();
        let r = solve_default(&sp, UpdateMethod::Jacobi);
        // steps leap-frog applications advance from U^1 (t = dt) to
        // t = (steps + 1) * dt.
        let exact = wave_standing_mode(n, n, c, dt * (steps + 1) as f64);
        let err = r.solution().diff_max(&exact);
        assert!(err < 5e-2, "Wave error too large: {err}");
    }
}
