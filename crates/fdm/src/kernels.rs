//! Flat row-slice stencil kernels — the one numerics source of truth for
//! every sweep in the workspace.
//!
//! The FDMAX PE chain streams whole rows through the array: each output
//! row is assembled from three input rows (up/center/down) plus an
//! optional offset row, with the computation-reuse factoring of paper
//! Eq. (11) (`w_v*(up+down) + w_h*(left+right) + w_s*center + b`, three
//! multiplies per output). This module mirrors that organisation in
//! software: every kernel operates on *flat row slices* pre-cut to one
//! length, so LLVM can elide bounds checks and vectorise the interior
//! loop without `unsafe` (the workspace forbids it), and every kernel
//! fuses the per-element squared-update accumulation — the software
//! analogue of the PE's DIFF register — into the sweep instead of a
//! second pass.
//!
//! All kernels evaluate [`stencil_point`]'s canonical operation order, so
//! their outputs stay bit-identical to the cycle-accurate PE model. Each
//! kernel returns the f64 sum of squared updates *of its row*; callers
//! fold the per-row partials in ascending row order. That fixed fold
//! order is what lets [`crate::engine::ParallelSweepEngine`] reproduce
//! the serial engines' residual histories bit-for-bit at any thread
//! count.
//!
//! # SIMD lane folding
//!
//! The streaming kernels (`jacobi_row`, `residual_row`, `apply_row`,
//! `flux_*_row`) process the interior in [`SIMD_LANES`]-wide chunks of
//! fixed-size array views, which lets LLVM elide every bounds check and
//! vectorise the chunk body without `unsafe`. The per-element stencil
//! arithmetic is *unchanged* — grid outputs stay bit-identical to the
//! scalar bodies — but the squared-update accumulator becomes a
//! [`SIMD_LANES`]-lane bank folded in one fixed order
//! ([`fold_lanes`]): interior element `k` (0-based) lands in lane
//! `k % SIMD_LANES`, full chunks and the remainder alike, and the bank
//! folds pairwise `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`. The fold
//! depends only on the row's interior width — never on banding or
//! thread count — so the strip-parallel bit-identity contract is
//! preserved; the diff² *value* differs from a serial left-to-right sum
//! by rounding only (callers that need the historical serial grouping
//! use [`scalar`]). `checkerboard_row`'s stride-2 in-place update keeps
//! a scalar body (the gather defeats vectorisation) but adopts a 4-lane
//! accumulator so the dependency chain still splits.
//!
//! The pre-kernel scalar loops survive in [`baseline`] as the measured
//! floor of the `solver_throughput` benchmark, and the serial-accumulator
//! kernel bodies survive in [`scalar`] as the differential oracle.

use crate::grid::Grid2D;
use crate::pde::OffsetField;
use crate::precision::Scalar;
use crate::stencil::{stencil_point, FivePointStencil};
use core::ops::Range;

/// One row of a problem-level [`OffsetField`], borrowed as a flat slice
/// so kernels never index a 2-D structure in their inner loop.
#[derive(Clone, Copy, Debug)]
pub enum OffsetRow<'a, T> {
    /// No offset term: `b = 0` (Laplace, Heat without sources).
    None,
    /// Row of a static offset field (Poisson's folded source term).
    Static(&'a [T]),
    /// `b[j] = scale * prev[j]` — the wave equation's history term.
    Scaled {
        /// Multiplier applied to the previous-previous field.
        scale: T,
        /// Row `i` of `U^{k-1}`.
        prev: &'a [T],
    },
}

impl<'a, T: Scalar> OffsetRow<'a, T> {
    /// Borrows row `i` of `offset` (and of `prev` for the wave equation).
    ///
    /// # Panics
    ///
    /// Panics when a `ScaledPrevField` offset comes without `prev`, or
    /// when `i` is out of bounds of the offset field.
    #[must_use]
    pub fn for_row(offset: &'a OffsetField<T>, prev: Option<&'a Grid2D<T>>, i: usize) -> Self {
        match offset {
            OffsetField::None => OffsetRow::None,
            OffsetField::Static(c) => OffsetRow::Static(c.row(i)),
            OffsetField::ScaledPrevField { scale } => {
                let prev = prev.expect("ScaledPrevField requires the previous field");
                OffsetRow::Scaled {
                    scale: *scale,
                    prev: prev.row(i),
                }
            }
        }
    }

    /// The offset operand at column `j`.
    #[inline]
    fn at(&self, j: usize) -> T {
        match self {
            OffsetRow::None => T::ZERO,
            OffsetRow::Static(row) => row[j],
            OffsetRow::Scaled { scale, prev } => *scale * prev[j],
        }
    }
}

/// Chunk width of the lane-folded kernels: interior element `k` feeds
/// accumulator lane `k % SIMD_LANES`, and the streaming kernels walk the
/// row in `SIMD_LANES`-wide fixed-size array views.
pub const SIMD_LANES: usize = 8;

/// Folds a lane bank in the one fixed order every lane-folded kernel
/// uses: `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`. Unused lanes hold
/// `+0.0`, which is an exact additive identity for the non-negative
/// squares accumulated here, so short rows fold to the same bits as a
/// serial sum of up to three terms.
#[inline]
#[must_use]
pub fn fold_lanes(acc: [f64; SIMD_LANES]) -> f64 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Borrows a `SIMD_LANES`-wide window of `row` starting at `j0` as a
/// fixed-size array view — the no-`unsafe` idiom that licenses LLVM to
/// drop bounds checks and vectorise the chunk body.
#[inline(always)]
fn lane_window<T>(row: &[T], j0: usize) -> &[T; SIMD_LANES] {
    row[j0..j0 + SIMD_LANES]
        .try_into()
        .expect("window is exactly SIMD_LANES wide")
}

/// Shared Jacobi/Hybrid row body, monomorphised per offset kind so the
/// interior loop is branch-free. The interior is walked in
/// [`SIMD_LANES`]-wide chunks of fixed-size array views (all bounds
/// provable, so the chunk body vectorises without `unsafe`); the
/// squared-update accumulator is the fixed-order lane bank of
/// [`fold_lanes`]. Per-element arithmetic is exactly [`stencil_point`],
/// so grid outputs are bit-identical to the scalar body.
#[inline(always)]
fn jacobi_row_with<T: Scalar>(
    stencil: &FivePointStencil<T>,
    up: &[T],
    center: &[T],
    down: &[T],
    out: &mut [T],
    b_at: impl Fn(usize) -> T,
) -> f64 {
    let n = center.len();
    if n < 3 {
        return 0.0;
    }
    let (up, down) = (&up[..n], &down[..n]);
    let out = &mut out[..n];
    let interior = n - 2;
    let chunks = interior / SIMD_LANES;
    let mut acc = [0.0f64; SIMD_LANES];
    for c in 0..chunks {
        let j0 = 1 + c * SIMD_LANES;
        let u = lane_window(up, j0);
        let dn = lane_window(down, j0);
        let lf = lane_window(center, j0 - 1);
        let rt = lane_window(center, j0 + 1);
        let cc = lane_window(center, j0);
        let ob: &mut [T; SIMD_LANES] = (&mut out[j0..j0 + SIMD_LANES])
            .try_into()
            .expect("window is exactly SIMD_LANES wide");
        for l in 0..SIMD_LANES {
            let o = stencil_point(stencil, u[l], dn[l], lf[l], rt[l], cc[l], b_at(j0 + l));
            let d = o.to_f64() - cc[l].to_f64();
            acc[l] += d * d;
            ob[l] = o;
        }
    }
    for (l, j) in (1 + chunks * SIMD_LANES..n - 1).enumerate() {
        let c = center[j];
        let o = stencil_point(stencil, up[j], down[j], center[j - 1], center[j + 1], c, b_at(j));
        let d = o.to_f64() - c.to_f64();
        acc[l] += d * d;
        out[j] = o;
    }
    fold_lanes(acc)
}

/// Jacobi row kernel: reads three rows of `U^k`, writes the interior of
/// `out`, returns the row's f64 sum of squared updates.
///
/// Also serves the Hybrid sweep: pass the *freshly written* output row
/// `i - 1` as `up` and the kernel computes Eq. (8)'s top-fresh update.
///
/// Boundary columns (`0` and `len - 1`) are never touched; rows shorter
/// than 3 have no interior and return `0.0`.
#[must_use]
pub fn jacobi_row<T: Scalar>(
    stencil: &FivePointStencil<T>,
    up: &[T],
    center: &[T],
    down: &[T],
    offset: OffsetRow<'_, T>,
    out: &mut [T],
) -> f64 {
    debug_assert_eq!(up.len(), center.len(), "kernel row length mismatch");
    debug_assert_eq!(down.len(), center.len(), "kernel row length mismatch");
    debug_assert_eq!(out.len(), center.len(), "kernel row length mismatch");
    match offset {
        OffsetRow::None => jacobi_row_with(stencil, up, center, down, out, |_| T::ZERO),
        OffsetRow::Static(b) => {
            let b = &b[..center.len()];
            jacobi_row_with(stencil, up, center, down, out, |j| b[j])
        }
        OffsetRow::Scaled { scale, prev } => {
            let p = &prev[..center.len()];
            jacobi_row_with(stencil, up, center, down, out, move |j| scale * p[j])
        }
    }
}

/// Matrix-free operator-application row kernel: writes the interior of
/// `out` with `(A·u)[j] = u[j] - stencil(u, b = 0)[j]` for the implicit
/// operator `A = I - S` — no assembled matrix anywhere.
///
/// Boundary columns are never touched; the caller supplies the Dirichlet
/// ring (or zeros, for the homogeneous interior operator the Krylov
/// solvers iterate on) in the input rows themselves.
pub fn apply_row<T: Scalar>(
    stencil: &FivePointStencil<T>,
    up: &[T],
    center: &[T],
    down: &[T],
    out: &mut [T],
) {
    let n = center.len();
    debug_assert_eq!(up.len(), n, "kernel row length mismatch");
    debug_assert_eq!(down.len(), n, "kernel row length mismatch");
    debug_assert_eq!(out.len(), n, "kernel row length mismatch");
    if n < 3 {
        return;
    }
    let (up, down) = (&up[..n], &down[..n]);
    let out = &mut out[..n];
    let chunks = (n - 2) / SIMD_LANES;
    for c in 0..chunks {
        let j0 = 1 + c * SIMD_LANES;
        let u = lane_window(up, j0);
        let dn = lane_window(down, j0);
        let lf = lane_window(center, j0 - 1);
        let rt = lane_window(center, j0 + 1);
        let cc = lane_window(center, j0);
        let ob: &mut [T; SIMD_LANES] = (&mut out[j0..j0 + SIMD_LANES])
            .try_into()
            .expect("window is exactly SIMD_LANES wide");
        for l in 0..SIMD_LANES {
            ob[l] = crate::stencil::apply_point(stencil, u[l], dn[l], lf[l], rt[l], cc[l]);
        }
    }
    for j in 1 + chunks * SIMD_LANES..n - 1 {
        out[j] =
            crate::stencil::apply_point(stencil, up[j], down[j], center[j - 1], center[j + 1], center[j]);
    }
}

/// Fused residual row kernel: writes `r[j] = b[j] - (A·u)[j]` (evaluated
/// as the fixed-point residual `stencil(u, b)[j] - u[j]`, the canonical
/// PE order) into the interior of `out` and returns the row's f64 sum of
/// squared residuals — `r = b - A·u` and `||r||^2` in one pass.
#[must_use]
pub fn residual_row<T: Scalar>(
    stencil: &FivePointStencil<T>,
    up: &[T],
    center: &[T],
    down: &[T],
    offset: OffsetRow<'_, T>,
    out: &mut [T],
) -> f64 {
    debug_assert_eq!(up.len(), center.len(), "kernel row length mismatch");
    debug_assert_eq!(down.len(), center.len(), "kernel row length mismatch");
    debug_assert_eq!(out.len(), center.len(), "kernel row length mismatch");
    match offset {
        OffsetRow::None => residual_row_with(stencil, up, center, down, out, |_| T::ZERO),
        OffsetRow::Static(b) => {
            let b = &b[..center.len()];
            residual_row_with(stencil, up, center, down, out, |j| b[j])
        }
        OffsetRow::Scaled { scale, prev } => {
            let p = &prev[..center.len()];
            residual_row_with(stencil, up, center, down, out, move |j| scale * p[j])
        }
    }
}

/// Shared fused-residual body, monomorphised per offset kind (same
/// chunked, lane-folded pattern as [`jacobi_row`]'s `jacobi_row_with`).
#[inline(always)]
fn residual_row_with<T: Scalar>(
    stencil: &FivePointStencil<T>,
    up: &[T],
    center: &[T],
    down: &[T],
    out: &mut [T],
    b_at: impl Fn(usize) -> T,
) -> f64 {
    let n = center.len();
    if n < 3 {
        return 0.0;
    }
    let (up, down) = (&up[..n], &down[..n]);
    let out = &mut out[..n];
    let chunks = (n - 2) / SIMD_LANES;
    let mut acc = [0.0f64; SIMD_LANES];
    for c in 0..chunks {
        let j0 = 1 + c * SIMD_LANES;
        let u = lane_window(up, j0);
        let dn = lane_window(down, j0);
        let lf = lane_window(center, j0 - 1);
        let rt = lane_window(center, j0 + 1);
        let cc = lane_window(center, j0);
        let ob: &mut [T; SIMD_LANES] = (&mut out[j0..j0 + SIMD_LANES])
            .try_into()
            .expect("window is exactly SIMD_LANES wide");
        for l in 0..SIMD_LANES {
            let r = crate::stencil::fixed_point_residual(
                stencil,
                u[l],
                dn[l],
                lf[l],
                rt[l],
                cc[l],
                b_at(j0 + l),
            );
            let rf = r.to_f64();
            acc[l] += rf * rf;
            ob[l] = r;
        }
    }
    for (l, j) in (1 + chunks * SIMD_LANES..n - 1).enumerate() {
        let r = crate::stencil::fixed_point_residual(
            stencil,
            up[j],
            down[j],
            center[j - 1],
            center[j + 1],
            center[j],
            b_at(j),
        );
        let rf = r.to_f64();
        acc[l] += rf * rf;
        out[j] = r;
    }
    fold_lanes(acc)
}

/// Variable-coefficient (flux-form) operator-application row kernel.
///
/// Face weights follow the finite-volume convention of
/// [`crate::ops::CoefficientField`]: `wv_up[j]` weighs the face between
/// this row and the row above, `wv_dn[j]` the face below, and `wh[j]`
/// the face between columns `j` and `j + 1`. The diagonal is the sum of
/// the four face weights, so the operator is symmetric positive definite
/// whenever every face weight is positive:
///
/// ```text
/// (A·u)[j] = diag*u[j] - (wv_up[j]*up[j] + wv_dn[j]*down[j])
///                      - (wh[j-1]*u[j-1] + wh[j]*u[j+1])
/// diag     = (wv_up[j] + wv_dn[j]) + (wh[j-1] + wh[j])
/// ```
#[allow(clippy::too_many_arguments)]
pub fn flux_apply_row<T: Scalar>(
    wv_up: &[T],
    wv_dn: &[T],
    wh: &[T],
    up: &[T],
    center: &[T],
    down: &[T],
    out: &mut [T],
) {
    let n = center.len();
    debug_assert_eq!(up.len(), n, "kernel row length mismatch");
    debug_assert_eq!(down.len(), n, "kernel row length mismatch");
    debug_assert_eq!(out.len(), n, "kernel row length mismatch");
    debug_assert_eq!(wv_up.len(), n, "face-weight row length mismatch");
    debug_assert_eq!(wv_dn.len(), n, "face-weight row length mismatch");
    debug_assert_eq!(wh.len(), n, "face-weight row length mismatch");
    if n < 3 {
        return;
    }
    let (up, down) = (&up[..n], &down[..n]);
    let (wv_up, wv_dn) = (&wv_up[..n], &wv_dn[..n]);
    let out = &mut out[..n];
    let chunks = (n - 2) / SIMD_LANES;
    for c in 0..chunks {
        let j0 = 1 + c * SIMD_LANES;
        let (vu, vd) = (lane_window(wv_up, j0), lane_window(wv_dn, j0));
        let (hl, hr) = (lane_window(wh, j0 - 1), lane_window(wh, j0));
        let (u, dn) = (lane_window(up, j0), lane_window(down, j0));
        let lf = lane_window(center, j0 - 1);
        let rt = lane_window(center, j0 + 1);
        let cc = lane_window(center, j0);
        let ob: &mut [T; SIMD_LANES] = (&mut out[j0..j0 + SIMD_LANES])
            .try_into()
            .expect("window is exactly SIMD_LANES wide");
        for l in 0..SIMD_LANES {
            ob[l] = flux_point(vu[l], vd[l], hl[l], hr[l], u[l], dn[l], lf[l], rt[l], cc[l]);
        }
    }
    for j in 1 + chunks * SIMD_LANES..n - 1 {
        out[j] = flux_point(
            wv_up[j],
            wv_dn[j],
            wh[j - 1],
            wh[j],
            up[j],
            down[j],
            center[j - 1],
            center[j + 1],
            center[j],
        );
    }
}

/// Fused variable-coefficient residual row kernel: writes
/// `r[j] = b[j] - (A·u)[j]` for the flux-form operator and returns the
/// row's f64 sum of squared residuals.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn flux_residual_row<T: Scalar>(
    wv_up: &[T],
    wv_dn: &[T],
    wh: &[T],
    up: &[T],
    center: &[T],
    down: &[T],
    b: &[T],
    out: &mut [T],
) -> f64 {
    let n = center.len();
    debug_assert_eq!(up.len(), n, "kernel row length mismatch");
    debug_assert_eq!(down.len(), n, "kernel row length mismatch");
    debug_assert_eq!(out.len(), n, "kernel row length mismatch");
    debug_assert_eq!(b.len(), n, "kernel row length mismatch");
    if n < 3 {
        return 0.0;
    }
    let (up, down) = (&up[..n], &down[..n]);
    let (wv_up, wv_dn) = (&wv_up[..n], &wv_dn[..n]);
    let b = &b[..n];
    let out = &mut out[..n];
    let chunks = (n - 2) / SIMD_LANES;
    let mut acc = [0.0f64; SIMD_LANES];
    for c in 0..chunks {
        let j0 = 1 + c * SIMD_LANES;
        let (vu, vd) = (lane_window(wv_up, j0), lane_window(wv_dn, j0));
        let (hl, hr) = (lane_window(wh, j0 - 1), lane_window(wh, j0));
        let (u, dn) = (lane_window(up, j0), lane_window(down, j0));
        let lf = lane_window(center, j0 - 1);
        let rt = lane_window(center, j0 + 1);
        let cc = lane_window(center, j0);
        let bb = lane_window(b, j0);
        let ob: &mut [T; SIMD_LANES] = (&mut out[j0..j0 + SIMD_LANES])
            .try_into()
            .expect("window is exactly SIMD_LANES wide");
        for l in 0..SIMD_LANES {
            let au = flux_point(vu[l], vd[l], hl[l], hr[l], u[l], dn[l], lf[l], rt[l], cc[l]);
            let r = bb[l] - au;
            let rf = r.to_f64();
            acc[l] += rf * rf;
            ob[l] = r;
        }
    }
    for (l, j) in (1 + chunks * SIMD_LANES..n - 1).enumerate() {
        let au = flux_point(
            wv_up[j],
            wv_dn[j],
            wh[j - 1],
            wh[j],
            up[j],
            down[j],
            center[j - 1],
            center[j + 1],
            center[j],
        );
        let r = b[j] - au;
        let rf = r.to_f64();
        acc[l] += rf * rf;
        out[j] = r;
    }
    fold_lanes(acc)
}

/// One flux-form operator evaluation; fixed order (vertical pair, then
/// horizontal pair, then diagonal) shared by apply and residual so the
/// two agree bit-for-bit.
#[allow(clippy::too_many_arguments)]
#[inline]
fn flux_point<T: Scalar>(
    wv_up: T,
    wv_dn: T,
    wh_l: T,
    wh_r: T,
    up: T,
    down: T,
    left: T,
    right: T,
    center: T,
) -> T {
    let diag = (wv_up + wv_dn) + (wh_l + wh_r);
    diag * center - ((wv_up * up + wv_dn * down) + (wh_l * left + wh_r * right))
}

/// Hybrid row kernel with *hardware* seam semantics: the top operand
/// comes from `new_up` (the freshly assembled previous output row)
/// except where forwarding is impossible — the first output row of a row
/// block (`top_from_old`) and column-batch seam columns (the last column
/// of each full `seam_width` batch), which fall back to `old_up`
/// (Jacobi-style), exactly as the `R_out -> R_z-2` mux does.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn hybrid_hw_row<T: Scalar>(
    stencil: &FivePointStencil<T>,
    old_up: &[T],
    new_up: &[T],
    center: &[T],
    down: &[T],
    offset: OffsetRow<'_, T>,
    out: &mut [T],
    top_from_old: bool,
    seam_width: usize,
) -> f64 {
    let n = center.len();
    debug_assert_eq!(old_up.len(), n, "kernel row length mismatch");
    debug_assert_eq!(new_up.len(), n, "kernel row length mismatch");
    debug_assert_eq!(down.len(), n, "kernel row length mismatch");
    debug_assert_eq!(out.len(), n, "kernel row length mismatch");
    let mut diff2 = 0.0f64;
    for j in 1..n.saturating_sub(1) {
        let top = if top_from_old || (j + 1).is_multiple_of(seam_width) {
            old_up[j]
        } else {
            new_up[j]
        };
        let c = center[j];
        let o = stencil_point(
            stencil,
            top,
            down[j],
            center[j - 1],
            center[j + 1],
            c,
            offset.at(j),
        );
        let d = o.to_f64() - c.to_f64();
        diff2 += d * d;
        out[j] = o;
    }
    diff2
}

/// Gauss-Seidel row kernel: in-place on `row`, with `up` the already
/// updated row above (latest values) and `down` the not-yet-updated row
/// below. The left neighbour is read back from `row` itself, so the
/// loop-carried dependency of Eq. (7) is preserved.
#[must_use]
pub fn gauss_seidel_row<T: Scalar>(
    stencil: &FivePointStencil<T>,
    up: &[T],
    row: &mut [T],
    down: &[T],
    offset: OffsetRow<'_, T>,
) -> f64 {
    let n = row.len();
    debug_assert_eq!(up.len(), n, "kernel row length mismatch");
    debug_assert_eq!(down.len(), n, "kernel row length mismatch");
    let mut diff2 = 0.0f64;
    for j in 1..n.saturating_sub(1) {
        let old = row[j];
        let o = stencil_point(
            stencil,
            up[j],
            down[j],
            row[j - 1],
            row[j + 1],
            old,
            offset.at(j),
        );
        let d = o.to_f64() - old.to_f64();
        diff2 += d * d;
        row[j] = o;
    }
    diff2
}

/// SOR row kernel: the Gauss-Seidel candidate blended with the old value
/// in the field's own precision, `out = (1-w)*old + w*gs`.
///
/// `w` and `one_minus_w` are precomputed by the sweep so every row uses
/// the exact same rounded factors.
#[must_use]
pub fn sor_row<T: Scalar>(
    stencil: &FivePointStencil<T>,
    up: &[T],
    row: &mut [T],
    down: &[T],
    offset: OffsetRow<'_, T>,
    w: T,
    one_minus_w: T,
) -> f64 {
    let n = row.len();
    debug_assert_eq!(up.len(), n, "kernel row length mismatch");
    debug_assert_eq!(down.len(), n, "kernel row length mismatch");
    let mut diff2 = 0.0f64;
    for j in 1..n.saturating_sub(1) {
        let old = row[j];
        let gs = stencil_point(
            stencil,
            up[j],
            down[j],
            row[j - 1],
            row[j + 1],
            old,
            offset.at(j),
        );
        let o = one_minus_w * old + w * gs;
        let d = o.to_f64() - old.to_f64();
        diff2 += d * d;
        row[j] = o;
    }
    diff2
}

/// Checkerboard (red-black) row kernel: updates every second interior
/// column of `row` in place, starting at `start` (1 or 2, chosen by the
/// sweep so `(i + j) % 2` matches the phase parity). Neighbour reads all
/// land on the opposite parity, which the current phase never writes —
/// the invariant that makes strip-parallel checkerboard exact.
#[must_use]
pub fn checkerboard_row<T: Scalar>(
    stencil: &FivePointStencil<T>,
    up: &[T],
    row: &mut [T],
    down: &[T],
    offset: OffsetRow<'_, T>,
    start: usize,
) -> f64 {
    let n = row.len();
    debug_assert_eq!(up.len(), n, "kernel row length mismatch");
    debug_assert_eq!(down.len(), n, "kernel row length mismatch");
    debug_assert!(start >= 1, "start column must be interior");
    // The stride-2 in-place gather defeats vectorisation, but a 4-lane
    // accumulator (position index % 4, folded pairwise) still splits the
    // serial f64 dependency chain. The fold depends only on `start` and
    // the row width, never on banding, so strip-parallel checkerboard
    // stays bit-identical to the serial sweep.
    let mut acc = [0.0f64; 4];
    let mut j = start;
    let mut idx = 0usize;
    while j + 1 < n {
        let old = row[j];
        let o = stencil_point(
            stencil,
            up[j],
            down[j],
            row[j - 1],
            row[j + 1],
            old,
            offset.at(j),
        );
        let d = o.to_f64() - old.to_f64();
        acc[idx & 3] += d * d;
        row[j] = o;
        j += 2;
        idx += 1;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Borrows rows `i - 1`, `i` and `i + 1` of a row-major backing slice as
/// `(up, mid, down)` with only `mid` mutable — the `split_at_mut`
/// three-way view the in-place kernels need.
///
/// # Panics
///
/// Panics when `i` is zero or `data` holds fewer than `i + 2` rows.
#[must_use]
pub fn tri_rows_mut<T>(data: &mut [T], cols: usize, i: usize) -> (&[T], &mut [T], &[T]) {
    assert!(i >= 1, "tri_rows_mut needs an interior row, got {i}");
    let (head, rest) = data.split_at_mut(i * cols);
    let (mid, tail) = rest.split_at_mut(cols);
    (&head[(i - 1) * cols..], mid, &tail[..cols])
}

/// Partitions the interior rows `1..rows-1` into at most `max_bands`
/// contiguous bands — the software analogue of the elastic `1×(C·k)`
/// strip decomposition ([`row_strips`-style][strips] balancing: `base`
/// rows per band, the first `interior % bands` bands take one extra).
///
/// Returns an empty vector for grids without an interior. Never yields
/// an empty band: the count is capped at the interior height.
///
/// [strips]: crate::engine::ParallelSweepEngine
#[must_use]
pub fn row_bands(rows: usize, max_bands: usize) -> Vec<Range<usize>> {
    let interior = rows.saturating_sub(2);
    if interior == 0 {
        return Vec::new();
    }
    let n = max_bands.max(1).min(interior);
    let base = interior / n;
    let extra = interior % n;
    let mut bands = Vec::with_capacity(n);
    let mut lo = 1usize;
    for b in 0..n {
        let height = base + usize::from(b < extra);
        bands.push(lo..lo + height);
        lo += height;
    }
    bands
}

/// [`row_bands`] with a minimum band height: the band count is reduced
/// until every band is at least `min(min_height, interior)` rows tall.
///
/// This is the banding a k-deep temporal wavefront requires: a band
/// narrower than the tile depth cannot legally skew a k-sweep trapezoid
/// across itself (its halo would swallow neighbouring bands' owned
/// rows), so [`crate::tiled::TiledSweepEngine`] splits with
/// `min_height = k`. With `min_height <= 1` this is exactly
/// [`row_bands`].
#[must_use]
pub fn row_bands_with_min(rows: usize, max_bands: usize, min_height: usize) -> Vec<Range<usize>> {
    let interior = rows.saturating_sub(2);
    if interior == 0 {
        return Vec::new();
    }
    let widest = interior / min_height.max(1);
    row_bands(rows, max_bands.max(1).min(widest.max(1)))
}

pub mod scalar {
    //! The pre-SIMD serial-accumulator kernel bodies, kept verbatim as
    //! the differential oracle for the lane-folded kernels and as the
    //! `kernelized_serial` column of the `solver_throughput` benchmark.
    //!
    //! Grid outputs are bit-identical to the lane-folded kernels (the
    //! per-element arithmetic is the same [`stencil_point`] order); only
    //! the diff² grouping differs — serial left-to-right here, the
    //! fixed lane fold there.

    use super::OffsetRow;
    use crate::precision::Scalar;
    use crate::stencil::{stencil_point, FivePointStencil};

    /// Serial-accumulator Jacobi/Hybrid row kernel (the pre-SIMD body of
    /// [`super::jacobi_row`]).
    #[must_use]
    pub fn jacobi_row<T: Scalar>(
        stencil: &FivePointStencil<T>,
        up: &[T],
        center: &[T],
        down: &[T],
        offset: OffsetRow<'_, T>,
        out: &mut [T],
    ) -> f64 {
        let n = center.len();
        if n < 3 {
            return 0.0;
        }
        let (up, down) = (&up[..n], &down[..n]);
        let out = &mut out[..n];
        let mut diff2 = 0.0f64;
        for (k, w) in center.windows(3).enumerate() {
            let j = k + 1;
            let c = w[1];
            let o = stencil_point(stencil, up[j], down[j], w[0], w[2], c, offset.at(j));
            let d = o.to_f64() - c.to_f64();
            diff2 += d * d;
            out[j] = o;
        }
        diff2
    }

    /// Serial-accumulator fused-residual row kernel (the pre-SIMD body
    /// of [`super::residual_row`]).
    #[must_use]
    pub fn residual_row<T: Scalar>(
        stencil: &FivePointStencil<T>,
        up: &[T],
        center: &[T],
        down: &[T],
        offset: OffsetRow<'_, T>,
        out: &mut [T],
    ) -> f64 {
        let n = center.len();
        if n < 3 {
            return 0.0;
        }
        let (up, down) = (&up[..n], &down[..n]);
        let out = &mut out[..n];
        let mut diff2 = 0.0f64;
        for (k, w) in center.windows(3).enumerate() {
            let j = k + 1;
            let r = crate::stencil::fixed_point_residual(
                stencil,
                up[j],
                down[j],
                w[0],
                w[2],
                w[1],
                offset.at(j),
            );
            let rf = r.to_f64();
            diff2 += rf * rf;
            out[j] = r;
        }
        diff2
    }

    /// Serial-accumulator checkerboard row kernel (the pre-lane-bank
    /// body of [`super::checkerboard_row`]).
    #[must_use]
    pub fn checkerboard_row<T: Scalar>(
        stencil: &FivePointStencil<T>,
        up: &[T],
        row: &mut [T],
        down: &[T],
        offset: OffsetRow<'_, T>,
        start: usize,
    ) -> f64 {
        let n = row.len();
        debug_assert!(start >= 1, "start column must be interior");
        let mut diff2 = 0.0f64;
        let mut j = start;
        while j + 1 < n {
            let old = row[j];
            let o = stencil_point(
                stencil,
                up[j],
                down[j],
                row[j - 1],
                row[j + 1],
                old,
                offset.at(j),
            );
            let d = o.to_f64() - old.to_f64();
            diff2 += d * d;
            row[j] = o;
            j += 2;
        }
        diff2
    }
}

pub mod baseline {
    //! The pre-kernel scalar reference loops, kept verbatim as the
    //! measured floor of the `solver_throughput` benchmark: per-element
    //! `(i, j)` indexing with its index arithmetic and bounds checks,
    //! exactly what every sweep did before the kernel layer landed.

    use crate::grid::Grid2D;
    use crate::pde::OffsetField;
    use crate::precision::Scalar;
    use crate::stencil::{stencil_point, FivePointStencil};

    #[inline]
    fn offset_at<T: Scalar>(
        offset: &OffsetField<T>,
        prev: Option<&Grid2D<T>>,
        i: usize,
        j: usize,
    ) -> T {
        match offset {
            OffsetField::None => T::ZERO,
            OffsetField::Static(c) => c[(i, j)],
            OffsetField::ScaledPrevField { scale } => {
                let prev = prev.expect("ScaledPrevField requires the previous field");
                *scale * prev[(i, j)]
            }
        }
    }

    /// The seed scalar Jacobi sweep: double-nested indexed loop, flat
    /// f64 accumulator. Bit-identical grid outputs to the kernelized
    /// sweep; only the machine code (and the diff² grouping) differ.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or a `ScaledPrevField` offset is used
    /// without `prev`.
    #[must_use]
    pub fn sweep_jacobi_indexed<T: Scalar>(
        stencil: &FivePointStencil<T>,
        offset: &OffsetField<T>,
        cur: &Grid2D<T>,
        prev: Option<&Grid2D<T>>,
        next: &mut Grid2D<T>,
    ) -> f64 {
        assert_eq!(cur.rows(), next.rows(), "cur/next shape mismatch");
        assert_eq!(cur.cols(), next.cols(), "cur/next shape mismatch");
        let (rows, cols) = (cur.rows(), cur.cols());
        let mut diff2 = 0.0f64;
        for i in 1..rows - 1 {
            for j in 1..cols - 1 {
                let b = offset_at(offset, prev, i, j);
                let out = stencil_point(
                    stencil,
                    cur[(i - 1, j)],
                    cur[(i + 1, j)],
                    cur[(i, j - 1)],
                    cur[(i, j + 1)],
                    cur[(i, j)],
                    b,
                );
                let d = out.to_f64() - cur[(i, j)].to_f64();
                diff2 += d * d;
                next[(i, j)] = out;
            }
        }
        diff2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stencil() -> FivePointStencil<f32> {
        FivePointStencil::new(0.3, 0.2, 0.1)
    }

    fn wavy(rows: usize, cols: usize) -> Grid2D<f32> {
        Grid2D::from_fn(rows, cols, |i, j| ((i * 31 + j * 17) % 13) as f32 * 0.125)
    }

    #[test]
    fn jacobi_row_matches_indexed_baseline_bitwise() {
        let cur = wavy(7, 9);
        let prevg = wavy(7, 9);
        let offsets: [OffsetField<f32>; 3] = [
            OffsetField::None,
            OffsetField::Static(wavy(7, 9)),
            OffsetField::ScaledPrevField { scale: -0.5 },
        ];
        for offset in &offsets {
            let mut a = cur.clone();
            let mut b = cur.clone();
            let prev = Some(&prevg);
            let d_base = baseline::sweep_jacobi_indexed(&stencil(), offset, &cur, prev, &mut a);
            let mut d_kern = 0.0f64;
            for i in 1..cur.rows() - 1 {
                let o = OffsetRow::for_row(offset, prev, i);
                d_kern += jacobi_row(
                    &stencil(),
                    cur.row(i - 1),
                    cur.row(i),
                    cur.row(i + 1),
                    o,
                    b.row_mut(i),
                );
            }
            for i in 0..a.rows() {
                for j in 0..a.cols() {
                    assert_eq!(a[(i, j)].to_bits(), b[(i, j)].to_bits(), "({i},{j})");
                }
            }
            // Grouping differs (flat vs per-row fold) but the value is
            // the same sum of exactly representable squares here.
            assert!((d_base - d_kern).abs() <= 1e-12 * d_base.max(1.0));
        }
    }

    #[test]
    fn degenerate_rows_have_no_interior() {
        let row = [1.0f32, 2.0];
        let mut out = [0.0f32, 0.0];
        let d = jacobi_row(&stencil(), &row, &row, &row, OffsetRow::None, &mut out);
        assert_eq!(d, 0.0);
        assert_eq!(out, [0.0, 0.0], "no column written");
    }

    #[test]
    fn tri_rows_mut_views_are_correct() {
        let mut data: Vec<i32> = (0..12).collect(); // 4 rows x 3 cols
        let (up, mid, down) = tri_rows_mut(&mut data, 3, 2);
        assert_eq!(up, &[3, 4, 5]);
        assert_eq!(down, &[9, 10, 11]);
        mid[1] = 99;
        assert_eq!(data[7], 99);
    }

    #[test]
    #[should_panic(expected = "interior row")]
    fn tri_rows_mut_rejects_row_zero() {
        let mut data = [0i32; 9];
        let _ = tri_rows_mut(&mut data, 3, 0);
    }

    #[test]
    fn row_bands_tile_the_interior_exactly() {
        for rows in 3..40 {
            for req in 1..10 {
                let bands = row_bands(rows, req);
                assert_eq!(bands.len(), req.min(rows - 2));
                assert_eq!(bands.first().unwrap().start, 1);
                assert_eq!(bands.last().unwrap().end, rows - 1);
                for pair in bands.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start, "contiguous");
                }
                let heights: Vec<usize> = bands.iter().map(Range::len).collect();
                let (min, max) = (
                    *heights.iter().min().unwrap(),
                    *heights.iter().max().unwrap(),
                );
                assert!(max - min <= 1, "balanced: {heights:?}");
            }
        }
        assert!(row_bands(2, 4).is_empty());
        assert!(row_bands(1, 1).is_empty());
    }

    #[test]
    fn lane_folded_kernels_match_scalar_oracle() {
        // Grid outputs bitwise, diff² to relative 1e-12, across widths
        // that exercise no-chunk, exact-chunk and chunk+tail paths.
        let s = stencil();
        for cols in [3usize, 4, 7, 9, 10, 11, 17, 18, 19, 33, 40] {
            let g = wavy(3, cols);
            let (up, center, down) = (g.row(0), g.row(1), g.row(2));
            let bgrid = wavy(3, cols);
            let offsets: [OffsetRow<'_, f32>; 3] = [
                OffsetRow::None,
                OffsetRow::Static(bgrid.row(1)),
                OffsetRow::Scaled {
                    scale: -0.5,
                    prev: bgrid.row(2),
                },
            ];
            for o in offsets {
                let mut a = vec![0.0f32; cols];
                let mut b = vec![0.0f32; cols];
                let da = jacobi_row(&s, up, center, down, o, &mut a);
                let db = scalar::jacobi_row(&s, up, center, down, o, &mut b);
                for j in 0..cols {
                    assert_eq!(a[j].to_bits(), b[j].to_bits(), "jacobi col {j} of {cols}");
                }
                assert!((da - db).abs() <= 1e-12 * db.max(1.0), "{cols}: {da} vs {db}");

                let mut ra = vec![0.0f32; cols];
                let mut rb = vec![0.0f32; cols];
                let dra = residual_row(&s, up, center, down, o, &mut ra);
                let drb = scalar::residual_row(&s, up, center, down, o, &mut rb);
                for j in 0..cols {
                    assert_eq!(ra[j].to_bits(), rb[j].to_bits(), "residual col {j} of {cols}");
                }
                assert!((dra - drb).abs() <= 1e-12 * drb.max(1.0));

                for start in [1usize, 2] {
                    let mut ca: Vec<f32> = center.to_vec();
                    let mut cb: Vec<f32> = center.to_vec();
                    let dca = checkerboard_row(&s, up, &mut ca, down, o, start);
                    let dcb = scalar::checkerboard_row(&s, up, &mut cb, down, o, start);
                    for j in 0..cols {
                        assert_eq!(ca[j].to_bits(), cb[j].to_bits(), "cb col {j} of {cols}");
                    }
                    assert!((dca - dcb).abs() <= 1e-12 * dcb.max(1.0));
                }
            }
        }
    }

    #[test]
    fn lane_fold_is_exact_for_three_or_fewer_terms() {
        // Unused lanes hold +0.0, so rows with interior <= 3 fold to the
        // same bits as the serial sum — the contract the short-row
        // bitwise tests below rely on.
        let terms = [0.3f64, 1.7e-3, 42.0];
        let mut acc = [0.0f64; SIMD_LANES];
        for (k, t) in terms.iter().enumerate() {
            acc[k] = t * t;
        }
        let serial = (terms[0] * terms[0] + terms[1] * terms[1]) + terms[2] * terms[2];
        assert_eq!(fold_lanes(acc).to_bits(), serial.to_bits());
    }

    #[test]
    fn row_bands_with_min_never_emits_a_band_narrower_than_the_halo() {
        for rows in 3..40 {
            let interior = rows - 2;
            for req in 1..10 {
                for k in 1..10 {
                    let bands = row_bands_with_min(rows, req, k);
                    assert!(!bands.is_empty());
                    assert_eq!(bands.first().unwrap().start, 1);
                    assert_eq!(bands.last().unwrap().end, rows - 1);
                    for b in &bands {
                        assert!(
                            b.len() >= k.min(interior),
                            "rows={rows} req={req} k={k}: band {b:?} narrower than halo"
                        );
                    }
                    assert!(bands.len() <= req.max(1));
                }
            }
        }
        // min_height <= 1 degenerates to row_bands.
        assert_eq!(row_bands_with_min(19, 7, 1), row_bands(19, 7));
        assert_eq!(row_bands_with_min(19, 7, 0), row_bands(19, 7));
        // The ISSUE's example: a 7-way split of a 17-row interior must
        // not emit 1-row bands a k=4 wavefront cannot skew across.
        for b in row_bands_with_min(19, 7, 4) {
            assert!(b.len() >= 4);
        }
    }

    #[test]
    fn hybrid_hw_row_seam_columns_take_the_old_top() {
        let old_up: Vec<f32> = (0..8).map(|j| j as f32).collect();
        let new_up: Vec<f32> = (0..8).map(|j| j as f32 + 100.0).collect();
        let center = vec![0.5f32; 8];
        let down = vec![0.25f32; 8];
        let mut fresh = vec![0.0f32; 8];
        let mut stale = vec![0.0f32; 8];
        let s = stencil();
        let _ = hybrid_hw_row(
            &s,
            &old_up,
            &new_up,
            &center,
            &down,
            OffsetRow::None,
            &mut fresh,
            false,
            4,
        );
        let _ = hybrid_hw_row(
            &s,
            &old_up,
            &new_up,
            &center,
            &down,
            OffsetRow::None,
            &mut stale,
            true,
            4,
        );
        // Seam columns (j = 3, 7 for width 4; 7 is boundary here) agree,
        // non-seam interior columns differ by the fresh top.
        assert_eq!(fresh[3].to_bits(), stale[3].to_bits(), "seam column");
        for j in [1usize, 2, 4, 5, 6] {
            assert_ne!(fresh[j].to_bits(), stale[j].to_bits(), "column {j}");
        }
    }

    #[test]
    fn residual_row_is_jacobi_update_minus_center() {
        // r[j] = (S·u + b)[j] - u[j]: exactly the Jacobi update delta, so
        // both kernels report the same squared-update row sum bit for bit.
        let s = FivePointStencil::new(0.3f64, 0.2, 0.1);
        let up = [0.5, 1.5, -2.0, 0.25, 3.0];
        let center = [1.0, -0.5, 2.0, 0.75, -1.0];
        let down = [0.1, 0.2, 0.3, 0.4, 0.5];
        let b = [0.0, 0.7, -0.3, 0.1, 0.0];
        let mut next = [0.0f64; 5];
        let d2_jac = jacobi_row(&s, &up, &center, &down, OffsetRow::Static(&b), &mut next);
        let mut r = [0.0f64; 5];
        let d2_res = residual_row(&s, &up, &center, &down, OffsetRow::Static(&b), &mut r);
        assert_eq!(d2_jac.to_bits(), d2_res.to_bits());
        for j in 1..4 {
            assert_eq!(r[j].to_bits(), (next[j] - center[j]).to_bits(), "col {j}");
        }
        assert_eq!(r[0], 0.0, "ring untouched");
        assert_eq!(r[4], 0.0, "ring untouched");
    }

    #[test]
    fn apply_row_negates_the_zero_offset_residual() {
        let s = FivePointStencil::new(0.25f64, 0.25, 0.0);
        let up = [0.5, 1.5, -2.0, 0.25, 3.0];
        let center = [1.0, -0.5, 2.0, 0.75, -1.0];
        let down = [0.1, 0.2, 0.3, 0.4, 0.5];
        let mut au = [0.0f64; 5];
        apply_row(&s, &up, &center, &down, &mut au);
        let mut r = [0.0f64; 5];
        let _ = residual_row(&s, &up, &center, &down, OffsetRow::None, &mut r);
        for j in 1..4 {
            assert_eq!(au[j].to_bits(), (-r[j]).to_bits(), "col {j}");
        }
    }

    #[test]
    fn flux_kernels_reduce_to_constant_operator_on_uniform_faces() {
        // With every face weight w and u scaled so diag = 4w = 1, the flux
        // operator equals I - S for the constant stencil w_v = w_h = w.
        let w = 0.25f64;
        let s = FivePointStencil::new(w, w, 0.0);
        let faces = [w; 6];
        let up = [0.5, 1.5, -2.0, 0.25, 3.0, 0.9];
        let center = [1.0, -0.5, 2.0, 0.75, -1.0, 0.6];
        let down = [0.1, 0.2, 0.3, 0.4, 0.5, 0.8];
        let mut a_const = [0.0f64; 6];
        apply_row(&s, &up, &center, &down, &mut a_const);
        let mut a_flux = [0.0f64; 6];
        flux_apply_row(&faces, &faces, &faces, &up, &center, &down, &mut a_flux);
        for j in 1..5 {
            assert!(
                (a_flux[j] - a_const[j]).abs() < 1e-15,
                "col {j}: {} vs {}",
                a_flux[j],
                a_const[j]
            );
        }
    }

    #[test]
    fn flux_residual_row_is_b_minus_apply() {
        let faces_v = [0.2f64, 0.3, 0.25, 0.1, 0.4];
        let faces_h = [0.15f64, 0.35, 0.2, 0.3, 0.1];
        let up = [0.5, 1.5, -2.0, 0.25, 3.0];
        let center = [1.0, -0.5, 2.0, 0.75, -1.0];
        let down = [0.1, 0.2, 0.3, 0.4, 0.5];
        let b = [0.0, 0.7, -0.3, 0.1, 0.0];
        let mut au = [0.0f64; 5];
        flux_apply_row(&faces_v, &faces_h, &faces_v, &up, &center, &down, &mut au);
        let mut r = [0.0f64; 5];
        let d2 = flux_residual_row(
            &faces_v, &faces_h, &faces_v, &up, &center, &down, &b, &mut r,
        );
        let mut want = 0.0f64;
        for j in 1..4 {
            assert_eq!(r[j].to_bits(), (b[j] - au[j]).to_bits(), "col {j}");
            want += r[j] * r[j];
        }
        assert_eq!(d2.to_bits(), want.to_bits());
    }
}
