//! The relaxation sweeps: Jacobi, Hybrid, Gauss-Seidel, Checkerboard, SOR.
//!
//! Every sweep is now a thin row-loop driver over the flat-slice kernels
//! in [`crate::kernels`] — the single numerics source of truth shared
//! with the hardware reference model and the cycle-accurate simulator.
//! Each kernel evaluates the canonical [`crate::stencil::stencil_point`]
//! order and fuses the squared-update accumulation into the sweep; the
//! drivers fold the per-row f64 partials in ascending row order, the
//! fixed order that makes the strip-parallel engine bit-reproducible.
//! Boundary points are never touched.

use crate::grid::Grid2D;
use crate::kernels::{
    checkerboard_row, gauss_seidel_row, jacobi_row, sor_row, tri_rows_mut, OffsetRow,
};
use crate::pde::OffsetField;
use crate::precision::Scalar;
use crate::stencil::FivePointStencil;

/// Jacobi sweep (Eq. 6): reads `cur`, writes the interior of `next`.
///
/// Returns the sum of squared updates. `next` must have the same shape as
/// `cur` and carry the correct boundary ring (it is not rewritten).
///
/// # Panics
///
/// Panics if shapes differ or a `ScaledPrevField` offset is used without
/// `prev`.
pub fn sweep_jacobi<T: Scalar>(
    stencil: &FivePointStencil<T>,
    offset: &OffsetField<T>,
    cur: &Grid2D<T>,
    prev: Option<&Grid2D<T>>,
    next: &mut Grid2D<T>,
) -> f64 {
    assert_eq!(cur.rows(), next.rows(), "cur/next shape mismatch");
    assert_eq!(cur.cols(), next.cols(), "cur/next shape mismatch");
    let mut diff2 = 0.0f64;
    for i in cur.interior_rows() {
        let b = OffsetRow::for_row(offset, prev, i);
        diff2 += jacobi_row(
            stencil,
            cur.row(i - 1),
            cur.row(i),
            cur.row(i + 1),
            b,
            next.row_mut(i),
        );
    }
    diff2
}

/// Hybrid sweep (Eq. 8): the top neighbour comes from the *current*
/// iteration (already written into `next`), everything else from `cur`.
///
/// Row `i = 1` reads `next`'s row 0, which is the (identical) boundary
/// ring, so the first interior row degenerates to Jacobi — exactly what
/// the hardware does when a column batch starts.
///
/// # Panics
///
/// Same conditions as [`sweep_jacobi`].
pub fn sweep_hybrid<T: Scalar>(
    stencil: &FivePointStencil<T>,
    offset: &OffsetField<T>,
    cur: &Grid2D<T>,
    prev: Option<&Grid2D<T>>,
    next: &mut Grid2D<T>,
) -> f64 {
    assert_eq!(cur.rows(), next.rows(), "cur/next shape mismatch");
    assert_eq!(cur.cols(), next.cols(), "cur/next shape mismatch");
    let cols = cur.cols();
    let mut diff2 = 0.0f64;
    let interior = cur.interior_rows();
    let data = next.as_mut_slice();
    for i in interior {
        let b = OffsetRow::for_row(offset, prev, i);
        // Split `next` so the freshly written row `i - 1` serves as the
        // top operand while row `i` is the output.
        let (before, rest) = data.split_at_mut(i * cols);
        let up = &before[(i - 1) * cols..];
        let out = &mut rest[..cols];
        diff2 += jacobi_row(stencil, up, cur.row(i), cur.row(i + 1), b, out);
    }
    diff2
}

/// Gauss-Seidel sweep (Eq. 7): in-place, top and left neighbours are the
/// latest values.
///
/// # Panics
///
/// Panics if a `ScaledPrevField` offset is used without `prev`.
pub fn sweep_gauss_seidel<T: Scalar>(
    stencil: &FivePointStencil<T>,
    offset: &OffsetField<T>,
    field: &mut Grid2D<T>,
    prev: Option<&Grid2D<T>>,
) -> f64 {
    let cols = field.cols();
    let mut diff2 = 0.0f64;
    for i in field.interior_rows() {
        let b = OffsetRow::for_row(offset, prev, i);
        let (up, mid, down) = tri_rows_mut(field.as_mut_slice(), cols, i);
        diff2 += gauss_seidel_row(stencil, up, mid, down, b);
    }
    diff2
}

/// Checkerboard (red-black) sweep (§2.2.3): phase one updates points with
/// even `i + j` from the old black values, phase two updates odd `i + j`
/// from the fresh red values. Both phases count as one iteration.
///
/// # Panics
///
/// Panics if a `ScaledPrevField` offset is used without `prev`.
pub fn sweep_checkerboard<T: Scalar>(
    stencil: &FivePointStencil<T>,
    offset: &OffsetField<T>,
    field: &mut Grid2D<T>,
    prev: Option<&Grid2D<T>>,
) -> f64 {
    let cols = field.cols();
    let mut diff2 = 0.0f64;
    for parity in [0usize, 1] {
        for i in field.interior_rows() {
            let b = OffsetRow::for_row(offset, prev, i);
            // First interior column of this row with (i + j) % 2 == parity.
            let start = if (i + parity) % 2 == 1 { 1 } else { 2 };
            let (up, mid, down) = tri_rows_mut(field.as_mut_slice(), cols, i);
            diff2 += checkerboard_row(stencil, up, mid, down, b, start);
        }
    }
    diff2
}

/// SOR sweep: Gauss-Seidel blended with the old value,
/// `u <- (1-omega)*u_old + omega*gs(u)`.
///
/// The blend is computed in the field's own precision.
///
/// # Panics
///
/// Panics if a `ScaledPrevField` offset is used without `prev`.
pub fn sweep_sor<T: Scalar>(
    stencil: &FivePointStencil<T>,
    offset: &OffsetField<T>,
    field: &mut Grid2D<T>,
    prev: Option<&Grid2D<T>>,
    omega: f64,
) -> f64 {
    let cols = field.cols();
    let w = T::from_f64(omega);
    let one_minus_w = T::from_f64(1.0 - omega);
    let mut diff2 = 0.0f64;
    for i in field.interior_rows() {
        let b = OffsetRow::for_row(offset, prev, i);
        let (up, mid, down) = tri_rows_mut(field.as_mut_slice(), cols, i);
        diff2 += sor_row(stencil, up, mid, down, b, w, one_minus_w);
    }
    diff2
}

/// Damped-Jacobi sweep: `next <- (1-omega)*cur + omega*jacobi(cur)` — the
/// classic fully parallel multigrid smoother. The blend runs row-wise in
/// the field's own precision; the returned sum of squared updates is that
/// of the *undamped* Jacobi sweep.
///
/// # Panics
///
/// Same conditions as [`sweep_jacobi`].
pub fn sweep_damped_jacobi<T: Scalar>(
    stencil: &FivePointStencil<T>,
    offset: &OffsetField<T>,
    cur: &Grid2D<T>,
    prev: Option<&Grid2D<T>>,
    next: &mut Grid2D<T>,
    omega: f64,
) -> f64 {
    let w = T::from_f64(omega);
    let one_minus_w = T::from_f64(1.0 - omega);
    let diff2 = sweep_jacobi(stencil, offset, cur, prev, next);
    let cols = cur.cols();
    for i in cur.interior_rows() {
        let old = cur.row(i);
        for (n, o) in next.row_mut(i)[1..cols - 1]
            .iter_mut()
            .zip(&old[1..cols - 1])
        {
            *n = one_minus_w * *o + w * *n;
        }
    }
    diff2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplace() -> FivePointStencil<f64> {
        FivePointStencil::new(0.25, 0.25, 0.0)
    }

    /// A 4x4 grid with a hot top edge; interior starts at zero.
    fn hot_top_grid() -> Grid2D<f64> {
        Grid2D::from_fn(4, 4, |i, _| if i == 0 { 1.0 } else { 0.0 })
    }

    #[test]
    fn jacobi_first_sweep_by_hand() {
        let cur = hot_top_grid();
        let mut next = cur.clone();
        let d2 = sweep_jacobi(&laplace(), &OffsetField::None, &cur, None, &mut next);
        // Each of the two top-adjacent interior points becomes 0.25;
        // the two bottom interior points stay 0.
        assert_eq!(next[(1, 1)], 0.25);
        assert_eq!(next[(1, 2)], 0.25);
        assert_eq!(next[(2, 1)], 0.0);
        assert_eq!(next[(2, 2)], 0.0);
        assert!((d2 - 2.0 * 0.0625).abs() < 1e-15);
        // Boundary untouched.
        assert_eq!(next[(0, 1)], 1.0);
        assert_eq!(next[(3, 1)], 0.0);
    }

    #[test]
    fn hybrid_uses_fresh_top_value() {
        let cur = hot_top_grid();
        let mut next = cur.clone();
        sweep_hybrid(&laplace(), &OffsetField::None, &cur, None, &mut next);
        // Row 1 behaves like Jacobi: 0.25 each.
        assert_eq!(next[(1, 1)], 0.25);
        // Row 2 sees the *fresh* 0.25 above: 0.25 * 0.25 = 0.0625.
        assert_eq!(next[(2, 1)], 0.0625);
    }

    #[test]
    fn gauss_seidel_uses_fresh_top_and_left() {
        let mut field = hot_top_grid();
        sweep_gauss_seidel(&laplace(), &OffsetField::None, &mut field, None);
        assert_eq!(field[(1, 1)], 0.25);
        // (1,2): top=1 (boundary), left=0.25 fresh -> (1 + 0.25) * 0.25.
        assert_eq!(field[(1, 2)], 0.3125);
        // (2,1): top = 0.25 fresh -> 0.0625.
        assert_eq!(field[(2, 1)], 0.0625);
    }

    #[test]
    fn checkerboard_two_phase_update() {
        let mut field = hot_top_grid();
        sweep_checkerboard(&laplace(), &OffsetField::None, &mut field, None);
        // Red phase ((i+j) even): (1,1) -> 0.25 from old values; (2,2) -> 0.
        // Black phase: (1,2) sees top boundary 1 and fresh red left 0.25
        // and fresh red (2,2)=0: (1 + 0.25)*0.25 = 0.3125.
        assert_eq!(field[(1, 1)], 0.25);
        assert_eq!(field[(1, 2)], 0.3125);
        // (2,1) black: top fresh 0.25 -> 0.0625.
        assert_eq!(field[(2, 1)], 0.0625);
    }

    #[test]
    fn sor_omega_one_equals_gauss_seidel() {
        let mut a = hot_top_grid();
        let mut b = hot_top_grid();
        let d_gs = sweep_gauss_seidel(&laplace(), &OffsetField::None, &mut a, None);
        let d_sor = sweep_sor(&laplace(), &OffsetField::None, &mut b, None, 1.0);
        assert_eq!(a, b);
        assert!((d_gs - d_sor).abs() < 1e-15);
    }

    #[test]
    fn sor_overrelaxation_moves_further() {
        let mut gs = hot_top_grid();
        let mut sor = hot_top_grid();
        sweep_gauss_seidel(&laplace(), &OffsetField::None, &mut gs, None);
        sweep_sor(&laplace(), &OffsetField::None, &mut sor, None, 1.5);
        assert!(sor[(1, 1)] > gs[(1, 1)]);
    }

    #[test]
    fn static_offset_applied() {
        let cur = Grid2D::<f64>::zeros(3, 3);
        let mut next = cur.clone();
        let c = Grid2D::filled(3, 3, 0.5);
        let d2 = sweep_jacobi(&laplace(), &OffsetField::Static(c), &cur, None, &mut next);
        assert_eq!(next[(1, 1)], 0.5);
        assert!((d2 - 0.25).abs() < 1e-15);
    }

    #[test]
    fn scaled_prev_field_offset() {
        let cur = Grid2D::<f64>::filled(3, 3, 1.0);
        let prev = Grid2D::<f64>::filled(3, 3, 2.0);
        let mut next = cur.clone();
        let stencil = FivePointStencil::new(0.25, 0.25, 1.0);
        sweep_jacobi(
            &stencil,
            &OffsetField::ScaledPrevField { scale: -1.0 },
            &cur,
            Some(&prev),
            &mut next,
        );
        // 0.25*2 + 0.25*2 + 1*1 - 2 = 0.
        assert_eq!(next[(1, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "requires the previous field")]
    fn scaled_prev_without_prev_panics() {
        let cur = Grid2D::<f64>::zeros(3, 3);
        let mut next = cur.clone();
        let _ = sweep_jacobi(
            &laplace(),
            &OffsetField::ScaledPrevField { scale: -1.0 },
            &cur,
            None,
            &mut next,
        );
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn jacobi_shape_checked() {
        let cur = Grid2D::<f64>::zeros(3, 3);
        let mut next = Grid2D::<f64>::zeros(4, 3);
        let _ = sweep_jacobi(&laplace(), &OffsetField::None, &cur, None, &mut next);
    }

    #[test]
    fn diff2_is_zero_at_fixed_point() {
        // A constant field with matching constant boundary is a Laplace
        // fixed point: no update, zero diff.
        let cur = Grid2D::<f64>::filled(5, 5, 3.0);
        let mut next = cur.clone();
        let d2 = sweep_jacobi(&laplace(), &OffsetField::None, &cur, None, &mut next);
        assert_eq!(d2, 0.0);
        assert_eq!(cur, next);
        let mut field = Grid2D::<f64>::filled(5, 5, 3.0);
        assert_eq!(
            sweep_gauss_seidel(&laplace(), &OffsetField::None, &mut field, None),
            0.0
        );
    }

    #[test]
    fn damped_jacobi_blends_toward_the_jacobi_update() {
        let cur = hot_top_grid();
        let mut plain = cur.clone();
        let mut damped = cur.clone();
        let d_plain = sweep_jacobi(&laplace(), &OffsetField::None, &cur, None, &mut plain);
        let d_damped =
            sweep_damped_jacobi(&laplace(), &OffsetField::None, &cur, None, &mut damped, 0.8);
        // Blend in the exact documented order: (1-w)*old + w*new.
        let want = 0.2f64 * 0.0 + 0.8 * plain[(1, 1)];
        assert_eq!(damped[(1, 1)].to_bits(), want.to_bits());
        assert_eq!(d_plain.to_bits(), d_damped.to_bits());
        // omega = 1 degenerates to plain Jacobi.
        let mut full = cur.clone();
        sweep_damped_jacobi(&laplace(), &OffsetField::None, &cur, None, &mut full, 1.0);
        assert_eq!(full, plain);
    }

    #[test]
    fn kernelized_sweeps_match_indexed_baseline_bitwise() {
        use crate::kernels::baseline::sweep_jacobi_indexed;
        let cur = Grid2D::from_fn(9, 7, |i, j| ((i * 7 + j * 3) % 11) as f64 * 0.0625);
        let mut a = cur.clone();
        let mut b = cur.clone();
        let s = FivePointStencil::new(0.22, 0.26, 0.04);
        let da = sweep_jacobi(&s, &OffsetField::None, &cur, None, &mut a);
        let db = sweep_jacobi_indexed(&s, &OffsetField::None, &cur, None, &mut b);
        assert_eq!(a, b);
        assert!((da - db).abs() <= 1e-12 * da.max(1.0));
    }
}
