//! Krylov-subspace solvers: matrix-free CG / PCG / BiCG-STAB on the
//! [`StencilOp`] operator algebra, with the
//! assembled-CSR route retained as a differential oracle.
//!
//! The paper's baseline accelerators solve the FDM linear system with
//! these methods — Alrescha uses PCG, `MemAccel` uses BiCG-STAB (§3.2.2,
//! §6.4) — and the paper derives their iteration counts "from the CPU
//! implementation". The CSR functions ([`conjugate_gradient`],
//! [`preconditioned_cg`], [`bicgstab`]) are that CPU implementation: the
//! `baselines` crate calls them to measure iteration counts on the exact
//! assembled matrix.
//!
//! The *default* path, however, is matrix-free: [`operator_cg`],
//! [`operator_pcg`] and [`operator_bicgstab`] run the same recurrences in
//! grid space, applying `A = I - S` through [`StencilOp::apply`] — the
//! answer to the paper's §3.2.1 criticism of the `SpMV` formulation ("it
//! requires storing a large and sparse matrix"). Memory stays at a few
//! solution-sized grids, and variable-coefficient operators
//! ([`CoefficientField`](crate::ops::CoefficientField)) plug in with no
//! new solver code. All vector algebra goes through the fixed-order
//! [`crate::ops`] primitives, so residual histories are reproducible.

use crate::engine::{SolveEngine, StepOutcome};
use crate::grid::Grid2D;
use crate::ops::{self, StencilOp};
use crate::pde::StencilProblem;
use crate::precision::Scalar;
use crate::sparse::CsrMatrix;
use core::fmt;

use ops::{axpy, dot, norm, xpby};

/// Outcome of a Krylov solve.
#[derive(Clone, Debug)]
#[must_use]
pub struct KrylovResult {
    /// The solution vector (interior unknowns, row-major order).
    pub solution: Vec<f64>,
    /// Completed iterations.
    pub iterations: usize,
    /// Whether the residual tolerance was met.
    pub converged: bool,
    /// `||r||_2` after each iteration.
    pub residual_history: Vec<f64>,
}

impl KrylovResult {
    /// Final residual norm (or the initial one if no iteration ran).
    pub fn final_residual(&self) -> f64 {
        self.residual_history.last().copied().unwrap_or(0.0)
    }
}

impl fmt::Display for KrylovResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} iterations, residual {:.3e}, converged: {}",
            self.iterations,
            self.final_residual(),
            self.converged
        )
    }
}

/// Conjugate gradient for symmetric positive-definite `A` in CSR form —
/// the differential oracle for [`operator_cg`].
///
/// Stops when `||r|| <= tol * ||b||` (relative) or after `max_iters`.
///
/// # Panics
///
/// Panics if `A` is not square or `b` has the wrong length.
pub fn conjugate_gradient(a: &CsrMatrix, b: &[f64], tol: f64, max_iters: usize) -> KrylovResult {
    assert_eq!(a.rows(), a.cols(), "CG needs a square matrix");
    assert_eq!(b.len(), a.rows(), "rhs length mismatch");
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rs_old = dot(&r, &r);
    let b_norm = norm(b).max(f64::MIN_POSITIVE);
    let mut history = Vec::new();
    let mut ap = vec![0.0; n];

    for k in 0..max_iters {
        if rs_old.sqrt() <= tol * b_norm {
            return KrylovResult {
                solution: x,
                iterations: k,
                converged: true,
                residual_history: history,
            };
        }
        a.spmv_into(&p, &mut ap);
        let alpha = rs_old / dot(&p, &ap);
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rs_new = dot(&r, &r);
        history.push(rs_new.sqrt());
        let beta = rs_new / rs_old;
        xpby(&r, beta, &mut p);
        rs_old = rs_new;
    }
    let converged = rs_old.sqrt() <= tol * b_norm;
    KrylovResult {
        solution: x,
        iterations: max_iters,
        converged,
        residual_history: history,
    }
}

/// Jacobi-(diagonally-)preconditioned conjugate gradient — the PCG method
/// Alrescha implements. CSR oracle for [`operator_pcg`].
///
/// Stops when `||r|| <= tol * ||b||` or after `max_iters`.
///
/// # Panics
///
/// Panics if `A` is not square, `b` has the wrong length, or any diagonal
/// entry is zero.
pub fn preconditioned_cg(a: &CsrMatrix, b: &[f64], tol: f64, max_iters: usize) -> KrylovResult {
    assert_eq!(a.rows(), a.cols(), "PCG needs a square matrix");
    assert_eq!(b.len(), a.rows(), "rhs length mismatch");
    let n = b.len();
    let diag = a.diagonal();
    assert!(
        diag.iter().all(|&d| d != 0.0),
        "Jacobi preconditioner needs a nonzero diagonal"
    );
    let precond = |r: &[f64], z: &mut Vec<f64>| {
        z.clear();
        z.extend(r.iter().zip(&diag).map(|(ri, di)| ri / di));
    };

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = Vec::with_capacity(n);
    precond(&r, &mut z);
    let mut p = z.clone();
    let mut rz_old = dot(&r, &z);
    let b_norm = norm(b).max(f64::MIN_POSITIVE);
    let mut history = Vec::new();
    let mut ap = vec![0.0; n];

    for k in 0..max_iters {
        if norm(&r) <= tol * b_norm {
            return KrylovResult {
                solution: x,
                iterations: k,
                converged: true,
                residual_history: history,
            };
        }
        a.spmv_into(&p, &mut ap);
        let alpha = rz_old / dot(&p, &ap);
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        history.push(norm(&r));
        precond(&r, &mut z);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz_old;
        xpby(&z, beta, &mut p);
        rz_old = rz_new;
    }
    let converged = norm(&r) <= tol * b_norm;
    KrylovResult {
        solution: x,
        iterations: max_iters,
        converged,
        residual_history: history,
    }
}

/// BiCG-STAB for general square systems — the method `MemAccel`
/// implements. CSR oracle for [`operator_bicgstab`].
///
/// Stops when `||r|| <= tol * ||b||` or after `max_iters`.
///
/// # Panics
///
/// Panics if `A` is not square or `b` has the wrong length.
pub fn bicgstab(a: &CsrMatrix, b: &[f64], tol: f64, max_iters: usize) -> KrylovResult {
    assert_eq!(a.rows(), a.cols(), "BiCG-STAB needs a square matrix");
    assert_eq!(b.len(), a.rows(), "rhs length mismatch");
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let r_hat = r.clone();
    let mut rho_old = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let b_norm = norm(b).max(f64::MIN_POSITIVE);
    let mut history = Vec::new();
    let mut s = vec![0.0; n];
    let mut t = vec![0.0; n];

    for k in 0..max_iters {
        if norm(&r) <= tol * b_norm {
            return KrylovResult {
                solution: x,
                iterations: k,
                converged: true,
                residual_history: history,
            };
        }
        let rho = dot(&r_hat, &r);
        if rho == 0.0 {
            // Breakdown; return what we have.
            return KrylovResult {
                solution: x,
                iterations: k,
                converged: false,
                residual_history: history,
            };
        }
        let beta = (rho / rho_old) * (alpha / omega);
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        a.spmv_into(&p, &mut v);
        alpha = rho / dot(&r_hat, &v);
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        if norm(&s) <= tol * b_norm {
            axpy(alpha, &p, &mut x);
            history.push(norm(&s));
            return KrylovResult {
                solution: x,
                iterations: k + 1,
                converged: true,
                residual_history: history,
            };
        }
        a.spmv_into(&s, &mut t);
        omega = dot(&t, &s) / dot(&t, &t);
        for i in 0..n {
            x[i] += alpha * p[i] + omega * s[i];
            r[i] = s[i] - omega * t[i];
        }
        history.push(norm(&r));
        rho_old = rho;
    }
    let converged = norm(&r) <= tol * b_norm;
    KrylovResult {
        solution: x,
        iterations: max_iters,
        converged,
        residual_history: history,
    }
}

// ---------------------------------------------------------------------------
// Matrix-free operator path: the default route, in grid space.
// ---------------------------------------------------------------------------

/// Conjugate gradient on a matrix-free [`StencilOp`], entirely in grid
/// space. `b` must carry a zero boundary ring (as produced by
/// [`StencilOp::dirichlet_rhs`]); the returned solution grid has a zero
/// ring too — use [`ops::embed_interior`] to scatter it back onto its
/// Dirichlet boundary.
///
/// Same recurrence, stop rule and fold order as [`conjugate_gradient`];
/// the two differ only in how `A·p` is evaluated.
///
/// # Panics
///
/// Panics when `b` does not match the operator's dimensions.
pub fn operator_cg(
    op: &StencilOp<f64>,
    b: &Grid2D<f64>,
    tol: f64,
    max_iters: usize,
) -> (Grid2D<f64>, KrylovResult) {
    let (rows, cols) = (op.rows(), op.cols());
    let mut x = Grid2D::zeros(rows, cols);
    let mut r = b.clone();
    let mut p = r.clone();
    let mut ap = Grid2D::zeros(rows, cols);
    let mut rs_old = dot(r.as_slice(), r.as_slice());
    let b_norm = norm(b.as_slice()).max(f64::MIN_POSITIVE);
    let mut history = Vec::new();
    let mut iterations = max_iters;
    let mut converged = false;

    for k in 0..max_iters {
        if rs_old.sqrt() <= tol * b_norm {
            iterations = k;
            converged = true;
            break;
        }
        op.apply(&p, &mut ap);
        let alpha = rs_old / dot(p.as_slice(), ap.as_slice());
        axpy(alpha, p.as_slice(), x.as_mut_slice());
        axpy(-alpha, ap.as_slice(), r.as_mut_slice());
        let rs_new = dot(r.as_slice(), r.as_slice());
        history.push(rs_new.sqrt());
        let beta = rs_new / rs_old;
        xpby(r.as_slice(), beta, p.as_mut_slice());
        rs_old = rs_new;
    }
    if !converged {
        converged = rs_old.sqrt() <= tol * b_norm;
    }
    let result = KrylovResult {
        solution: ops::interior_to_vec(&x),
        iterations,
        converged,
        residual_history: history,
    };
    (x, result)
}

/// Jacobi-preconditioned CG on a matrix-free [`StencilOp`] (grid space,
/// zero-ring `b`). The preconditioner divides by [`StencilOp::diagonal`],
/// whose ring is filled with ones so the zero ring passes through
/// untouched.
///
/// # Panics
///
/// Panics on dimension mismatches or a zero diagonal entry.
pub fn operator_pcg(
    op: &StencilOp<f64>,
    b: &Grid2D<f64>,
    tol: f64,
    max_iters: usize,
) -> (Grid2D<f64>, KrylovResult) {
    let (rows, cols) = (op.rows(), op.cols());
    let diag = op.diagonal();
    assert!(
        diag.as_slice().iter().all(|&d| d != 0.0),
        "Jacobi preconditioner needs a nonzero diagonal"
    );
    let precond = |r: &Grid2D<f64>, z: &mut Grid2D<f64>| {
        for ((zi, ri), di) in z
            .as_mut_slice()
            .iter_mut()
            .zip(r.as_slice())
            .zip(diag.as_slice())
        {
            *zi = ri / di;
        }
    };

    let mut x = Grid2D::zeros(rows, cols);
    let mut r = b.clone();
    let mut z = Grid2D::zeros(rows, cols);
    precond(&r, &mut z);
    let mut p = z.clone();
    let mut ap = Grid2D::zeros(rows, cols);
    let mut rz_old = dot(r.as_slice(), z.as_slice());
    let b_norm = norm(b.as_slice()).max(f64::MIN_POSITIVE);
    let mut history = Vec::new();
    let mut iterations = max_iters;
    let mut converged = false;

    for k in 0..max_iters {
        if norm(r.as_slice()) <= tol * b_norm {
            iterations = k;
            converged = true;
            break;
        }
        op.apply(&p, &mut ap);
        let alpha = rz_old / dot(p.as_slice(), ap.as_slice());
        axpy(alpha, p.as_slice(), x.as_mut_slice());
        axpy(-alpha, ap.as_slice(), r.as_mut_slice());
        history.push(norm(r.as_slice()));
        precond(&r, &mut z);
        let rz_new = dot(r.as_slice(), z.as_slice());
        let beta = rz_new / rz_old;
        xpby(z.as_slice(), beta, p.as_mut_slice());
        rz_old = rz_new;
    }
    if !converged {
        converged = norm(r.as_slice()) <= tol * b_norm;
    }
    let result = KrylovResult {
        solution: ops::interior_to_vec(&x),
        iterations,
        converged,
        residual_history: history,
    };
    (x, result)
}

/// BiCG-STAB on a matrix-free [`StencilOp`] (grid space, zero-ring `b`).
///
/// # Panics
///
/// Panics when `b` does not match the operator's dimensions.
pub fn operator_bicgstab(
    op: &StencilOp<f64>,
    b: &Grid2D<f64>,
    tol: f64,
    max_iters: usize,
) -> (Grid2D<f64>, KrylovResult) {
    let (rows, cols) = (op.rows(), op.cols());
    let mut x = Grid2D::zeros(rows, cols);
    let mut r = b.clone();
    let r_hat = r.clone();
    let mut rho_old = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;
    let mut v = Grid2D::zeros(rows, cols);
    let mut p = Grid2D::zeros(rows, cols);
    let mut s = Grid2D::zeros(rows, cols);
    let mut t = Grid2D::zeros(rows, cols);
    let b_norm = norm(b.as_slice()).max(f64::MIN_POSITIVE);
    let mut history = Vec::new();
    let mut iterations = max_iters;
    let mut converged = false;

    for k in 0..max_iters {
        if norm(r.as_slice()) <= tol * b_norm {
            iterations = k;
            converged = true;
            break;
        }
        let rho = dot(r_hat.as_slice(), r.as_slice());
        if rho == 0.0 {
            // Breakdown; return what we have.
            iterations = k;
            break;
        }
        let beta = (rho / rho_old) * (alpha / omega);
        for (pi, (ri, vi)) in p
            .as_mut_slice()
            .iter_mut()
            .zip(r.as_slice().iter().zip(v.as_slice()))
        {
            *pi = ri + beta * (*pi - omega * vi);
        }
        op.apply(&p, &mut v);
        alpha = rho / dot(r_hat.as_slice(), v.as_slice());
        for (si, (ri, vi)) in s
            .as_mut_slice()
            .iter_mut()
            .zip(r.as_slice().iter().zip(v.as_slice()))
        {
            *si = ri - alpha * vi;
        }
        if norm(s.as_slice()) <= tol * b_norm {
            axpy(alpha, p.as_slice(), x.as_mut_slice());
            history.push(norm(s.as_slice()));
            iterations = k + 1;
            converged = true;
            break;
        }
        op.apply(&s, &mut t);
        omega = dot(t.as_slice(), s.as_slice()) / dot(t.as_slice(), t.as_slice());
        for (((xi, ri), pi), (si, ti)) in x
            .as_mut_slice()
            .iter_mut()
            .zip(r.as_mut_slice().iter_mut())
            .zip(p.as_slice())
            .zip(s.as_slice().iter().zip(t.as_slice()))
        {
            *xi += alpha * pi + omega * si;
            *ri = si - omega * ti;
        }
        history.push(norm(r.as_slice()));
        rho_old = rho;
    }
    if !converged {
        converged = norm(r.as_slice()) <= tol * b_norm;
    }
    let result = KrylovResult {
        solution: ops::interior_to_vec(&x),
        iterations,
        converged,
        residual_history: history,
    };
    (x, result)
}

/// Matrix-free conjugate gradient directly on a steady-state
/// [`StencilProblem`] — no assembled CSR matrix. Builds the operator and
/// right-hand side through [`StencilOp`], runs [`operator_cg`] in f64,
/// and scatters the interior solution back onto the problem's Dirichlet
/// boundary.
///
/// # Panics
///
/// Panics if the problem is time-dependent (`ScaledPrevField` offset or
/// nonzero self weight).
pub fn matrix_free_cg<T: Scalar>(
    problem: &StencilProblem<T>,
    tol: f64,
    max_iters: usize,
) -> (Grid2D<T>, KrylovResult) {
    let (op, b) = steady_operator(problem, "matrix-free CG");
    let (x, result) = operator_cg(&op, &b, tol, max_iters);
    (ops::embed_interior(&x, &problem.initial), result)
}

/// Matrix-free Jacobi-preconditioned CG on a steady-state problem (see
/// [`matrix_free_cg`]).
///
/// # Panics
///
/// Panics if the problem is time-dependent.
pub fn matrix_free_pcg<T: Scalar>(
    problem: &StencilProblem<T>,
    tol: f64,
    max_iters: usize,
) -> (Grid2D<T>, KrylovResult) {
    let (op, b) = steady_operator(problem, "matrix-free PCG");
    let (x, result) = operator_pcg(&op, &b, tol, max_iters);
    (ops::embed_interior(&x, &problem.initial), result)
}

/// Matrix-free BiCG-STAB on a steady-state problem (see
/// [`matrix_free_cg`]).
///
/// # Panics
///
/// Panics if the problem is time-dependent.
pub fn matrix_free_bicgstab<T: Scalar>(
    problem: &StencilProblem<T>,
    tol: f64,
    max_iters: usize,
) -> (Grid2D<T>, KrylovResult) {
    let (op, b) = steady_operator(problem, "matrix-free BiCG-STAB");
    let (x, result) = operator_bicgstab(&op, &b, tol, max_iters);
    (ops::embed_interior(&x, &problem.initial), result)
}

/// Lowers a steady-state problem to its f64 operator + zero-ring RHS.
fn steady_operator<T: Scalar>(
    problem: &StencilProblem<T>,
    who: &str,
) -> (StencilOp<f64>, Grid2D<f64>) {
    assert!(
        problem.is_steady_state(),
        "{who} targets steady-state problems"
    );
    let p64 = problem.convert::<f64>();
    let op = StencilOp::from_problem(&p64);
    let b = op.dirichlet_rhs(&p64.offset, &p64.initial);
    (op, b)
}

/// Matrix-free conjugate gradients as a [`SolveEngine`]: one step is one
/// CG iteration, reporting the absolute residual norm `||b - A·u||_2`
/// (the same convergence measure [`crate::solver::multigrid::MultigridEngine`]
/// reports).
///
/// The Krylov state (`x`, `r`, `p`) is held on zero-ring f64 grids and
/// never assembled into a matrix, so the engine's memory footprint is
/// four grids regardless of problem size. The engine does not checkpoint
/// — conjugacy of the search directions cannot be resumed from a field
/// snapshot — so a supervising [`Session`](crate::engine::Session)
/// treats any detected fault as terminal and orchestration layers fall
/// through to the next method in their chain.
#[derive(Debug)]
pub struct KrylovEngine<T: Scalar> {
    /// Boundary frame the solution embeds into.
    frame: Grid2D<T>,
    op: StencilOp<f64>,
    x: Grid2D<f64>,
    r: Grid2D<f64>,
    p: Grid2D<f64>,
    ap: Grid2D<f64>,
    rs_old: f64,
    iterations: usize,
}

impl<T: Scalar> KrylovEngine<T> {
    /// Prepares a CG engine on `problem`, lowering it to the f64
    /// operator form (`x0 = 0`, `r = p = b`).
    ///
    /// # Panics
    ///
    /// Panics if the problem is time-dependent — Krylov methods here
    /// target steady-state problems.
    pub fn new(problem: &StencilProblem<T>) -> Self {
        let (op, b) = steady_operator(problem, "the Krylov engine");
        let rs_old = dot(b.as_slice(), b.as_slice());
        let x = Grid2D::zeros(b.rows(), b.cols());
        let ap = Grid2D::zeros(b.rows(), b.cols());
        KrylovEngine {
            frame: problem.initial.clone(),
            op,
            x,
            p: b.clone(),
            r: b,
            ap,
            rs_old,
            iterations: 0,
        }
    }

    /// The residual norm `||b - A·u||_2` of the current iterate.
    pub fn residual_norm(&self) -> f64 {
        self.rs_old.sqrt()
    }

    /// The current iterate, embedded into the problem's boundary frame.
    pub fn solution(&self) -> Grid2D<T> {
        ops::embed_interior(&self.x, &self.frame)
    }

    /// Consumes the engine, returning the final embedded iterate.
    #[must_use]
    pub fn into_solution(self) -> Grid2D<T> {
        self.solution()
    }
}

impl<T: Scalar> SolveEngine for KrylovEngine<T> {
    fn step(&mut self) -> StepOutcome {
        if self.rs_old == 0.0 {
            // Exactly converged (e.g. a zero right-hand side): stepping
            // further would divide 0/0, so report the exact zero residual
            // and let the stop condition fire.
            self.iterations += 1;
            return StepOutcome::clean(0.0);
        }
        self.op.apply(&self.p, &mut self.ap);
        let alpha = self.rs_old / dot(self.p.as_slice(), self.ap.as_slice());
        axpy(alpha, self.p.as_slice(), self.x.as_mut_slice());
        axpy(-alpha, self.ap.as_slice(), self.r.as_mut_slice());
        let rs_new = dot(self.r.as_slice(), self.r.as_slice());
        xpby(
            self.r.as_slice(),
            rs_new / self.rs_old,
            self.p.as_mut_slice(),
        );
        self.rs_old = rs_new;
        self.iterations += 1;
        // A breakdown (indefinite operator, p'Ap = 0) surfaces here as a
        // NaN/Inf norm, which the session converts into a structured
        // `NonFinite` error.
        StepOutcome::clean(rs_new.sqrt())
    }

    fn iterations(&self) -> usize {
        self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::DirichletBoundary;
    use crate::pde::LaplaceProblem;
    use crate::sparse::StencilSystem;

    fn laplace_system(n: usize) -> StencilSystem {
        let p = LaplaceProblem::builder(n, n)
            .boundary(DirichletBoundary::hot_top(1.0))
            .build()
            .unwrap();
        StencilSystem::assemble(&p.discretize::<f64>()).unwrap()
    }

    #[test]
    fn cg_solves_laplace_system() {
        let sys = laplace_system(12);
        let r = conjugate_gradient(&sys.matrix, &sys.rhs, 1e-10, 10_000);
        assert!(r.converged, "{r}");
        assert!(sys.residual_norm(&r.solution) < 1e-8);
    }

    #[test]
    fn pcg_solves_and_is_no_slower_than_cg_in_iterations() {
        let sys = laplace_system(16);
        let cg = conjugate_gradient(&sys.matrix, &sys.rhs, 1e-10, 10_000);
        let pcg = preconditioned_cg(&sys.matrix, &sys.rhs, 1e-10, 10_000);
        assert!(pcg.converged);
        assert!(sys.residual_norm(&pcg.solution) < 1e-8);
        // With a unit diagonal, Jacobi preconditioning is the identity:
        // the counts match within a couple of iterations.
        assert!((pcg.iterations as i64 - cg.iterations as i64).abs() <= 2);
    }

    #[test]
    fn bicgstab_solves_laplace_system() {
        let sys = laplace_system(12);
        let r = bicgstab(&sys.matrix, &sys.rhs, 1e-10, 10_000);
        assert!(r.converged, "{r}");
        assert!(sys.residual_norm(&r.solution) < 1e-7);
    }

    #[test]
    fn krylov_converges_faster_than_jacobi() {
        // The well-known ordering the paper leans on in §7.2: CG-type
        // methods need far fewer iterations than stationary methods.
        use crate::convergence::StopCondition;
        use crate::solver::{solve, UpdateMethod};
        let p = LaplaceProblem::builder(24, 24)
            .boundary(DirichletBoundary::hot_top(1.0))
            .build()
            .unwrap();
        let sp = p.discretize::<f64>();
        let sys = StencilSystem::assemble(&sp).unwrap();
        let jacobi = solve(
            &sp,
            UpdateMethod::Jacobi,
            &StopCondition::tolerance(1e-8, 100_000),
        );
        let cg = conjugate_gradient(&sys.matrix, &sys.rhs, 1e-8, 10_000);
        assert!(cg.iterations * 5 < jacobi.iterations());
    }

    #[test]
    fn krylov_and_relaxation_agree_on_the_solution() {
        use crate::convergence::StopCondition;
        use crate::solver::{solve, UpdateMethod};
        let p = LaplaceProblem::builder(10, 10)
            .boundary(DirichletBoundary::sine_top(1.0))
            .build()
            .unwrap();
        let sp = p.discretize::<f64>();
        let sys = StencilSystem::assemble(&sp).unwrap();
        let gs = solve(
            &sp,
            UpdateMethod::GaussSeidel,
            &StopCondition::tolerance(1e-12, 500_000),
        );
        let cg = conjugate_gradient(&sys.matrix, &sys.rhs, 1e-12, 10_000);
        let grid = sys.to_grid(&cg.solution, &sp.initial);
        assert!(gs.solution().diff_max(&grid) < 1e-8);
    }

    #[test]
    fn bicgstab_handles_nonsymmetric_system() {
        // Small nonsymmetric diagonally dominant system.
        let a = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 4.0),
                (0, 1, 1.0),
                (1, 0, 2.0),
                (1, 1, 5.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 2, 3.0),
            ],
        );
        let b = vec![6.0, 14.0, 7.0];
        let r = bicgstab(&a, &b, 1e-12, 100);
        assert!(r.converged);
        let ax = a.spmv(&r.solution);
        for (got, want) in ax.iter().zip(&b) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let sys = laplace_system(8);
        let zero = vec![0.0; sys.rhs.len()];
        let r = conjugate_gradient(&sys.matrix, &zero, 1e-10, 100);
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
        assert!(r.solution.iter().all(|&v| v == 0.0));
        let r = bicgstab(&sys.matrix, &zero, 1e-10, 100);
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn cg_requires_square() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]);
        let _ = conjugate_gradient(&a, &[1.0, 2.0], 1e-6, 10);
    }

    #[test]
    fn matrix_free_cg_matches_assembled_cg() {
        let p = LaplaceProblem::builder(14, 11)
            .boundary(DirichletBoundary::sine_top(1.0))
            .build()
            .unwrap();
        let sp = p.discretize::<f64>();
        let sys = StencilSystem::assemble(&sp).unwrap();
        let assembled = conjugate_gradient(&sys.matrix, &sys.rhs, 1e-12, 10_000);
        let (grid, mf) = matrix_free_cg(&sp, 1e-12, 10_000);
        assert!(mf.converged, "{mf}");
        // Same operator, same rhs: iteration counts match exactly and
        // solutions agree to solver tolerance.
        assert_eq!(mf.iterations, assembled.iterations);
        let assembled_grid = sys.to_grid(&assembled.solution, &sp.initial);
        assert!(grid.diff_max(&assembled_grid) < 1e-9);
        // Boundary preserved.
        assert_eq!(grid[(0, 5)], sp.initial[(0, 5)]);
    }

    #[test]
    fn matrix_free_pcg_and_bicgstab_match_their_csr_oracles() {
        let p = LaplaceProblem::builder(13, 12)
            .boundary(DirichletBoundary::sine_top(1.0))
            .build()
            .unwrap();
        let sp = p.discretize::<f64>();
        let sys = StencilSystem::assemble(&sp).unwrap();

        let pcg_csr = preconditioned_cg(&sys.matrix, &sys.rhs, 1e-11, 10_000);
        let (pcg_grid, pcg_mf) = matrix_free_pcg(&sp, 1e-11, 10_000);
        assert!(pcg_mf.converged, "{pcg_mf}");
        assert_eq!(pcg_mf.iterations, pcg_csr.iterations);
        assert!(pcg_grid.diff_max(&sys.to_grid(&pcg_csr.solution, &sp.initial)) < 1e-9);

        let bi_csr = bicgstab(&sys.matrix, &sys.rhs, 1e-11, 10_000);
        let (bi_grid, bi_mf) = matrix_free_bicgstab(&sp, 1e-11, 10_000);
        assert!(bi_mf.converged, "{bi_mf}");
        assert!((bi_mf.iterations as i64 - bi_csr.iterations as i64).abs() <= 1);
        assert!(bi_grid.diff_max(&sys.to_grid(&bi_csr.solution, &sp.initial)) < 1e-8);
    }

    #[test]
    fn operator_cg_solves_a_variable_coefficient_poisson_problem() {
        use crate::ops::CoefficientField;
        // -div(k grad u) = f with k(x, y) = 1 + 4x: same solver, new data.
        let n = 17;
        let coeff = CoefficientField::diffusion(n, n, |x, _| 1.0 + 4.0 * x);
        let op = StencilOp::new(n, n, coeff).unwrap();
        let mut b = Grid2D::zeros(n, n);
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                b[(i, j)] = 1.0;
            }
        }
        let (x, r) = operator_cg(&op, &b, 1e-10, 10_000);
        assert!(r.converged, "{r}");
        // Residual of the returned grid vanishes through the operator.
        let mut res = Grid2D::zeros(n, n);
        let norm2 = op.residual_axpy(
            &crate::pde::OffsetField::Static(b.clone()),
            None,
            &x,
            &mut res,
        );
        assert!(norm2.sqrt() < 1e-8, "residual {}", norm2.sqrt());
        // A positive source with zero boundary heats the interior.
        assert!(x[(n / 2, n / 2)] > 0.0);
    }

    #[test]
    fn matrix_free_cg_solves_poisson_with_source() {
        use crate::pde::PoissonProblem;
        let sp = PoissonProblem::builder(20, 20)
            .source_fn(|x, y| (x - y) * 2.0)
            .build()
            .unwrap()
            .discretize::<f64>();
        let (grid, r) = matrix_free_cg(&sp, 1e-11, 10_000);
        assert!(r.converged);
        // The fixed-point residual of the returned grid vanishes.
        let res = crate::solver::fixed_point_residual_norm(&sp, &grid);
        assert!(res < 1e-8, "residual {res}");
    }

    #[test]
    #[should_panic(expected = "steady-state")]
    fn matrix_free_cg_rejects_time_dependent() {
        use crate::pde::HeatProblem;
        let sp = HeatProblem::builder(8, 8)
            .time(0.2, 3)
            .build()
            .unwrap()
            .discretize::<f64>();
        let _ = matrix_free_cg(&sp, 1e-6, 10);
    }

    #[test]
    fn krylov_engine_session_matches_matrix_free_cg() {
        use crate::convergence::StopCondition;
        use crate::engine::Session;
        let p = LaplaceProblem::builder(14, 11)
            .boundary(DirichletBoundary::sine_top(1.0))
            .build()
            .unwrap();
        let sp = p.discretize::<f64>();
        let (direct, result) = matrix_free_cg(&sp, 1e-10, 10_000);
        assert!(result.converged);

        let engine = KrylovEngine::new(&sp);
        let mut session = Session::new(engine, StopCondition::tolerance(1e-12, 10_000));
        let met = session.run().expect("SPD Laplace system cannot break down");
        assert!(met, "session-driven CG did not converge");
        let (engine, history) = session.into_parts();
        assert_eq!(engine.iterations(), history.len());
        assert!(
            engine.solution().diff_max(&direct) < 1e-9,
            "session-driven CG disagrees with matrix_free_cg"
        );
        // The embedded solution keeps the Dirichlet ring.
        assert_eq!(engine.solution().row(0), sp.initial.row(0));
    }

    #[test]
    fn krylov_engine_survives_a_zero_rhs() {
        // Zero boundary, zero source: x0 = 0 is exact; the rs_old == 0
        // guard must report convergence instead of dividing 0/0.
        let sp = LaplaceProblem::builder(8, 8)
            .build()
            .unwrap()
            .discretize::<f64>();
        let mut engine = KrylovEngine::new(&sp);
        assert_eq!(engine.residual_norm(), 0.0);
        let out = engine.step();
        assert_eq!(out.norm, Some(0.0));
        assert_eq!(engine.iterations(), 1);
    }

    #[test]
    #[should_panic(expected = "steady-state")]
    fn krylov_engine_rejects_time_dependent() {
        use crate::pde::HeatProblem;
        let sp = HeatProblem::builder(8, 8)
            .time(0.2, 3)
            .build()
            .unwrap()
            .discretize::<f64>();
        let _ = KrylovEngine::new(&sp);
    }
}
