//! Krylov-subspace solvers on CSR systems: CG, Jacobi-preconditioned CG
//! (PCG) and BiCG-STAB.
//!
//! The paper's baseline accelerators solve the FDM linear system with
//! these methods — Alrescha uses PCG, `MemAccel` uses BiCG-STAB (§3.2.2,
//! §6.4) — and the paper derives their iteration counts "from the CPU
//! implementation". These functions are that CPU implementation: the
//! baseline models in the `baselines` crate call them to measure how many
//! iterations each method needs on each benchmark problem.

use crate::sparse::CsrMatrix;
use core::fmt;

/// Outcome of a Krylov solve.
#[derive(Clone, Debug)]
pub struct KrylovResult {
    /// The solution vector.
    pub solution: Vec<f64>,
    /// Completed iterations.
    pub iterations: usize,
    /// Whether the residual tolerance was met.
    pub converged: bool,
    /// `||r||_2` after each iteration.
    pub residual_history: Vec<f64>,
}

impl KrylovResult {
    /// Final residual norm (or the initial one if no iteration ran).
    pub fn final_residual(&self) -> f64 {
        self.residual_history.last().copied().unwrap_or(0.0)
    }
}

impl fmt::Display for KrylovResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} iterations, residual {:.3e}, converged: {}",
            self.iterations,
            self.final_residual(),
            self.converged
        )
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x`
fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Conjugate gradient for symmetric positive-definite `A`.
///
/// Stops when `||r|| <= tol * ||b||` (relative) or after `max_iters`.
///
/// # Panics
///
/// Panics if `A` is not square or `b` has the wrong length.
pub fn conjugate_gradient(a: &CsrMatrix, b: &[f64], tol: f64, max_iters: usize) -> KrylovResult {
    assert_eq!(a.rows(), a.cols(), "CG needs a square matrix");
    assert_eq!(b.len(), a.rows(), "rhs length mismatch");
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rs_old = dot(&r, &r);
    let b_norm = norm(b).max(f64::MIN_POSITIVE);
    let mut history = Vec::new();
    let mut ap = vec![0.0; n];

    for k in 0..max_iters {
        if rs_old.sqrt() <= tol * b_norm {
            return KrylovResult {
                solution: x,
                iterations: k,
                converged: true,
                residual_history: history,
            };
        }
        a.spmv_into(&p, &mut ap);
        let alpha = rs_old / dot(&p, &ap);
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rs_new = dot(&r, &r);
        history.push(rs_new.sqrt());
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    let converged = rs_old.sqrt() <= tol * b_norm;
    KrylovResult {
        solution: x,
        iterations: max_iters,
        converged,
        residual_history: history,
    }
}

/// Jacobi-(diagonally-)preconditioned conjugate gradient — the PCG method
/// Alrescha implements.
///
/// Stops when `||r|| <= tol * ||b||` or after `max_iters`.
///
/// # Panics
///
/// Panics if `A` is not square, `b` has the wrong length, or any diagonal
/// entry is zero.
pub fn preconditioned_cg(a: &CsrMatrix, b: &[f64], tol: f64, max_iters: usize) -> KrylovResult {
    assert_eq!(a.rows(), a.cols(), "PCG needs a square matrix");
    assert_eq!(b.len(), a.rows(), "rhs length mismatch");
    let n = b.len();
    let diag = a.diagonal();
    assert!(
        diag.iter().all(|&d| d != 0.0),
        "Jacobi preconditioner needs a nonzero diagonal"
    );
    let precond = |r: &[f64], z: &mut Vec<f64>| {
        z.clear();
        z.extend(r.iter().zip(&diag).map(|(ri, di)| ri / di));
    };

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = Vec::with_capacity(n);
    precond(&r, &mut z);
    let mut p = z.clone();
    let mut rz_old = dot(&r, &z);
    let b_norm = norm(b).max(f64::MIN_POSITIVE);
    let mut history = Vec::new();
    let mut ap = vec![0.0; n];

    for k in 0..max_iters {
        if norm(&r) <= tol * b_norm {
            return KrylovResult {
                solution: x,
                iterations: k,
                converged: true,
                residual_history: history,
            };
        }
        a.spmv_into(&p, &mut ap);
        let alpha = rz_old / dot(&p, &ap);
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        history.push(norm(&r));
        precond(&r, &mut z);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz_old;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
        rz_old = rz_new;
    }
    let converged = norm(&r) <= tol * b_norm;
    KrylovResult {
        solution: x,
        iterations: max_iters,
        converged,
        residual_history: history,
    }
}

/// BiCG-STAB for general square systems — the method `MemAccel` implements.
///
/// Stops when `||r|| <= tol * ||b||` or after `max_iters`.
///
/// # Panics
///
/// Panics if `A` is not square or `b` has the wrong length.
pub fn bicgstab(a: &CsrMatrix, b: &[f64], tol: f64, max_iters: usize) -> KrylovResult {
    assert_eq!(a.rows(), a.cols(), "BiCG-STAB needs a square matrix");
    assert_eq!(b.len(), a.rows(), "rhs length mismatch");
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let r_hat = r.clone();
    let mut rho_old = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let b_norm = norm(b).max(f64::MIN_POSITIVE);
    let mut history = Vec::new();
    let mut s = vec![0.0; n];
    let mut t = vec![0.0; n];

    for k in 0..max_iters {
        if norm(&r) <= tol * b_norm {
            return KrylovResult {
                solution: x,
                iterations: k,
                converged: true,
                residual_history: history,
            };
        }
        let rho = dot(&r_hat, &r);
        if rho == 0.0 {
            // Breakdown; return what we have.
            return KrylovResult {
                solution: x,
                iterations: k,
                converged: false,
                residual_history: history,
            };
        }
        let beta = (rho / rho_old) * (alpha / omega);
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        a.spmv_into(&p, &mut v);
        alpha = rho / dot(&r_hat, &v);
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        if norm(&s) <= tol * b_norm {
            axpy(alpha, &p, &mut x);
            history.push(norm(&s));
            return KrylovResult {
                solution: x,
                iterations: k + 1,
                converged: true,
                residual_history: history,
            };
        }
        a.spmv_into(&s, &mut t);
        omega = dot(&t, &s) / dot(&t, &t);
        for i in 0..n {
            x[i] += alpha * p[i] + omega * s[i];
            r[i] = s[i] - omega * t[i];
        }
        history.push(norm(&r));
        rho_old = rho;
    }
    let converged = norm(&r) <= tol * b_norm;
    KrylovResult {
        solution: x,
        iterations: max_iters,
        converged,
        residual_history: history,
    }
}

/// Matrix-free conjugate gradient directly on a steady-state
/// [`StencilProblem`](crate::pde::StencilProblem) — no assembled CSR
/// matrix.
///
/// This is the answer to the paper's §3.2.1 criticism of the `SpMV`
/// formulation ("it requires storing a large and sparse matrix"): the
/// operator `A = I - S` is applied through the stencil itself, so memory
/// stays at a few solution-sized grids even for 10K x 10K problems.
///
/// Stops at `||r|| <= tol · ||b||`; returns the solution grid and the
/// iteration metadata.
///
/// # Panics
///
/// Panics if the problem is time-dependent (`ScaledPrevField` offset or
/// nonzero self weight).
pub fn matrix_free_cg<T: crate::precision::Scalar>(
    problem: &crate::pde::StencilProblem<T>,
    tol: f64,
    max_iters: usize,
) -> (crate::grid::Grid2D<T>, KrylovResult) {
    use crate::pde::OffsetField;
    assert!(
        !matches!(problem.offset, OffsetField::ScaledPrevField { .. })
            && problem.stencil.w_s == T::ZERO,
        "matrix-free CG targets steady-state problems"
    );
    let rows = problem.rows();
    let cols = problem.cols();
    let s = problem.stencil;
    let boundary = &problem.initial;
    let interior = (rows - 2) * (cols - 2);
    let idx = |i: usize, j: usize| (i - 1) * (cols - 2) + (j - 1);

    // rhs = c + S·(boundary ring contribution); unknowns are interior.
    let mut b = vec![0.0f64; interior];
    for i in 1..rows - 1 {
        for j in 1..cols - 1 {
            let mut v = match &problem.offset {
                OffsetField::None => 0.0,
                OffsetField::Static(c) => c[(i, j)].to_f64(),
                OffsetField::ScaledPrevField { .. } => unreachable!(),
            };
            if i == 1 {
                v += s.w_v.to_f64() * boundary[(0, j)].to_f64();
            }
            if i == rows - 2 {
                v += s.w_v.to_f64() * boundary[(rows - 1, j)].to_f64();
            }
            if j == 1 {
                v += s.w_h.to_f64() * boundary[(i, 0)].to_f64();
            }
            if j == cols - 2 {
                v += s.w_h.to_f64() * boundary[(i, cols - 1)].to_f64();
            }
            b[idx(i, j)] = v;
        }
    }

    // A·x applied through the stencil: (I - S)·x with zero ring.
    let w_v = s.w_v.to_f64();
    let w_h = s.w_h.to_f64();
    let apply = |x: &[f64], y: &mut [f64]| {
        for i in 1..rows - 1 {
            for j in 1..cols - 1 {
                let at = |ii: usize, jj: usize| -> f64 {
                    if ii == 0 || jj == 0 || ii == rows - 1 || jj == cols - 1 {
                        0.0
                    } else {
                        x[idx(ii, jj)]
                    }
                };
                y[idx(i, j)] = x[idx(i, j)]
                    - w_v * (at(i - 1, j) + at(i + 1, j))
                    - w_h * (at(i, j - 1) + at(i, j + 1));
            }
        }
    };

    // Standard CG on the matrix-free operator.
    let n = interior;
    let mut x = vec![0.0f64; n];
    let mut r = b.clone();
    let mut p = r.clone();
    let mut ap = vec![0.0f64; n];
    let mut rs_old = dot(&r, &r);
    let b_norm = norm(&b).max(f64::MIN_POSITIVE);
    let mut history = Vec::new();
    let mut iterations = max_iters;
    let mut converged = false;
    for k in 0..max_iters {
        if rs_old.sqrt() <= tol * b_norm {
            iterations = k;
            converged = true;
            break;
        }
        apply(&p, &mut ap);
        let alpha = rs_old / dot(&p, &ap);
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rs_new = dot(&r, &r);
        history.push(rs_new.sqrt());
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    if !converged {
        converged = rs_old.sqrt() <= tol * b_norm;
    }

    let mut grid = boundary.clone();
    for i in 1..rows - 1 {
        for j in 1..cols - 1 {
            grid[(i, j)] = T::from_f64(x[idx(i, j)]);
        }
    }
    (
        grid,
        KrylovResult {
            solution: x,
            iterations,
            converged,
            residual_history: history,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::DirichletBoundary;
    use crate::pde::LaplaceProblem;
    use crate::sparse::StencilSystem;

    fn laplace_system(n: usize) -> StencilSystem {
        let p = LaplaceProblem::builder(n, n)
            .boundary(DirichletBoundary::hot_top(1.0))
            .build()
            .unwrap();
        StencilSystem::assemble(&p.discretize::<f64>())
    }

    #[test]
    fn cg_solves_laplace_system() {
        let sys = laplace_system(12);
        let r = conjugate_gradient(&sys.matrix, &sys.rhs, 1e-10, 10_000);
        assert!(r.converged, "{r}");
        assert!(sys.residual_norm(&r.solution) < 1e-8);
    }

    #[test]
    fn pcg_solves_and_is_no_slower_than_cg_in_iterations() {
        let sys = laplace_system(16);
        let cg = conjugate_gradient(&sys.matrix, &sys.rhs, 1e-10, 10_000);
        let pcg = preconditioned_cg(&sys.matrix, &sys.rhs, 1e-10, 10_000);
        assert!(pcg.converged);
        assert!(sys.residual_norm(&pcg.solution) < 1e-8);
        // With a unit diagonal, Jacobi preconditioning is the identity:
        // the counts match within a couple of iterations.
        assert!((pcg.iterations as i64 - cg.iterations as i64).abs() <= 2);
    }

    #[test]
    fn bicgstab_solves_laplace_system() {
        let sys = laplace_system(12);
        let r = bicgstab(&sys.matrix, &sys.rhs, 1e-10, 10_000);
        assert!(r.converged, "{r}");
        assert!(sys.residual_norm(&r.solution) < 1e-7);
    }

    #[test]
    fn krylov_converges_faster_than_jacobi() {
        // The well-known ordering the paper leans on in §7.2: CG-type
        // methods need far fewer iterations than stationary methods.
        use crate::convergence::StopCondition;
        use crate::solver::{solve, UpdateMethod};
        let p = LaplaceProblem::builder(24, 24)
            .boundary(DirichletBoundary::hot_top(1.0))
            .build()
            .unwrap();
        let sp = p.discretize::<f64>();
        let sys = StencilSystem::assemble(&sp);
        let jacobi = solve(
            &sp,
            UpdateMethod::Jacobi,
            &StopCondition::tolerance(1e-8, 100_000),
        );
        let cg = conjugate_gradient(&sys.matrix, &sys.rhs, 1e-8, 10_000);
        assert!(cg.iterations * 5 < jacobi.iterations());
    }

    #[test]
    fn krylov_and_relaxation_agree_on_the_solution() {
        use crate::convergence::StopCondition;
        use crate::solver::{solve, UpdateMethod};
        let p = LaplaceProblem::builder(10, 10)
            .boundary(DirichletBoundary::sine_top(1.0))
            .build()
            .unwrap();
        let sp = p.discretize::<f64>();
        let sys = StencilSystem::assemble(&sp);
        let gs = solve(
            &sp,
            UpdateMethod::GaussSeidel,
            &StopCondition::tolerance(1e-12, 500_000),
        );
        let cg = conjugate_gradient(&sys.matrix, &sys.rhs, 1e-12, 10_000);
        let grid = sys.to_grid(&cg.solution, &sp.initial);
        assert!(gs.solution().diff_max(&grid) < 1e-8);
    }

    #[test]
    fn bicgstab_handles_nonsymmetric_system() {
        // Small nonsymmetric diagonally dominant system.
        let a = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 4.0),
                (0, 1, 1.0),
                (1, 0, 2.0),
                (1, 1, 5.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 2, 3.0),
            ],
        );
        let b = vec![6.0, 14.0, 7.0];
        let r = bicgstab(&a, &b, 1e-12, 100);
        assert!(r.converged);
        let ax = a.spmv(&r.solution);
        for (got, want) in ax.iter().zip(&b) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let sys = laplace_system(8);
        let zero = vec![0.0; sys.rhs.len()];
        let r = conjugate_gradient(&sys.matrix, &zero, 1e-10, 100);
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
        assert!(r.solution.iter().all(|&v| v == 0.0));
        let r = bicgstab(&sys.matrix, &zero, 1e-10, 100);
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn cg_requires_square() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]);
        let _ = conjugate_gradient(&a, &[1.0, 2.0], 1e-6, 10);
    }

    #[test]
    fn matrix_free_cg_matches_assembled_cg() {
        let p = LaplaceProblem::builder(14, 11)
            .boundary(DirichletBoundary::sine_top(1.0))
            .build()
            .unwrap();
        let sp = p.discretize::<f64>();
        let sys = StencilSystem::assemble(&sp);
        let assembled = conjugate_gradient(&sys.matrix, &sys.rhs, 1e-12, 10_000);
        let (grid, mf) = matrix_free_cg(&sp, 1e-12, 10_000);
        assert!(mf.converged, "{mf}");
        // Same operator, same rhs: iteration counts match exactly and
        // solutions agree to solver tolerance.
        assert_eq!(mf.iterations, assembled.iterations);
        let assembled_grid = sys.to_grid(&assembled.solution, &sp.initial);
        assert!(grid.diff_max(&assembled_grid) < 1e-9);
        // Boundary preserved.
        assert_eq!(grid[(0, 5)], sp.initial[(0, 5)]);
    }

    #[test]
    fn matrix_free_cg_solves_poisson_with_source() {
        use crate::pde::PoissonProblem;
        let sp = PoissonProblem::builder(20, 20)
            .source_fn(|x, y| (x - y) * 2.0)
            .build()
            .unwrap()
            .discretize::<f64>();
        let (grid, r) = matrix_free_cg(&sp, 1e-11, 10_000);
        assert!(r.converged);
        // The fixed-point residual of the returned grid vanishes.
        let res = crate::solver::fixed_point_residual_norm(&sp, &grid);
        assert!(res < 1e-8, "residual {res}");
    }

    #[test]
    #[should_panic(expected = "steady-state")]
    fn matrix_free_cg_rejects_time_dependent() {
        use crate::pde::HeatProblem;
        let sp = HeatProblem::builder(8, 8)
            .time(0.2, 3)
            .build()
            .unwrap()
            .discretize::<f64>();
        let _ = matrix_free_cg(&sp, 1e-6, 10);
    }
}
