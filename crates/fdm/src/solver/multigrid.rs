//! Geometric multigrid (V-cycle) for the steady-state five-point
//! problems — an extension beyond the paper.
//!
//! The paper's hardware accelerates stationary sweeps; a serious software
//! baseline for elliptic problems is geometric multigrid, which converges
//! in O(1) V-cycles independent of grid size. This module implements the
//! textbook components on the crate's fixed-point formulation
//! `u = S·u + c` (i.e. `A·u = c` with `A = I - S`, `S` the off-centre
//! stencil application):
//!
//! * **smoother**: selectable ([`Smoother`]) — Gauss-Seidel, the paper's
//!   Hybrid method (hardware-mappable, see
//!   [`MultigridConfig::hardware_mappable`]) or damped Jacobi — applied
//!   to the error equation `A·e = r` (whose fixed-point form is
//!   `e = S·e + r`);
//! * **restriction**: full weighting onto the `(n+1)/2` coarse grid;
//! * **prolongation**: bilinear interpolation;
//! * **coarse operator**: the same stencil weights — doubling both grid
//!   spacings leaves `w_v = dx²/(2(dx²+dy²))` and `w_h` unchanged.
//!
//! Coarsening requires odd grid dimensions (`n_f = 2·n_c - 1`); when a
//! level is even-sized or tiny the cycle bottoms out with extra smoothing
//! there. Errors live on zero-Dirichlet grids (the boundary is exact), so
//! every level works on homogeneous boundaries.

use crate::convergence::{ResidualHistory, StopCondition};
use crate::engine::{Session, SolveEngine, StepOutcome};
use crate::grid::Grid2D;
use crate::ops::{self, prolong_add, restrict, CoefficientField, StencilOp};
use crate::pde::{OffsetField, StencilProblem};
use crate::precision::Scalar;
use crate::solver::{sweep_damped_jacobi, sweep_gauss_seidel, sweep_hybrid, SolveResult};
use crate::stencil::FivePointStencil;

/// Which relaxation smooths each level.
///
/// Gauss-Seidel smooths best but is sequential; [`Smoother::Hybrid`] is
/// the paper's hardware method (a whole row updates in parallel), so a
/// V-cycle built on it maps directly onto the FDMAX array; damped Jacobi
/// is the fully parallel textbook smoother.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Smoother {
    /// Lexicographic Gauss-Seidel (software-only).
    GaussSeidel,
    /// The paper's Hybrid update (Eq. 8) — hardware-mappable.
    Hybrid,
    /// Damped Jacobi `e <- (1-omega)·e + omega·(S·e + r)` — fully
    /// parallel.
    DampedJacobi {
        /// Damping factor; 0.8 is the classic choice for the 2-D
        /// five-point Laplacian.
        omega: f64,
    },
}

/// Tuning knobs of the V-cycle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MultigridConfig {
    /// Smoothing sweeps before coarsening.
    pub pre_smooth: usize,
    /// Smoothing sweeps after the coarse correction.
    pub post_smooth: usize,
    /// Sweeps on the coarsest level.
    pub coarse_smooth: usize,
    /// Maximum recursion depth.
    pub max_levels: usize,
    /// The relaxation used on every level.
    pub smoother: Smoother,
}

impl Default for MultigridConfig {
    fn default() -> Self {
        MultigridConfig {
            pre_smooth: 2,
            post_smooth: 2,
            coarse_smooth: 30,
            max_levels: 12,
            smoother: Smoother::GaussSeidel,
        }
    }
}

impl MultigridConfig {
    /// The hardware-mappable configuration: Hybrid smoothing (the FDMAX
    /// update method) with an extra sweep per phase to compensate for
    /// its weaker smoothing factor.
    pub fn hardware_mappable() -> Self {
        MultigridConfig {
            pre_smooth: 3,
            post_smooth: 3,
            coarse_smooth: 60,
            smoother: Smoother::Hybrid,
            ..Self::default()
        }
    }
}

/// One smoothing sweep of `A·e = r` with the configured smoother.
fn smooth<T: Scalar>(
    smoother: Smoother,
    stencil: &FivePointStencil<T>,
    offset: &OffsetField<T>,
    e: &mut Grid2D<T>,
) {
    match smoother {
        Smoother::GaussSeidel => {
            sweep_gauss_seidel(stencil, offset, e, None);
        }
        Smoother::Hybrid => {
            let mut next = e.clone();
            sweep_hybrid(stencil, offset, e, None, &mut next);
            *e = next;
        }
        Smoother::DampedJacobi { omega } => {
            let mut next = e.clone();
            sweep_damped_jacobi(stencil, offset, e, None, &mut next, omega);
            *e = next;
        }
    }
}

/// `true` when a grid of this size can be coarsened one level.
fn can_coarsen(n: usize) -> bool {
    n >= 7 && n % 2 == 1
}

/// One V-cycle on `A·e = r` (zero-Dirichlet error grids).
///
/// The residual, restriction, prolongation and inter-grid scaling all go
/// through [`crate::ops`] — this module contributes only the cycle
/// structure and smoother scheduling.
fn vcycle<T: Scalar>(
    stencil: &FivePointStencil<T>,
    e: &mut Grid2D<T>,
    r: &Grid2D<T>,
    config: &MultigridConfig,
    level: usize,
) {
    let offset = OffsetField::Static(r.clone());
    let bottom = level + 1 >= config.max_levels || !can_coarsen(e.rows()) || !can_coarsen(e.cols());
    if bottom {
        for _ in 0..config.coarse_smooth {
            smooth(config.smoother, stencil, &offset, e);
        }
        return;
    }
    for _ in 0..config.pre_smooth {
        smooth(config.smoother, stencil, &offset, e);
    }
    let op = StencilOp::new(e.rows(), e.cols(), CoefficientField::Constant(*stencil))
        .expect("coarsenable levels always have an interior");
    let mut res = Grid2D::zeros(e.rows(), e.cols());
    let _ = op.residual_axpy(&offset, None, e, &mut res);
    let mut r_coarse = restrict(&res);
    // Inter-grid scaling: the fixed-point operator `I - S` equals
    // (dx²dy²/D)·(-Laplacian_h); doubling both spacings quadruples that
    // prefactor, so the coarse right-hand side carries a factor of 4.
    ops::scale(&mut r_coarse, T::from_f64(4.0));
    let mut e_coarse = Grid2D::zeros(r_coarse.rows(), r_coarse.cols());
    vcycle(stencil, &mut e_coarse, &r_coarse, config, level + 1);
    prolong_add(&e_coarse, e);
    for _ in 0..config.post_smooth {
        smooth(config.smoother, stencil, &offset, e);
    }
}

/// Solves a steady-state problem with V-cycles until the fixed-point
/// residual norm drops below the stop tolerance.
///
/// The iteration count in the result is the number of V-cycles; the
/// history records the residual norm after each cycle.
///
/// # Panics
///
/// Panics if the problem is time-dependent (`ScaledPrevField` offset or
/// nonzero self weight) — multigrid here targets the elliptic benchmarks.
pub fn solve_multigrid<T: Scalar>(
    problem: &StencilProblem<T>,
    config: &MultigridConfig,
    stop: &StopCondition,
) -> SolveResult<T> {
    let engine = MultigridEngine::new(problem, *config);
    // Already converged before the first cycle: report the initial
    // residual without spending a V-cycle.
    if stop.max_iterations() > 0 {
        let norm = engine.residual_norm();
        if stop.tolerance_value().is_some_and(|t| norm <= t) {
            let mut history = ResidualHistory::new();
            history.push(norm);
            return SolveResult::from_parts(engine.into_solution(), 0, history, true);
        }
    }
    let mut session = Session::new(engine, *stop);
    let met = session
        .run()
        .expect("budget-free session on a healthy problem cannot fail");
    let (engine, history) = session.into_parts();
    let cycles = engine.iterations();
    SolveResult::from_parts(engine.into_solution(), cycles, history, met)
}

/// Multigrid V-cycles as a [`SolveEngine`]: one step is one V-cycle.
///
/// The engine caches the outer fixed-point residual field of the current
/// iterate — it is both the convergence measure and the right-hand side
/// of the next cycle's error equation, so each is computed exactly once.
#[derive(Debug)]
pub struct MultigridEngine<'p, T: Scalar> {
    problem: &'p StencilProblem<T>,
    config: MultigridConfig,
    /// The outer fixed-point operator `A = I - S`, shared by every
    /// residual refresh.
    op: StencilOp<T>,
    u: Grid2D<T>,
    /// Residual field `r = c + S·u - u` of the current iterate.
    r: Grid2D<T>,
    /// L2 norm of `r` over the interior.
    norm: f64,
    cycles: usize,
}

impl<'p, T: Scalar> MultigridEngine<'p, T> {
    /// Prepares a V-cycle engine, computing the initial residual.
    ///
    /// # Panics
    ///
    /// Panics if the problem is time-dependent (`ScaledPrevField` offset
    /// or nonzero self weight) — multigrid here targets the elliptic
    /// benchmarks.
    pub fn new(problem: &'p StencilProblem<T>, config: MultigridConfig) -> Self {
        assert!(
            problem.is_steady_state(),
            "multigrid targets steady-state (elliptic) problems"
        );
        let u = problem.initial.clone();
        let r = Grid2D::zeros(u.rows(), u.cols());
        let mut engine = MultigridEngine {
            problem,
            config,
            op: StencilOp::from_problem(problem),
            u,
            r,
            norm: f64::INFINITY,
            cycles: 0,
        };
        engine.refresh_residual();
        engine
    }

    /// The fixed-point residual norm of the current iterate.
    pub fn residual_norm(&self) -> f64 {
        self.norm
    }

    /// The current iterate.
    pub fn solution(&self) -> &Grid2D<T> {
        &self.u
    }

    /// Consumes the engine, returning the final iterate.
    pub fn into_solution(self) -> Grid2D<T> {
        self.u
    }

    /// Recomputes `r = c + S·u - u` and its norm on the interior via the
    /// fused residual operator.
    fn refresh_residual(&mut self) {
        self.norm = self
            .op
            .residual_axpy(&self.problem.offset, None, &self.u, &mut self.r)
            .sqrt();
    }
}

impl<T: Scalar> SolveEngine for MultigridEngine<'_, T> {
    fn step(&mut self) -> StepOutcome {
        let mut e = Grid2D::zeros(self.u.rows(), self.u.cols());
        vcycle(&self.problem.stencil, &mut e, &self.r, &self.config, 0);
        ops::add_assign_interior(&mut self.u, &e);
        self.cycles += 1;
        self.refresh_residual();
        StepOutcome::clean(self.norm)
    }

    fn iterations(&self) -> usize {
        self.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::DirichletBoundary;
    use crate::pde::{LaplaceProblem, PoissonProblem};
    use crate::solver::{fixed_point_residual_norm, solve, UpdateMethod};

    fn laplace(n: usize) -> StencilProblem<f64> {
        LaplaceProblem::builder(n, n)
            .boundary(DirichletBoundary::sine_top(1.0))
            .build()
            .unwrap()
            .discretize::<f64>()
    }

    #[test]
    fn converges_in_a_handful_of_vcycles() {
        let sp = laplace(65);
        let r = solve_multigrid(
            &sp,
            &MultigridConfig::default(),
            &StopCondition::tolerance(1e-9, 50),
        );
        assert!(r.converged(), "did not converge: {:?}", r.history().last());
        assert!(
            r.iterations() <= 15,
            "multigrid should need ~10 cycles, took {}",
            r.iterations()
        );
        assert!(fixed_point_residual_norm(&sp, r.solution()) < 1e-8);
    }

    #[test]
    fn matches_gauss_seidel_solution() {
        let sp = laplace(33);
        let mg = solve_multigrid(
            &sp,
            &MultigridConfig::default(),
            &StopCondition::tolerance(1e-11, 60),
        );
        let gs = solve(
            &sp,
            UpdateMethod::GaussSeidel,
            &StopCondition::tolerance(1e-12, 1_000_000),
        );
        assert!(mg.converged() && gs.converged());
        assert!(
            mg.solution().diff_max(gs.solution()) < 1e-8,
            "multigrid and Gauss-Seidel disagree"
        );
    }

    #[test]
    fn poisson_with_source_converges() {
        let n = 65;
        let h = 1.0 / (n - 1) as f64;
        let sp = PoissonProblem::builder(n, n)
            .spacing(h, h)
            .source_fn(|x, y| (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin())
            .build()
            .unwrap()
            .discretize::<f64>();
        let r = solve_multigrid(
            &sp,
            &MultigridConfig::default(),
            &StopCondition::tolerance(1e-10, 50),
        );
        assert!(r.converged());
        assert!(r.iterations() <= 20);
    }

    #[test]
    fn residual_contracts_grid_independently() {
        // The multigrid hallmark: per-cycle contraction does not degrade
        // as the grid refines (unlike every stationary sweep).
        let factor = |n: usize| -> f64 {
            let sp = laplace(n);
            let r = solve_multigrid(
                &sp,
                &MultigridConfig::default(),
                &StopCondition::tolerance(1e-12, 8),
            );
            let h = r.history().as_slice();
            assert!(h.len() >= 3, "need a few cycles at n={n}");
            // Geometric mean contraction over the recorded cycles.
            (h[h.len() - 1] / h[0]).powf(1.0 / (h.len() - 1) as f64)
        };
        let f33 = factor(33);
        let f129 = factor(129);
        assert!(f33 < 0.2, "contraction at 33: {f33}");
        assert!(f129 < 0.25, "contraction at 129: {f129}");
        assert!(
            f129 < 2.0 * f33 + 0.1,
            "contraction must not blow up with refinement: {f33} -> {f129}"
        );
    }

    #[test]
    fn even_sized_grids_fall_back_gracefully() {
        // 40x40 cannot coarsen (even): the cycle bottoms out with extra
        // smoothing but still converges (more slowly).
        let sp = laplace(40);
        let r = solve_multigrid(
            &sp,
            &MultigridConfig::default(),
            &StopCondition::tolerance(1e-6, 4_000),
        );
        assert!(r.converged());
    }

    #[test]
    fn anisotropic_spacing_still_converges() {
        let sp = LaplaceProblem::builder(65, 65)
            .spacing(1.0, 2.0)
            .boundary(DirichletBoundary::hot_top(1.0))
            .build()
            .unwrap()
            .discretize::<f64>();
        let r = solve_multigrid(
            &sp,
            &MultigridConfig::default(),
            &StopCondition::tolerance(1e-8, 200),
        );
        assert!(r.converged(), "mild anisotropy should still converge");
    }

    #[test]
    #[should_panic(expected = "steady-state")]
    fn rejects_time_dependent_problems() {
        use crate::pde::HeatProblem;
        let sp = HeatProblem::builder(17, 17)
            .time(0.2, 5)
            .build()
            .unwrap()
            .discretize::<f64>();
        let _ = solve_multigrid(
            &sp,
            &MultigridConfig::default(),
            &StopCondition::fixed_steps(1),
        );
    }

    #[test]
    fn every_smoother_converges() {
        let sp = laplace(65);
        for (label, smoother, budget) in [
            ("gs", Smoother::GaussSeidel, 30),
            ("hybrid", Smoother::Hybrid, 60),
            ("damped-jacobi", Smoother::DampedJacobi { omega: 0.8 }, 80),
        ] {
            let cfg = MultigridConfig {
                pre_smooth: 3,
                post_smooth: 3,
                coarse_smooth: 60,
                smoother,
                ..MultigridConfig::default()
            };
            let r = solve_multigrid(&sp, &cfg, &StopCondition::tolerance(1e-9, budget));
            assert!(
                r.converged(),
                "{label} smoother failed: residual {:?} after {} cycles",
                r.history().last(),
                r.iterations()
            );
        }
    }

    #[test]
    fn hardware_mappable_config_converges_fast() {
        // The configuration that maps onto the FDMAX array (Hybrid
        // smoothing) still needs only a handful of V-cycles.
        let sp = laplace(129);
        let r = solve_multigrid(
            &sp,
            &MultigridConfig::hardware_mappable(),
            &StopCondition::tolerance(1e-9, 40),
        );
        assert!(r.converged());
        assert!(
            r.iterations() <= 25,
            "hardware-mappable multigrid took {} cycles",
            r.iterations()
        );
    }

    #[test]
    fn transfer_operators_are_consistent() {
        // Restriction of a constant interior is (away from the boundary)
        // the same constant; prolongation of zero adds nothing.
        let mut fine = Grid2D::<f64>::zeros(17, 17);
        for i in 1..16 {
            for j in 1..16 {
                fine[(i, j)] = 3.0;
            }
        }
        let coarse = restrict(&fine);
        assert_eq!(coarse.rows(), 9);
        // Interior coarse points not adjacent to the boundary see the full
        // weighting of a constant = the constant.
        assert!((coarse[(4, 4)] - 3.0).abs() < 1e-12);
        let mut target = Grid2D::<f64>::zeros(17, 17);
        prolong_add(&Grid2D::zeros(9, 9), &mut target);
        assert_eq!(target.norm_l2(), 0.0);
    }
}
