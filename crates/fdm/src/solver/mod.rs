//! Software FDM solvers.
//!
//! [`solve`] runs one of the paper's iteration methods (§2.2) on a
//! [`StencilProblem`]:
//!
//! * **Jacobi** — all updates from the previous iteration; fully parallel.
//! * **Gauss-Seidel** — latest values from the top *and* left points;
//!   sequential but fastest-converging of the classic sweeps.
//! * **Hybrid** — the paper's method (Eq. 8): latest value from the top
//!   point only, so a whole row can update in parallel.
//! * **Checkerboard** — red-black ordering; half the points update in each
//!   of two phases.
//! * **SOR** — over-relaxed Gauss-Seidel (extension beyond the paper).
//!
//! All sweeps share the canonical stencil evaluation order of
//! [`crate::stencil::stencil_point`], which is the contract that lets the
//! cycle-accurate FDMAX model reproduce software results bit-for-bit.
//!
//! The Krylov solvers backing the MemAccel/Alrescha baseline models live in
//! [`krylov`].

mod relaxation;

pub mod krylov;
pub mod multigrid;

pub use relaxation::{
    sweep_checkerboard, sweep_damped_jacobi, sweep_gauss_seidel, sweep_hybrid, sweep_jacobi,
    sweep_sor,
};

use crate::convergence::{ResidualHistory, StopCondition};
use crate::engine::{Session, SolveEngine, SweepEngine};
use crate::grid::Grid2D;
use crate::ops::StencilOp;
use crate::pde::{OffsetField, StencilProblem};
use crate::precision::Scalar;
use core::fmt;

/// Which update scheme a sweep uses (paper §2.2 and §4.2.3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UpdateMethod {
    /// Eq. (6): all operands from iteration `k`.
    Jacobi,
    /// Eq. (8): latest value from the top neighbour, everything else from
    /// iteration `k`. This is the hardware-friendly method FDMAX uses.
    Hybrid,
    /// Eq. (7): latest values from top and left neighbours.
    GaussSeidel,
    /// Red-black two-phase update (§2.2.3).
    Checkerboard,
    /// Successive over-relaxation with factor `omega in (0, 2)`.
    Sor {
        /// Relaxation factor; 1.0 degenerates to Gauss-Seidel.
        omega: f64,
    },
}

impl UpdateMethod {
    /// Short identifier used in benchmark output (`J`, `H`, `G`, `C`, `S`).
    pub fn letter(&self) -> char {
        match self {
            UpdateMethod::Jacobi => 'J',
            UpdateMethod::Hybrid => 'H',
            UpdateMethod::GaussSeidel => 'G',
            UpdateMethod::Checkerboard => 'C',
            UpdateMethod::Sor { .. } => 'S',
        }
    }

    /// Inverse of [`UpdateMethod::letter`] for the parameter-free
    /// methods. `'S'` (SOR) has no round-trip — it needs a relaxation
    /// factor — so it returns `None` like any unknown letter.
    pub fn from_letter(letter: char) -> Option<UpdateMethod> {
        match letter {
            'J' => Some(UpdateMethod::Jacobi),
            'H' => Some(UpdateMethod::Hybrid),
            'G' => Some(UpdateMethod::GaussSeidel),
            'C' => Some(UpdateMethod::Checkerboard),
            _ => None,
        }
    }

    /// The methods compared in the paper's Fig. 1(b).
    pub const FIG1B: [UpdateMethod; 4] = [
        UpdateMethod::Jacobi,
        UpdateMethod::Hybrid,
        UpdateMethod::GaussSeidel,
        UpdateMethod::Checkerboard,
    ];
}

impl fmt::Display for UpdateMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateMethod::Jacobi => f.write_str("Jacobi"),
            UpdateMethod::Hybrid => f.write_str("Hybrid"),
            UpdateMethod::GaussSeidel => f.write_str("Gauss-Seidel"),
            UpdateMethod::Checkerboard => f.write_str("Checkerboard"),
            UpdateMethod::Sor { omega } => write!(f, "SOR(omega={omega})"),
        }
    }
}

/// Outcome of a [`solve`] run.
#[derive(Clone, Debug)]
pub struct SolveResult<T> {
    solution: Grid2D<T>,
    iterations: usize,
    history: ResidualHistory,
    met: bool,
}

impl<T: Scalar> SolveResult<T> {
    /// Assembles a result from its parts (used by the solver entry
    /// points and by external engines driven through
    /// [`crate::engine::Session`]).
    pub fn from_parts(
        solution: Grid2D<T>,
        iterations: usize,
        history: ResidualHistory,
        met: bool,
    ) -> Self {
        SolveResult {
            solution,
            iterations,
            history,
            met,
        }
    }

    /// The final field `U^k`.
    pub fn solution(&self) -> &Grid2D<T> {
        &self.solution
    }

    /// Consumes the result, returning the final field.
    pub fn into_solution(self) -> Grid2D<T> {
        self.solution
    }

    /// Number of completed sweeps.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Per-iteration update norms `||U^{k+1} - U^k||_2`.
    pub fn history(&self) -> &ResidualHistory {
        &self.history
    }

    /// `true` when the stop condition's goal was met (tolerance reached,
    /// or all fixed steps completed).
    pub fn converged(&self) -> bool {
        self.met
    }

    /// The last update norm, `0.0` if no iteration ran.
    pub fn final_update_norm(&self) -> f64 {
        self.history.last().unwrap_or(0.0)
    }
}

/// Runs `method` on `problem` until `stop` says to stop.
///
/// The boundary ring of the field is never modified; interior points are
/// rewritten every sweep. The update norm recorded per iteration is
/// `sqrt(sum of squared point updates)` accumulated in f64, matching the
/// quantity the FDMAX DIFF/ECU hardware accumulates.
///
/// # Example
///
/// ```
/// use fdm::prelude::*;
///
/// let problem = LaplaceProblem::builder(32, 32)
///     .boundary(DirichletBoundary::hot_top(1.0))
///     .build()
///     .expect("valid problem");
/// let sp = problem.discretize::<f64>();
/// let result = solve(&sp, UpdateMethod::GaussSeidel, &StopCondition::tolerance(1e-8, 50_000));
/// assert!(result.converged());
/// assert!(result.iterations() > 10);
/// ```
pub fn solve<T: Scalar>(
    problem: &StencilProblem<T>,
    method: UpdateMethod,
    stop: &StopCondition,
) -> SolveResult<T> {
    let mut session = Session::new(SweepEngine::new(problem, method), *stop);
    let met = session
        .run()
        .expect("budget-free session on a healthy problem cannot fail");
    let (engine, history) = session.into_parts();
    let iterations = engine.iterations();
    SolveResult::from_parts(engine.into_solution(), iterations, history, met)
}

/// Runs `method` using the stop condition embedded in the problem's
/// [`RunMode`](crate::pde::RunMode).
pub fn solve_default<T: Scalar>(
    problem: &StencilProblem<T>,
    method: UpdateMethod,
) -> SolveResult<T> {
    solve(problem, method, &StopCondition::from_mode(&problem.mode))
}

/// L2 norm of the fixed-point residual `stencil(U) - U` over the interior.
///
/// Zero exactly at the converged steady-state solution; meaningful only
/// for steady-state problems (no `ScaledPrevField` offset).
pub fn fixed_point_residual_norm<T: Scalar>(problem: &StencilProblem<T>, field: &Grid2D<T>) -> f64 {
    let op = StencilOp::from_problem(problem);
    // A history-term offset has no steady-state meaning here; measure
    // against a zero right-hand side like the seed implementation did.
    let none = OffsetField::None;
    let offset = match &problem.offset {
        OffsetField::ScaledPrevField { .. } => &none,
        other => other,
    };
    op.residual_norm2(offset, None, field).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::DirichletBoundary;
    use crate::pde::{HeatProblem, LaplaceProblem, PoissonProblem, WaveProblem};

    fn laplace_problem(n: usize) -> StencilProblem<f64> {
        LaplaceProblem::builder(n, n)
            .boundary(DirichletBoundary::hot_top(1.0))
            .build()
            .unwrap()
            .discretize::<f64>()
    }

    #[test]
    fn all_methods_converge_to_the_same_laplace_solution() {
        let sp = laplace_problem(20);
        let stop = StopCondition::tolerance(1e-10, 100_000);
        let reference = solve(&sp, UpdateMethod::Jacobi, &stop);
        assert!(reference.converged());
        for method in [
            UpdateMethod::Hybrid,
            UpdateMethod::GaussSeidel,
            UpdateMethod::Checkerboard,
            UpdateMethod::Sor { omega: 1.5 },
        ] {
            let r = solve(&sp, method, &stop);
            assert!(r.converged(), "{method} did not converge");
            assert!(
                reference.solution().diff_max(r.solution()) < 1e-7,
                "{method} disagrees with Jacobi"
            );
        }
    }

    #[test]
    fn convergence_speed_ordering_matches_fig1b() {
        // Gauss-Seidel < Hybrid < Jacobi in iterations (faster = fewer).
        let sp = laplace_problem(30);
        let stop = StopCondition::tolerance(1e-8, 200_000);
        let j = solve(&sp, UpdateMethod::Jacobi, &stop).iterations();
        let h = solve(&sp, UpdateMethod::Hybrid, &stop).iterations();
        let g = solve(&sp, UpdateMethod::GaussSeidel, &stop).iterations();
        let c = solve(&sp, UpdateMethod::Checkerboard, &stop).iterations();
        assert!(g < h, "Gauss-Seidel ({g}) should beat Hybrid ({h})");
        assert!(h < j, "Hybrid ({h}) should beat Jacobi ({j})");
        assert!(c < h, "Checkerboard ({c}) should beat Hybrid ({h})");
        // §7.5: Hybrid needs no more than ~1.4x checkerboard's iterations.
        // We measure ~1.46 at this grid/tolerance; assert the same ballpark.
        assert!(
            (h as f64) <= 1.5 * c as f64,
            "Hybrid/Checkerboard ratio too large: {h}/{c}"
        );
    }

    #[test]
    fn fixed_point_residual_vanishes_at_solution() {
        let sp = laplace_problem(16);
        let r = solve(
            &sp,
            UpdateMethod::GaussSeidel,
            &StopCondition::tolerance(1e-12, 500_000),
        );
        let res = fixed_point_residual_norm(&sp, r.solution());
        assert!(res < 1e-9, "fixed-point residual {res} too large");
    }

    #[test]
    fn poisson_with_source_converges() {
        let sp = PoissonProblem::builder(24, 24)
            .source_fn(|x, y| {
                if (x - 0.5).abs() < 0.2 && (y - 0.5).abs() < 0.2 {
                    -1.0
                } else {
                    0.0
                }
            })
            .build()
            .unwrap()
            .discretize::<f64>();
        let r = solve(
            &sp,
            UpdateMethod::Jacobi,
            &StopCondition::tolerance(1e-9, 200_000),
        );
        assert!(r.converged());
        // A negative RHS (source) pushes the solution positive.
        assert!(r.solution()[(12, 12)] > 0.0);
    }

    #[test]
    fn heat_decays_toward_boundary_temperature() {
        let sp = HeatProblem::builder(16, 16)
            .time(0.2, 1200)
            .initial_fn(|x, y| (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin())
            .build()
            .unwrap()
            .discretize::<f64>();
        let r = solve_default(&sp, UpdateMethod::Jacobi);
        assert!(r.converged());
        assert_eq!(r.iterations(), 1200);
        // All-zero boundary: everything decays to ~0.
        assert!(r.solution().norm_l2() < 1e-3);
    }

    #[test]
    fn wave_preserves_magnitude_short_term() {
        let sp = WaveProblem::builder(24, 24)
            .time(0.4, 10)
            .initial_fn(|x, y| (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin())
            .build()
            .unwrap()
            .discretize::<f64>();
        let r = solve_default(&sp, UpdateMethod::Jacobi);
        assert_eq!(r.iterations(), 10);
        // The standing wave oscillates; after a few steps it is not all-zero
        // and not blown up.
        let norm = r.solution().norm_l2();
        assert!(norm.is_finite());
        assert!(norm < 20.0, "wave solution exploded: {norm}");
    }

    #[test]
    fn history_is_monotone_for_laplace_jacobi() {
        let sp = laplace_problem(12);
        let r = solve(
            &sp,
            UpdateMethod::Jacobi,
            &StopCondition::tolerance(1e-8, 50_000),
        );
        let h = r.history().as_slice();
        for w in h.windows(2) {
            assert!(w[1] <= w[0] * 1.0001, "update norm increased: {w:?}");
        }
    }

    #[test]
    fn zero_max_iterations_returns_initial() {
        let sp = laplace_problem(8);
        let r = solve(&sp, UpdateMethod::Jacobi, &StopCondition::fixed_steps(0));
        assert_eq!(r.iterations(), 0);
        assert_eq!(r.solution(), &sp.initial);
        assert!(r.converged(), "zero requested steps are trivially complete");
        assert_eq!(r.final_update_norm(), 0.0);
    }

    #[test]
    #[should_panic(expected = "omega")]
    fn sor_validates_omega() {
        let sp = laplace_problem(8);
        let _ = solve(
            &sp,
            UpdateMethod::Sor { omega: 2.5 },
            &StopCondition::fixed_steps(1),
        );
    }

    #[test]
    fn method_letters_and_display() {
        assert_eq!(UpdateMethod::Jacobi.letter(), 'J');
        assert_eq!(UpdateMethod::Hybrid.letter(), 'H');
        assert_eq!(UpdateMethod::GaussSeidel.letter(), 'G');
        assert_eq!(UpdateMethod::Checkerboard.letter(), 'C');
        assert_eq!(UpdateMethod::Sor { omega: 1.2 }.letter(), 'S');
        assert_eq!(UpdateMethod::Hybrid.to_string(), "Hybrid");
        assert!(UpdateMethod::Sor { omega: 1.2 }.to_string().contains("1.2"));
    }

    #[test]
    fn f32_needs_more_iterations_than_f64_to_tight_tolerance() {
        // The §7.2 effect: with the same absolute stop threshold, f32
        // rounding stalls the update norm earlier, costing iterations (or
        // preventing convergence at very tight thresholds).
        let sp64 = laplace_problem(40);
        let sp32 = sp64.convert::<f32>();
        let stop = StopCondition::tolerance(2e-5, 400_000);
        let it64 = solve(&sp64, UpdateMethod::Jacobi, &stop).iterations();
        let it32 = solve(&sp32, UpdateMethod::Jacobi, &stop).iterations();
        assert!(
            it32 >= it64,
            "f32 ({it32}) should not converge faster than f64 ({it64})"
        );
    }
}
